"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, main


class TestArgumentHandling:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        for name in COMMANDS:
            assert name in output

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "table1" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestFastCommands:
    def test_headroom(self, capsys):
        assert main(["headroom"]) == 0
        output = capsys.readouterr().out
        assert "V_dd,min" in output
        assert "yes" in output

    def test_tradeoff(self, capsys):
        assert main(["tradeoff"]) == 0
        output = capsys.readouterr().out
        assert "double-poly" in output
        assert "SI (single-poly digital CMOS)" in output

    def test_table1_fast(self, capsys):
        assert main(["table1", "--fast"]) == 0
        output = capsys.readouterr().out
        assert "THD" in output
        assert "-50 dB" in output

    def test_fig5_fast(self, capsys):
        assert main(["fig5", "--fast"]) == 0
        output = capsys.readouterr().out
        assert "SNR (10 kHz)" in output

    def test_fig6_fast(self, capsys):
        assert main(["fig6", "--fast"]) == 0
        assert "chopper" in capsys.readouterr().out.lower()


class TestSweepCommand:
    def test_sweep_fast(self, capsys, tmp_path):
        assert (
            main(
                [
                    "sweep",
                    "modulator2",
                    "--samples",
                    "4096",
                    "--levels",
                    "-20",
                    "-6",
                    "--no-cache",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "SNDR" in output
        assert "-20 dB" in output
        assert "cache" not in output.lower() or "off" in output.lower()

    def test_sweep_cache_round_trip(self, capsys, tmp_path):
        args = [
            "sweep",
            "modulator2",
            "--samples",
            "4096",
            "--levels",
            "-6",
            "--cache-dir",
            str(tmp_path),
            "--json",
            str(tmp_path / "sweep.json"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "hit" in warm.lower()
        assert (tmp_path / "sweep.json").exists()
        # The numbers table must be identical either way.
        cold_rows = [line for line in cold.splitlines() if "dB" in line]
        warm_rows = [line for line in warm.splitlines() if "dB" in line]
        assert cold_rows == warm_rows


class TestBenchGateCommand:
    def _write(self, path, payload):
        import json

        path.write_text(json.dumps(payload))
        return str(path)

    def test_gate_passes_within_baseline(self, capsys, tmp_path):
        telemetry = self._write(
            tmp_path / "telemetry.json",
            {
                "schema": "repro.metrics/bench-telemetry/v1",
                "records": [{"benchmark": "bench_a", "wall_s": 1.0}],
            },
        )
        baseline = self._write(
            tmp_path / "baseline.json",
            {
                "schema": "repro.metrics/bench-baseline/v1",
                "tolerance": 0.25,
                "benchmarks": {"bench_a": {"wall_s": 1.0}},
            },
        )
        assert main(["bench-gate", "--telemetry", telemetry, "--baseline", baseline]) == 0
        assert "within baseline" in capsys.readouterr().out

    def test_gate_fails_on_regression(self, capsys, tmp_path):
        telemetry = self._write(
            tmp_path / "telemetry.json",
            {
                "schema": "repro.metrics/bench-telemetry/v1",
                "records": [{"benchmark": "bench_a", "wall_s": 2.0}],
            },
        )
        baseline = self._write(
            tmp_path / "baseline.json",
            {
                "schema": "repro.metrics/bench-baseline/v1",
                "benchmarks": {"bench_a": {"wall_s": 1.0}},
            },
        )
        assert main(["bench-gate", "--telemetry", telemetry, "--baseline", baseline]) == 1

    def test_gate_missing_telemetry_is_an_error(self, tmp_path):
        baseline = self._write(
            tmp_path / "baseline.json",
            {
                "schema": "repro.metrics/bench-baseline/v1",
                "benchmarks": {},
            },
        )
        assert (
            main(
                [
                    "bench-gate",
                    "--telemetry",
                    str(tmp_path / "missing.json"),
                    "--baseline",
                    baseline,
                ]
            )
            == 2
        )
