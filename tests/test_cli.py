"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, main


class TestArgumentHandling:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        for name in COMMANDS:
            assert name in output

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "table1" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestFastCommands:
    def test_headroom(self, capsys):
        assert main(["headroom"]) == 0
        output = capsys.readouterr().out
        assert "V_dd,min" in output
        assert "yes" in output

    def test_tradeoff(self, capsys):
        assert main(["tradeoff"]) == 0
        output = capsys.readouterr().out
        assert "double-poly" in output
        assert "SI (single-poly digital CMOS)" in output

    def test_table1_fast(self, capsys):
        assert main(["table1", "--fast"]) == 0
        output = capsys.readouterr().out
        assert "THD" in output
        assert "-50 dB" in output

    def test_fig5_fast(self, capsys):
        assert main(["fig5", "--fast"]) == 0
        output = capsys.readouterr().out
        assert "SNR (10 kHz)" in output

    def test_fig6_fast(self, capsys):
        assert main(["fig6", "--fast"]) == 0
        assert "chopper" in capsys.readouterr().out.lower()
