"""SweepExecutor: deterministic chunking, ordering, seeding, timeouts."""

import os
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime.executor import ShardContext, SweepExecutor, SweepTimeoutError


def _collect(items, context):
    """Module-level worker (picklable) echoing its chunk and context."""
    return (list(items), context.lane_offset, context.n_lanes)


def _slow(items, context):  # pragma: no cover - runs in a worker process
    time.sleep(30.0)
    return list(items)


class TestPlan:
    def test_covers_items_contiguously(self):
        executor = SweepExecutor(jobs=3, chunk_size=4)
        plan = executor.plan(10)
        assert plan == [(0, 4), (4, 4), (8, 2)]

    def test_empty(self):
        assert SweepExecutor(jobs=2).plan(0) == []

    def test_default_chunking_uses_effective_workers(self):
        # On an n-core host the default chunk size divides the items
        # over min(jobs, cores): a single-core host gets ONE chunk (one
        # fully vectorized pass), never `jobs` undersized ones.
        executor = SweepExecutor(jobs=4)
        workers = max(1, min(4, os.cpu_count() or 1))
        plan = executor.plan(8)
        assert len(plan) == min(workers, 8)
        assert sum(length for _, length in plan) == 8

    def test_explicit_chunk_size_wins(self):
        assert len(SweepExecutor(jobs=1, chunk_size=1).plan(5)) == 5


class TestValidation:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor(jobs=0)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor(jobs=1, chunk_size=0)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor(jobs=1, timeout_s=0.0)


class TestMap:
    def test_inline_results_in_submission_order(self):
        executor = SweepExecutor(jobs=1, chunk_size=2)
        results = executor.map(_collect, list(range(7)))
        assert [chunk for chunk, _, _ in results] == [
            [0, 1], [2, 3], [4, 5], [6],
        ]
        assert [offset for _, offset, _ in results] == [0, 2, 4, 6]

    def test_process_pool_results_in_submission_order(self):
        executor = SweepExecutor(jobs=2, chunk_size=1)
        results = executor.map(_collect, [10, 11, 12])
        assert [chunk for chunk, _, _ in results] == [[10], [11], [12]]

    def test_timeout_raises(self):
        if (os.cpu_count() or 1) < 2:
            pytest.skip("timeout path needs a second worker process")
        executor = SweepExecutor(jobs=2, chunk_size=1, timeout_s=0.2)
        with pytest.raises(SweepTimeoutError):
            executor.map(_slow, [1, 2])


class TestSeeding:
    def test_shard_entropy_is_deterministic(self):
        executor = SweepExecutor(jobs=1, chunk_size=2, seed=7)
        first = executor.map(_collect, list(range(4)))
        # Contexts differ per map() call (call_index advances) but the
        # same configuration replayed from scratch reproduces them.
        replay = SweepExecutor(jobs=1, chunk_size=2, seed=7)
        assert replay.map(_collect, list(range(4))) == first

    def test_seed_sequence_reproducible(self):
        context = ShardContext(
            shard_index=1,
            n_shards=3,
            lane_offset=2,
            n_lanes=2,
            seed_entropy=(7, 0, 1),
        )
        draw_a = np.random.default_rng(context.seed_sequence()).random(4)
        draw_b = np.random.default_rng(context.seed_sequence()).random(4)
        assert draw_a.tobytes() == draw_b.tobytes()

    def test_distinct_shards_draw_distinct_streams(self):
        a = ShardContext(0, 2, 0, 1, seed_entropy=(0, 0, 0))
        b = ShardContext(1, 2, 1, 1, seed_entropy=(0, 0, 1))
        draws_a = np.random.default_rng(a.seed_sequence()).random(8)
        draws_b = np.random.default_rng(b.seed_sequence()).random(8)
        assert draws_a.tobytes() != draws_b.tobytes()
