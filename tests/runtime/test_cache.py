"""ResultCache: hits, misses, invalidation, corruption tolerance."""

import json

import numpy as np

from repro.runtime.cache import ResultCache


def _arrays():
    return {
        "a": np.linspace(0.0, 1.0, 5),
        "b": np.array([1.0, -0.0, np.pi]),
    }


class TestRoundTrip:
    def test_miss_then_hit_bit_exact(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = {"design": "modulator2", "n": 8192}
        assert cache.load(key) is None
        cache.store(key, _arrays())
        loaded = cache.load(key)
        assert loaded is not None
        for name, array in _arrays().items():
            assert loaded[name].tobytes() == array.tobytes()
        assert cache.hits == 1 and cache.misses == 1

    def test_key_changes_invalidate(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store({"design": "modulator2", "n": 8192}, _arrays())
        assert cache.load({"design": "modulator2", "n": 4096}) is None
        assert cache.load({"design": "chopper", "n": 8192}) is None

    def test_key_order_is_canonical(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store({"a": 1, "b": 2}, _arrays())
        assert cache.load({"b": 2, "a": 1}) is not None

    def test_env_dir_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        cache = ResultCache()
        assert cache.directory == tmp_path / "env-cache"


class TestCorruption:
    def test_corrupt_meta_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = {"k": 1}
        cache.store(key, _arrays())
        meta = tmp_path / f"{cache.key_digest(key)}.json"
        meta.write_text("{ not json")
        assert cache.load(key) is None

    def test_corrupt_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = {"k": 1}
        cache.store(key, _arrays())
        data = tmp_path / f"{cache.key_digest(key)}.npz"
        data.write_bytes(b"\x00" * 16)
        assert cache.load(key) is None

    def test_stale_schema_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = {"k": 1}
        cache.store(key, _arrays())
        meta = tmp_path / f"{cache.key_digest(key)}.json"
        stale = json.loads(meta.read_text())
        stale["schema"] = -1
        meta.write_text(json.dumps(stale))
        assert cache.load(key) is None

    def test_store_overwrites_corrupt_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = {"k": 1}
        cache.store(key, _arrays())
        (tmp_path / f"{cache.key_digest(key)}.npz").write_bytes(b"junk")
        cache.store(key, _arrays())
        assert cache.load(key) is not None


class TestClear:
    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store({"k": 1}, _arrays())
        cache.store({"k": 2}, _arrays())
        assert cache.clear() == 4  # two .npz + two .json
        assert cache.load({"k": 1}) is None

    def test_clear_missing_directory(self, tmp_path):
        assert ResultCache(tmp_path / "nope").clear() == 0
