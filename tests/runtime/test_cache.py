"""ResultCache: hits, misses, invalidation, corruption tolerance."""

import json
import os
import unittest.mock

import numpy as np

import repro.runtime.cache as cache_module
from repro.runtime.cache import ResultCache


def _arrays():
    return {
        "a": np.linspace(0.0, 1.0, 5),
        "b": np.array([1.0, -0.0, np.pi]),
    }


class TestRoundTrip:
    def test_miss_then_hit_bit_exact(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = {"design": "modulator2", "n": 8192}
        assert cache.load(key) is None
        cache.store(key, _arrays())
        loaded = cache.load(key)
        assert loaded is not None
        for name, array in _arrays().items():
            assert loaded[name].tobytes() == array.tobytes()
        assert cache.hits == 1 and cache.misses == 1

    def test_key_changes_invalidate(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store({"design": "modulator2", "n": 8192}, _arrays())
        assert cache.load({"design": "modulator2", "n": 4096}) is None
        assert cache.load({"design": "chopper", "n": 8192}) is None

    def test_key_order_is_canonical(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store({"a": 1, "b": 2}, _arrays())
        assert cache.load({"b": 2, "a": 1}) is not None

    def test_env_dir_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        cache = ResultCache()
        assert cache.directory == tmp_path / "env-cache"


class TestCorruption:
    def test_corrupt_meta_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = {"k": 1}
        cache.store(key, _arrays())
        meta = tmp_path / f"{cache.key_digest(key)}.json"
        meta.write_text("{ not json")
        assert cache.load(key) is None

    def test_corrupt_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = {"k": 1}
        cache.store(key, _arrays())
        data = tmp_path / f"{cache.key_digest(key)}.npz"
        data.write_bytes(b"\x00" * 16)
        assert cache.load(key) is None

    def test_stale_schema_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = {"k": 1}
        cache.store(key, _arrays())
        meta = tmp_path / f"{cache.key_digest(key)}.json"
        stale = json.loads(meta.read_text())
        stale["schema"] = -1
        meta.write_text(json.dumps(stale))
        assert cache.load(key) is None

    def test_store_overwrites_corrupt_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = {"k": 1}
        cache.store(key, _arrays())
        (tmp_path / f"{cache.key_digest(key)}.npz").write_bytes(b"junk")
        cache.store(key, _arrays())
        assert cache.load(key) is not None


class TestClear:
    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store({"k": 1}, _arrays())
        cache.store({"k": 2}, _arrays())
        assert cache.clear() == 4  # two .npz + two .json
        assert cache.load({"k": 1}) is None

    def test_clear_missing_directory(self, tmp_path):
        assert ResultCache(tmp_path / "nope").clear() == 0


class TestVersionedKey:
    def test_digest_includes_package_version(self, monkeypatch):
        # A release may change numeric behaviour, so upgrading the
        # package must invalidate every pre-upgrade entry.
        key = {"k": 1}
        digest_now = ResultCache.key_digest(key)
        monkeypatch.setattr(cache_module, "__version__", "0.0.0-test")
        assert ResultCache.key_digest(key) != digest_now

    def test_version_bump_is_a_miss(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        key = {"k": 1}
        cache.store(key, _arrays())
        assert cache.load(key) is not None
        monkeypatch.setattr(cache_module, "__version__", "0.0.0-test")
        assert cache.load(key) is None


class TestAtomicWrites:
    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store({"k": 1}, _arrays())
        leftovers = [p.name for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_temp_names_are_process_unique(self, tmp_path):
        # Two concurrent writers of the same entry must never share a
        # temp file; the name embeds the pid plus a fresh uuid.
        cache = ResultCache(tmp_path)
        digest = cache.key_digest({"k": 1})
        seen = set()
        original_replace = os.replace

        def spying_replace(src, dst):
            seen.add(str(src))
            return original_replace(src, dst)

        with unittest.mock.patch("os.replace", spying_replace):
            cache.store({"k": 1}, _arrays())
            cache.store({"k": 1}, _arrays())
        assert len(seen) == 4  # 2 stores x (data + meta), all distinct
        assert all(f"{os.getpid()}-" in name for name in seen)
        assert all(digest in name for name in seen)
