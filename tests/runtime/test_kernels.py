"""Unit tests for the compiled kernel tier and the engine selector.

The byte-equality contract itself is exercised exhaustively by
``tests/properties/test_kernel_parity.py``; this module covers the
machinery around it -- lowering refusals, compile caching, the
state-space analysis view, stream draining, JIT gating, and the
``use_engine`` ladder in ``run_single``.
"""

import numpy as np
import pytest

from repro.config import delay_line_cell_config, paper_cell_config
from repro.deltasigma.dither import DitheredQuantizer
from repro.deltasigma.modulator1 import SIModulator1
from repro.deltasigma.modulator2 import SIModulator2
from repro.deltasigma.quantizer import CurrentQuantizer
from repro.observability.instruments import get_registry, snapshot_delta
from repro.runtime.engine import ENGINES, current_engine, record_engine_run, use_engine
from repro.runtime.kernels import (
    KernelUnsupported,
    build_spec,
    compile_spec,
    kernel_refusal,
    run_kernel,
    state_matrices,
)
from repro.runtime.kernels import jit as jit_module
from repro.runtime.single import consume_fallbacks, force_scalar
from repro.si.cascade import BiquadCascade
from repro.si.delay_line import DelayLine
from repro.si.memory_cell import ClassABMemoryCell

MOD_CONFIG = paper_cell_config(sample_rate=2.45e6)


@pytest.fixture(autouse=True)
def _drain_fallback_notes():
    yield
    consume_fallbacks()


class TestBuildSpec:
    @pytest.mark.parametrize(
        "factory, kind",
        [
            (lambda: ClassABMemoryCell(delay_line_cell_config()), "cell"),
            (lambda: DelayLine(delay_line_cell_config(), n_cells=2), "delay"),
            (
                lambda: BiquadCascade(
                    128e3, 2, 2.56e6, config=delay_line_cell_config()
                ),
                "cascade",
            ),
            (lambda: SIModulator1(cell_config=MOD_CONFIG), "mod1"),
            (lambda: SIModulator2(cell_config=MOD_CONFIG), "mod2"),
        ],
    )
    def test_lowers_supported_devices(self, factory, kind):
        spec = build_spec(factory())
        assert spec.kind == kind
        assert spec.all_stages

    def test_unknown_device_refuses(self):
        with pytest.raises(KernelUnsupported, match="no kernel lowering"):
            build_spec(object())

    def test_behavioural_quantizer_subclass_refuses(self):
        class SaturatingQuantizer(CurrentQuantizer):
            def decide(self, value):
                return super().decide(min(value, 1e-6))

        device = SIModulator2(
            cell_config=MOD_CONFIG, quantizer=SaturatingQuantizer(seed=1)
        )
        assert kernel_refusal(device) is not None
        with pytest.raises(KernelUnsupported):
            build_spec(device)

    def test_unseeded_dither_still_lowers(self):
        # Unlike the batch engine, the kernel consumes the device's
        # live streams, so seeds are not required for byte-equality.
        device = SIModulator2(
            cell_config=MOD_CONFIG,
            quantizer=DitheredQuantizer(2e-7, seed=None),
        )
        assert kernel_refusal(device) is None

    def test_kernel_refusal_none_for_supported(self):
        assert kernel_refusal(SIModulator2(cell_config=MOD_CONFIG)) is None


class TestCompileCache:
    def test_equal_specs_share_one_program(self):
        first = build_spec(SIModulator2(cell_config=MOD_CONFIG))
        second = build_spec(SIModulator2(cell_config=MOD_CONFIG))
        assert first == second
        assert compile_spec(first) is compile_spec(second)

    def test_different_specs_compile_separately(self):
        mod1 = compile_spec(build_spec(SIModulator1(cell_config=MOD_CONFIG)))
        mod2 = compile_spec(build_spec(SIModulator2(cell_config=MOD_CONFIG)))
        assert mod1 is not mod2


class TestStateMatrices:
    def test_mod2_factored_form(self):
        device = SIModulator2(cell_config=MOD_CONFIG)
        spec = build_spec(device)
        a, b, c, d = state_matrices(spec)
        g1 = spec.stages[0].gain
        g2 = spec.stages[1].gain
        np.testing.assert_allclose(a, [[1.0, 0.0], [device.a2 * g2, 1.0]])
        np.testing.assert_allclose(
            b, [[device.a1 * g1, -device.a1 * g1], [0.0, -device.b2 * g2]]
        )
        np.testing.assert_allclose(c, [[0.0, 1.0]])
        assert d.shape == (1, 2)

    def test_delay_line_is_a_shift_chain(self):
        spec = build_spec(DelayLine(delay_line_cell_config(), n_cells=2))
        a, b, c, d = state_matrices(spec)
        assert a.shape == (2, 2)
        # One sample in, one state hop per clock, inverting signs folded.
        assert b[0, 0] == 1.0
        assert abs(a[1, 0]) == 1.0
        assert abs(c[0, 1]) == 1.0
        assert d == 0.0

    def test_unknown_kind_refuses(self):
        spec = build_spec(ClassABMemoryCell(delay_line_cell_config()))
        bogus = type(spec)(kind="nope", stages=spec.stages)
        with pytest.raises(KernelUnsupported, match="state-space"):
            state_matrices(bogus)


class TestRunKernel:
    def test_rejects_non_1d_input(self):
        device = ClassABMemoryCell(delay_line_cell_config())
        with pytest.raises(KernelUnsupported, match="not 1-D"):
            run_kernel(device, np.zeros((4, 4)))

    def test_empty_run_preserves_state(self):
        device = ClassABMemoryCell(delay_line_cell_config())
        out = run_kernel(device, np.empty(0))
        assert out.shape == (0,)
        assert device._steps == 0

    def test_writes_back_state_and_counters(self):
        stimulus = 8e-6 * np.sin(np.linspace(0.0, 20.0, 256))
        reference = ClassABMemoryCell(delay_line_cell_config())
        with force_scalar():
            want = reference.run(stimulus)
        device = ClassABMemoryCell(delay_line_cell_config())
        got = run_kernel(device, stimulus)
        assert got.tobytes() == want.tobytes()
        assert device._steps == reference._steps == 256
        assert device._slew_events == reference._slew_events
        assert device._stored == reference._stored
        # The noise stream sits at the same position: next draws agree.
        assert device._noise.take(1)[0] == reference._noise.take(1)[0]


class TestJitGate:
    def test_status_reports_a_reason_or_active(self):
        status = jit_module.jit_status()
        assert status == "active" or status  # non-empty refusal reason

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setattr(jit_module, "_PROBED", None)
        monkeypatch.setenv("REPRO_KERNEL_JIT", "0")
        factory, reason = jit_module.jit_availability()
        assert factory is None
        assert reason == "disabled by REPRO_KERNEL_JIT"
        assert jit_module.jit_compile(lambda: None) is None
        monkeypatch.setattr(jit_module, "_PROBED", None)


class TestEngineSelector:
    def test_default_is_auto(self):
        assert current_engine() == "auto"

    def test_use_engine_nests_and_restores(self):
        with use_engine("batch"):
            assert current_engine() == "batch"
            with use_engine("kernel"):
                assert current_engine() == "kernel"
            assert current_engine() == "batch"
        assert current_engine() == "auto"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            with use_engine("vectorized"):
                pass  # pragma: no cover - context never entered

    def test_engines_tuple_is_the_cli_contract(self):
        assert ENGINES == ("auto", "scalar", "batch", "kernel")

    def test_record_engine_run_counts_by_labels(self):
        registry = get_registry()
        before = registry.snapshot()
        device = SIModulator2(cell_config=MOD_CONFIG)
        record_engine_run("kernel", device)
        record_engine_run("batch", device, count=5)
        delta = snapshot_delta(before, registry.snapshot())
        series = delta["instruments"]["repro.engine.runs"]["series"]
        by_engine = {
            entry["labels"]["engine"]: entry["value"] for entry in series
        }
        assert by_engine["kernel"] == 1.0
        assert by_engine["batch"] == 5.0
        assert all(
            entry["labels"]["device"] == "SIModulator2" for entry in series
        )


class TestEngineLadder:
    def test_pinned_kernel_falls_back_to_scalar_with_a_note(self):
        class SaturatingQuantizer(CurrentQuantizer):
            def decide(self, value):
                return super().decide(min(value, 1e-6))

        stimulus = 3e-6 * np.sin(np.linspace(0.0, 10.0, 128))
        reference = SIModulator2(
            cell_config=MOD_CONFIG, quantizer=SaturatingQuantizer(seed=1)
        )
        with force_scalar():
            want = reference.run(stimulus)
        consume_fallbacks()
        device = SIModulator2(
            cell_config=MOD_CONFIG, quantizer=SaturatingQuantizer(seed=1)
        )
        with use_engine("kernel"):
            got = device.run(stimulus)
        assert got.tobytes() == want.tobytes()
        notes = consume_fallbacks()
        assert any("SaturatingQuantizer" in note for note in notes)

    def test_auto_refusal_is_silent(self):
        class SaturatingQuantizer(CurrentQuantizer):
            def decide(self, value):
                return super().decide(min(value, 1e-6))

        device = SIModulator2(
            cell_config=MOD_CONFIG, quantizer=SaturatingQuantizer(seed=1)
        )
        consume_fallbacks()
        device.run(3e-6 * np.sin(np.linspace(0.0, 10.0, 128)))
        # auto tries the kernel, then the fused path notes its refusal;
        # the kernel attempt itself stays silent.
        notes = consume_fallbacks()
        assert all("kernel" not in note for note in notes)
