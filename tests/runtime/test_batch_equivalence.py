"""Bit-exact equivalence of the batch runners against the scalar loops.

The whole value of :mod:`repro.runtime.batch` rests on one claim: for
every supported device, running N lanes through the vectorized runner
produces *byte-identical* output to driving the same freshly built
scalar device lane by lane (reset between lanes, the noise stream
running on).  These tests assert that claim with ``tobytes()`` -- no
tolerance, ever -- across noise on/off, mismatch, and every device
type, plus the refusal cases where a bit-exact lowering is impossible.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import (
    MODULATOR_CLOCK,
    delay_line_cell_config,
    paper_cell_config,
)
from dataclasses import replace
from repro.deltasigma import (
    ChopperStabilizedSIModulator,
    SIModulator1,
    SIModulator2,
)
from repro.deltasigma.dac import FeedbackDac
from repro.deltasigma.quantizer import CurrentQuantizer
from repro.runtime.batch import BatchUnsupported, batch_runner_for, iter_cells
from repro.si import DelayLine
from repro.si.cascade import BiquadCascade
from repro.si.memory_cell import ClassABMemoryCell

N_LANES = 3
N_STEPS = 400


def _stimuli(n_lanes: int = N_LANES, n_steps: int = N_STEPS) -> np.ndarray:
    t = np.arange(n_steps)
    carrier = np.sin(2.0 * np.pi * 13.0 * t / n_steps)
    amplitudes = 3e-6 * 10.0 ** (-np.arange(n_lanes, dtype=float) * 0.5)
    return amplitudes[:, None] * carrier[None, :]


def _scalar_lanes(device, stimuli: np.ndarray) -> np.ndarray:
    """The reference semantics: lane-sequential runs on one device."""
    outputs = np.empty_like(stimuli)
    for lane in range(stimuli.shape[0]):
        device.reset()
        outputs[lane] = device.run(stimuli[lane])
    return outputs


def _assert_bit_identical(device, stimuli: np.ndarray) -> None:
    runner = batch_runner_for(
        device, n_lanes=stimuli.shape[0], n_steps=stimuli.shape[1]
    )
    batch = runner.run(stimuli)
    scalar = _scalar_lanes(device, stimuli)
    assert batch.tobytes() == scalar.tobytes()


class TestDeviceEquivalence:
    def test_memory_cell(self):
        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        _assert_bit_identical(ClassABMemoryCell(config), _stimuli())

    def test_memory_cell_noiseless(self):
        config = replace(
            paper_cell_config(sample_rate=MODULATOR_CLOCK),
            thermal_noise_rms=0.0,
        )
        _assert_bit_identical(ClassABMemoryCell(config), _stimuli())

    def test_memory_cell_with_mismatch(self):
        config = replace(
            paper_cell_config(sample_rate=MODULATOR_CLOCK),
            half_gain_mismatch=0.01,
        )
        _assert_bit_identical(ClassABMemoryCell(config), _stimuli())

    def test_delay_line(self):
        line = DelayLine(delay_line_cell_config(), n_cells=2)
        _assert_bit_identical(line, _stimuli())

    def test_biquad_cascade(self):
        cascade = BiquadCascade(
            center_frequency=10e3,
            n_sections=2,
            sample_rate=MODULATOR_CLOCK,
            config=paper_cell_config(sample_rate=MODULATOR_CLOCK),
        )
        _assert_bit_identical(cascade, _stimuli())

    def test_modulator1(self):
        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        _assert_bit_identical(SIModulator1(cell_config=config), _stimuli())

    def test_modulator2(self):
        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        _assert_bit_identical(SIModulator2(cell_config=config), _stimuli())

    def test_chopper(self):
        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        _assert_bit_identical(
            ChopperStabilizedSIModulator(cell_config=config), _stimuli()
        )

    def test_modulator2_with_degradations(self):
        config = replace(
            paper_cell_config(sample_rate=MODULATOR_CLOCK),
            thermal_noise_rms=66e-9,
            half_gain_mismatch=0.02,
        )
        _assert_bit_identical(SIModulator2(cell_config=config), _stimuli())

    def test_modulator2_metastable_quantizer(self):
        # Seeded metastability lowers: the batch quantizer pre-draws the
        # whole uniform stream and slices it lane-major.
        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        _assert_bit_identical(
            SIModulator2(
                cell_config=config,
                quantizer=CurrentQuantizer(metastability_band=8e-8, seed=11),
            ),
            _stimuli(),
        )

    def test_modulator2_noisy_dac(self):
        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        _assert_bit_identical(
            SIModulator2(
                cell_config=config,
                dac=FeedbackDac(reference_noise_rms=3e-8, seed=12),
            ),
            _stimuli(),
        )

    def test_chopper_metastable_and_noisy(self):
        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        _assert_bit_identical(
            ChopperStabilizedSIModulator(
                cell_config=config,
                quantizer=CurrentQuantizer(
                    offset=1e-8, hysteresis=2e-8, metastability_band=8e-8, seed=13
                ),
                dac=FeedbackDac(level_mismatch=0.01, reference_noise_rms=3e-8, seed=14),
            ),
            _stimuli(),
        )

    def test_probed_modulator_lowers(self):
        # Attached probes no longer refuse: the batch runner buffers the
        # scalar loop's observation targets and feeds them lane-major,
        # so counts and extrema match the scalar run exactly.
        from repro.telemetry.session import TelemetrySession

        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        stimuli = _stimuli()

        scalar_session = TelemetrySession("probe-scalar")
        scalar_device = SIModulator2(cell_config=config)
        scalar_device.attach_telemetry(scalar_session)
        scalar = _scalar_lanes(scalar_device, stimuli)

        batch_session = TelemetrySession("probe-batch")
        batch_device = SIModulator2(cell_config=config)
        batch_device.attach_telemetry(batch_session)
        batch = batch_runner_for(
            batch_device, n_lanes=stimuli.shape[0], n_steps=stimuli.shape[1]
        ).run(stimuli)

        assert batch.tobytes() == scalar.tobytes()
        assert sorted(batch_session.probes) == sorted(scalar_session.probes)
        for name, expected in scalar_session.probes.items():
            lowered = batch_session.probes[name]
            assert lowered.count == expected.count
            assert lowered.minimum == expected.minimum
            assert lowered.maximum == expected.maximum
            assert lowered.clip_fraction == expected.clip_fraction
            assert lowered.rms == pytest.approx(expected.rms, rel=1e-12)
            assert lowered.mean == pytest.approx(expected.mean, rel=1e-9, abs=1e-24)


class TestLaneOffset:
    def test_offset_runner_matches_tail_lanes(self):
        # A shard starting at lane_offset=k must reproduce lanes k..N of
        # the full run exactly -- this is what makes the sharded sweep
        # independent of its chunk layout.
        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        stimuli = _stimuli(n_lanes=5)
        full = batch_runner_for(
            SIModulator2(cell_config=config), 5, N_STEPS
        ).run(stimuli)
        tail = batch_runner_for(
            SIModulator2(cell_config=config), 3, N_STEPS, lane_offset=2
        ).run(stimuli[2:])
        assert tail.tobytes() == full[2:].tobytes()


class TestBatchShapeProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        n_lanes=st.integers(min_value=1, max_value=6),
        n_steps=st.integers(min_value=8, max_value=96),
        amplitude=st.floats(min_value=1e-8, max_value=6e-6),
    )
    def test_memory_cell_any_shape(self, n_lanes, n_steps, amplitude):
        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        t = np.arange(n_steps)
        carrier = np.sin(2.0 * np.pi * 3.0 * t / max(n_steps, 1))
        scales = np.linspace(1.0, 0.25, n_lanes)
        stimuli = amplitude * scales[:, None] * carrier[None, :]
        _assert_bit_identical(ClassABMemoryCell(config), stimuli)


class TestRefusals:
    def test_unknown_device(self):
        with pytest.raises(BatchUnsupported):
            batch_runner_for(object(), 2, 16)

    def test_bad_shape_arguments(self):
        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        with pytest.raises(ValueError):
            batch_runner_for(ClassABMemoryCell(config), 0, 16)

    def test_unseeded_noise_refused(self):
        # A fresh batch noise feed cannot replay an unseeded device
        # stream, so the lowering must refuse rather than diverge.
        config = replace(
            paper_cell_config(sample_rate=MODULATOR_CLOCK), seed=None
        )
        with pytest.raises(BatchUnsupported):
            batch_runner_for(ClassABMemoryCell(config), 2, 16)

    def test_unseeded_noiseless_allowed(self):
        config = replace(
            paper_cell_config(sample_rate=MODULATOR_CLOCK),
            seed=None,
            thermal_noise_rms=0.0,
        )
        _assert_bit_identical(ClassABMemoryCell(config), _stimuli())

    def test_unseeded_metastability_refused(self):
        # Seeded metastability lowers (see TestDeviceEquivalence); an
        # unseeded band has no replayable stream, so it must refuse.
        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        modulator = SIModulator2(
            cell_config=config,
            quantizer=CurrentQuantizer(metastability_band=1e-9, seed=None),
        )
        with pytest.raises(BatchUnsupported):
            batch_runner_for(modulator, 2, 16)

    def test_unseeded_dac_noise_refused(self):
        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        modulator = SIModulator2(
            cell_config=config,
            dac=FeedbackDac(reference_noise_rms=1e-9, seed=None),
        )
        with pytest.raises(BatchUnsupported):
            batch_runner_for(modulator, 2, 16)

    def test_seeded_dither_lowers(self):
        # A DitheredQuantizer joins the protocol: its dither comes from
        # a replayable GaussianStream, so the batch engine slices it
        # like the metastability stream instead of refusing.
        from repro.deltasigma.dither import DitheredQuantizer

        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        modulator = SIModulator2(
            cell_config=config,
            quantizer=DitheredQuantizer(dither_rms=1e-8, seed=3),
        )
        batch_runner_for(modulator, 2, 16)

    def test_unseeded_dither_refused(self):
        # ... but only when seeded: a fresh batch stream cannot replay
        # an unseeded quantiser's dither draws.
        from repro.deltasigma.dither import DitheredQuantizer

        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        modulator = SIModulator2(
            cell_config=config,
            quantizer=DitheredQuantizer(dither_rms=1e-8, seed=None),
        )
        with pytest.raises(BatchUnsupported):
            batch_runner_for(modulator, 2, 16)

    def test_quantizer_subclass_refused(self):
        # Exact-type checks: an arbitrary quantiser subclass changes
        # behaviour the lowering does not model, so it must refuse.
        class SaturatingQuantizer(CurrentQuantizer):
            def decide(self, input_current: float) -> int:
                return super().decide(min(input_current, 1e-6))

        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        modulator = SIModulator2(
            cell_config=config, quantizer=SaturatingQuantizer()
        )
        with pytest.raises(BatchUnsupported):
            batch_runner_for(modulator, 2, 16)

    def test_iter_cells_counts(self):
        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        assert len(iter_cells(SIModulator2(cell_config=config))) == 2
        assert len(iter_cells(DelayLine(delay_line_cell_config()))) == 2
