"""Vectorized Monte Carlo: parity with the scalar loop, shard spawning."""

import numpy as np
import pytest

from repro.devices.mismatch import PelgromMismatch
from repro.errors import ConfigurationError
from repro.runtime.montecarlo import (
    cmff_imbalance_draws,
    cmff_leakage_samples,
    cmff_rejection_samples,
)
from repro.systems.montecarlo import CmffMonteCarlo

WIDTH, LENGTH = 8e-6, 2e-6
AREAS = [4.0, 64.0]


def _study(vectorized: bool, seed: int = 42, n_trials: int = 50) -> CmffMonteCarlo:
    return CmffMonteCarlo(
        rng=np.random.default_rng(seed), n_trials=n_trials, vectorized=vectorized
    )


class TestScalarParity:
    def test_rejection_identical(self):
        assert _study(True).rejection_statistics(WIDTH, LENGTH) == _study(
            False
        ).rejection_statistics(WIDTH, LENGTH)

    def test_leakage_identical(self):
        assert _study(True).leakage_statistics(WIDTH, LENGTH) == _study(
            False
        ).leakage_statistics(WIDTH, LENGTH)

    def test_area_sweep_identical(self):
        assert _study(True).area_sweep(AREAS) == _study(False).area_sweep(AREAS)

    def test_draws_consume_identical_stream(self):
        # The block draw must advance the generator exactly as the
        # scalar per-trial (vth, beta) x 4 order does: statistics after
        # the call must match too.
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        mismatch = PelgromMismatch(rng=rng_b)
        cmff_imbalance_draws(
            mismatch.sigma_vth(WIDTH, LENGTH),
            mismatch.sigma_beta_rel(WIDTH, LENGTH),
            10,
            rng_a,
        )
        for _ in range(40):
            mismatch.sample_pair_imbalance(WIDTH, LENGTH)
        assert rng_a.random() == rng_b.random()


class TestSpawn:
    def test_spawn_is_reproducible(self):
        a = [
            child.rejection_statistics(WIDTH, LENGTH)
            for child in _study(True).spawn(3, seed=5)
        ]
        b = [
            child.rejection_statistics(WIDTH, LENGTH)
            for child in _study(True).spawn(3, seed=5)
        ]
        assert a == b

    def test_spawned_shards_are_independent(self):
        children = _study(True).spawn(2, seed=5)
        assert children[0].rejection_statistics(WIDTH, LENGTH) != children[
            1
        ].rejection_statistics(WIDTH, LENGTH)

    def test_spawn_inherits_configuration(self):
        parent = CmffMonteCarlo(
            mismatch=PelgromMismatch(avt=5e-9, abeta=0.01e-6), n_trials=25
        )
        child = parent.spawn(1)[0]
        assert child.mismatch.avt == 5e-9
        assert child.n_trials == 25

    def test_spawn_rejects_bad_count(self):
        with pytest.raises(ConfigurationError):
            _study(True).spawn(0)


class TestConstruction:
    def test_mismatch_and_rng_are_exclusive(self):
        with pytest.raises(ConfigurationError):
            CmffMonteCarlo(
                mismatch=PelgromMismatch(), rng=np.random.default_rng(0)
            )

    def test_seed_default_is_reproducible(self):
        a = CmffMonteCarlo(seed=9, n_trials=20).rejection_statistics(
            WIDTH, LENGTH
        )
        b = CmffMonteCarlo(seed=9, n_trials=20).rejection_statistics(
            WIDTH, LENGTH
        )
        assert a == b


class TestKernels:
    def test_sample_shapes(self):
        errors = cmff_imbalance_draws(1e-3, 1e-3, 17, np.random.default_rng(0))
        assert errors.shape == (17, 4)
        assert cmff_rejection_samples(errors).shape == (17,)
        assert cmff_leakage_samples(errors).shape == (17,)

    def test_perfect_mirrors_reject_everything(self):
        errors = np.zeros((5, 4))
        assert np.all(cmff_rejection_samples(errors) == 0.0)
        assert np.all(cmff_leakage_samples(errors) == 0.0)
