"""Bit-exact equivalence of the single-run fast path against the scalar loops.

The fast path (:mod:`repro.runtime.single`) is what every device
``run`` method tries first; its whole contract is byte-identity with
the per-sample scalar loop, which stays in the tree as the parity
oracle behind :func:`force_scalar`.  These tests assert that contract
with ``tobytes()`` across every supported device and every randomised
element (cell noise, flicker, quantizer metastability, DAC reference
noise), plus the live-stream property the batch engine cannot offer:
state and stream continuation across sequential runs on one device.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import (
    MODULATOR_CLOCK,
    delay_line_cell_config,
    paper_cell_config,
)
from repro.deltasigma import (
    ChopperStabilizedSIModulator,
    SIModulator1,
    SIModulator2,
)
from repro.deltasigma.dac import FeedbackDac
from repro.deltasigma.quantizer import CurrentQuantizer
from repro.runtime.single import consume_fallbacks, force_scalar, run_single
from repro.si import DelayLine
from repro.si.cascade import BiquadCascade
from repro.si.memory_cell import ClassABMemoryCell
from repro.telemetry.designs import TRACE_DESIGNS
from repro.telemetry.session import TelemetrySession

N_STEPS = 400


def _stimulus(n_steps: int = N_STEPS, amplitude: float = 3e-6) -> np.ndarray:
    t = np.arange(n_steps)
    return amplitude * np.sin(2.0 * np.pi * 13.0 * t / n_steps)


def _paper_config(**overrides):
    return replace(paper_cell_config(sample_rate=MODULATOR_CLOCK), **overrides)


def _degraded_quantizer() -> CurrentQuantizer:
    return CurrentQuantizer(
        offset=1e-8, hysteresis=2e-8, metastability_band=8e-8, seed=21
    )


def _degraded_dac() -> FeedbackDac:
    return FeedbackDac(level_mismatch=0.02, reference_noise_rms=3e-8, seed=31)



def _drive(device, stimulus: np.ndarray) -> np.ndarray:
    """Run a device from a fresh state (not every device is callable)."""
    if callable(device):
        return device(stimulus)
    device.reset()
    return device.run(stimulus)

def _assert_fast_matches_scalar(make_device, stimulus: np.ndarray) -> None:
    """Assert a fresh device's fast-path run is byte-identical to scalar."""
    scalar_device = make_device()
    with force_scalar():
        scalar = _drive(scalar_device, stimulus)
    fast_device = make_device()
    fast = _drive(fast_device, stimulus)
    assert fast.tobytes() == scalar.tobytes()


DEVICE_FACTORIES = {
    "memory-cell": lambda: ClassABMemoryCell(
        _paper_config(half_gain_mismatch=0.01)
    ),
    "delay-line": lambda: DelayLine(delay_line_cell_config(), n_cells=2),
    "cascade": lambda: BiquadCascade(
        center_frequency=10e3,
        n_sections=2,
        sample_rate=MODULATOR_CLOCK,
        config=_paper_config(),
    ),
    "modulator1": lambda: SIModulator1(cell_config=_paper_config()),
    "modulator2": lambda: SIModulator2(cell_config=_paper_config()),
    "chopper": lambda: ChopperStabilizedSIModulator(cell_config=_paper_config()),
}


class TestFastPathEquivalence:
    @pytest.mark.parametrize("name", sorted(DEVICE_FACTORIES))
    def test_device_bit_identical(self, name):
        _assert_fast_matches_scalar(DEVICE_FACTORIES[name], _stimulus())

    def test_modulator2_metastability_and_dac_noise(self):
        _assert_fast_matches_scalar(
            lambda: SIModulator2(
                cell_config=_paper_config(half_gain_mismatch=0.005),
                quantizer=_degraded_quantizer(),
                dac=_degraded_dac(),
            ),
            _stimulus(),
        )

    def test_chopper_metastability_and_dac_noise(self):
        _assert_fast_matches_scalar(
            lambda: ChopperStabilizedSIModulator(
                cell_config=_paper_config(),
                quantizer=_degraded_quantizer(),
                dac=_degraded_dac(),
            ),
            _stimulus(),
        )

    def test_modulator1_metastability_and_dac_noise(self):
        _assert_fast_matches_scalar(
            lambda: SIModulator1(
                cell_config=_paper_config(),
                quantizer=_degraded_quantizer(),
                dac=_degraded_dac(),
            ),
            _stimulus(),
        )

    def test_noiseless_unseeded_cell_still_fast(self):
        # No randomness at all: the fast path needs no stream replay,
        # so even an unseeded config must not fall back.
        config = _paper_config(
            seed=None, thermal_noise_rms=0.0, flicker_corner_hz=0.0
        )
        consume_fallbacks()
        output = ClassABMemoryCell(config).run(_stimulus())
        assert consume_fallbacks() == []
        with force_scalar():
            scalar = ClassABMemoryCell(config).run(_stimulus())
        assert output.tobytes() == scalar.tobytes()


class TestStreamContinuation:
    """Sequential runs on one device keep consuming the live streams."""

    @pytest.mark.parametrize("name", sorted(DEVICE_FACTORIES))
    def test_two_runs_match_scalar_two_runs(self, name):
        first = _stimulus()
        second = _stimulus(amplitude=1e-6)

        scalar_device = DEVICE_FACTORIES[name]()
        with force_scalar():
            scalar_a = _drive(scalar_device, first)
            scalar_b = _drive(scalar_device, second)

        fast_device = DEVICE_FACTORIES[name]()
        fast_a = _drive(fast_device, first)
        fast_b = _drive(fast_device, second)

        assert fast_a.tobytes() == scalar_a.tobytes()
        assert fast_b.tobytes() == scalar_b.tobytes()

    def test_interleaved_fast_and_scalar_runs(self):
        # The fast path consumes the same stream draws as the scalar
        # loop, so the two can alternate on one device without
        # diverging from an all-scalar reference.
        stimulus = _stimulus()
        make = DEVICE_FACTORIES["modulator2"]

        reference = make()
        with force_scalar():
            expected = [reference(stimulus) for _ in range(3)]

        device = make()
        first = device(stimulus)
        with force_scalar():
            second = device(stimulus)
        third = device(stimulus)

        assert first.tobytes() == expected[0].tobytes()
        assert second.tobytes() == expected[1].tobytes()
        assert third.tobytes() == expected[2].tobytes()


class TestProbedFastPath:
    def test_probe_statistics_match_scalar(self):
        stimulus = _stimulus()

        scalar_session = TelemetrySession("fast-probe-scalar")
        scalar_device = DEVICE_FACTORIES["modulator2"]()
        scalar_device.attach_telemetry(scalar_session)
        with force_scalar():
            scalar = _drive(scalar_device, stimulus)

        fast_session = TelemetrySession("fast-probe-fast")
        fast_device = DEVICE_FACTORIES["modulator2"]()
        fast_device.attach_telemetry(fast_session)
        fast = _drive(fast_device, stimulus)

        assert fast.tobytes() == scalar.tobytes()
        assert sorted(fast_session.probes) == sorted(scalar_session.probes)
        for name, expected in scalar_session.probes.items():
            lowered = fast_session.probes[name]
            assert lowered.count == expected.count
            assert lowered.minimum == expected.minimum
            assert lowered.maximum == expected.maximum
            assert lowered.clip_fraction == expected.clip_fraction
            assert lowered.rms == pytest.approx(expected.rms, rel=1e-12)


class TestZeroFallbacks:
    @pytest.mark.parametrize("name", sorted(TRACE_DESIGNS))
    def test_baseline_design_never_falls_back(self, name):
        # The tentpole's regression guard: every `repro` verb's design
        # must run on the fast path, so a run that quietly drops to the
        # scalar loop is a bug, not a slowdown.
        setup = TRACE_DESIGNS[name]
        device = setup.build(None)
        t = np.arange(1024)
        stimulus = setup.amplitude * np.sin(
            2.0 * np.pi * setup.frequency * t / setup.sample_rate
        )
        consume_fallbacks()
        device(stimulus)
        assert consume_fallbacks() == []

    def test_probed_baseline_design_never_falls_back(self):
        setup = TRACE_DESIGNS["modulator2"]
        device = setup.build(None)
        device.attach_telemetry(TelemetrySession("fallback-guard"))
        consume_fallbacks()
        device(_stimulus(1024))
        assert consume_fallbacks() == []

    def test_unknown_device_is_noted(self):
        consume_fallbacks()
        assert run_single(object(), np.zeros(4)) is None
        notes = consume_fallbacks()
        assert len(notes) == 1
        assert "object" in notes[0]

    def test_force_scalar_disables_fast_path(self):
        device = DEVICE_FACTORIES["memory-cell"]()
        with force_scalar():
            assert run_single(device, np.zeros(4)) is None
        # force_scalar is not a fallback: the caller asked for scalar.
        assert consume_fallbacks() == []
