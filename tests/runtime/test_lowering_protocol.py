"""The declared lowering protocol (:mod:`repro.runtime.lowering`).

Before the protocol existed the engines used blanket exact-type
checks; now a subclass that only touches metadata hooks keeps its
bit-exact batch lowering, while behavioural overrides refuse with a
named reason.  These tests pin both halves, plus the probe pairing
rule shared by the batch and single-run paths.
"""

import numpy as np
import pytest

from repro.config import paper_cell_config
from repro.deltasigma.quantizer import CurrentQuantizer
from repro.runtime.batch import BatchUnsupported, batch_runner_for
from repro.runtime.lowering import (
    LOWERING_PROTOCOL,
    PROTOCOL_BY_QUALNAME,
    hook_refusal,
    hooks_outside_protocol,
    lowering_refusal,
    overridden_hooks,
    probe_pair_refusal,
    probe_refusal,
    protocol_for,
    subclass_refusal,
)
from repro.runtime.single import consume_fallbacks, run_single
from repro.si.delay_line import DelayLine
from repro.si.memory_cell import ClassABMemoryCell
from repro.telemetry.probes import SignalProbe


class AnnotatedCell(ClassABMemoryCell):
    """Metadata-only subclass: inside the protocol, keeps lowering."""

    def __init__(self, config, label="cell"):
        super().__init__(config)
        self.label = label


class TamperedCell(ClassABMemoryCell):
    """Behavioural override: outside the protocol, refuses lowering."""

    def run(self, differential_input):
        return differential_input


class TamperedLine(DelayLine):
    def step(self, sample):
        return sample


class ExoticQuantizer(CurrentQuantizer):
    pass


class UnpairedProbe(SignalProbe):
    def observe(self, value):
        super().observe(value)


class PairedProbe(SignalProbe):
    def observe(self, value):
        super().observe(value)

    def observe_array(self, values):
        super().observe_array(values)


def test_protocol_table_is_consistent():
    assert len(LOWERING_PROTOCOL) >= 10
    assert set(PROTOCOL_BY_QUALNAME.values()) == set(LOWERING_PROTOCOL)
    for entry in LOWERING_PROTOCOL:
        # Allowlisted hooks are never reported as outside the protocol,
        # whether or not the base happens to define them.
        assert hooks_outside_protocol(entry, entry.overridable) == []


def test_protocol_for_walks_the_mro():
    entry = protocol_for(AnnotatedCell)
    assert entry is not None and entry.base is ClassABMemoryCell
    assert protocol_for(ClassABMemoryCell) is entry
    assert protocol_for(int) is None


def test_overridden_hooks_filters_through_the_protocol():
    entry = protocol_for(ClassABMemoryCell)
    assert overridden_hooks(AnnotatedCell, entry) == []
    assert overridden_hooks(TamperedCell, entry) == ["run"]
    assert hooks_outside_protocol(entry, ["__init__", "run", "novelty"]) == [
        "run"
    ]


def test_lowering_refusal_messages():
    config = paper_cell_config()
    assert lowering_refusal(ClassABMemoryCell(config)) is None
    assert lowering_refusal(AnnotatedCell(config)) is None
    assert lowering_refusal(TamperedCell(config)) == hook_refusal(
        "memory cell", "TamperedCell", "run", "ClassABMemoryCell"
    )
    assert lowering_refusal(ExoticQuantizer()) == subclass_refusal(
        "quantizer", "ExoticQuantizer"
    )
    assert lowering_refusal(object()) is None


def test_probe_refusal_pairing():
    assert probe_refusal(SignalProbe("base")) is None
    assert probe_refusal(PairedProbe("ok")) is None
    assert probe_refusal(UnpairedProbe("bad")) == probe_pair_refusal(
        "UnpairedProbe"
    )


def _stimuli(n_lanes=2, n_steps=64):
    t = np.arange(n_steps)
    carrier = np.sin(2.0 * np.pi * 5.0 * t / n_steps)
    amplitudes = 3e-6 * np.array([1.0, 0.5])[:n_lanes]
    return amplitudes[:, None] * carrier[None, :]


def test_metadata_subclass_batches_bit_exactly():
    """The protocol's new capability: a metadata subclass still lowers
    and stays byte-identical to its own scalar loop."""
    device = AnnotatedCell(paper_cell_config())
    stimuli = _stimuli()
    runner = batch_runner_for(
        device, n_lanes=stimuli.shape[0], n_steps=stimuli.shape[1]
    )
    batch = runner.run(stimuli)
    scalar = np.empty_like(stimuli)
    for lane in range(stimuli.shape[0]):
        device.reset()
        scalar[lane] = device.run(stimuli[lane])
    assert batch.tobytes() == scalar.tobytes()


def test_behavioural_override_refuses_batch_with_named_reason():
    device = TamperedLine(paper_cell_config(), n_cells=2)
    with pytest.raises(BatchUnsupported) as excinfo:
        batch_runner_for(device, 2, 16)
    assert str(excinfo.value) == hook_refusal(
        "delay line", "TamperedLine", "step", "DelayLine"
    )


def test_unpaired_probe_refuses_batch():
    cell = ClassABMemoryCell(paper_cell_config())
    cell._probe = UnpairedProbe("cell.input")
    with pytest.raises(BatchUnsupported) as excinfo:
        batch_runner_for(cell, 2, 16)
    assert str(excinfo.value) == probe_pair_refusal("UnpairedProbe")


def test_unpaired_probe_falls_back_on_the_single_path():
    cell = ClassABMemoryCell(paper_cell_config())
    cell._probe = UnpairedProbe("cell.input")
    consume_fallbacks()
    assert run_single(cell, _stimuli(n_lanes=1)[0]) is None
    reasons = consume_fallbacks()
    assert any(probe_pair_refusal("UnpairedProbe") in r for r in reasons)


def test_paired_probe_keeps_the_batch_lowering():
    cell = ClassABMemoryCell(paper_cell_config())
    cell._probe = PairedProbe("cell.input")
    runner = batch_runner_for(cell, 2, 16)
    assert runner is not None
