"""run_sweep: parity with the scalar sweep, sharding, caching, spans."""

import pytest

from repro.analysis.sweeps import run_amplitude_sweep
from repro.config import (
    MODULATOR_CLOCK,
    MODULATOR_FULL_SCALE,
    SIGNAL_BANDWIDTH,
    paper_cell_config,
)
from repro.deltasigma import SIModulator2
from repro.errors import AnalysisError
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor
from repro.runtime.sweeps import (
    DEFAULT_LEVELS_DB,
    SweepSpec,
    run_sweep,
    sweep_spec_for_design,
)
from repro.systems.stimulus import coherent_frequency
from repro.telemetry.session import TelemetrySession

N_SAMPLES = 1 << 13
LEVELS = (-40.0, -20.0, -10.0)


def _spec(**overrides) -> SweepSpec:
    base = dict(
        design="modulator2",
        levels_db=LEVELS,
        full_scale=MODULATOR_FULL_SCALE,
        signal_frequency=coherent_frequency(2e3, MODULATOR_CLOCK, N_SAMPLES),
        sample_rate=MODULATOR_CLOCK,
        n_samples=N_SAMPLES,
        bandwidth=SIGNAL_BANDWIDTH,
        settle_samples=64,
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestScalarParity:
    def test_matches_run_amplitude_sweep_exactly(self):
        spec = _spec()
        batch = run_sweep(spec)
        modulator = SIModulator2(
            cell_config=paper_cell_config(sample_rate=MODULATOR_CLOCK)
        )
        scalar = run_amplitude_sweep(
            modulator,
            levels_db=list(LEVELS),
            full_scale=spec.full_scale,
            signal_frequency=spec.signal_frequency,
            sample_rate=spec.sample_rate,
            n_samples=spec.n_samples,
            bandwidth=spec.bandwidth,
            settle_samples=spec.settle_samples,
        )
        assert batch.metrics == scalar.metrics
        assert batch.sndr_db.tobytes() == scalar.sndr_db.tobytes()
        assert batch.snr_db.tobytes() == scalar.snr_db.tobytes()
        assert batch.thd_db.tobytes() == scalar.thd_db.tobytes()

    def test_sharding_is_invisible(self):
        spec = _spec()
        whole = run_sweep(spec, executor=SweepExecutor(jobs=1))
        sharded = run_sweep(
            spec, executor=SweepExecutor(jobs=1, chunk_size=1)
        )
        assert whole.metrics == sharded.metrics

    def test_empty_levels_rejected(self):
        with pytest.raises(AnalysisError):
            run_sweep(_spec(levels_db=()))


class TestCacheIntegration:
    def test_hit_reconstructs_bit_for_bit(self, tmp_path):
        spec = _spec()
        cache = ResultCache(tmp_path)
        cold = run_sweep(spec, cache=cache)
        warm = run_sweep(spec, cache=cache)
        assert cache.misses == 1 and cache.hits == 1
        assert warm.metrics == cold.metrics
        assert warm.sndr_db.tobytes() == cold.sndr_db.tobytes()

    def test_spec_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(_spec(), cache=cache)
        run_sweep(_spec(noise_scale=2.0), cache=cache)
        assert cache.hits == 0 and cache.misses == 2

    def test_degraded_spec_changes_result(self, tmp_path):
        clean = run_sweep(_spec())
        noisy = run_sweep(_spec(noise_scale=4.0))
        assert clean.metrics != noisy.metrics


class TestTelemetry:
    def test_sweep_span_grafts_shards(self):
        session = TelemetrySession("sweep-span")
        run_sweep(_spec(), telemetry=session)
        sweep_spans = [s for s in session.roots if s.name == "sweep"]
        assert sweep_spans
        assert sweep_spans[0].attrs.get("cache") == "off"
        shards = [
            child
            for child in sweep_spans[0].children
            if child.name.startswith("shard:")
        ]
        assert shards and shards[0].name == "shard:0"
        # Grafted worker spans carry real worker-side wall time plus
        # the engine/queue-wait/lane bookkeeping.
        assert shards[0].duration_s is not None and shards[0].duration_s > 0.0
        assert shards[0].attrs.get("engine") in {"kernel", "batch", "scalar"}
        assert "queue_wait_ms" in shards[0].attrs
        assert shards[0].attrs.get("n_lanes") == len(_spec().levels_db)

    def test_cache_hit_span(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(_spec(), cache=cache)
        session = TelemetrySession("sweep-hit")
        run_sweep(_spec(), cache=cache, telemetry=session)
        sweep_spans = [s for s in session.roots if s.name == "sweep"]
        assert sweep_spans and sweep_spans[0].attrs.get("cache") == "hit"


class TestSpecFactory:
    def test_defaults_mirror_report(self):
        spec = sweep_spec_for_design("modulator2")
        assert spec.levels_db == DEFAULT_LEVELS_DB
        assert spec.n_samples == 1 << 15  # half the 64K main measurement
        assert spec.design == "modulator2"

    def test_alias_resolves(self):
        assert sweep_spec_for_design("mod2").design == "modulator2"

    def test_floor_at_8k(self):
        assert sweep_spec_for_design("mod2", n_samples=1 << 10).n_samples == 1 << 13

    def test_cache_key_is_complete(self):
        key = _spec().cache_key()
        for field in (
            "design",
            "levels_db",
            "n_samples",
            "noise_scale",
            "mismatch",
            "window",
        ):
            assert field in key


class TestWorker:
    def test_shard_offsets_are_invisible(self):
        # A tail shard starting at lane_offset=1 must reproduce the
        # corresponding lanes of the whole-sweep shard exactly.
        from repro.runtime.executor import ShardContext
        from repro.runtime.sweeps import _run_lane_chunk

        spec = _spec()
        context = ShardContext(0, 1, 0, len(LEVELS), seed_entropy=(0, 0, 0))
        whole = _run_lane_chunk(spec, list(LEVELS), context, engine="batch")
        assert whole.engine == "batch"
        tail_context = ShardContext(
            1, 2, 1, len(LEVELS) - 1, seed_entropy=(0, 0, 1)
        )
        tail = _run_lane_chunk(
            spec, list(LEVELS[1:]), tail_context, engine="batch"
        )
        assert tail.metrics == whole.metrics[1:]

    def test_scalar_fallback_with_lane_offset(self, monkeypatch):
        # Disable the batch lowering to force the per-lane fallback and
        # check it lands on the same numbers (same noise slicing).
        import repro.runtime.sweeps as sweeps_module
        from repro.runtime.batch import BatchUnsupported
        from repro.runtime.executor import ShardContext
        from repro.runtime.sweeps import _run_lane_chunk

        spec = _spec()
        context = ShardContext(0, 1, 0, len(LEVELS), seed_entropy=(0, 0, 0))
        batch = _run_lane_chunk(spec, list(LEVELS), context, engine="batch")

        def refuse(*args, **kwargs):
            raise BatchUnsupported("forced scalar path")

        monkeypatch.setattr(sweeps_module, "batch_runner_for", refuse)
        scalar = _run_lane_chunk(spec, list(LEVELS), context, engine="batch")
        assert scalar.engine == "scalar"
        assert scalar.metrics == batch.metrics
        tail_context = ShardContext(
            1, 2, 1, len(LEVELS) - 1, seed_entropy=(0, 0, 1)
        )
        tail = _run_lane_chunk(
            spec, list(LEVELS[1:]), tail_context, engine="batch"
        )
        assert tail.engine == "scalar"
        assert tail.metrics == batch.metrics[1:]
