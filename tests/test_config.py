"""Tests for the top-level calibrated configurations."""

import pytest

from repro.config import (
    CELL_THERMAL_NOISE_RMS,
    DELAY_LINE_CLOCK,
    MODULATOR_CLOCK,
    MODULATOR_FULL_SCALE,
    OVERSAMPLING_RATIO,
    SIGNAL_BANDWIDTH,
    SUPPLY_VOLTAGE,
    THERMAL_NOISE_RMS,
    delay_line_cell_config,
    ideal_cell_config,
    paper_cell_config,
)


class TestOperatingConstants:
    def test_table_values(self):
        assert DELAY_LINE_CLOCK == pytest.approx(5e6)
        assert MODULATOR_CLOCK == pytest.approx(2.45e6)
        assert MODULATOR_FULL_SCALE == pytest.approx(6e-6)
        assert OVERSAMPLING_RATIO == 128
        assert SIGNAL_BANDWIDTH == pytest.approx(10e3)
        assert SUPPLY_VOLTAGE == pytest.approx(3.3)

    def test_noise_calibration(self):
        # Two cascaded cells (the delay line) give the paper's 33 nA.
        assert THERMAL_NOISE_RMS == pytest.approx(33e-9)
        assert CELL_THERMAL_NOISE_RMS * 2**0.5 == pytest.approx(33e-9)


class TestPaperCellConfig:
    def test_defaults_are_reproducible(self):
        assert paper_cell_config().seed is not None

    def test_cds_on_by_default(self):
        # Second-generation SI cells perform CDS intrinsically.
        assert paper_cell_config().cds_enabled

    def test_no_flicker_by_default(self):
        assert paper_cell_config().flicker_corner_hz == 0.0

    def test_flicker_can_be_enabled(self):
        config = paper_cell_config(flicker_corner_hz=50e3, cds_enabled=False)
        assert config.flicker_corner_hz == pytest.approx(50e3)
        assert not config.cds_enabled

    def test_sample_rate_passed_through(self):
        assert paper_cell_config(sample_rate=2.45e6).sample_rate == pytest.approx(
            2.45e6
        )


class TestDelayLineConfig:
    def test_smaller_gga_bias_than_modulator_cells(self):
        # The delay-line test structure slews at large inputs because
        # its GGAs run at a smaller bias.
        assert (
            delay_line_cell_config().gga.bias_current
            < paper_cell_config().gga.bias_current
        )

    def test_shares_noise_calibration(self):
        assert delay_line_cell_config().thermal_noise_rms == pytest.approx(
            paper_cell_config().thermal_noise_rms
        )


class TestIdealConfig:
    def test_everything_disabled(self):
        config = ideal_cell_config()
        assert config.thermal_noise_rms == 0.0
        assert config.flicker_corner_hz == 0.0
        assert config.transmission.base_ratio == 0.0
        assert config.injection.full_injection_current == 0.0
        assert config.half_gain_mismatch == 0.0
