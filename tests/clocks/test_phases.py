"""Tests for the two-phase non-overlapping clock."""

import pytest

from repro.clocks.phases import Phase, TwoPhaseClock
from repro.errors import ClockingError, ConfigurationError


class TestPhase:
    def test_other_phase(self):
        assert Phase.PHI1.other is Phase.PHI2
        assert Phase.PHI2.other is Phase.PHI1

    def test_double_other_is_identity(self):
        assert Phase.PHI1.other.other is Phase.PHI1


class TestClockTiming:
    def test_period(self):
        clock = TwoPhaseClock(frequency=5e6)
        assert clock.period == pytest.approx(200e-9)

    def test_phase_duration_at_half_duty(self):
        clock = TwoPhaseClock(frequency=5e6, duty=0.5)
        assert clock.phase_duration == pytest.approx(100e-9)
        assert clock.nonoverlap_gap == pytest.approx(0.0)

    def test_nonoverlap_gap(self):
        clock = TwoPhaseClock(frequency=5e6, duty=0.45)
        assert clock.nonoverlap_gap == pytest.approx(0.05 * 200e-9)

    def test_settling_periods(self):
        clock = TwoPhaseClock(frequency=5e6, duty=0.5)
        # 100 ns phase with a 5 ns time constant: 20 tau available.
        assert clock.settling_periods(5e-9) == pytest.approx(20.0)

    def test_settling_rejects_bad_tau(self):
        with pytest.raises(ConfigurationError):
            TwoPhaseClock(5e6).settling_periods(0.0)


class TestEvents:
    def test_event_count(self):
        events = list(TwoPhaseClock(1e6).events(4))
        assert len(events) == 8

    def test_phase_interleaving(self):
        events = list(TwoPhaseClock(1e6).events(3))
        phases = [e.phase for e in events]
        assert phases == [
            Phase.PHI1,
            Phase.PHI2,
            Phase.PHI1,
            Phase.PHI2,
            Phase.PHI1,
            Phase.PHI2,
        ]

    def test_event_times_monotone(self):
        events = list(TwoPhaseClock(1e6).events(5))
        times = [e.time for e in events]
        assert times == sorted(times)
        assert times[1] - times[0] == pytest.approx(0.5e-6)

    def test_event_indices(self):
        events = list(TwoPhaseClock(1e6).events(2))
        assert [e.index for e in events] == [0, 0, 1, 1]

    def test_zero_samples(self):
        assert list(TwoPhaseClock(1e6).events(0)) == []

    def test_rejects_negative_samples(self):
        with pytest.raises(ConfigurationError):
            list(TwoPhaseClock(1e6).events(-1))


class TestValidation:
    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ConfigurationError):
            TwoPhaseClock(0.0)

    @pytest.mark.parametrize("duty", [0.0, 0.6, 1.0])
    def test_rejects_bad_duty(self, duty):
        with pytest.raises(ConfigurationError):
            TwoPhaseClock(1e6, duty=duty)

    def test_require_phase_passes(self):
        TwoPhaseClock(1e6).require_phase(Phase.PHI1, Phase.PHI1)

    def test_require_phase_raises(self):
        with pytest.raises(ClockingError):
            TwoPhaseClock(1e6).require_phase(Phase.PHI1, Phase.PHI2)
