"""Tests for the sampled-data scheduler."""

import numpy as np
import pytest

from repro.clocks.scheduler import SampledDataScheduler
from repro.errors import ConfigurationError


class TestPipeline:
    def test_single_stage_identity(self):
        scheduler = SampledDataScheduler()
        scheduler.add_stage("copy", lambda n, x: x)
        traces = scheduler.run(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(traces["copy"], [1.0, 2.0, 3.0])

    def test_stages_run_in_order(self):
        scheduler = SampledDataScheduler()
        scheduler.add_stage("double", lambda n, x: 2.0 * x)
        scheduler.add_stage("add_one", lambda n, x: x + 1.0)
        traces = scheduler.run(np.array([1.0, 2.0]))
        np.testing.assert_allclose(traces["double"], [2.0, 4.0])
        np.testing.assert_allclose(traces["add_one"], [3.0, 5.0])

    def test_stateful_stage(self):
        # A one-sample delay stage, the building block of the SI blocks.
        state = {"held": 0.0}

        def delay(n, x):
            out = state["held"]
            state["held"] = x
            return out

        scheduler = SampledDataScheduler()
        scheduler.add_stage("delay", delay)
        traces = scheduler.run(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(traces["delay"], [0.0, 1.0, 2.0])

    def test_input_trace_included(self):
        scheduler = SampledDataScheduler()
        scheduler.add_stage("copy", lambda n, x: x)
        traces = scheduler.run(np.array([5.0]))
        np.testing.assert_allclose(traces["input"], [5.0])

    def test_stage_receives_sample_index(self):
        indices = []

        def probe(n, x):
            indices.append(n)
            return x

        scheduler = SampledDataScheduler()
        scheduler.add_stage("probe", probe)
        scheduler.run(np.zeros(4))
        assert indices == [0, 1, 2, 3]

    def test_stage_names_property(self):
        scheduler = SampledDataScheduler()
        scheduler.add_stage("a", lambda n, x: x)
        scheduler.add_stage("b", lambda n, x: x)
        assert scheduler.stage_names == ("a", "b")


class TestValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            SampledDataScheduler().add_stage("", lambda n, x: x)

    def test_rejects_duplicate_name(self):
        scheduler = SampledDataScheduler()
        scheduler.add_stage("a", lambda n, x: x)
        with pytest.raises(ConfigurationError):
            scheduler.add_stage("a", lambda n, x: x)

    def test_rejects_empty_pipeline(self):
        with pytest.raises(ConfigurationError):
            SampledDataScheduler().run(np.zeros(4))

    def test_rejects_2d_stimulus(self):
        scheduler = SampledDataScheduler()
        scheduler.add_stage("a", lambda n, x: x)
        with pytest.raises(ConfigurationError):
            scheduler.run(np.zeros((2, 2)))
