"""Golden-value regression tests.

The reproduction's headline numbers were calibrated against the paper
once; these tests pin them (at a reduced, fast FFT length with the
standard seeds) so an accidental model change that silently shifts the
calibration fails loudly instead of drifting.

The recorded values come from the configuration as calibrated; the
tolerances are set well inside the paper's shape bands but tight
enough to catch a >1 dB model drift.
"""

import pytest

from repro.config import (
    DELAY_LINE_BANDWIDTH,
    DELAY_LINE_CLOCK,
    MODULATOR_CLOCK,
    SIGNAL_BANDWIDTH,
    delay_line_cell_config,
    paper_cell_config,
)
from repro.deltasigma import ChopperStabilizedSIModulator, SIModulator2
from repro.si import DelayLine
from repro.systems import TestBench

#: FFT length of the regression benches (fast but stable).
N = 1 << 14


@pytest.fixture(scope="module")
def modulator_bench():
    return TestBench(
        sample_rate=MODULATOR_CLOCK, n_samples=N, bandwidth=SIGNAL_BANDWIDTH
    )


class TestModulatorGoldenValues:
    def test_si_modulator(self, modulator_bench):
        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        result = modulator_bench.measure(
            SIModulator2(cell_config=config), amplitude=3e-6, frequency=2e3
        )
        assert result.sndr_db == pytest.approx(53.26, abs=1.0)
        assert result.snr_db == pytest.approx(55.56, abs=1.0)
        assert result.thd_db == pytest.approx(-57.12, abs=2.0)

    def test_chopper_modulator(self, modulator_bench):
        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        result = modulator_bench.measure(
            ChopperStabilizedSIModulator(cell_config=config),
            amplitude=3e-6,
            frequency=2e3,
        )
        assert result.sndr_db == pytest.approx(53.54, abs=1.0)
        assert result.snr_db == pytest.approx(55.30, abs=1.0)
        assert result.thd_db == pytest.approx(-58.31, abs=2.0)


class TestDelayLineGoldenValues:
    def test_delay_line_at_table1_point(self):
        bench = TestBench(
            sample_rate=DELAY_LINE_CLOCK,
            n_samples=N,
            bandwidth=DELAY_LINE_BANDWIDTH,
        )
        line = DelayLine(delay_line_cell_config(), n_cells=2)

        def device(x):
            line.reset()
            return line.run(x)

        result = bench.measure(device, amplitude=8e-6, frequency=5e3)
        assert result.snr_db == pytest.approx(44.76, abs=1.0)
        assert result.thd_db == pytest.approx(-49.83, abs=1.5)
