"""Integration tests: the paper's headline numbers, end to end.

These are reduced-resolution versions of the benchmark experiments so
that every paper anchor is also guarded by the plain test suite (the
full 64K-point versions live in ``benchmarks/``).
"""

import pytest

from repro.config import (
    DELAY_LINE_BANDWIDTH,
    DELAY_LINE_CLOCK,
    MODULATOR_CLOCK,
    SIGNAL_BANDWIDTH,
    delay_line_cell_config,
    paper_cell_config,
)
from repro.deltasigma import ChopperStabilizedSIModulator, SIModulator2
from repro.si import DelayLine
from repro.systems import TestBench


@pytest.fixture(scope="module")
def delay_line_result():
    bench = TestBench(
        sample_rate=DELAY_LINE_CLOCK,
        n_samples=1 << 14,
        bandwidth=DELAY_LINE_BANDWIDTH,
    )
    line = DelayLine(delay_line_cell_config(), n_cells=2)

    def device(x):
        line.reset()
        return line.run(x)

    return bench.measure(device, amplitude=8e-6, frequency=5e3)


@pytest.fixture(scope="module")
def modulator_results():
    config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
    bench = TestBench(
        sample_rate=MODULATOR_CLOCK,
        n_samples=1 << 14,
        bandwidth=SIGNAL_BANDWIDTH,
    )
    return {
        "si": bench.measure(
            SIModulator2(cell_config=config), amplitude=3e-6, frequency=2e3
        ),
        "chopper": bench.measure(
            ChopperStabilizedSIModulator(cell_config=config),
            amplitude=3e-6,
            frequency=2e3,
        ),
    }


class TestTable1Anchors:
    def test_delay_line_thd_near_minus_50(self, delay_line_result):
        assert -58.0 < delay_line_result.thd_db < -43.0

    def test_delay_line_signal_passes(self, delay_line_result):
        assert delay_line_result.metrics.signal_amplitude == pytest.approx(
            8e-6, rel=0.05
        )


class TestModulatorAnchors:
    def test_si_thd_near_paper(self, modulator_results):
        assert -70.0 < modulator_results["si"].thd_db < -52.0

    def test_chopper_thd_near_paper(self, modulator_results):
        assert -70.0 < modulator_results["chopper"].thd_db < -52.0

    def test_snr_in_paper_band(self, modulator_results):
        for result in modulator_results.values():
            assert 48.0 < result.snr_db < 62.0

    def test_chopper_ties_non_chopper(self, modulator_results):
        gap = abs(
            modulator_results["si"].sndr_db - modulator_results["chopper"].sndr_db
        )
        assert gap < 4.0


class TestThermalLimitAnchor:
    def test_thermal_not_quantization_limited(self, modulator_results):
        # The ideal loop at the same point would exceed 80 dB SNDR; the
        # SI loops sit near 54 dB: thermal noise dominates.
        from repro.deltasigma import IdealSecondOrderModulator

        bench = TestBench(
            sample_rate=MODULATOR_CLOCK,
            n_samples=1 << 14,
            bandwidth=SIGNAL_BANDWIDTH,
        )
        ideal = bench.measure(
            IdealSecondOrderModulator(), amplitude=3e-6, frequency=2e3
        )
        assert ideal.sndr_db > modulator_results["si"].sndr_db + 15.0
