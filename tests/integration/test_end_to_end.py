"""Integration tests across subsystem boundaries."""

import numpy as np
import pytest

from repro.config import MODULATOR_CLOCK, ideal_cell_config, paper_cell_config
from repro.deltasigma import SincDecimator
from repro.systems import AdcKind, OversamplingAdc, TestChip


class TestFullAdcChain:
    def test_ramp_conversion_monotone(self):
        # A slow ramp through the ADC must produce a monotone decimated
        # output -- the basic converter sanity property.
        adc = OversamplingAdc(
            cell_config=ideal_cell_config(sample_rate=MODULATOR_CLOCK),
            oversampling_ratio=64,
        )
        n = 1 << 15
        ramp = np.linspace(-4e-6, 4e-6, n)
        digital = adc.convert(ramp)
        steady = digital[4:-4]
        diffs = np.diff(steady)
        # Allow tiny local ripples from residual quantisation noise.
        assert float(np.mean(diffs > -0.02)) > 0.99
        assert steady[-1] > steady[0]

    def test_noise_floor_of_complete_converter(self):
        # A zero input through the calibrated converter: the output
        # noise should correspond to roughly 10 effective bits.
        adc = OversamplingAdc(
            cell_config=paper_cell_config(sample_rate=MODULATOR_CLOCK),
            oversampling_ratio=128,
        )
        digital = adc.convert(np.zeros(1 << 16))
        noise_rms = float(np.std(digital[8:]))
        bits = -np.log2(max(noise_rms, 1e-12))
        assert 8.0 < bits < 13.0

    def test_conventional_and_chopper_agree_on_dc(self):
        x = np.full(1 << 14, 1.5e-6)
        results = []
        for kind in (AdcKind.CONVENTIONAL, AdcKind.CHOPPER_STABILIZED):
            adc = OversamplingAdc(
                kind,
                cell_config=paper_cell_config(sample_rate=MODULATOR_CLOCK),
                oversampling_ratio=64,
            )
            results.append(float(np.mean(adc.convert(x)[4:])))
        assert results[0] == pytest.approx(results[1], abs=0.02)
        assert results[0] == pytest.approx(0.25, abs=0.02)


class TestChipIntegration:
    def test_all_chip_blocks_run_together(self):
        chip = TestChip(paper_cell_config())
        delay_out = chip.delay_line.run(
            4e-6 * np.sin(2.0 * np.pi * np.arange(1024) * 13 / 1024)
        )
        mod_out = chip.modulator(np.zeros(1024))
        chop_out = chip.chopper_modulator(np.zeros(1024))
        assert delay_out.shape == (1024,)
        assert set(np.unique(mod_out)) <= {-6e-6, 6e-6}
        assert set(np.unique(chop_out)) <= {-6e-6, 6e-6}

    def test_chip_power_budget_totals(self):
        # Delay line + two modulators: the die's power budget in the
        # few-milliwatt regime of Tables 1-2.
        chip = TestChip(paper_cell_config())
        total = chip.delay_line_power() + 2.0 * chip.modulator_power()
        assert 2e-3 < total < 12e-3


class TestDecimatorModulatorInterface:
    def test_decimator_removes_shaped_noise(self):
        from repro.deltasigma import IdealSecondOrderModulator

        modulator = IdealSecondOrderModulator(full_scale=1.0)
        bitstream = modulator(np.full(1 << 14, 0.3))
        # Before decimation: large shaped noise; after: clean DC.
        assert float(np.std(bitstream)) > 0.5
        decimated = SincDecimator(ratio=64, order=3).process(bitstream)
        assert float(np.std(decimated[4:])) < 0.01
