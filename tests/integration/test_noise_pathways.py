"""Integration tests of the noise pathways the paper reasons about.

Three distinct low-frequency noise entry points behave differently:

* **in-loop 1/f** (the cells' own flicker): translated out of band by
  the chopper, suppressed by CDS;
* **input-interface noise** (before the input chopper): NOT helped by
  chopping -- "the noise at low frequencies was mainly due to the
  input interface circuit" is visible in Fig. 6(b) precisely because
  the chopper cannot remove it;
* **thermal noise**: white, indifferent to both techniques.
"""

import numpy as np
import pytest

from repro.analysis.spectrum import compute_spectrum
from repro.config import MODULATOR_CLOCK, paper_cell_config
from repro.deltasigma import ChopperStabilizedSIModulator, SIModulator2
from repro.systems.stimulus import interferer_tone

N = 1 << 14


def band_power(samples, f_lo, f_hi):
    spectrum = compute_spectrum(samples, MODULATOR_CLOCK)
    return spectrum.band_power(f_lo, f_hi)


class TestInLoopFlicker:
    def test_chopper_moves_cell_flicker_out_of_band(self):
        config = paper_cell_config(
            sample_rate=MODULATOR_CLOCK,
            flicker_corner_hz=200e3,
            cds_enabled=False,
        )
        plain = SIModulator2(cell_config=config)(np.zeros(N))
        chopped = ChopperStabilizedSIModulator(cell_config=config)(np.zeros(N))
        low_plain = band_power(plain, 300.0, 10e3)
        low_chopped = band_power(chopped, 300.0, 10e3)
        assert low_chopped < 0.2 * low_plain

    def test_cds_suppresses_cell_flicker_without_chopper(self):
        without_cds = paper_cell_config(
            sample_rate=MODULATOR_CLOCK,
            flicker_corner_hz=200e3,
            cds_enabled=False,
        )
        with_cds = paper_cell_config(
            sample_rate=MODULATOR_CLOCK,
            flicker_corner_hz=200e3,
            cds_enabled=True,
        )
        noisy = SIModulator2(cell_config=without_cds)(np.zeros(N))
        clean = SIModulator2(cell_config=with_cds)(np.zeros(N))
        assert band_power(clean, 300.0, 10e3) < 0.3 * band_power(noisy, 300.0, 10e3)


class TestInputInterfaceNoise:
    def test_chopper_cannot_remove_input_referred_noise(self):
        # A low-frequency interferer ahead of the input chopper lands
        # in band for BOTH modulators: chopping only helps noise that
        # enters inside the chopped region.
        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        interferer = interferer_tone(
            N, MODULATOR_CLOCK, amplitude=0.2e-6, frequency=1.2e3
        )
        plain = SIModulator2(cell_config=config)(interferer)
        chopped = ChopperStabilizedSIModulator(cell_config=config)(interferer)
        band = (0.9e3, 1.5e3)
        power_plain = band_power(plain, *band)
        power_chopped = band_power(chopped, *band)
        # Same interferer power (within a factor) in both outputs.
        assert power_chopped == pytest.approx(power_plain, rel=0.5)
        # And it is genuinely present (well above the noise-only case).
        quiet = band_power(
            ChopperStabilizedSIModulator(cell_config=config)(np.zeros(N)), *band
        )
        assert power_chopped > 5.0 * quiet


class TestThermalIndifference:
    def test_thermal_floor_same_for_both_topologies(self):
        config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
        plain = SIModulator2(cell_config=config)(np.zeros(N))
        chopped = ChopperStabilizedSIModulator(cell_config=config)(np.zeros(N))
        band = (1e3, 10e3)
        assert band_power(chopped, *band) == pytest.approx(
            band_power(plain, *band), rel=0.6
        )
