"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AnalysisError,
    ClockingError,
    ConfigurationError,
    DeviceError,
    ReproError,
    SaturationError,
    StimulusError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            DeviceError,
            SaturationError,
            ClockingError,
            AnalysisError,
            StimulusError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_saturation_is_a_device_error(self):
        assert issubclass(SaturationError, DeviceError)

    def test_repro_error_is_an_exception(self):
        assert issubclass(ReproError, Exception)

    def test_catching_base_catches_derived(self):
        with pytest.raises(ReproError):
            raise SaturationError("headroom violated")
