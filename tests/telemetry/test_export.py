"""Tests for the JSONL trace exporter."""

import json

import numpy as np

from repro.telemetry import TelemetrySession, export_jsonl


def _traced_session():
    session = TelemetrySession("export-test")
    with session.span("measure", samples=64):
        with session.span("device", samples=64):
            session.record("phase", phase="PHI1")
    probe = session.probe(
        "cell",
        full_scale=6e-6,
        kind="memory_cell",
        quiescent_current=2e-6,
        supply_voltage=2.0,
    )
    probe.observe_array(np.array([8e-6, -8e-6]))
    session.evaluate_rules()
    return session


def _load(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestExport:
    def test_record_types_in_order(self, tmp_path):
        path = export_jsonl(_traced_session(), tmp_path / "trace.jsonl")
        types = [record["type"] for record in _load(path)]
        assert types[0] == "session"
        assert types.count("span") == 3
        assert types.count("probe") == 1
        assert "event" in types
        # Grouped: session, then spans, then probes, then events.
        assert types == sorted(
            types, key=["session", "span", "probe", "event"].index
        )

    def test_session_header_counts(self, tmp_path):
        path = export_jsonl(_traced_session(), tmp_path / "trace.jsonl")
        header = _load(path)[0]
        assert header["name"] == "export-test"
        assert header["n_spans"] == 3
        assert header["n_probes"] == 1
        assert header["ok"] is False

    def test_span_parent_links_rebuild_the_tree(self, tmp_path):
        path = export_jsonl(_traced_session(), tmp_path / "trace.jsonl")
        spans = {
            record["id"]: record
            for record in _load(path)
            if record["type"] == "span"
        }
        roots = [span for span in spans.values() if span["parent"] is None]
        assert [span["name"] for span in roots] == ["measure"]
        by_parent = {}
        for span in spans.values():
            by_parent.setdefault(span["parent"], []).append(span["name"])
        assert by_parent[roots[0]["id"]] == ["device"]

    def test_structural_span_serialises_null_duration(self, tmp_path):
        path = export_jsonl(_traced_session(), tmp_path / "trace.jsonl")
        phase = next(
            record
            for record in _load(path)
            if record["type"] == "span" and record["name"] == "phase"
        )
        assert phase["duration_s"] is None
        assert phase["attrs"]["phase"] == "PHI1"

    def test_probe_record_round_trips_statistics(self, tmp_path):
        session = _traced_session()
        path = export_jsonl(session, tmp_path / "trace.jsonl")
        record = next(r for r in _load(path) if r["type"] == "probe")
        probe = session.probes["cell"]
        assert record["name"] == "cell"
        assert record["count"] == probe.count
        assert record["rms"] == probe.rms
        assert record["meta"]["kind"] == "memory_cell"

    def test_event_record_carries_rule_and_severity(self, tmp_path):
        path = export_jsonl(_traced_session(), tmp_path / "trace.jsonl")
        events = [r for r in _load(path) if r["type"] == "event"]
        assert {event["rule"] for event in events} == {"DYN002"}
        assert all(event["severity"] == "ERROR" for event in events)

    def test_every_line_is_valid_json(self, tmp_path):
        path = export_jsonl(_traced_session(), tmp_path / "trace.jsonl")
        for line in path.read_text().splitlines():
            json.loads(line)
