"""Tests for telemetry spans: nesting, timing, rendering."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry import Span, TelemetrySession, render_span_tree


class TestSpanLifecycle:
    def test_start_finish_measures_time(self):
        span = Span("work")
        span.start()
        span.finish()
        assert span.duration_s is not None
        assert span.duration_s >= 0.0

    def test_double_start_rejected(self):
        span = Span("work")
        span.start()
        with pytest.raises(TelemetryError):
            span.start()

    def test_finish_without_start_rejected(self):
        with pytest.raises(TelemetryError):
            Span("work").finish()

    def test_double_finish_rejected(self):
        span = Span("work")
        span.start()
        span.finish()
        with pytest.raises(TelemetryError):
            span.finish()

    def test_samples_per_second(self):
        span = Span("work", samples=1000)
        span.start()
        span.finish()
        assert span.samples_per_second == pytest.approx(
            1000 / span.duration_s
        )

    def test_untimed_span_has_no_throughput(self):
        span = Span("structural", samples=100)
        assert span.duration_s is None
        assert span.samples_per_second is None


class TestSessionNesting:
    def test_spans_nest_by_context(self):
        session = TelemetrySession()
        with session.span("outer"):
            with session.span("inner"):
                with session.span("innermost"):
                    pass
            with session.span("sibling"):
                pass
        assert len(session.roots) == 1
        outer = session.roots[0]
        assert [c.name for c in outer.children] == ["inner", "sibling"]
        assert outer.children[0].children[0].name == "innermost"

    def test_sequential_roots(self):
        session = TelemetrySession()
        with session.span("first"):
            pass
        with session.span("second"):
            pass
        assert [r.name for r in session.roots] == ["first", "second"]

    def test_current_span_tracks_stack(self):
        session = TelemetrySession()
        assert session.current_span is None
        with session.span("outer") as outer:
            assert session.current_span is outer
            with session.span("inner") as inner:
                assert session.current_span is inner
            assert session.current_span is outer
        assert session.current_span is None

    def test_span_closed_on_exception(self):
        session = TelemetrySession()
        with pytest.raises(RuntimeError):
            with session.span("doomed"):
                raise RuntimeError("boom")
        assert session.current_span is None
        assert session.roots[0].duration_s is not None

    def test_record_requires_open_span(self):
        session = TelemetrySession()
        with pytest.raises(TelemetryError):
            session.record("orphan")

    def test_record_attaches_structural_child(self):
        session = TelemetrySession()
        with session.span("device", samples=64):
            child = session.record("phase", samples=32, phase="PHI1")
        assert child.duration_s is None
        assert child.samples == 32
        assert child.attrs["phase"] == "PHI1"
        assert session.roots[0].children == [child]

    def test_walk_depth_first(self):
        session = TelemetrySession()
        with session.span("a"):
            with session.span("b"):
                session.record("c")
            with session.span("d"):
                pass
        names = [(depth, s.name) for depth, s in session.roots[0].walk()]
        assert names == [(0, "a"), (1, "b"), (2, "c"), (1, "d")]


class TestRendering:
    def test_render_tree_indents_and_marks_untimed(self):
        session = TelemetrySession()
        with session.span("run", samples=100):
            session.record("stage", samples=50)
        text = render_span_tree(session.roots)
        assert "run" in text
        assert "  stage" in text
        lines = [line for line in text.splitlines() if "stage" in line]
        assert "-" in lines[0]

    def test_session_render_matches_module_function(self):
        session = TelemetrySession()
        with session.span("run"):
            pass
        assert session.render_span_tree() == render_span_tree(session.roots)


class TestRenderingEdgeCases:
    """Golden strings for the renderer's corner cases."""

    def test_empty_roots(self):
        assert render_span_tree([]) == (
            "span tree\n"
            "-------------------------------------------------------\n"
            "span  wall [ms]  samples  ksamples/s  attributes\n"
            "-------------------------------------------------------\n"
            "-     -          -        -           no spans recorded\n"
            "-------------------------------------------------------"
        )

    def test_running_span_renders_dashes(self):
        span = Span("running", samples=10)
        span.start()
        assert render_span_tree([span]) == (
            "span tree\n"
            "---------------------------------------------------\n"
            "span     wall [ms]  samples  ksamples/s  attributes\n"
            "---------------------------------------------------\n"
            "running  -          10       -\n"
            "---------------------------------------------------"
        )

    def test_zero_duration_span_with_samples(self):
        # A degenerate (clock-resolution) measurement must not divide
        # by zero; throughput renders as "-".
        span = Span("instant", samples=512, engine="batch")
        span.duration_s = 0.0
        assert render_span_tree([span]) == (
            "span tree\n"
            "-----------------------------------------------------\n"
            "span     wall [ms]  samples  ksamples/s  attributes\n"
            "-----------------------------------------------------\n"
            "instant  0.0        512      -           engine=batch\n"
            "-----------------------------------------------------"
        )

    def test_depth_beyond_twenty_keeps_indenting(self):
        root = Span("d0")
        tip = root
        for depth in range(1, 23):
            child = Span(f"d{depth}")
            tip.children.append(child)
            tip = child
        lines = render_span_tree([root]).splitlines()
        rows = lines[4:-1]  # between the header rule and the footer
        assert len(rows) == 23
        assert rows[0] == (
            "d0                                               -          -        -"
        )
        assert rows[-1] == (
            "                                            d22  -          -        -"
        )
