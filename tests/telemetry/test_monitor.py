"""Tests for the dynamic-rule monitor: DYN001-DYN004."""

import numpy as np

from repro.erc.rules import MAX_MODELED_MODULATION_INDEX, Severity
from repro.telemetry import TelemetrySession, default_monitor
from repro.telemetry.monitor import (
    ClipRule,
    CmffResidualRule,
    DynamicRuleMonitor,
    ObservedClassABRule,
    ObservedHeadroomRule,
)


def _cell_probe(session, peak, quiescent=2e-6, supply=3.3, **extra):
    """Register a memory-cell probe and feed it a +/-peak square wave."""
    probe = session.probe(
        "cell",
        kind="memory_cell",
        quiescent_current=quiescent,
        supply_voltage=supply,
        **extra,
    )
    probe.observe_array(np.array([peak, -peak, 0.0]))
    return probe


class TestClipRule:
    def test_quiet_probe_raises_nothing(self):
        session = TelemetrySession(monitor=DynamicRuleMonitor([ClipRule()]))
        probe = session.probe("sig", clip_limit=1.0)
        probe.observe_array(np.zeros(100))
        assert session.evaluate_rules() == ()

    def test_rare_clip_is_warning(self):
        session = TelemetrySession(monitor=DynamicRuleMonitor([ClipRule()]))
        probe = session.probe("sig", clip_limit=1.0)
        values = np.zeros(1000)
        values[500] = 2.0
        probe.observe_array(values)
        (event,) = session.evaluate_rules()
        assert event.rule == "DYN001"
        assert event.severity is Severity.WARNING
        assert event.sample_index == 500

    def test_frequent_clip_escalates_to_error(self):
        session = TelemetrySession(monitor=DynamicRuleMonitor([ClipRule()]))
        probe = session.probe("sig", clip_limit=1.0)
        values = np.zeros(100)
        values[10:20] = 5.0
        probe.observe_array(values)
        (event,) = session.evaluate_rules()
        assert event.severity is Severity.ERROR
        assert not session.ok


class TestObservedHeadroomRule:
    def test_nominal_swing_fits_the_paper_supply(self):
        session = TelemetrySession(
            monitor=DynamicRuleMonitor([ObservedHeadroomRule()])
        )
        _cell_probe(session, peak=8e-6, supply=3.3)
        assert session.evaluate_rules() == ()

    def test_starved_supply_raises_error(self):
        # m_i = 4 needs about 2.44 V (Eq. 2); 2.4 V is short of it.
        session = TelemetrySession(
            monitor=DynamicRuleMonitor([ObservedHeadroomRule()])
        )
        _cell_probe(session, peak=8e-6, supply=2.4)
        (event,) = session.evaluate_rules()
        assert event.rule == "DYN002"
        assert event.severity is Severity.ERROR
        assert event.source == "cell"
        assert "V_dd" in event.message

    def test_probe_without_metadata_is_skipped(self):
        session = TelemetrySession(
            monitor=DynamicRuleMonitor([ObservedHeadroomRule()])
        )
        probe = session.probe("anonymous")
        probe.observe(1.0)
        assert session.evaluate_rules() == ()


class TestCmffResidualRule:
    def test_small_residual_passes(self):
        session = TelemetrySession(
            monitor=DynamicRuleMonitor([CmffResidualRule()])
        )
        probe = session.probe("cmff", full_scale=6e-6, kind="cmff_residual")
        probe.observe_array(np.full(100, 1e-8))
        assert session.evaluate_rules() == ()

    def test_large_residual_warns(self):
        session = TelemetrySession(
            monitor=DynamicRuleMonitor([CmffResidualRule()])
        )
        probe = session.probe("cmff", full_scale=6e-6, kind="cmff_residual")
        probe.observe_array(np.full(100, 1e-6))
        (event,) = session.evaluate_rules()
        assert event.rule == "DYN003"
        assert event.severity is Severity.WARNING


class TestObservedClassABRule:
    def test_within_modeled_range_passes(self):
        session = TelemetrySession(
            monitor=DynamicRuleMonitor([ObservedClassABRule()])
        )
        _cell_probe(session, peak=MAX_MODELED_MODULATION_INDEX * 2e-6)
        assert session.evaluate_rules() == ()

    def test_beyond_modeled_range_errors(self):
        session = TelemetrySession(
            monitor=DynamicRuleMonitor([ObservedClassABRule()])
        )
        _cell_probe(session, peak=30e-6)
        (event,) = session.evaluate_rules()
        assert event.rule == "DYN004"
        assert event.severity is Severity.ERROR
        assert "modulation index 15.0" in event.message

    def test_class_a_cells_exempt(self):
        session = TelemetrySession(
            monitor=DynamicRuleMonitor([ObservedClassABRule()])
        )
        _cell_probe(session, peak=30e-6, cell_class="class_a")
        assert session.evaluate_rules() == ()

    def test_per_probe_limit_override(self):
        session = TelemetrySession(
            monitor=DynamicRuleMonitor([ObservedClassABRule()])
        )
        _cell_probe(session, peak=6e-6, max_modulation_index=2.0)
        (event,) = session.evaluate_rules()
        assert "range of 2" in event.message


class TestSessionEvaluation:
    def test_default_monitor_holds_four_rules(self):
        assert len(default_monitor()) == 4

    def test_evaluation_is_idempotent(self):
        session = TelemetrySession()
        _cell_probe(session, peak=30e-6)
        first = session.evaluate_rules()
        second = session.evaluate_rules()
        assert first == second
        assert len(session.events) == len(second)

    def test_error_and_warning_partitions(self):
        session = TelemetrySession()
        _cell_probe(session, peak=30e-6, supply=2.4)
        session.evaluate_rules()
        assert session.error_events
        assert not session.ok
        assert all(e.severity is Severity.ERROR for e in session.error_events)


class TestStarvedDesignEndToEnd:
    def test_delay_line_at_starved_supply_fails_dynamically(self):
        """A design that passes static ERC (declared 3.3 V graph) fails
        the dynamic headroom rule when its probes declare the actual,
        starved supply."""
        from repro.config import delay_line_cell_config
        from repro.si.delay_line import DelayLine
        from repro.systems.testbench import TestBench

        session = TelemetrySession("starved")
        line = DelayLine(delay_line_cell_config(), n_cells=2)
        line.attach_telemetry(session, supply_voltage=2.4)
        bench = TestBench(
            sample_rate=5e6,
            n_samples=1 << 12,
            settle_samples=0,
            telemetry=session,
        )
        bench.measure(line, amplitude=8e-6, frequency=5e3)
        assert not session.ok
        codes = {event.rule for event in session.error_events}
        assert "DYN002" in codes

    def test_same_design_at_full_supply_passes(self):
        from repro.config import delay_line_cell_config
        from repro.si.delay_line import DelayLine
        from repro.systems.testbench import TestBench

        session = TelemetrySession("nominal")
        line = DelayLine(delay_line_cell_config(), n_cells=2)
        line.attach_telemetry(session)
        bench = TestBench(
            sample_rate=5e6,
            n_samples=1 << 12,
            settle_samples=0,
            telemetry=session,
        )
        bench.measure(line, amplitude=8e-6, frequency=5e3)
        assert session.ok
