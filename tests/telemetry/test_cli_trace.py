"""Tests for the ``repro trace`` CLI sub-command."""

import json

import pytest

from repro.cli import main

# 8192 samples keeps the runs fast while leaving the stimulus tone
# clear of the analysis window's main lobe for every trace design.
FAST = ["--samples", "8192"]


class TestTraceCommand:
    def test_clean_trace_exits_zero(self, capsys):
        assert main(["trace", "delay-line", *FAST]) == 0
        output = capsys.readouterr().out
        assert "measure" in output
        assert "stimulus" in output
        assert "analysis" in output
        assert "delay_line.cell[0]" in output
        assert "PASS" in output

    def test_probe_table_shows_swing_and_clip(self, capsys):
        assert main(["trace", "modulator1", *FAST]) == 0
        output = capsys.readouterr().out
        assert "modulator1.int.cell" in output
        assert "swing" in output
        assert "clip" in output

    def test_overdrive_raises_dynamic_errors(self, capsys):
        assert main(["trace", "modulator1", *FAST, "--overdrive", "8"]) == 1
        output = capsys.readouterr().out
        assert "DYN004" in output
        assert "FAIL" in output

    def test_starved_supply_trips_headroom_rule(self, capsys):
        assert main(["trace", "delay-line", *FAST, "--supply", "2.4"]) == 1
        output = capsys.readouterr().out
        assert "DYN002" in output

    def test_json_export(self, tmp_path, capsys):
        target = tmp_path / "trace.jsonl"
        assert main(["trace", "delay-line", *FAST, "--json", str(target)]) == 0
        assert "trace written to" in capsys.readouterr().out
        records = [
            json.loads(line) for line in target.read_text().splitlines()
        ]
        assert records[0]["type"] == "session"
        assert any(record["type"] == "probe" for record in records)

    def test_alias_accepted(self, capsys):
        assert main(["trace", "mod1", *FAST]) == 0
        assert "modulator1" in capsys.readouterr().out

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "frobnicator"])

    def test_help_lists_knobs(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "--help"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert "--overdrive" in output
        assert "--supply" in output
        assert "--json" in output
