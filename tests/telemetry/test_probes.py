"""Tests for streaming signal probes against closed-form signals."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TelemetryError
from repro.telemetry import SignalProbe


class TestStreamingStatistics:
    def test_sine_statistics_match_closed_form(self):
        # A full-period sine: min=-A, max=+A, mean=0, rms=A/sqrt(2).
        amplitude = 3e-6
        n = 4096
        values = amplitude * np.sin(2.0 * np.pi * np.arange(n) / n)
        probe = SignalProbe("sine", full_scale=6e-6)
        probe.observe_array(values)
        assert probe.count == n
        assert probe.minimum == pytest.approx(-amplitude, rel=1e-5)
        assert probe.maximum == pytest.approx(amplitude, rel=1e-5)
        assert probe.mean == pytest.approx(0.0, abs=1e-12)
        assert probe.rms == pytest.approx(amplitude / math.sqrt(2.0), rel=1e-6)
        assert probe.peak == pytest.approx(amplitude, rel=1e-5)
        assert probe.swing_fraction == pytest.approx(0.5, rel=1e-5)

    def test_scalar_and_array_paths_agree(self):
        values = np.linspace(-1.0, 2.0, 101)
        streaming = SignalProbe("scalar")
        for value in values:
            streaming.observe(float(value))
        batched = SignalProbe("batch")
        batched.observe_array(values)
        assert streaming.count == batched.count
        assert streaming.minimum == pytest.approx(batched.minimum)
        assert streaming.maximum == pytest.approx(batched.maximum)
        assert streaming.mean == pytest.approx(batched.mean)
        assert streaming.rms == pytest.approx(batched.rms)

    def test_accumulates_across_batches(self):
        probe = SignalProbe("acc")
        probe.observe_array(np.array([1.0, 2.0]))
        probe.observe_array(np.array([-4.0]))
        assert probe.count == 3
        assert probe.minimum == -4.0
        assert probe.maximum == 2.0
        assert probe.rms == pytest.approx(math.sqrt((1 + 4 + 16) / 3))

    def test_empty_probe_statistics(self):
        probe = SignalProbe("empty", full_scale=1e-6)
        assert probe.count == 0
        assert math.isnan(probe.minimum)
        assert math.isnan(probe.rms)
        assert probe.peak == 0.0
        assert probe.swing_fraction == 0.0

    def test_no_full_scale_means_no_swing(self):
        probe = SignalProbe("raw")
        probe.observe(1.0)
        assert probe.swing_fraction is None

    def test_no_waveform_storage(self):
        # The whole point: observing a long signal keeps O(1) state.
        probe = SignalProbe("stream")
        probe.observe_array(np.ones(100_000))
        assert not any(
            isinstance(getattr(probe, slot), np.ndarray)
            for slot in probe.__slots__
        )


class TestClipping:
    def test_clip_count_and_first_index(self):
        probe = SignalProbe("clip", clip_limit=1.0)
        probe.observe_array(np.array([0.5, 0.9, 1.5, 0.2, -1.2]))
        assert probe.clip_count == 2
        assert probe.first_clip_index == 2
        assert probe.clip_fraction == pytest.approx(2 / 5)

    def test_first_clip_index_spans_batches(self):
        probe = SignalProbe("clip", clip_limit=1.0)
        probe.observe_array(np.zeros(10))
        probe.observe_array(np.array([0.0, 2.0]))
        assert probe.first_clip_index == 11

    def test_scalar_clip_detection(self):
        probe = SignalProbe("clip", clip_limit=1.0)
        probe.observe(0.5)
        probe.observe(-3.0)
        assert probe.clip_count == 1
        assert probe.first_clip_index == 1

    def test_no_limit_never_clips(self):
        probe = SignalProbe("free")
        probe.observe_array(np.array([1e6]))
        assert probe.clip_count == 0
        assert probe.first_clip_index is None


class TestValidation:
    def test_rejects_non_positive_full_scale(self):
        with pytest.raises(TelemetryError):
            SignalProbe("bad", full_scale=0.0)

    def test_rejects_non_positive_clip_limit(self):
        with pytest.raises(TelemetryError):
            SignalProbe("bad", clip_limit=-1.0)

    def test_rejects_2d_observe_array(self):
        probe = SignalProbe("bad")
        with pytest.raises(TelemetryError):
            probe.observe_array(np.zeros((4, 4)))


class TestRecord:
    def test_as_record_is_flat_and_json_ready(self):
        probe = SignalProbe(
            "cell", full_scale=6e-6, clip_limit=8e-6, kind="memory_cell"
        )
        probe.observe_array(np.array([1e-6, -2e-6]))
        record = probe.as_record()
        assert record["name"] == "cell"
        assert record["count"] == 2
        assert record["meta"] == {"kind": "memory_cell"}
        assert record["swing_fraction"] == pytest.approx(2e-6 / 6e-6)


class TestMerge:
    def test_merge_equals_concatenated_observation(self):
        values = np.linspace(-2.0, 2.0, 501)
        whole = SignalProbe("whole", full_scale=4.0, clip_limit=1.5)
        whole.observe_array(values)
        left = SignalProbe("left", full_scale=4.0, clip_limit=1.5)
        right = SignalProbe("right", full_scale=4.0, clip_limit=1.5)
        left.observe_array(values[:200])
        right.observe_array(values[200:])
        left.merge(right)
        assert left.count == whole.count
        assert left.minimum == whole.minimum
        assert left.maximum == whole.maximum
        assert left.mean == pytest.approx(whole.mean)
        assert left.rms == pytest.approx(whole.rms)
        assert left.clip_count == whole.clip_count
        assert left.first_clip_index == whole.first_clip_index

    def test_merge_shifts_first_clip_index(self):
        left = SignalProbe("left", clip_limit=1.0)
        right = SignalProbe("right", clip_limit=1.0)
        left.observe_array(np.array([0.1, 0.2, 0.3]))
        right.observe_array(np.array([0.4, 9.0]))
        left.merge(right)
        assert left.first_clip_index == 4

    def test_merge_keeps_earlier_clip(self):
        left = SignalProbe("left", clip_limit=1.0)
        right = SignalProbe("right", clip_limit=1.0)
        left.observe_array(np.array([5.0]))
        right.observe_array(np.array([7.0]))
        left.merge(right)
        assert left.first_clip_index == 0
        assert left.clip_count == 2

    def test_merge_empty_is_identity(self):
        probe = SignalProbe("p")
        probe.observe_array(np.array([1.0, 2.0]))
        before = probe.as_record()
        probe.merge(SignalProbe("empty"))
        assert probe.as_record() == before

    def test_merge_into_empty(self):
        empty = SignalProbe("empty", clip_limit=1.0)
        full = SignalProbe("full", clip_limit=1.0)
        full.observe_array(np.array([0.5, 3.0]))
        empty.merge(full)
        assert empty.count == 2
        assert empty.first_clip_index == 1


class TestChunkingProperty:
    """Probe statistics must not depend on how a stream is chunked.

    This is the contract the batch engine's probe lowering rests on:
    feeding per-chunk arrays through :meth:`observe_array` (in stream
    order, any chunk sizes, including empty chunks) is equivalent to
    element-wise :meth:`observe`.
    """

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(
                min_value=-1e-5,
                max_value=1e-5,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=64,
        ),
        cuts=st.lists(
            st.integers(min_value=0, max_value=64), max_size=6
        ),
        clip_limit=st.one_of(
            st.none(), st.floats(min_value=1e-7, max_value=1e-5)
        ),
    )
    def test_any_chunking_matches_elementwise(self, values, cuts, clip_limit):
        data = np.asarray(values, dtype=float)
        bounds = sorted({min(c, data.shape[0]) for c in cuts})
        edges = [0, *bounds, data.shape[0]]

        elementwise = SignalProbe("elementwise", clip_limit=clip_limit)
        for value in data:
            elementwise.observe(float(value))

        chunked = SignalProbe("chunked", clip_limit=clip_limit)
        for start, stop in zip(edges[:-1], edges[1:]):
            chunked.observe_array(data[start:stop])

        assert chunked.count == elementwise.count
        assert chunked.minimum == elementwise.minimum
        assert chunked.maximum == elementwise.maximum
        assert chunked.mean == pytest.approx(
            elementwise.mean, rel=1e-9, abs=1e-22
        )
        assert chunked.rms == pytest.approx(
            elementwise.rms, rel=1e-9, abs=1e-22
        )
        assert chunked.clip_count == elementwise.clip_count
        assert chunked.first_clip_index == elementwise.first_clip_index

    def test_empty_chunks_are_no_ops(self):
        probe = SignalProbe("empty-chunks")
        probe.observe_array(np.empty(0))
        assert probe.count == 0
        assert math.isnan(probe.minimum)
        probe.observe_array(np.array([2.0]))
        probe.observe_array(np.empty(0))
        assert probe.count == 1
        assert probe.minimum == 2.0

    def test_merge_from_and_into_empty_probe(self):
        target = SignalProbe("target")
        target.merge(SignalProbe("fresh"))
        assert target.count == 0
        assert math.isnan(target.rms)
        source = SignalProbe("source")
        source.observe_array(np.array([-1.0, 3.0]))
        target.merge(source)
        assert target.count == 2
        assert target.minimum == -1.0
        assert target.maximum == 3.0
