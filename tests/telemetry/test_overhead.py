"""Telemetry overhead smoke tests.

The design target is <10% overhead when tracing and *zero* when
disabled (the hot loops only test ``self._probe is not None``).  Timing
in CI is noisy, so the traced-run assertion uses a lenient 1.5x bound:
it catches accidental O(n) waveform storage or per-sample span work
without flaking on scheduler jitter.
"""

import time

import numpy as np

from repro.config import delay_line_cell_config
from repro.si.delay_line import DelayLine
from repro.telemetry import TelemetrySession

N_SAMPLES = 1 << 13


def _run(line, data):
    line.reset()
    return line.run(data)


def _best_of(func, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


class TestOverhead:
    def test_disabled_telemetry_leaves_hot_path_untouched(self):
        line = DelayLine(delay_line_cell_config(), n_cells=2)
        assert line._telemetry is None
        for cell in line.cells:
            assert cell._probe is None

    def test_traced_run_within_bound(self):
        data = 4e-6 * np.sin(
            2.0 * np.pi * 8.0 * np.arange(N_SAMPLES) / N_SAMPLES
        )
        config = delay_line_cell_config(seed=3)

        plain = DelayLine(config, n_cells=2)
        traced = DelayLine(config, n_cells=2)
        traced.attach_telemetry(TelemetrySession("overhead"))

        _run(plain, data)  # warm caches before timing
        t_plain = _best_of(lambda: _run(plain, data))
        t_traced = _best_of(lambda: _run(traced, data))
        assert t_traced <= max(1.5 * t_plain, t_plain + 0.05), (
            f"traced {t_traced * 1e3:.1f} ms vs plain {t_plain * 1e3:.1f} ms"
        )

    def test_probe_state_is_constant_size(self):
        # Tracing must not buffer the waveform: probe state is a handful
        # of scalars regardless of run length.
        session = TelemetrySession("size")
        line = DelayLine(delay_line_cell_config(), n_cells=2)
        line.attach_telemetry(session)
        _run(line, np.zeros(N_SAMPLES))
        for probe in session.probes.values():
            assert not any(
                isinstance(getattr(probe, slot), (list, np.ndarray))
                for slot in probe.__slots__
                if slot != "meta"
            )
