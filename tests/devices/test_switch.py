"""Tests for the MOS switch and its charge-injection model."""

import pytest

from repro.devices.mosfet import MosfetParameters
from repro.devices.process import CMOS_08UM
from repro.devices.switch import ChargeInjectionModel, MosSwitch
from repro.errors import ConfigurationError, DeviceError


@pytest.fixture
def n_switch():
    return MosSwitch(MosfetParameters("n", 2e-6, 0.8e-6), CMOS_08UM)


@pytest.fixture
def p_switch():
    return MosSwitch(MosfetParameters("p", 4e-6, 0.8e-6), CMOS_08UM)


class TestConduction:
    def test_on_resistance_positive(self, n_switch):
        assert n_switch.on_resistance(1.0) > 0.0

    def test_on_resistance_rises_toward_gate_limit(self, n_switch):
        # An n-switch conducts more weakly at higher node voltages.
        assert n_switch.on_resistance(1.5) > n_switch.on_resistance(0.5)

    def test_raises_when_off(self, n_switch):
        # Node voltage above gate_high - vth: no conduction.
        with pytest.raises(DeviceError):
            n_switch.on_resistance(CMOS_08UM.supply_voltage)

    def test_p_switch_conducts_at_high_node(self, p_switch):
        assert p_switch.on_resistance(2.5) > 0.0

    def test_settling_time_constant(self, n_switch):
        tau = n_switch.settling_time_constant(1.0, 25e-15)
        assert tau == pytest.approx(n_switch.on_resistance(1.0) * 25e-15)

    def test_settling_rejects_bad_capacitance(self, n_switch):
        with pytest.raises(DeviceError):
            n_switch.settling_time_constant(1.0, 0.0)


class TestChargeInjection:
    def test_n_switch_injects_negative_charge(self, n_switch):
        assert n_switch.injected_charge(1.0) < 0.0

    def test_p_switch_injects_positive_charge(self, p_switch):
        assert p_switch.injected_charge(2.0) > 0.0

    def test_complementary_polarity_is_the_cancellation_basis(
        self, n_switch, p_switch
    ):
        # The class-AB cell's trick: n and p injections have opposite
        # signs, so matched complementary switches cancel to first order.
        q_n = n_switch.injected_charge(1.2)
        q_p = p_switch.injected_charge(3.3 - 1.2)
        assert q_n * q_p < 0.0

    def test_channel_charge_zero_when_off(self, n_switch):
        assert n_switch.channel_charge(CMOS_08UM.supply_voltage) == 0.0

    def test_channel_charge_scales_with_area(self):
        small = MosSwitch(MosfetParameters("n", 2e-6, 0.8e-6), CMOS_08UM)
        big = MosSwitch(MosfetParameters("n", 4e-6, 0.8e-6), CMOS_08UM)
        assert big.channel_charge(1.0) == pytest.approx(
            2.0 * small.channel_charge(1.0)
        )

    def test_voltage_step_uses_storage_capacitance(self, n_switch):
        step_small = n_switch.voltage_step_on(1.0, 10e-15)
        step_big = n_switch.voltage_step_on(1.0, 40e-15)
        assert abs(step_small) == pytest.approx(4.0 * abs(step_big))

    def test_voltage_step_rejects_bad_capacitance(self, n_switch):
        with pytest.raises(DeviceError):
            n_switch.voltage_step_on(1.0, -1e-15)

    def test_feedthrough_can_be_disabled(self):
        with_ft = MosSwitch(
            MosfetParameters("n", 2e-6, 0.8e-6),
            CMOS_08UM,
            injection=ChargeInjectionModel(include_feedthrough=True),
        )
        without_ft = MosSwitch(
            MosfetParameters("n", 2e-6, 0.8e-6),
            CMOS_08UM,
            injection=ChargeInjectionModel(include_feedthrough=False),
        )
        assert abs(with_ft.injected_charge(1.0)) > abs(without_ft.injected_charge(1.0))

    def test_injection_model_validates_split(self):
        with pytest.raises(ConfigurationError):
            ChargeInjectionModel(channel_split=1.5)

    def test_kt_c_noise_charge(self, n_switch):
        q = n_switch.thermal_noise_charge_rms(25e-15, temperature=300.0)
        # sqrt(kTC) for 25 fF at 300 K is about 0.32 fC.
        assert q == pytest.approx(3.2e-16, rel=0.05)

    def test_gate_high_validation(self):
        with pytest.raises(ConfigurationError):
            MosSwitch(
                MosfetParameters("n", 2e-6, 0.8e-6), CMOS_08UM, gate_high=0.0
            )
