"""Tests for the cascoded current-source model."""

import pytest

from repro.devices.current_source import CascodeCurrentSource
from repro.errors import ConfigurationError


class TestHeadroom:
    def test_headroom_is_sum_of_vdsats(self):
        source = CascodeCurrentSource(
            current=20e-6, vdsat_mirror=0.2, vdsat_cascode=0.15
        )
        assert source.headroom == pytest.approx(0.35)

    def test_uncascoded_headroom(self):
        source = CascodeCurrentSource(current=20e-6, vdsat_mirror=0.2)
        assert source.headroom == pytest.approx(0.2)
        assert not source.is_cascoded

    def test_cascoded_flag(self):
        source = CascodeCurrentSource(
            current=20e-6, vdsat_mirror=0.2, vdsat_cascode=0.1
        )
        assert source.is_cascoded


class TestOutputCurrent:
    def test_nominal_above_headroom(self):
        source = CascodeCurrentSource(
            current=20e-6, vdsat_mirror=0.2, vdsat_cascode=0.15
        )
        assert source.output_current(1.0) == pytest.approx(20e-6)

    def test_collapses_below_headroom(self):
        # This is the failure mode Eq. (1) protects against: below the
        # stacked saturation voltages the source no longer delivers.
        source = CascodeCurrentSource(
            current=20e-6, vdsat_mirror=0.2, vdsat_cascode=0.15
        )
        assert source.output_current(0.1) < 20e-6

    def test_zero_at_zero_volts(self):
        source = CascodeCurrentSource(current=20e-6, vdsat_mirror=0.2)
        assert source.output_current(0.0) == 0.0

    def test_output_conductance_slope(self):
        source = CascodeCurrentSource(
            current=20e-6, vdsat_mirror=0.2, output_conductance=1e-7
        )
        i1 = source.output_current(0.5)
        i2 = source.output_current(1.5)
        assert i2 - i1 == pytest.approx(1e-7 * 1.0)

    def test_mismatch_scales_current(self):
        source = CascodeCurrentSource(
            current=20e-6, vdsat_mirror=0.2, mismatch=0.05
        )
        assert source.output_current(1.0) == pytest.approx(21e-6)


class TestValidation:
    def test_rejects_nonpositive_current(self):
        with pytest.raises(ConfigurationError):
            CascodeCurrentSource(current=0.0, vdsat_mirror=0.2)

    def test_rejects_nonpositive_vdsat(self):
        with pytest.raises(ConfigurationError):
            CascodeCurrentSource(current=1e-6, vdsat_mirror=0.0)

    def test_rejects_negative_cascode_vdsat(self):
        with pytest.raises(ConfigurationError):
            CascodeCurrentSource(current=1e-6, vdsat_mirror=0.2, vdsat_cascode=-0.1)

    def test_rejects_mismatch_below_minus_one(self):
        with pytest.raises(ConfigurationError):
            CascodeCurrentSource(current=1e-6, vdsat_mirror=0.2, mismatch=-1.5)
