"""Tests for the Pelgrom mismatch sampler."""

import numpy as np
import pytest

from repro.devices.mismatch import MismatchSample, PelgromMismatch
from repro.errors import ConfigurationError


@pytest.fixture
def sampler():
    return PelgromMismatch(rng=np.random.default_rng(42))


class TestSigmaLaws:
    def test_sigma_shrinks_with_area(self, sampler):
        small = sampler.sigma_vth(2e-6, 2e-6)
        big = sampler.sigma_vth(8e-6, 8e-6)
        assert big == pytest.approx(small / 4.0)

    def test_sigma_vth_magnitude(self, sampler):
        # A 10x10 um device in 0.8 um CMOS should match to ~1 mV.
        assert sampler.sigma_vth(10e-6, 10e-6) == pytest.approx(1e-3, rel=0.01)

    def test_sigma_beta_magnitude(self, sampler):
        assert sampler.sigma_beta_rel(10e-6, 10e-6) == pytest.approx(0.002, rel=0.01)

    @pytest.mark.parametrize("w,length", [(0.0, 1e-6), (1e-6, -1e-6)])
    def test_rejects_bad_geometry(self, sampler, w, length):
        with pytest.raises(ConfigurationError):
            sampler.sigma_vth(w, length)


class TestSampling:
    def test_samples_have_expected_spread(self):
        sampler = PelgromMismatch(rng=np.random.default_rng(1))
        draws = [sampler.sample(4e-6, 4e-6).delta_vth for _ in range(2000)]
        measured = float(np.std(draws))
        assert measured == pytest.approx(sampler.sigma_vth(4e-6, 4e-6), rel=0.1)

    def test_samples_are_zero_mean(self):
        sampler = PelgromMismatch(rng=np.random.default_rng(2))
        draws = [sampler.sample(4e-6, 4e-6).delta_vth for _ in range(2000)]
        sigma = sampler.sigma_vth(4e-6, 4e-6)
        assert abs(float(np.mean(draws))) < 0.1 * sigma

    def test_seeded_reproducibility(self):
        a = PelgromMismatch(rng=np.random.default_rng(7)).sample(4e-6, 4e-6)
        b = PelgromMismatch(rng=np.random.default_rng(7)).sample(4e-6, 4e-6)
        assert a.delta_vth == b.delta_vth
        assert a.delta_beta_rel == b.delta_beta_rel

    def test_pair_imbalance_is_small_for_large_devices(self):
        sampler = PelgromMismatch(rng=np.random.default_rng(3))
        imbalances = [
            abs(sampler.sample_pair_imbalance(20e-6, 20e-6)) for _ in range(500)
        ]
        assert float(np.median(imbalances)) < 0.01


class TestCurrentError:
    def test_beta_only_property(self):
        draw = MismatchSample(delta_vth=1e-3, delta_beta_rel=0.01)
        assert draw.current_error_rel == pytest.approx(0.01)

    def test_vth_term_scales_with_overdrive(self):
        draw = MismatchSample(delta_vth=1e-3, delta_beta_rel=0.0)
        at_100mv = draw.current_error_at_overdrive(0.1)
        at_400mv = draw.current_error_at_overdrive(0.4)
        assert abs(at_100mv) == pytest.approx(4.0 * abs(at_400mv))

    def test_rejects_nonpositive_overdrive(self):
        draw = MismatchSample(delta_vth=1e-3, delta_beta_rel=0.0)
        with pytest.raises(ConfigurationError):
            draw.current_error_at_overdrive(0.0)
