"""Tests for the square-law MOSFET model."""

import pytest

from repro.devices.mosfet import Mosfet, MosfetParameters
from repro.devices.process import CMOS_08UM
from repro.errors import ConfigurationError, DeviceError, SaturationError


@pytest.fixture
def nmos():
    return Mosfet(MosfetParameters("n", width=10e-6, length=2e-6), CMOS_08UM)


@pytest.fixture
def pmos():
    return Mosfet(MosfetParameters("p", width=20e-6, length=2e-6), CMOS_08UM)


class TestParameters:
    def test_rejects_bad_polarity(self):
        with pytest.raises(ConfigurationError):
            MosfetParameters("x", width=1e-6, length=1e-6)

    @pytest.mark.parametrize("w,length", [(0.0, 1e-6), (1e-6, 0.0), (-1e-6, 1e-6)])
    def test_rejects_nonpositive_geometry(self, w, length):
        with pytest.raises(ConfigurationError):
            MosfetParameters("n", width=w, length=length)


class TestDcCharacteristics:
    def test_cutoff_below_threshold(self, nmos):
        assert nmos.drain_current(vgs=0.5, vds=1.0) == 0.0

    def test_saturation_square_law(self, nmos):
        vov = 0.4
        expected = 0.5 * nmos.beta * vov**2 * (1.0 + nmos.lam * 2.0)
        assert nmos.drain_current(vgs=nmos.vth + vov, vds=2.0) == pytest.approx(expected)

    def test_triode_below_saturation(self, nmos):
        vov = 0.4
        vds = 0.1
        i_triode = nmos.drain_current(vgs=nmos.vth + vov, vds=vds)
        i_sat = nmos.drain_current(vgs=nmos.vth + vov, vds=2.0)
        assert 0.0 < i_triode < i_sat

    def test_current_continuous_at_saturation_edge(self, nmos):
        vov = 0.3
        below = nmos.drain_current(nmos.vth + vov, vov - 1e-9)
        above = nmos.drain_current(nmos.vth + vov, vov + 1e-9)
        assert below == pytest.approx(above, rel=1e-5)

    def test_rejects_negative_vds(self, nmos):
        with pytest.raises(DeviceError):
            nmos.drain_current(vgs=2.0, vds=-0.1)

    def test_pmos_uses_pmos_parameters(self, pmos):
        assert pmos.kp == CMOS_08UM.kp_p
        assert pmos.vth == CMOS_08UM.vth_p


class TestBias:
    def test_gm_follows_sqrt_law(self, nmos):
        op1 = nmos.bias(10e-6)
        op2 = nmos.bias(40e-6)
        assert op2.gm == pytest.approx(2.0 * op1.gm, rel=1e-9)

    def test_vdsat_follows_sqrt_law(self, nmos):
        op1 = nmos.bias(10e-6)
        op2 = nmos.bias(40e-6)
        assert op2.vdsat == pytest.approx(2.0 * op1.vdsat, rel=1e-9)

    def test_gm_identity(self, nmos):
        # gm = 2 I / vdsat for a square-law device.
        op = nmos.bias(25e-6)
        assert op.gm == pytest.approx(2.0 * op.drain_current / op.vdsat, rel=1e-9)

    def test_gds_is_lambda_times_current(self, nmos):
        op = nmos.bias(25e-6)
        assert op.gds == pytest.approx(nmos.lam * 25e-6)

    def test_intrinsic_gain_positive(self, nmos):
        assert nmos.bias(25e-6).intrinsic_gain > 10.0

    def test_intrinsic_gain_unbounded_raises(self, nmos):
        op = nmos.bias(25e-6)
        zero_gds = type(op)(
            drain_current=op.drain_current,
            vgs=op.vgs,
            vdsat=op.vdsat,
            gm=op.gm,
            gds=0.0,
            cgs=op.cgs,
        )
        with pytest.raises(DeviceError):
            _ = zero_gds.intrinsic_gain

    def test_saturation_check_raises(self, nmos):
        op = nmos.bias(100e-6)
        with pytest.raises(SaturationError):
            nmos.bias(100e-6, vds=op.vdsat * 0.5)

    def test_saturation_check_passes_at_edge(self, nmos):
        vdsat = nmos.vdsat_for_current(100e-6)
        op = nmos.bias(100e-6, vds=vdsat)
        assert op.vdsat == pytest.approx(vdsat)

    def test_rejects_nonpositive_current(self, nmos):
        with pytest.raises(DeviceError):
            nmos.bias(0.0)

    def test_vgs_for_current(self, nmos):
        # Channel-length modulation at vds = vgs adds a few percent.
        i = 50e-6
        vgs = nmos.vgs_for_current(i)
        assert nmos.drain_current(vgs, vds=vgs) == pytest.approx(i, rel=0.10)


class TestCapacitance:
    def test_cgs_scales_with_area(self):
        small = Mosfet(MosfetParameters("n", 5e-6, 1e-6), CMOS_08UM)
        # Doubling both W and L quadruples the intrinsic part; overlap
        # only doubles, so the total grows by more than 2x.
        big = Mosfet(MosfetParameters("n", 10e-6, 2e-6), CMOS_08UM)
        assert big.cgs > 2.0 * small.cgs

    def test_cgs_order_of_magnitude(self):
        # A ~10x1 um 0.8 um device has C_gs in the tens of femtofarads,
        # the "small storage capacitance" behind the paper's large
        # thermal noise.
        device = Mosfet(MosfetParameters("n", 10e-6, 1e-6), CMOS_08UM)
        assert 5e-15 < device.cgs < 100e-15

    def test_in_saturation_helper(self):
        device = Mosfet(MosfetParameters("n", 10e-6, 1e-6), CMOS_08UM)
        assert device.in_saturation(vgs=device.vth + 0.3, vds=0.5)
        assert not device.in_saturation(vgs=device.vth + 0.3, vds=0.1)
        assert not device.in_saturation(vgs=device.vth - 0.1, vds=1.0)
