"""Tests for the process descriptor."""

import pytest

from repro.devices.process import CMOS_08UM, ProcessParameters
from repro.errors import ConfigurationError


class TestCmos08um:
    def test_supply_is_3v3(self):
        # The test chip runs at 3.3 V (Tables 1 and 2).
        assert CMOS_08UM.supply_voltage == pytest.approx(3.3)

    def test_thresholds_around_1v(self):
        # "given the threshold voltages around 1V"
        assert 0.8 <= CMOS_08UM.vth_n <= 1.1
        assert 0.8 <= CMOS_08UM.vth_p <= 1.1

    def test_min_length(self):
        assert CMOS_08UM.min_length == pytest.approx(0.8e-6)

    def test_nmos_stronger_than_pmos(self):
        assert CMOS_08UM.kp_n > CMOS_08UM.kp_p


class TestModifiers:
    def test_with_supply(self):
        low = CMOS_08UM.with_supply(1.2)
        assert low.supply_voltage == pytest.approx(1.2)
        assert low.vth_n == CMOS_08UM.vth_n

    def test_with_thresholds(self):
        lowvt = CMOS_08UM.with_thresholds(0.5, 0.55)
        assert lowvt.vth_n == pytest.approx(0.5)
        assert lowvt.vth_p == pytest.approx(0.55)
        assert lowvt.supply_voltage == CMOS_08UM.supply_voltage

    def test_original_unchanged(self):
        CMOS_08UM.with_supply(5.0)
        assert CMOS_08UM.supply_voltage == pytest.approx(3.3)


class TestValidation:
    def test_rejects_nonpositive_kp(self):
        with pytest.raises(ConfigurationError):
            ProcessParameters(
                name="bad",
                kp_n=0.0,
                kp_p=40e-6,
                vth_n=1.0,
                vth_p=1.0,
                lambda_n=0.05,
                lambda_p=0.06,
                cox=2e-3,
                cov_per_width=0.3e-9,
                min_length=0.8e-6,
                supply_voltage=3.3,
            )

    def test_rejects_negative_lambda(self):
        with pytest.raises(ConfigurationError):
            ProcessParameters(
                name="bad",
                kp_n=120e-6,
                kp_p=40e-6,
                vth_n=1.0,
                vth_p=1.0,
                lambda_n=-0.1,
                lambda_p=0.06,
                cox=2e-3,
                cov_per_width=0.3e-9,
                min_length=0.8e-6,
                supply_voltage=3.3,
            )

    def test_zero_lambda_allowed(self):
        process = ProcessParameters(
            name="ideal",
            kp_n=120e-6,
            kp_p=40e-6,
            vth_n=1.0,
            vth_p=1.0,
            lambda_n=0.0,
            lambda_p=0.0,
            cox=2e-3,
            cov_per_width=0.3e-9,
            min_length=0.8e-6,
            supply_voltage=3.3,
        )
        assert process.lambda_n == 0.0
