"""Tests for the current-mirror model."""

import pytest

from repro.devices.current_mirror import CurrentMirror
from repro.errors import ConfigurationError


class TestIdealMirror:
    def test_unity_copy(self):
        assert CurrentMirror().copy(10e-6) == pytest.approx(10e-6)

    def test_half_sized_sense_mirror(self):
        # The CMFF sensing devices are half-sized (Tn2/Tn3 in Fig. 2).
        mirror = CurrentMirror(nominal_gain=0.5)
        assert mirror.copy(10e-6) == pytest.approx(5e-6)

    def test_copy_is_linear(self):
        mirror = CurrentMirror(nominal_gain=2.0)
        assert mirror.copy(3e-6) + mirror.copy(4e-6) == pytest.approx(
            mirror.copy(7e-6)
        )

    def test_negative_current_copies(self):
        assert CurrentMirror().copy(-5e-6) == pytest.approx(-5e-6)


class TestNonidealities:
    def test_gain_error(self):
        mirror = CurrentMirror(nominal_gain=1.0, gain_error=0.01)
        assert mirror.copy(10e-6) == pytest.approx(10.1e-6)

    def test_gain_property(self):
        mirror = CurrentMirror(nominal_gain=0.5, gain_error=-0.02)
        assert mirror.gain == pytest.approx(0.49)

    def test_output_conductance_adds_error(self):
        mirror = CurrentMirror(output_conductance=1e-6)
        assert mirror.copy(10e-6, output_voltage_delta=0.5) == pytest.approx(10.5e-6)

    def test_zero_voltage_delta_exact(self):
        mirror = CurrentMirror(output_conductance=1e-6)
        assert mirror.copy(10e-6, output_voltage_delta=0.0) == pytest.approx(10e-6)


class TestValidation:
    def test_rejects_nonpositive_gain(self):
        with pytest.raises(ConfigurationError):
            CurrentMirror(nominal_gain=0.0)

    def test_rejects_gain_error_below_minus_one(self):
        with pytest.raises(ConfigurationError):
            CurrentMirror(gain_error=-1.0)

    def test_rejects_negative_conductance(self):
        with pytest.raises(ConfigurationError):
            CurrentMirror(output_conductance=-1e-9)
