"""SC010 positive fixture: subclasses stepping outside the protocol."""

from repro.deltasigma.quantizer import CurrentQuantizer
from repro.si.delay_line import DelayLine


class TamperedLine(DelayLine):
    def run(self, differential_input):
        return differential_input


class SoftQuantizer(CurrentQuantizer):
    def decide(self, input_current):
        return 1
