"""SC011 negative fixture: seeded or noiseless constructions lower fine."""

from repro.deltasigma.dac import FeedbackDac
from repro.deltasigma.quantizer import CurrentQuantizer
from repro.si.memory_cell import MemoryCellConfig


def seeded_cell():
    return MemoryCellConfig(seed=11)


def quiet_cell():
    return MemoryCellConfig(seed=None, thermal_noise_rms=0.0)


def plain_default():
    return MemoryCellConfig()


def computed_noise(level):
    return MemoryCellConfig(seed=None, thermal_noise_rms=level)


def ideal_quantizer():
    return CurrentQuantizer(metastability_band=0.0)


def seeded_quantizer():
    return CurrentQuantizer(metastability_band=5e-9, seed=3)


def seeded_dac():
    return FeedbackDac(reference_noise_rms=2e-9, seed=5)
