"""SC005 negative fixture: same pattern outside a kernel module."""

import numpy as np


def convert(samples):
    return np.asarray(samples)
