"""SC007 positive fixture: stdlib random in library code."""

import random


def roll():
    return random.random()
