"""SC001 positive fixture: RNGs constructed without a replayable seed."""

import numpy as np
from numpy.random import default_rng


def fresh():
    return np.random.default_rng()


def aliased():
    return default_rng()


def explicit_none():
    return np.random.default_rng(None)


def fallback(seed=None):
    return np.random.default_rng(seed if seed is not None else None)
