"""SC002 positive fixture: draws from the shared global numpy RNG."""

import numpy as np
import numpy.random as npr


def draw():
    return np.random.normal(0.0, 1.0)


def draw_alias():
    return npr.uniform()
