"""SC012 negative fixture: paired override, or no observation override."""

from repro.telemetry.probes import SignalProbe


class MirrorProbe(SignalProbe):
    def observe(self, value):
        super().observe(value)

    def observe_array(self, values):
        super().observe_array(values)


class NamedProbe(SignalProbe):
    def describe(self):
        return self.name
