"""SC011 positive fixture: constructions every batch run will refuse."""

from repro.deltasigma.dac import FeedbackDac
from repro.deltasigma.quantizer import CurrentQuantizer
from repro.si.memory_cell import MemoryCellConfig


def noisy_unseeded_cell():
    return MemoryCellConfig(seed=None)


def spelled_out_noise():
    return MemoryCellConfig(thermal_noise_rms=33e-9)


def jittery_quantizer():
    return CurrentQuantizer(metastability_band=5e-9)


def noisy_dac():
    return FeedbackDac(reference_noise_rms=2e-9, seed=None)
