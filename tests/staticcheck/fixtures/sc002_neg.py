"""SC002 negative fixture: generator-method draws carry their own seed."""

import numpy as np


def draw(rng):
    return rng.normal(0.0, 1.0)


def draw_typed(rng: np.random.Generator):
    return rng.standard_normal(4)
