# staticcheck: kernel-module
"""SC005 positive fixture: dtype-unstable conversion of a parameter."""

import numpy as np


def convert(samples):
    return np.asarray(samples)
