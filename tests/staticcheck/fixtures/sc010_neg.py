"""SC010 negative fixture: subclasses inside the lowering protocol."""

from repro.si.delay_line import DelayLine


class LabeledLine(DelayLine):
    def __init__(self, config=None, n_cells=2, label="line"):
        super().__init__(config, n_cells)
        self.label = label

    def describe_graph(self):
        return super().describe_graph()

    def extra_report(self):
        return self.label
