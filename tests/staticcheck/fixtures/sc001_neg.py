"""SC001 negative fixture: seeded construction is always fine."""

import numpy as np
from numpy.random import default_rng


def seeded_literal():
    return np.random.default_rng(7)


def seeded_positional(seed):
    return default_rng(seed)


def seeded_keyword(seed):
    return np.random.default_rng(seed=seed)


def not_the_module(np_like):
    return np_like.random.default_rng()
