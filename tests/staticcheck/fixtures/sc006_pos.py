"""SC006 positive fixture: mutable default arguments."""

import numpy as np


def accumulate(value, into=[]):
    into.append(value)
    return into


def tabulate(rows, cache={}):
    return cache


def window(samples, weights=np.ones(4)):
    return samples * weights
