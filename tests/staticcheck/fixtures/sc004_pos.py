# staticcheck: kernel-module
"""SC004 positive fixture: kernel function mutates parameter arrays."""

import numpy as np


def corrupt(state, values):
    state[0] = 1.0
    values += 1.0
    np.multiply(values, 2.0, out=values)
    values.sort()
    return values
