# staticcheck: kernel-module
"""SC004/SC005 negative fixture: kernels work on local copies."""

import numpy as np


def pure(state, values):
    local = np.asarray(values, dtype=float).copy()
    local[0] = state[0]
    local += 1.0
    local.sort()
    return local
