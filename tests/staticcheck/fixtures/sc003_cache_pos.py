# staticcheck: cache-key-module
"""SC003 positive fixture: unordered iteration in a cache-key module."""

import os


def key_parts(flags):
    parts = [flag for flag in {"noise", "mismatch"}]
    for name in os.listdir("."):
        parts.append(name)
    return parts
