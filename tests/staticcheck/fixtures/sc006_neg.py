"""SC006 negative fixture: None default with in-function construction."""


def accumulate(value, into=None):
    into = [] if into is None else into
    into.append(value)
    return into
