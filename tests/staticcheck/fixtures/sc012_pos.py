"""SC012 positive fixture: unpaired probe observation override."""

from repro.telemetry.probes import SignalProbe


class PeakProbe(SignalProbe):
    def observe(self, value):
        super().observe(value)
