# staticcheck: cache-key-module
"""SC003 negative fixture: sorted iteration and manifest-derived seeds."""


def key_parts(flags):
    return [flag for flag in sorted({"noise", "mismatch"})]


def seeded_from_manifest(manifest):
    run_seed = manifest["seed"]
    return run_seed
