"""SC003 positive fixture: wall-clock values feeding seeds."""

import time

import numpy as np


def stamped():
    return np.random.default_rng(seed=int(time.time()))


def derived():
    run_seed = int(time.time_ns())
    return run_seed
