"""Suppression-baseline behaviour: matching, staleness, malformed files."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.staticcheck import Baseline, BaselineEntry, run_lint

SOURCE = '''"""Module with one deliberate unseeded fallback."""

import numpy as np


def fallback(rng=None):
    return rng if rng is not None else np.random.default_rng()
'''

ANCHOR = "return rng if rng is not None else np.random.default_rng()"


def _write_module(tmp_path):
    target = tmp_path / "boundary.py"
    target.write_text(SOURCE)
    return target


def _baseline_file(tmp_path, entries):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 1, "entries": entries}))
    return path


def _entry(**overrides):
    entry = {
        "rule": "SC001",
        "path": "boundary.py",
        "anchor": ANCHOR,
        "reason": "API seed boundary; callers may opt out of replay.",
    }
    entry.update(overrides)
    return entry


def test_matching_entry_suppresses_the_finding(tmp_path):
    module = _write_module(tmp_path)
    baseline = _baseline_file(tmp_path, [_entry()])
    report = run_lint([module], baseline=baseline)
    assert report.findings == ()
    assert [f.rule for f in report.suppressed] == ["SC001"]
    assert report.exit_code(strict=True) == 0


def test_without_baseline_the_finding_survives(tmp_path):
    module = _write_module(tmp_path)
    report = run_lint([module])
    assert [f.rule for f in report.findings] == ["SC001"]
    assert report.exit_code() == 1


def test_stale_entry_raises_sc000(tmp_path):
    module = _write_module(tmp_path)
    baseline = _baseline_file(
        tmp_path,
        [_entry(), _entry(anchor="self._rng = np.random.default_rng()")],
    )
    report = run_lint([module], baseline=baseline)
    assert [f.rule for f in report.findings] == ["SC000"]
    assert "stale suppression" in report.findings[0].message
    assert report.exit_code(strict=True) == 1
    assert report.exit_code(strict=False) == 0


def test_entry_for_unscanned_file_is_not_stale(tmp_path):
    module = _write_module(tmp_path)
    baseline = _baseline_file(
        tmp_path, [_entry(), _entry(path="somewhere/else.py")]
    )
    report = run_lint([module], baseline=baseline)
    assert report.findings == ()


def test_baseline_path_may_be_a_suffix_of_the_scanned_path(tmp_path):
    module = _write_module(tmp_path)
    entry = BaselineEntry(
        rule="SC001", path="boundary.py", anchor=ANCHOR, reason="boundary"
    )
    report = run_lint([module], baseline=Baseline([entry]))
    assert report.findings == ()
    assert len(report.suppressed) == 1


def test_missing_baseline_file_is_empty(tmp_path):
    module = _write_module(tmp_path)
    report = run_lint([module], baseline=tmp_path / "absent.json")
    assert [f.rule for f in report.findings] == ["SC001"]


@pytest.mark.parametrize(
    "payload",
    [
        "not json at all {",
        json.dumps([1, 2, 3]),
        json.dumps({"entries": "nope"}),
        json.dumps({"entries": [{"rule": "SC001"}]}),
        json.dumps({"entries": [42]}),
    ],
)
def test_malformed_baseline_is_a_configuration_error(tmp_path, payload):
    module = _write_module(tmp_path)
    bad = tmp_path / "bad.json"
    bad.write_text(payload)
    with pytest.raises(ConfigurationError):
        run_lint([module], baseline=bad)


def test_entry_requires_a_nonempty_reason(tmp_path):
    module = _write_module(tmp_path)
    baseline = _baseline_file(tmp_path, [_entry(reason="   ")])
    with pytest.raises(ConfigurationError, match="reason"):
        run_lint([module], baseline=baseline)
