"""Per-rule fixture tests: every rule fires on its positive fixture and
stays silent on its negative one.

The fixtures live in ``tests/staticcheck/fixtures/`` and are linted as
plain files (no import), so they can freely contain the anti-patterns
the rules exist to catch.
"""

from pathlib import Path

import pytest

from repro.findings import Severity
from repro.runtime.lowering import (
    UNSEEDED_METASTABILITY_REFUSAL,
    UNSEEDED_NOISE_REFUSAL,
    UNSEEDED_REFERENCE_REFUSAL,
    hook_refusal,
    probe_pair_refusal,
    subclass_refusal,
)
from repro.staticcheck import default_rules, rule_catalog, run_lint
from repro.staticcheck.model import ModuleContext

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> exact ordered rule codes expected (no baseline).
CASES = [
    ("sc001_pos.py", ["SC001"] * 4),
    ("sc001_neg.py", []),
    ("sc002_pos.py", ["SC002"] * 2),
    ("sc002_neg.py", []),
    ("sc003_pos.py", ["SC003"] * 2),
    ("sc003_cache_pos.py", ["SC003"] * 2),
    ("sc003_neg.py", []),
    ("sc004_pos.py", ["SC004"] * 4),
    ("sc004_neg.py", []),
    ("sc005_pos.py", ["SC005"]),
    ("sc005_untagged.py", []),
    ("sc006_pos.py", ["SC006"] * 3),
    ("sc006_neg.py", []),
    ("sc007_pos.py", ["SC002", "SC007"]),
    ("sc010_pos.py", ["SC010"] * 2),
    ("sc010_neg.py", []),
    ("sc011_pos.py", ["SC011"] * 4),
    ("sc011_neg.py", []),
    ("sc012_pos.py", ["SC012"]),
    ("sc012_neg.py", []),
]


def _lint(name, **kwargs):
    return run_lint([FIXTURES / name], **kwargs)


@pytest.mark.parametrize(("name", "expected"), CASES, ids=[c[0] for c in CASES])
def test_fixture_rule_codes(name, expected):
    report = _lint(name)
    assert sorted(f.rule for f in report.findings) == sorted(expected)


def test_catalog_has_at_least_ten_rules():
    codes = [code for code, _, _, _ in rule_catalog()]
    assert len(codes) == len(set(codes))
    assert len([c for c in codes if c != "SC000"]) >= 10
    assert [rule.code for rule in default_rules()] == sorted(
        rule.code for rule in default_rules()
    )


def test_findings_carry_source_anchors():
    report = _lint("sc001_pos.py")
    source_lines = (FIXTURES / "sc001_pos.py").read_text().splitlines()
    for finding in report.findings:
        assert finding.anchor == source_lines[finding.line - 1].strip()
        assert finding.severity is Severity.ERROR


def test_sc010_predicts_exact_runtime_refusals():
    findings = _lint("sc010_pos.py").findings
    assert [f.predicts for f in findings] == [
        hook_refusal("delay line", "TamperedLine", "run", "DelayLine"),
        subclass_refusal("quantizer", "SoftQuantizer"),
    ]


def test_sc011_predicts_the_unseeded_refusals():
    findings = _lint("sc011_pos.py").findings
    assert [f.predicts for f in findings] == [
        UNSEEDED_NOISE_REFUSAL,
        UNSEEDED_NOISE_REFUSAL,
        UNSEEDED_METASTABILITY_REFUSAL,
        UNSEEDED_REFERENCE_REFUSAL,
    ]


def test_sc012_predicts_the_pairing_refusal():
    findings = _lint("sc012_pos.py").findings
    assert [f.predicts for f in findings] == [probe_pair_refusal("PeakProbe")]


def test_select_and_ignore_filters():
    only = _lint("sc007_pos.py", select=["SC007"])
    assert [f.rule for f in only.findings] == ["SC007"]
    dropped = _lint("sc007_pos.py", ignore=["SC007"])
    assert [f.rule for f in dropped.findings] == ["SC002"]


def test_min_severity_filter():
    report = _lint("sc007_pos.py", min_severity=Severity.ERROR)
    assert [f.rule for f in report.findings] == ["SC002"]


def test_kernel_module_classified_by_path():
    module = ModuleContext.parse(
        "src/repro/runtime/kernels.py", "x = 1\n"
    )
    assert module.is_kernel_module and not module.is_cache_module
    cache = ModuleContext.parse("src/repro/runtime/cache.py", "x = 1\n")
    assert cache.is_cache_module and not cache.is_kernel_module
    plain = ModuleContext.parse("src/repro/config.py", "x = 1\n")
    assert not plain.is_kernel_module and not plain.is_cache_module
