"""CLI behaviour of ``repro lint``: exit codes, JSON output, the gate."""

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"

CLEAN = '''"""A module with nothing to report."""


def double(value):
    return 2.0 * value
'''


@pytest.fixture
def clean_module(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text(CLEAN)
    return target


def test_clean_module_exits_zero(clean_module, capsys):
    assert main(["lint", str(clean_module), "--no-baseline"]) == 0
    out = capsys.readouterr().out
    assert "no findings" in out
    assert "LINT" in out


def test_errors_exit_one(capsys):
    code = main(["lint", str(FIXTURES / "sc001_pos.py"), "--no-baseline"])
    assert code == 1
    out = capsys.readouterr().out
    assert "SC001" in out


def test_warnings_gate_only_under_strict(capsys):
    fixture = str(FIXTURES / "sc006_pos.py")
    assert main(["lint", fixture, "--no-baseline"]) == 0
    assert main(["lint", fixture, "--no-baseline", "--strict"]) == 1


def test_ignore_lifts_the_gate():
    fixture = str(FIXTURES / "sc001_pos.py")
    assert main(["lint", fixture, "--no-baseline", "--ignore", "SC001"]) == 0


def test_unknown_select_code_exits_two(capsys):
    code = main(["lint", str(FIXTURES), "--no-baseline", "--select", "SC999"])
    assert code == 2
    assert "SC999" in capsys.readouterr().err


def test_missing_path_exits_two(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "nope"), "--no-baseline"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_non_python_file_exits_two(tmp_path, capsys):
    target = tmp_path / "notes.txt"
    target.write_text("hello")
    assert main(["lint", str(target), "--no-baseline"]) == 2


def test_json_report_written(clean_module, tmp_path, capsys):
    out_path = tmp_path / "lint.json"
    fixture = str(FIXTURES / "sc012_pos.py")
    main(["lint", fixture, "--no-baseline", "--json", str(out_path)])
    payload = json.loads(out_path.read_text())
    assert payload["checked_files"] == 1
    assert payload["counts"]["error"] == 1
    (finding,) = payload["findings"]
    assert finding["rule"] == "SC012"
    assert finding["predicts"].startswith("no bit-exact lowering")


def test_repo_gate_is_clean(monkeypatch, capsys):
    """The CI gate: repo sources pass strict lint with the baseline."""
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", "src/repro", "--strict"]) == 0
    out = capsys.readouterr().out
    assert "LINT PASS" in out


def test_repo_gate_is_clean_without_the_baseline(monkeypatch, capsys):
    """Every RNG site is now seeded at the API boundary and every
    shipped subclass is in the lowering protocol, so the gate holds
    even with the (empty) baseline disabled."""
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", "src/repro", "--strict", "--no-baseline"]) == 0
    out = capsys.readouterr().out
    assert "LINT PASS" in out


def test_lint_listed_in_command_overview(capsys):
    main(["--list"])
    assert "lint" in capsys.readouterr().out
