"""Analyzer vs runtime: the lowerability rules may never disagree.

Every SC010-SC012 finding carries the exact
:class:`~repro.runtime.batch.BatchUnsupported` message it predicts.
These tests put that claim under load from both directions:

* each synthetic case below is **both** statically analyzed (as
  source) and executed (as code) -- when the analyzer predicts a
  refusal the runtime must raise it verbatim, and when the analyzer
  stays silent the runtime must lower the device;
* every registered trace design must lower, matching the zero
  lowerability findings ``repro lint`` reports on the repo sources.
"""

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import pytest

from repro.config import MODULATOR_CLOCK, paper_cell_config
from repro.deltasigma.modulator1 import SIModulator1
from repro.runtime.batch import BatchUnsupported, batch_runner_for
from repro.staticcheck import run_lint
from repro.staticcheck.lowerability import LOWERABILITY_RULES
from repro.staticcheck.model import ModuleContext
from repro.telemetry.designs import TRACE_DESIGNS

REPO_ROOT = Path(__file__).resolve().parents[2]

N_LANES = 2
N_STEPS = 16


def lowerability_findings(source: str):
    """Run only the SC010-SC012 rules over a source string."""
    module = ModuleContext.parse("case.py", source)
    findings = []
    for rule_cls in LOWERABILITY_RULES:
        findings.extend(rule_cls().check(module))
    return findings


@dataclass(frozen=True)
class Case:
    name: str
    source: str
    build: Callable[[dict], object]
    expected_findings: int


def _cell(ns, classname, **kwargs):
    return ns[classname](paper_cell_config(), **kwargs)


CASES = [
    Case(
        name="cell-behavioural-override-refuses",
        source=(
            "from repro.si.memory_cell import ClassABMemoryCell\n"
            "\n"
            "\n"
            "class TamperedCell(ClassABMemoryCell):\n"
            "    def run(self, differential_input):\n"
            "        return differential_input\n"
        ),
        build=lambda ns: _cell(ns, "TamperedCell"),
        expected_findings=1,
    ),
    Case(
        name="cell-metadata-override-lowers",
        source=(
            "from repro.si.memory_cell import ClassABMemoryCell\n"
            "\n"
            "\n"
            "class AnnotatedCell(ClassABMemoryCell):\n"
            "    def __init__(self, config, label='cell'):\n"
            "        super().__init__(config)\n"
            "        self.label = label\n"
        ),
        build=lambda ns: _cell(ns, "AnnotatedCell"),
        expected_findings=0,
    ),
    Case(
        name="delay-line-step-override-refuses",
        source=(
            "from repro.si.delay_line import DelayLine\n"
            "\n"
            "\n"
            "class TamperedLine(DelayLine):\n"
            "    def step(self, sample):\n"
            "        return sample\n"
        ),
        build=lambda ns: ns["TamperedLine"](paper_cell_config(), n_cells=2),
        expected_findings=1,
    ),
    Case(
        name="quantizer-subclass-refuses",
        source=(
            "from repro.deltasigma.quantizer import CurrentQuantizer\n"
            "\n"
            "\n"
            "class SoftQuantizer(CurrentQuantizer):\n"
            "    def decide(self, input_current):\n"
            "        return 1\n"
        ),
        build=lambda ns: SIModulator1(
            cell_config=paper_cell_config(sample_rate=MODULATOR_CLOCK),
            quantizer=ns["SoftQuantizer"](),
        ),
        expected_findings=1,
    ),
    Case(
        name="dac-subclass-refuses",
        source=(
            "from repro.deltasigma.dac import FeedbackDac\n"
            "\n"
            "\n"
            "class LoggingDac(FeedbackDac):\n"
            "    pass\n"
        ),
        build=lambda ns: SIModulator1(
            cell_config=paper_cell_config(sample_rate=MODULATOR_CLOCK),
            dac=ns["LoggingDac"](),
        ),
        expected_findings=1,
    ),
    Case(
        name="unpaired-probe-refuses",
        source=(
            "from repro.telemetry.probes import SignalProbe\n"
            "\n"
            "\n"
            "class PeakProbe(SignalProbe):\n"
            "    def observe(self, value):\n"
            "        super().observe(value)\n"
        ),
        build=lambda ns: _probed_cell(ns, "PeakProbe"),
        expected_findings=1,
    ),
    Case(
        name="paired-probe-lowers",
        source=(
            "from repro.telemetry.probes import SignalProbe\n"
            "\n"
            "\n"
            "class MirrorProbe(SignalProbe):\n"
            "    def observe(self, value):\n"
            "        super().observe(value)\n"
            "\n"
            "    def observe_array(self, values):\n"
            "        super().observe_array(values)\n"
        ),
        build=lambda ns: _probed_cell(ns, "MirrorProbe"),
        expected_findings=0,
    ),
    Case(
        name="unseeded-noisy-config-refuses",
        source=(
            "from repro.si.memory_cell import ClassABMemoryCell, MemoryCellConfig\n"
            "\n"
            "\n"
            "def build_cell():\n"
            "    return ClassABMemoryCell(MemoryCellConfig(seed=None))\n"
        ),
        build=lambda ns: ns["build_cell"](),
        expected_findings=1,
    ),
]


def _probed_cell(ns, probe_classname):
    from repro.si.memory_cell import ClassABMemoryCell

    cell = ClassABMemoryCell(paper_cell_config())
    cell._probe = ns[probe_classname]("cell.input")
    return cell


@pytest.mark.parametrize("case", CASES, ids=[c.name for c in CASES])
def test_analyzer_and_runtime_agree(case):
    findings = lowerability_findings(case.source)
    assert len(findings) == case.expected_findings

    namespace: dict = {}
    exec(compile(case.source, case.name, "exec"), namespace)
    device = case.build(namespace)

    if findings:
        (finding,) = findings
        assert finding.predicts is not None
        with pytest.raises(BatchUnsupported) as excinfo:
            batch_runner_for(device, N_LANES, N_STEPS)
        assert str(excinfo.value) == finding.predicts
    else:
        runner = batch_runner_for(device, N_LANES, N_STEPS)
        assert runner is not None


@pytest.mark.parametrize("name", sorted(TRACE_DESIGNS))
def test_every_trace_design_lowers(name):
    """The positive half of the agreement: registered designs lower."""
    device = TRACE_DESIGNS[name].build()
    runner = batch_runner_for(device, N_LANES, N_STEPS)
    assert runner is not None


def test_repo_sources_predict_no_unbaselined_refusals(monkeypatch):
    """The analyzer agrees the shipped designs lower: linting src/repro
    with the committed baseline leaves no lowerability findings."""
    monkeypatch.chdir(REPO_ROOT)
    report = run_lint(
        ["src/repro"], baseline=REPO_ROOT / "baselines" / "staticcheck.json"
    )
    codes = {f.rule for f in report.findings}
    assert not codes & {"SC010", "SC011", "SC012"}
    # The baseline is empty: nothing in the shipped sources needs a
    # suppression any more (DitheredQuantizer joined the protocol and
    # every RNG site is seeded at the API boundary).
    assert not report.suppressed
