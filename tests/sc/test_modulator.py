"""Tests for the SC modulator and the SI-vs-SC comparison."""

import numpy as np
import pytest

from repro.analysis.metrics import measure_tone
from repro.analysis.spectrum import compute_spectrum
from repro.errors import ConfigurationError
from repro.sc.modulator import ScModulator2

FS = 2.45e6


def coherent_tone(amplitude, cycles, n):
    t = np.arange(n)
    return amplitude * np.sin(2.0 * np.pi * cycles * t / n)


class TestScModulator:
    def test_realizes_eq3(self):
        assert ScModulator2().realizes_eq3

    def test_output_levels(self):
        y = ScModulator2()(coherent_tone(3e-6, 7, 512))
        assert set(np.unique(y)) <= {-6e-6, 6e-6}

    def test_dc_tracking(self):
        y = ScModulator2()(np.full(1 << 13, 2e-6))
        assert float(np.mean(y[500:])) == pytest.approx(2e-6, rel=0.05)

    def test_higher_snr_than_si(self, cell_config):
        # The paper's conclusion: "SC circuits can usually deliver
        # higher dynamic range than SI circuits."
        from repro.deltasigma.modulator2 import SIModulator2

        n = 1 << 14
        x = coherent_tone(3e-6, 13, n)
        f0 = 13 * FS / n

        def snr(modulator):
            spectrum = compute_spectrum(modulator(x), FS)
            return measure_tone(
                spectrum, fundamental_frequency=f0, bandwidth=10e3
            ).snr_db

        assert snr(ScModulator2(capacitance=2.5e-12)) > snr(
            SIModulator2(cell_config)
        ) + 6.0

    def test_reproducible(self):
        x = coherent_tone(3e-6, 7, 512)
        np.testing.assert_array_equal(
            ScModulator2(seed=3)(x), ScModulator2(seed=3)(x)
        )

    def test_rejects_bad_full_scale(self):
        with pytest.raises(ConfigurationError):
            ScModulator2(full_scale=0.0)

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            ScModulator2().run(np.zeros((2, 2)))
