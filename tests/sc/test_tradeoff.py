"""Tests for the SI-vs-SC trade-off analysis."""

import pytest

from repro.errors import ConfigurationError
from repro.sc.tradeoff import ScSiTradeoff


@pytest.fixture
def tradeoff():
    return ScSiTradeoff()


class TestPoints:
    def test_si_point_matches_paper(self, tradeoff):
        point = tradeoff.si_point()
        assert point.noise_rms == pytest.approx(33e-9)
        assert point.dynamic_range_db == pytest.approx(66.3, abs=0.3)
        assert not point.needs_double_poly

    def test_sc_point_higher_dr(self, tradeoff):
        sc = tradeoff.sc_point(2.5e-12)
        si = tradeoff.si_point()
        assert sc.dynamic_range_db > si.dynamic_range_db
        assert sc.needs_double_poly

    def test_dr_bits_conversion(self, tradeoff):
        point = tradeoff.si_point()
        assert point.dynamic_range_bits == pytest.approx(
            (point.dynamic_range_db - 1.76) / 6.02
        )

    def test_advantage_grows_with_capacitance(self, tradeoff):
        assert tradeoff.sc_advantage_db(10e-12) > tradeoff.sc_advantage_db(1e-12)

    def test_sweep_structure(self, tradeoff):
        points = tradeoff.sweep([1e-12, 2.5e-12])
        assert len(points) == 3
        assert not points[0].needs_double_poly
        assert all(p.needs_double_poly for p in points[1:])

    def test_medium_accuracy_crossover(self, tradeoff):
        # The SI design sits at "medium accuracy" (~10-11 bits);
        # the SC design needs picofarad (double-poly) capacitors to
        # exceed it -- the quantified version of the paper's conclusion.
        si_bits = tradeoff.si_point().dynamic_range_bits
        assert 10.0 < si_bits < 11.5
        assert tradeoff.sc_point(2.5e-12).dynamic_range_bits > 12.0

    @pytest.mark.parametrize(
        "kwargs",
        [{"full_scale": 0.0}, {"si_noise_rms": 0.0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ScSiTradeoff(**kwargs)

    def test_sc_point_rejects_bad_capacitance(self, tradeoff):
        with pytest.raises(ConfigurationError):
            tradeoff.sc_point(0.0)
