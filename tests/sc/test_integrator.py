"""Tests for the switched-capacitor integrator model."""

import math

import numpy as np
import pytest

from repro.constants import kt
from repro.errors import ConfigurationError
from repro.sc.integrator import ScIntegrator, kt_over_c_noise_rms


class TestKtcNoise:
    def test_sc_noise_much_below_si(self):
        # The paper: "The thermal noise in SC circuits is usually much
        # smaller due to the larger storage capacitance."
        sc_noise = kt_over_c_noise_rms(2.5e-12)
        assert sc_noise < 0.3 * 33e-9

    def test_scales_as_inverse_sqrt_c(self):
        assert kt_over_c_noise_rms(1e-12) == pytest.approx(
            2.0 * kt_over_c_noise_rms(4e-12)
        )

    def test_formula(self):
        expected = 100e-6 * math.sqrt(2.0 * kt(300.0) / 1e-12)
        assert kt_over_c_noise_rms(1e-12) == pytest.approx(expected)

    def test_switch_event_count(self):
        one = kt_over_c_noise_rms(1e-12, n_switch_events=1)
        four = kt_over_c_noise_rms(1e-12, n_switch_events=4)
        assert four == pytest.approx(2.0 * one)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacitance": 0.0},
            {"capacitance": 1e-12, "reference_transconductance": 0.0},
            {"capacitance": 1e-12, "n_switch_events": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            kt_over_c_noise_rms(**kwargs)


class TestIntegrator:
    def test_delaying_accumulation(self):
        integ = ScIntegrator(
            gain=1.0, capacitor_ratio_error=0.0, opamp_gain=1e12
        )
        integ.noise_rms = 0.0
        outputs = [integ.step(1e-6) for _ in range(4)]
        np.testing.assert_allclose(
            outputs, [0.0, 1e-6, 2e-6, 3e-6], rtol=1e-6, atol=1e-15
        )

    def test_opamp_gain_leak(self):
        integ = ScIntegrator(
            gain=1.0, capacitor_ratio_error=0.0, opamp_gain=100.0
        )
        integ.noise_rms = 0.0
        last = 0.0
        for _ in range(5000):
            last = integ.step(1e-8)
        # Leaky integrator converges to about A * x.
        assert last == pytest.approx(100.0 * 1e-8, rel=0.05)

    def test_noise_level_matches_ktc(self):
        integ = ScIntegrator(gain=1.0, capacitance=2.5e-12, seed=0)
        deltas = []
        prev_state = integ.state
        for _ in range(4000):
            integ.step(0.0)
            deltas.append(integ.state - prev_state * integ.leak)
            prev_state = integ.state
        measured = float(np.std(deltas))
        assert measured == pytest.approx(kt_over_c_noise_rms(2.5e-12), rel=0.1)

    def test_reset(self):
        integ = ScIntegrator(gain=1.0, seed=1)
        integ.step(1e-6)
        integ.reset()
        assert integ.state == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gain": 0.0},
            {"gain": 1.0, "capacitance": 0.0},
            {"gain": 1.0, "opamp_gain": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ScIntegrator(**kwargs)
