"""Tests for the sinc^k decimator."""

import numpy as np
import pytest

from repro.deltasigma.decimator import SincDecimator
from repro.deltasigma.ideal import IdealSecondOrderModulator
from repro.errors import ConfigurationError


class TestFilterProperties:
    def test_dc_gain_is_unity(self):
        assert SincDecimator(ratio=16, order=3).dc_gain == pytest.approx(1.0)

    def test_impulse_response_length(self):
        decimator = SincDecimator(ratio=8, order=3)
        assert decimator.impulse_response.shape[0] == 3 * (8 - 1) + 1

    def test_nulls_at_output_rate_multiples(self):
        # The sinc zeros at k * fs/R swallow the aliasing bands.
        decimator = SincDecimator(ratio=16, order=3)
        h = decimator.impulse_response
        freqs = np.fft.rfftfreq(4096)
        response = np.abs(np.fft.rfft(h, n=4096))
        null_bin = int(round((1.0 / 16.0) * 4096))
        peak = float(np.max(response))
        assert response[null_bin] < 1e-3 * peak

    def test_higher_order_attenuates_more(self):
        h1 = SincDecimator(ratio=16, order=1).impulse_response
        h3 = SincDecimator(ratio=16, order=3).impulse_response
        r1 = np.abs(np.fft.rfft(h1, n=4096))
        r3 = np.abs(np.fft.rfft(h3, n=4096))
        # Compare halfway between the first and second sinc nulls,
        # where both responses are well above numerical noise.
        probe = int(round(1.5 / 16.0 * 4096))
        assert r3[probe] < 0.1 * r1[probe]


class TestDecimation:
    def test_output_rate(self):
        decimator = SincDecimator(ratio=8, order=2)
        y = decimator.process(np.ones(1024))
        # Steady-state output of a DC stream is 1.0 at 1/8 the rate.
        assert y.shape[0] == pytest.approx((1024 - len(decimator.impulse_response)) / 8, abs=1.0)
        np.testing.assert_allclose(y, 1.0, atol=1e-12)

    def test_dc_recovery_from_bitstream(self):
        # Modulate a DC input, decimate, and recover the value.
        modulator = IdealSecondOrderModulator(full_scale=1.0)
        bitstream = modulator(np.full(1 << 14, 0.37))
        decimator = SincDecimator(ratio=64, order=3)
        samples = decimator.process(bitstream)
        assert float(np.mean(samples[4:])) == pytest.approx(0.37, abs=0.005)

    def test_sine_recovery(self):
        n = 1 << 15
        ratio = 64
        cycles = 16  # coherent at both rates
        t = np.arange(n)
        x = 0.4 * np.sin(2.0 * np.pi * cycles * t / n)
        modulator = IdealSecondOrderModulator(full_scale=1.0)
        decimated = SincDecimator(ratio=ratio, order=3).process(modulator(x))
        # The decimated output contains a tone of close to the input
        # amplitude (sinc droop at this frequency is tiny).
        amplitude = float(
            2.0
            * np.abs(np.fft.rfft(decimated - np.mean(decimated)))[
                int(round(cycles * len(decimated) / (n / ratio)))
            ]
            / len(decimated)
        )
        assert amplitude == pytest.approx(0.4, rel=0.1)


class TestValidation:
    def test_rejects_small_ratio(self):
        with pytest.raises(ConfigurationError):
            SincDecimator(ratio=1)

    def test_rejects_bad_order(self):
        with pytest.raises(ConfigurationError):
            SincDecimator(ratio=8, order=0)

    def test_rejects_short_stream(self):
        decimator = SincDecimator(ratio=64, order=3)
        with pytest.raises(ConfigurationError):
            decimator.process(np.ones(16))

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            SincDecimator(ratio=8).process(np.ones((4, 4)))
