"""Tests for dithered quantisation and idle-tone suppression."""

import numpy as np
import pytest

from repro.analysis.metrics import measure_tone
from repro.analysis.spectrum import compute_spectrum
from repro.deltasigma.dither import DitheredQuantizer, idle_tone_power_ratio
from repro.deltasigma.modulator2 import SIModulator2
from repro.errors import AnalysisError, ConfigurationError

FS = 2.45e6
N = 1 << 14


class TestDitheredQuantizer:
    def test_zero_dither_is_plain_quantizer(self):
        quantizer = DitheredQuantizer(dither_rms=0.0)
        assert quantizer.decide(1e-6) == 1
        assert quantizer.decide(-1e-6) == -1

    def test_dither_randomises_small_inputs(self):
        quantizer = DitheredQuantizer(dither_rms=1e-6, seed=0)
        decisions = [quantizer.decide(1e-9) for _ in range(200)]
        assert 1 in decisions and -1 in decisions

    def test_large_inputs_still_deterministic(self):
        quantizer = DitheredQuantizer(dither_rms=0.1e-6, seed=0)
        decisions = [quantizer.decide(5e-6) for _ in range(100)]
        assert all(d == 1 for d in decisions)

    def test_seeded_reproducibility(self):
        a = DitheredQuantizer(dither_rms=1e-6, seed=3)
        b = DitheredQuantizer(dither_rms=1e-6, seed=3)
        assert [a.decide(0.0) for _ in range(64)] == [
            b.decide(0.0) for _ in range(64)
        ]

    def test_rejects_negative_dither(self):
        with pytest.raises(ConfigurationError):
            DitheredQuantizer(dither_rms=-1e-9)


class TestIdleToneSuppression:
    @staticmethod
    def tonality(modulator, dc_level):
        stream = modulator(np.full(N, dc_level))
        return idle_tone_power_ratio(stream, FS, band_low=2e3, band_high=100e3)

    def test_dc_input_produces_idle_tones(self, quiet_cell_config):
        # The undithered loop at a rational DC level is strongly tonal
        # (NTF-whitened peak-to-median well above the noise-like ~12).
        modulator = SIModulator2(quiet_cell_config)
        assert self.tonality(modulator, 1.5e-6) > 25.0

    def test_dither_suppresses_idle_tones(self, quiet_cell_config):
        plain = SIModulator2(quiet_cell_config)
        dithered = SIModulator2(
            quiet_cell_config,
            quantizer=DitheredQuantizer(dither_rms=2e-6, seed=1),
        )
        tonality_plain = self.tonality(plain, 1.5e-6)
        tonality_dithered = self.tonality(dithered, 1.5e-6)
        assert tonality_dithered < 0.5 * tonality_plain
        assert tonality_dithered < 20.0

    def test_dither_costs_little_sndr(self, quiet_cell_config):
        # In-loop dither is noise-shaped: even a dither of a third of
        # full scale costs only a handful of dB in band.
        t = np.arange(N)
        x = 3e-6 * np.sin(2.0 * np.pi * 13 * t / N)
        f0 = 13 * FS / N

        def sndr(modulator):
            spectrum = compute_spectrum(modulator(x), FS)
            return measure_tone(
                spectrum, fundamental_frequency=f0, bandwidth=10e3
            ).sndr_db

        plain = sndr(SIModulator2(quiet_cell_config))
        dithered = sndr(
            SIModulator2(
                quiet_cell_config,
                quantizer=DitheredQuantizer(dither_rms=2e-6, seed=2),
            )
        )
        assert dithered > plain - 10.0


class TestMetric:
    def test_rejects_short_stream(self):
        with pytest.raises(AnalysisError):
            idle_tone_power_ratio(np.zeros(64), FS, 1e3, 10e3)

    def test_rejects_narrow_band(self, quiet_cell_config):
        stream = SIModulator2(quiet_cell_config)(np.zeros(4096))
        with pytest.raises(AnalysisError):
            idle_tone_power_ratio(stream, FS, 1e3, 1.5e3)

    def test_white_noise_is_not_tonal(self):
        rng = np.random.default_rng(0)
        noise = rng.normal(0.0, 1e-6, size=N)
        ratio = idle_tone_power_ratio(
            noise, FS, 2e3, 100e3, whiten_order=0
        )
        assert ratio < 30.0

    def test_rejects_negative_whiten_order(self):
        with pytest.raises(ConfigurationError):
            idle_tone_power_ratio(np.zeros(4096), FS, 2e3, 100e3, whiten_order=-1)
