"""Tests for the first-order SI modulator baseline."""

import numpy as np
import pytest

from repro.analysis.metrics import measure_tone
from repro.analysis.spectrum import compute_spectrum
from repro.deltasigma.modulator1 import SIModulator1
from repro.deltasigma.modulator2 import SIModulator2
from repro.errors import ConfigurationError

FS = 2.45e6


def coherent_tone(amplitude, cycles, n):
    t = np.arange(n)
    return amplitude * np.sin(2.0 * np.pi * cycles * t / n)


class TestBasics:
    def test_order(self, cell_config):
        assert SIModulator1(cell_config).order == 1

    def test_output_levels_binary(self, ideal_config):
        y = SIModulator1(ideal_config)(coherent_tone(3e-6, 7, 1024))
        assert set(np.unique(y)) <= {-6e-6, 6e-6}

    def test_dc_tracking(self, ideal_config):
        y = SIModulator1(ideal_config)(np.full(1 << 13, 2e-6))
        assert float(np.mean(y[500:])) == pytest.approx(2e-6, rel=0.05)

    def test_tone_recovered(self, cell_config):
        n = 1 << 14
        modulator = SIModulator1(cell_config)
        y = modulator(coherent_tone(3e-6, 7, n))
        spectrum = compute_spectrum(y, FS)
        metrics = measure_tone(
            spectrum, fundamental_frequency=7 * FS / n, bandwidth=20e3
        )
        assert metrics.signal_amplitude == pytest.approx(3e-6, rel=0.05)

    def test_reproducible(self, cell_config):
        x = coherent_tone(3e-6, 7, 512)
        np.testing.assert_array_equal(
            SIModulator1(cell_config)(x), SIModulator1(cell_config)(x)
        )

    @pytest.mark.parametrize(
        "kwargs", [{"full_scale": 0.0}, {"a": 0.0}]
    )
    def test_validation(self, kwargs, cell_config):
        with pytest.raises(ConfigurationError):
            SIModulator1(cell_config, **kwargs)

    def test_rejects_2d(self, cell_config):
        with pytest.raises(ConfigurationError):
            SIModulator1(cell_config).run(np.zeros((2, 2)))


class TestOrderComparison:
    def test_second_order_shapes_harder(self, ideal_config):
        # In a fixed in-band fraction, the second-order loop leaves far
        # less quantisation noise than the first-order one.
        n = 1 << 14
        x = coherent_tone(3e-6, 13, n)
        f0 = 13 * FS / n

        def inband_sndr(modulator):
            spectrum = compute_spectrum(modulator(x), FS)
            return measure_tone(
                spectrum, fundamental_frequency=f0, bandwidth=10e3
            ).sndr_db

        first = inband_sndr(SIModulator1(ideal_config))
        second = inband_sndr(SIModulator2(ideal_config))
        assert second > first + 15.0

    def test_first_order_slope_is_9db_per_octave_band(self, ideal_config):
        # Halving the analysis bandwidth gains ~9 dB for first order
        # (vs 15 dB for second order).
        n = 1 << 15
        x = coherent_tone(3e-6, 13, n)
        f0 = 13 * FS / n
        modulator = SIModulator1(ideal_config)
        spectrum = compute_spectrum(modulator(x), FS)
        wide = measure_tone(
            spectrum, fundamental_frequency=f0, bandwidth=40e3
        ).snr_db
        narrow = measure_tone(
            spectrum, fundamental_frequency=f0, bandwidth=20e3
        ).snr_db
        assert narrow - wide == pytest.approx(9.0, abs=3.0)
