"""Tests for the ideal second-order modulator."""

import numpy as np
import pytest

from repro.analysis.metrics import measure_tone
from repro.analysis.spectrum import compute_spectrum
from repro.deltasigma.ideal import IdealSecondOrderModulator
from repro.errors import ConfigurationError

FS = 2.45e6
N = 1 << 13


def coherent_tone(amplitude, cycles, n=N):
    t = np.arange(n)
    return amplitude * np.sin(2.0 * np.pi * cycles * t / n)


class TestBasics:
    def test_output_levels_are_binary(self):
        modulator = IdealSecondOrderModulator(full_scale=6e-6)
        y = modulator(coherent_tone(3e-6, 7))
        assert set(np.unique(y)) <= {-6e-6, 6e-6}

    def test_dc_input_duty_cycle(self):
        # A DC input of FS/3 must produce a bit stream whose mean
        # converges to FS/3.
        modulator = IdealSecondOrderModulator(full_scale=6e-6)
        y = modulator(np.full(N, 2e-6))
        assert float(np.mean(y[200:])) == pytest.approx(2e-6, rel=0.02)

    def test_zero_input_zero_mean(self):
        modulator = IdealSecondOrderModulator(full_scale=6e-6)
        y = modulator(np.zeros(N))
        assert abs(float(np.mean(y))) < 0.05 * 6e-6

    def test_reset_between_calls(self):
        modulator = IdealSecondOrderModulator()
        a = modulator(coherent_tone(3e-6, 7))
        b = modulator(coherent_tone(3e-6, 7))
        np.testing.assert_array_equal(a, b)

    def test_run_preserves_state(self):
        modulator = IdealSecondOrderModulator()
        first = modulator.run(np.full(16, 1e-6))
        second = modulator.run(np.full(16, 1e-6))
        assert not np.array_equal(first, second)

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            IdealSecondOrderModulator().run(np.zeros((2, 2)))

    def test_rejects_bad_full_scale(self):
        with pytest.raises(ConfigurationError):
            IdealSecondOrderModulator(full_scale=0.0)


class TestNoiseShaping:
    def test_inband_sqnr_exceeds_13_bits_at_osr_128(self):
        # "the second-order modulator would have achieved a dynamic
        # range over 13 bits" -- the quantisation-limited reference.
        modulator = IdealSecondOrderModulator(full_scale=6e-6)
        n = 1 << 16
        tone = coherent_tone(3e-6, 23, n)
        y = modulator(tone)
        spectrum = compute_spectrum(y, FS)
        metrics = measure_tone(spectrum, bandwidth=FS / 256.0)
        assert metrics.sndr_db > 80.0 - 6.0  # -6 dB input

    def test_noise_rises_out_of_band(self):
        # Shaped quantisation noise: the out-of-band half must hold far
        # more power than the in-band fraction.
        modulator = IdealSecondOrderModulator(full_scale=6e-6)
        y = modulator(np.zeros(1 << 14))
        spectrum = compute_spectrum(y, FS)
        low = spectrum.band_power(1e3, FS / 64.0)
        high = spectrum.band_power(FS / 4.0, FS / 2.0)
        assert high > 100.0 * low

    def test_stable_at_half_scale(self):
        modulator = IdealSecondOrderModulator(full_scale=6e-6)
        trace = modulator(coherent_tone(3e-6, 7))
        # Stability proxy: no long runs of one level.
        longest = max(
            len(list(group))
            for _, group in __import__("itertools").groupby(trace)
        )
        assert longest < 50
