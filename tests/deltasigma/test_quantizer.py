"""Tests for the one-bit current quantiser."""

import pytest

from repro.deltasigma.quantizer import CurrentQuantizer
from repro.errors import ConfigurationError


class TestIdealQuantizer:
    def test_sign_decisions(self):
        quantizer = CurrentQuantizer()
        assert quantizer.decide(1e-6) == 1
        assert quantizer.decide(-1e-6) == -1

    def test_zero_resolves_positive(self):
        assert CurrentQuantizer().decide(0.0) == 1

    def test_decision_type(self):
        assert isinstance(CurrentQuantizer().decide(1.0), int)


class TestOffset:
    def test_offset_shifts_threshold(self):
        quantizer = CurrentQuantizer(offset=1e-6)
        assert quantizer.decide(0.5e-6) == -1
        assert quantizer.decide(1.5e-6) == 1

    def test_negative_offset(self):
        quantizer = CurrentQuantizer(offset=-1e-6)
        assert quantizer.decide(-0.5e-6) == 1


class TestHysteresis:
    def test_hysteresis_favours_last_decision(self):
        quantizer = CurrentQuantizer(hysteresis=1e-6)
        assert quantizer.decide(2e-6) == 1
        # A small negative input is not enough to flip: threshold moved
        # to -1 uA by the previous +1 decision.
        assert quantizer.decide(-0.5e-6) == 1
        # A large negative input flips.
        assert quantizer.decide(-2e-6) == -1
        # Now small positive inputs are not enough either.
        assert quantizer.decide(0.5e-6) == -1

    def test_reset_clears_hysteresis_state(self):
        quantizer = CurrentQuantizer(hysteresis=1e-6)
        quantizer.decide(-5e-6)
        quantizer.reset()
        # After reset the remembered decision is +1 again.
        assert quantizer.decide(-0.5e-6) == 1


class TestMetastability:
    def test_inside_band_is_random(self):
        quantizer = CurrentQuantizer(metastability_band=1e-6, seed=0)
        decisions = [quantizer.decide(1e-9) for _ in range(200)]
        assert 1 in decisions and -1 in decisions

    def test_outside_band_is_deterministic(self):
        quantizer = CurrentQuantizer(metastability_band=1e-9, seed=0)
        decisions = [quantizer.decide(1e-6) for _ in range(50)]
        assert all(d == 1 for d in decisions)

    def test_seeded_reproducibility(self):
        a = CurrentQuantizer(metastability_band=1e-6, seed=3)
        b = CurrentQuantizer(metastability_band=1e-6, seed=3)
        da = [a.decide(0.0) for _ in range(64)]
        db = [b.decide(0.0) for _ in range(64)]
        assert da == db


class TestValidation:
    def test_rejects_negative_hysteresis(self):
        with pytest.raises(ConfigurationError):
            CurrentQuantizer(hysteresis=-1e-9)

    def test_rejects_negative_band(self):
        with pytest.raises(ConfigurationError):
            CurrentQuantizer(metastability_band=-1e-9)
