"""Tests for chopper modulation."""

import numpy as np
import pytest

from repro.deltasigma.chopper import ChopperSequence, chop
from repro.errors import ConfigurationError


class TestSequence:
    def test_alternation(self):
        seq = ChopperSequence()
        assert [seq.next() for _ in range(6)] == [1, -1, 1, -1, 1, -1]

    def test_current_peeks_without_advancing(self):
        seq = ChopperSequence()
        assert seq.current == 1
        assert seq.current == 1
        seq.next()
        assert seq.current == -1

    def test_reset(self):
        seq = ChopperSequence()
        seq.next()
        seq.reset()
        assert seq.next() == 1


class TestChopFunction:
    def test_alternating_signs(self):
        signal = np.ones(6)
        np.testing.assert_allclose(chop(signal), [1, -1, 1, -1, 1, -1])

    def test_start_negative(self):
        signal = np.ones(4)
        np.testing.assert_allclose(chop(signal, start=-1), [-1, 1, -1, 1])

    def test_involution(self):
        # Chopping twice restores the signal: c^2 = 1.
        rng = np.random.default_rng(0)
        signal = rng.normal(size=128)
        np.testing.assert_allclose(chop(chop(signal)), signal)

    def test_frequency_translation(self):
        # Chopping a DC signal produces a tone at exactly fs/2.
        n = 256
        chopped = chop(np.ones(n))
        spectrum = np.abs(np.fft.rfft(chopped))
        assert int(np.argmax(spectrum)) == n // 2

    def test_translation_of_baseband_tone(self):
        # A tone at bin k moves to bin N/2 - k.
        n = 512
        k = 20
        t = np.arange(n)
        tone = np.cos(2.0 * np.pi * k * t / n)
        spectrum = np.abs(np.fft.rfft(chop(tone)))
        assert int(np.argmax(spectrum)) == n // 2 - k

    def test_rejects_bad_start(self):
        with pytest.raises(ConfigurationError):
            chop(np.ones(4), start=0)

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            chop(np.ones((2, 2)))

    def test_z_to_minus_z_identity(self):
        # Chop -> one-sample delay -> chop equals a negated delay:
        # the z -> -z mapping on the simplest system H(z) = z^-1.
        rng = np.random.default_rng(1)
        x = rng.normal(size=64)
        delayed_chopped = np.concatenate([[0.0], chop(x)[:-1]])
        result = chop(delayed_chopped)
        expected = -np.concatenate([[0.0], x[:-1]])
        np.testing.assert_allclose(result, expected)
