"""Tests for the Fig. 3(a) SI delta-sigma modulator."""

import numpy as np
import pytest

from repro.analysis.metrics import measure_tone
from repro.analysis.spectrum import compute_spectrum
from repro.deltasigma.ideal import IdealSecondOrderModulator
from repro.deltasigma.modulator2 import SIModulator2
from repro.errors import ConfigurationError

FS = 2.45e6
N = 1 << 13


def coherent_tone(amplitude, cycles, n=N):
    t = np.arange(n)
    return amplitude * np.sin(2.0 * np.pi * cycles * t / n)


class TestStructure:
    def test_default_coefficients_realize_eq3(self, cell_config):
        assert SIModulator2(cell_config).realizes_eq3

    def test_nonstandard_coefficients_flagged(self, cell_config):
        modulator = SIModulator2(cell_config, a1=0.5, a2=1.0, b2=2.0)
        assert not modulator.realizes_eq3

    def test_scaled_loop_same_bitstream(self, ideal_config):
        # State-2 scaling freedom: any b2 = 2 a1 a2 gives the identical
        # bit stream -- the basis of the paper's swing optimisation.
        x = coherent_tone(3e-6, 7, 1 << 10)
        a = SIModulator2(ideal_config, a1=0.5, a2=1.0, b2=1.0)(x)
        b = SIModulator2(ideal_config, a1=0.5, a2=2.0, b2=2.0)(x)
        np.testing.assert_array_equal(a, b)

    def test_output_levels_binary(self, ideal_config):
        modulator = SIModulator2(ideal_config)
        y = modulator(coherent_tone(3e-6, 7))
        assert set(np.unique(y)) <= {-6e-6, 6e-6}

    def test_ideal_cells_match_ideal_modulator(self, ideal_config):
        # With every cell nonideality off, the SI loop must reproduce
        # the pure difference-equation loop bit for bit.
        si = SIModulator2(ideal_config)
        ideal = IdealSecondOrderModulator(full_scale=6e-6)
        x = coherent_tone(3e-6, 7, 1 << 10)
        np.testing.assert_allclose(si(x), ideal(x), atol=1e-12)

    def test_rejects_bad_full_scale(self, cell_config):
        with pytest.raises(ConfigurationError):
            SIModulator2(cell_config, full_scale=0.0)

    def test_rejects_bad_coefficients(self, cell_config):
        with pytest.raises(ConfigurationError):
            SIModulator2(cell_config, a1=0.0)

    def test_rejects_2d_stimulus(self, cell_config):
        with pytest.raises(ConfigurationError):
            SIModulator2(cell_config).run(np.zeros((2, 2)))


class TestSignalTransfer:
    def test_dc_tracking(self, ideal_config):
        modulator = SIModulator2(ideal_config)
        y = modulator(np.full(N, 2e-6))
        assert float(np.mean(y[500:])) == pytest.approx(2e-6, rel=0.05)

    def test_tone_recovered_in_band(self, cell_config):
        modulator = SIModulator2(cell_config)
        y = modulator(coherent_tone(3e-6, 7, 1 << 14))
        spectrum = compute_spectrum(y, FS)
        f0 = 7 * FS / (1 << 14)
        metrics = measure_tone(spectrum, fundamental_frequency=f0, bandwidth=20e3)
        assert metrics.signal_amplitude == pytest.approx(3e-6, rel=0.05)


class TestStateRecording:
    def test_trace_shapes(self, cell_config):
        modulator = SIModulator2(cell_config)
        trace = modulator.run(coherent_tone(3e-6, 7, 512), record_states=True)
        assert trace.output.shape == (512,)
        assert trace.decisions.shape == (512,)
        assert trace.state1.shape == (512,)
        assert trace.state2.shape == (512,)

    def test_swing_claim(self, cell_config):
        # Section IV: internal states need "a signal range ... slightly
        # larger than twice the full-scale input range" (checked at the
        # paper's -6 dB operating point).
        modulator = SIModulator2(cell_config)
        trace = modulator.run(coherent_tone(3e-6, 13, 1 << 12), record_states=True)
        assert trace.max_state_swing < 2.5 * modulator.full_scale

    def test_decisions_match_output_sign(self, cell_config):
        modulator = SIModulator2(cell_config)
        trace = modulator.run(coherent_tone(3e-6, 7, 256), record_states=True)
        np.testing.assert_array_equal(np.sign(trace.output), trace.decisions)


class TestNonidealities:
    def test_noise_floor_set_by_cells(self, cell_config, ideal_config):
        def inband_noise(config):
            modulator = SIModulator2(config)
            y = modulator(np.zeros(1 << 13))
            spectrum = compute_spectrum(y, FS)
            return spectrum.band_power(1e3, 10e3)

        assert inband_noise(cell_config) > 10.0 * inband_noise(ideal_config)

    def test_comparator_offset_tolerated(self, quiet_cell_config):
        # The famous second-order robustness: a large comparator offset
        # barely moves the in-band performance.
        from repro.deltasigma.quantizer import CurrentQuantizer

        x = coherent_tone(3e-6, 7, 1 << 13)
        clean = SIModulator2(quiet_cell_config)
        offset = SIModulator2(
            quiet_cell_config, quantizer=CurrentQuantizer(offset=0.5e-6)
        )
        m_clean = measure_tone(
            compute_spectrum(clean(x), FS),
            fundamental_frequency=7 * FS / (1 << 13),
            bandwidth=10e3,
        )
        m_offset = measure_tone(
            compute_spectrum(offset(x), FS),
            fundamental_frequency=7 * FS / (1 << 13),
            bandwidth=10e3,
        )
        assert m_offset.sndr_db > m_clean.sndr_db - 6.0

    def test_reproducible_with_seed(self, cell_config):
        x = coherent_tone(3e-6, 7, 512)
        a = SIModulator2(cell_config)(x)
        b = SIModulator2(cell_config)(x)
        np.testing.assert_array_equal(a, b)
