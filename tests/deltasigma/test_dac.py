"""Tests for the one-bit feedback DAC."""

import numpy as np
import pytest

from repro.deltasigma.dac import FeedbackDac
from repro.errors import ConfigurationError


class TestIdealDac:
    def test_levels(self):
        dac = FeedbackDac(full_scale=6e-6)
        assert dac.convert(1) == pytest.approx(6e-6)
        assert dac.convert(-1) == pytest.approx(-6e-6)

    def test_rejects_other_codes(self):
        with pytest.raises(ConfigurationError):
            FeedbackDac().convert(0)

    def test_levels_are_symmetric(self):
        dac = FeedbackDac(full_scale=6e-6)
        assert dac.convert(1) == pytest.approx(-dac.convert(-1))


class TestLevelMismatch:
    def test_mismatch_breaks_symmetry(self):
        dac = FeedbackDac(full_scale=6e-6, level_mismatch=0.02)
        assert dac.convert(1) == pytest.approx(6e-6 * 1.01)
        assert dac.convert(-1) == pytest.approx(-6e-6 * 0.99)

    def test_one_bit_dac_stays_two_level(self):
        # Even mismatched, a 1-bit DAC has exactly two output values --
        # the inherent-linearity property of oversampling converters.
        dac = FeedbackDac(full_scale=6e-6, level_mismatch=0.05)
        outputs = {dac.convert(1) for _ in range(10)}
        outputs |= {dac.convert(-1) for _ in range(10)}
        assert len(outputs) == 2


class TestReferenceNoise:
    def test_noise_spreads_levels(self):
        dac = FeedbackDac(full_scale=6e-6, reference_noise_rms=10e-9, seed=0)
        outputs = np.array([dac.convert(1) for _ in range(5000)])
        assert float(np.std(outputs)) == pytest.approx(10e-9, rel=0.1)
        assert float(np.mean(outputs)) == pytest.approx(6e-6, rel=0.01)

    def test_seeded_reproducibility(self):
        a = FeedbackDac(reference_noise_rms=1e-9, seed=4)
        b = FeedbackDac(reference_noise_rms=1e-9, seed=4)
        assert [a.convert(1) for _ in range(16)] == [b.convert(1) for _ in range(16)]


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"full_scale": 0.0},
            {"level_mismatch": 1.0},
            {"level_mismatch": -1.0},
            {"reference_noise_rms": -1e-9},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            FeedbackDac(**kwargs)
