"""Tests for the Fig. 3(b) chopper-stabilised SI modulator."""

import numpy as np
import pytest

from repro.analysis.metrics import measure_tone
from repro.analysis.spectrum import compute_spectrum
from repro.deltasigma.chopper_modulator import ChopperStabilizedSIModulator
from repro.deltasigma.ideal import IdealSecondOrderModulator
from repro.errors import ConfigurationError

FS = 2.45e6


def coherent_tone(amplitude, cycles, n):
    t = np.arange(n)
    return amplitude * np.sin(2.0 * np.pi * cycles * t / n)


class TestStructure:
    def test_default_coefficients_realize_eq3(self, cell_config):
        assert ChopperStabilizedSIModulator(cell_config).realizes_eq3

    def test_ideal_cells_match_ideal_modulator(self, ideal_config):
        # The chopped loop's post-chopper output must equal the
        # conventional loop's output exactly when everything is ideal:
        # the z -> -z equivalence at work.
        chop = ChopperStabilizedSIModulator(ideal_config)
        ideal = IdealSecondOrderModulator(full_scale=6e-6)
        x = coherent_tone(3e-6, 7, 1 << 10)
        np.testing.assert_allclose(chop(x), ideal(x), atol=1e-12)

    def test_rejects_bad_parameters(self, cell_config):
        with pytest.raises(ConfigurationError):
            ChopperStabilizedSIModulator(cell_config, full_scale=-1.0)
        with pytest.raises(ConfigurationError):
            ChopperStabilizedSIModulator(cell_config, b2=0.0)

    def test_rejects_2d(self, cell_config):
        with pytest.raises(ConfigurationError):
            ChopperStabilizedSIModulator(cell_config).run(np.zeros((2, 2)))


class TestChopperTranslation:
    def test_raw_output_has_signal_at_high_frequency(self, quiet_cell_config):
        # Fig. 6(a): "the signal has been moved to high frequencies".
        n = 1 << 13
        cycles = 9
        modulator = ChopperStabilizedSIModulator(quiet_cell_config)
        trace = modulator.run(coherent_tone(3e-6, cycles, n), record_states=True)
        spectrum = compute_spectrum(trace.raw_output, FS)
        translated_bin = n // 2 - cycles
        lobe = spectrum.window.main_lobe_bins
        power_at_translation = float(
            np.sum(spectrum.power[translated_bin - lobe : translated_bin + lobe + 1])
        )
        power_at_baseband = float(
            np.sum(spectrum.power[cycles - lobe : cycles + lobe + 1])
        )
        # The baseband bin holds only the shaped quantisation noise
        # (which is largest near DC in the raw stream); the tone sits
        # tens of dB above it at the translated frequency.
        assert power_at_translation > 30.0 * power_at_baseband

    def test_output_chopper_restores_baseband(self, quiet_cell_config):
        # Fig. 6(b): "the signal is at the low frequencies".
        n = 1 << 13
        cycles = 9
        modulator = ChopperStabilizedSIModulator(quiet_cell_config)
        y = modulator(coherent_tone(3e-6, cycles, n))
        spectrum = compute_spectrum(y, FS)
        metrics = measure_tone(
            spectrum, fundamental_frequency=cycles * FS / n, bandwidth=20e3
        )
        assert metrics.signal_amplitude == pytest.approx(3e-6, rel=0.05)

    def test_trace_exposes_both_outputs(self, quiet_cell_config):
        modulator = ChopperStabilizedSIModulator(quiet_cell_config)
        trace = modulator.run(coherent_tone(3e-6, 5, 256), record_states=True)
        # The two streams are chop-related: |raw| == |output| sample
        # by sample, and they differ on odd samples.
        np.testing.assert_allclose(np.abs(trace.raw_output), np.abs(trace.output))
        np.testing.assert_allclose(trace.output[1::2], -trace.raw_output[1::2])
        np.testing.assert_allclose(trace.output[0::2], trace.raw_output[0::2])


class TestSwing:
    def test_swing_claim(self, cell_config):
        # Section IV applies to "both integrators and differentiators".
        modulator = ChopperStabilizedSIModulator(cell_config)
        trace = modulator.run(coherent_tone(3e-6, 13, 1 << 12), record_states=True)
        assert trace.max_state_swing < 2.5 * modulator.full_scale


class TestEquivalenceWithConventional:
    def test_same_sndr_when_thermal_limited(self, cell_config):
        # The paper's negative result: "the chopper stabilized SI
        # modulator did not offer the performance superiority" when the
        # floor is thermal and CDS already handles 1/f.
        from repro.deltasigma.modulator2 import SIModulator2

        n = 1 << 14
        x = coherent_tone(3e-6, 13, n)
        f0 = 13 * FS / n

        def sndr(modulator):
            spectrum = compute_spectrum(modulator(x), FS)
            return measure_tone(
                spectrum, fundamental_frequency=f0, bandwidth=10e3
            ).sndr_db

        si = sndr(SIModulator2(cell_config))
        chop = sndr(ChopperStabilizedSIModulator(cell_config))
        assert abs(si - chop) < 3.0

    def test_reproducible_with_seed(self, cell_config):
        x = coherent_tone(3e-6, 7, 512)
        a = ChopperStabilizedSIModulator(cell_config)(x)
        b = ChopperStabilizedSIModulator(cell_config)(x)
        np.testing.assert_array_equal(a, b)
