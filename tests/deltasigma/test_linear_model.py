"""Tests verifying Eq. (3) on the linearised loops."""

import numpy as np
import pytest

from repro.deltasigma.linear_model import (
    LinearLoopModel,
    impulse_response_check,
    ntf_second_order,
    stf_second_order,
)
from repro.errors import ConfigurationError


class TestReferenceResponses:
    def test_stf_taps(self):
        np.testing.assert_allclose(stf_second_order(), [0.0, 0.0, 1.0])

    def test_ntf_taps(self):
        np.testing.assert_allclose(ntf_second_order(), [1.0, -2.0, 1.0])

    def test_ntf_has_double_zero_at_dc(self):
        # (1 - z^-1)^2 evaluated at z = 1 is 0, and so is its slope.
        taps = ntf_second_order()
        assert float(np.sum(taps)) == pytest.approx(0.0)
        assert float(np.sum(taps * np.arange(3))) == pytest.approx(0.0)


class TestIntegratorTopology:
    def test_eq3_exact(self):
        result = impulse_response_check(LinearLoopModel(topology="integrator"))
        assert result["stf_error"] == pytest.approx(0.0, abs=1e-12)
        assert result["ntf_error"] == pytest.approx(0.0, abs=1e-12)

    def test_signal_delayed_two_samples(self):
        model = LinearLoopModel(topology="integrator")
        response = model.signal_impulse_response(8)
        np.testing.assert_allclose(response, [0, 0, 1, 0, 0, 0, 0, 0], atol=1e-12)

    def test_alternative_scaling_still_eq3(self):
        # Any a1*a2 = 1, b2 = 2 realises the same transfer.
        model = LinearLoopModel(a1=0.25, a2=4.0, b2=2.0)
        result = impulse_response_check(model)
        assert result["stf_error"] == pytest.approx(0.0, abs=1e-12)
        assert result["ntf_error"] == pytest.approx(0.0, abs=1e-12)

    def test_wrong_coefficients_break_eq3(self):
        model = LinearLoopModel(a1=0.5, a2=1.0, b2=2.0)
        result = impulse_response_check(model)
        assert result["stf_error"] > 1e-3

    def test_superposition(self):
        model = LinearLoopModel()
        rng = np.random.default_rng(0)
        x = rng.normal(size=64)
        e = rng.normal(size=64)
        combined = model.run(x, e)
        separate = model.run(x) + model.run(np.zeros(64), e)
        np.testing.assert_allclose(combined, separate, atol=1e-12)


class TestChopperTopology:
    def test_eq3_exact(self):
        result = impulse_response_check(LinearLoopModel(topology="chopper"))
        assert result["stf_error"] == pytest.approx(0.0, abs=1e-12)
        assert result["ntf_error"] == pytest.approx(0.0, abs=1e-12)

    def test_both_topologies_same_signal_response(self):
        # "Linear analysis ... reveal that both circuits of Fig. 3
        # realize the second-order delta-sigma modulators."
        rng = np.random.default_rng(1)
        x = rng.normal(size=128)
        y_int = LinearLoopModel(topology="integrator").run(x)
        y_chop = LinearLoopModel(topology="chopper").run(x)
        np.testing.assert_allclose(y_chop, y_int, atol=1e-10)

    def test_sine_passes_with_two_sample_delay(self):
        n = 256
        t = np.arange(n)
        x = np.sin(2.0 * np.pi * 5.0 * t / n)
        y = LinearLoopModel(topology="chopper").run(x)
        np.testing.assert_allclose(y[2:], x[:-2], atol=1e-10)


class TestValidation:
    def test_rejects_bad_topology(self):
        with pytest.raises(ConfigurationError):
            LinearLoopModel(topology="banana")

    def test_rejects_mismatched_error_length(self):
        model = LinearLoopModel()
        with pytest.raises(ConfigurationError):
            model.run(np.zeros(8), np.zeros(9))

    def test_rejects_2d_input(self):
        with pytest.raises(ConfigurationError):
            LinearLoopModel().run(np.zeros((2, 4)))
