"""Failure-injection tests: how the loops tolerate broken analog parts.

"Oversampling A/D converters are known to deliver high performance
from relatively inaccurate analog components" [18] -- these tests
quantify which imperfections the second-order loop absorbs and which
it does not.
"""

import numpy as np
import pytest

from repro.analysis.metrics import measure_tone
from repro.analysis.spectrum import compute_spectrum
from repro.deltasigma.dac import FeedbackDac
from repro.deltasigma.modulator2 import SIModulator2
from repro.deltasigma.quantizer import CurrentQuantizer

FS = 2.45e6
N = 1 << 13


def coherent_tone(amplitude, cycles, n=N):
    t = np.arange(n)
    return amplitude * np.sin(2.0 * np.pi * cycles * t / n)


def measure(modulator, amplitude=3e-6, cycles=13, n=N, bandwidth=10e3):
    x = coherent_tone(amplitude, cycles, n)
    spectrum = compute_spectrum(modulator(x), FS)
    return measure_tone(
        spectrum, fundamental_frequency=cycles * FS / n, bandwidth=bandwidth
    )


class TestQuantizerImperfections:
    def test_large_offset_tolerated(self, quiet_cell_config):
        clean = measure(SIModulator2(quiet_cell_config))
        dirty = measure(
            SIModulator2(
                quiet_cell_config, quantizer=CurrentQuantizer(offset=1e-6)
            )
        )
        assert dirty.sndr_db > clean.sndr_db - 6.0

    def test_hysteresis_tolerated(self, quiet_cell_config):
        clean = measure(SIModulator2(quiet_cell_config))
        dirty = measure(
            SIModulator2(
                quiet_cell_config, quantizer=CurrentQuantizer(hysteresis=0.5e-6)
            )
        )
        assert dirty.sndr_db > clean.sndr_db - 10.0

    def test_metastability_tolerated(self, quiet_cell_config):
        clean = measure(SIModulator2(quiet_cell_config))
        dirty = measure(
            SIModulator2(
                quiet_cell_config,
                quantizer=CurrentQuantizer(metastability_band=0.2e-6, seed=1),
            )
        )
        assert dirty.sndr_db > clean.sndr_db - 10.0


class TestDacImperfections:
    def test_level_mismatch_is_benign_gain_error(self, quiet_cell_config):
        # A 1-bit DAC's mismatch is gain+offset, not distortion: the
        # measured THD must stay deep.
        dirty = measure(
            SIModulator2(
                quiet_cell_config,
                dac=FeedbackDac(full_scale=6e-6, level_mismatch=0.05),
            )
        )
        assert dirty.thd_db < -50.0

    def test_reference_noise_raises_floor(self, quiet_cell_config):
        clean = measure(SIModulator2(quiet_cell_config))
        noisy = measure(
            SIModulator2(
                quiet_cell_config,
                dac=FeedbackDac(
                    full_scale=6e-6, reference_noise_rms=50e-9, seed=2
                ),
            )
        )
        # DAC noise enters at the input summing node: unshaped.
        assert noisy.snr_db < clean.snr_db - 3.0


class TestStabilityEnvelope:
    def test_stable_at_full_scale_dc(self, quiet_cell_config):
        # DC at the edge of range: large but bounded state excursions
        # (a second-order loop's states grow sharply near overload but
        # must not diverge).
        modulator = SIModulator2(quiet_cell_config)
        trace = modulator.run(np.full(4096, 5.9e-6), record_states=True)
        assert trace.max_state_swing < 25.0 * modulator.full_scale

    def test_recovers_from_overload(self, quiet_cell_config):
        # Drive past full scale, then back: the loop must recover and
        # track again (second-order loops recover without reset).
        modulator = SIModulator2(quiet_cell_config)
        overload = np.full(512, 9e-6)
        normal = np.full(4096, 2e-6)
        modulator.reset()
        modulator.run(overload)
        y = modulator.run(normal)
        assert float(np.mean(y[2000:])) == pytest.approx(2e-6, rel=0.1)

    def test_alternating_full_scale_input(self, quiet_cell_config):
        # A Nyquist-rate full-scale square input: states stay bounded.
        modulator = SIModulator2(quiet_cell_config)
        x = 5e-6 * np.where(np.arange(2048) % 2 == 0, 1.0, -1.0)
        trace = modulator.run(x, record_states=True)
        assert trace.max_state_swing < 10.0 * modulator.full_scale
