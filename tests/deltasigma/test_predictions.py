"""Tests for the Section V dynamic-range arithmetic."""

import pytest

from repro.deltasigma.predictions import (
    expected_dynamic_range_db,
    oversampling_gain_db,
    thermal_limited_dynamic_range_db,
)
from repro.errors import ConfigurationError


class TestOversamplingGain:
    def test_paper_21_db(self):
        # "Oversampling by a factor of 128 increased the dynamic range
        # by 21 dB."
        assert oversampling_gain_db(128.0) == pytest.approx(21.07, abs=0.01)

    def test_unity_osr(self):
        assert oversampling_gain_db(1.0) == pytest.approx(0.0)

    def test_rejects_below_one(self):
        with pytest.raises(ConfigurationError):
            oversampling_gain_db(0.5)


class TestThermalLimit:
    def test_paper_66_db(self):
        # 6 uA peak over 33 nA noise is 45 dB; plus 21 dB of OSR: 66 dB.
        dr = thermal_limited_dynamic_range_db(6e-6, 33e-9, 128.0)
        assert dr == pytest.approx(66.3, abs=0.3)

    def test_base_45_db(self):
        dr = thermal_limited_dynamic_range_db(6e-6, 33e-9, 1.0)
        assert dr == pytest.approx(45.2, abs=0.2)

    def test_rejects_bad_currents(self):
        with pytest.raises(ConfigurationError):
            thermal_limited_dynamic_range_db(0.0, 33e-9, 128.0)
        with pytest.raises(ConfigurationError):
            thermal_limited_dynamic_range_db(6e-6, 0.0, 128.0)


class TestCombinedBudget:
    def test_thermal_dominates_at_paper_point(self):
        # The paper's conclusion: "the dynamic range was mainly limited
        # by the noise in the SI circuits not by the quantization noise".
        budget = expected_dynamic_range_db(6e-6, 33e-9, 128.0)
        assert budget["dominant"] == 1.0
        assert budget["thermal_db"] < budget["quantization_db"]

    def test_combined_below_both(self):
        budget = expected_dynamic_range_db(6e-6, 33e-9, 128.0)
        assert budget["combined_db"] <= budget["thermal_db"] + 0.1
        assert budget["combined_db"] <= budget["quantization_db"] + 0.1

    def test_quantization_dominates_at_low_osr(self):
        budget = expected_dynamic_range_db(6e-6, 33e-9, 8.0)
        assert budget["dominant"] == 0.0

    def test_combined_close_to_thermal_at_high_osr(self):
        budget = expected_dynamic_range_db(6e-6, 33e-9, 128.0)
        assert budget["combined_db"] == pytest.approx(budget["thermal_db"], abs=0.5)
