"""Tests for figure-series dumps and ASCII plots."""

import numpy as np
import pytest

from repro.analysis.spectrum import compute_spectrum
from repro.errors import ConfigurationError
from repro.reporting.figures import ascii_plot, spectrum_series, sweep_series


@pytest.fixture
def spectrum():
    t = np.arange(1 << 14)
    signal = 1e-6 * np.sin(2.0 * np.pi * 301 * t / (1 << 14))
    return compute_spectrum(signal, 1e6)


class TestSpectrumSeries:
    def test_short_spectrum_untouched(self):
        t = np.arange(256)
        spectrum = compute_spectrum(np.sin(2.0 * np.pi * 10 * t / 256), 1e6)
        freqs, power = spectrum_series(spectrum, reference_power=1.0)
        assert freqs.shape[0] == spectrum.n_bins

    def test_decimation_bounds_length(self, spectrum):
        freqs, power = spectrum_series(spectrum, reference_power=1.0, max_points=256)
        assert freqs.shape[0] <= 256

    def test_peak_survives_decimation(self, spectrum):
        # Max-pooling keeps the tone visible, like a peak-hold display.
        freqs, power = spectrum_series(
            spectrum, reference_power=(1e-6) ** 2 / 2.0, max_points=128
        )
        assert float(np.max(power)) > -10.0

    def test_rejects_bad_args(self, spectrum):
        with pytest.raises(ConfigurationError):
            spectrum_series(spectrum, reference_power=0.0)
        with pytest.raises(ConfigurationError):
            spectrum_series(spectrum, reference_power=1.0, max_points=1)


class TestSweepSeries:
    def test_pairs(self):
        pairs = sweep_series(np.array([-10.0, 0.0]), np.array([50.0, 60.0]))
        assert pairs == [(-10.0, 50.0), (0.0, 60.0)]

    def test_rejects_mismatch(self):
        with pytest.raises(ConfigurationError):
            sweep_series(np.zeros(2), np.zeros(3))


class TestAsciiPlot:
    def test_renders_points(self):
        text = ascii_plot(np.array([0.0, 1.0, 2.0]), np.array([0.0, 1.0, 0.0]))
        assert "*" in text

    def test_title_included(self):
        text = ascii_plot(np.arange(4.0), np.arange(4.0), title="Fig. 7")
        assert "Fig. 7" in text

    def test_flat_series_ok(self):
        text = ascii_plot(np.arange(4.0), np.zeros(4))
        assert "*" in text

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ascii_plot(np.zeros(0), np.zeros(0))

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ConfigurationError):
            ascii_plot(np.arange(4.0), np.arange(4.0), width=2, height=2)
