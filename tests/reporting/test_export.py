"""Tests for the CSV/JSON export helpers."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.reporting.export import (
    read_series_csv,
    write_comparison_json,
    write_series_csv,
)
from repro.reporting.records import PaperComparison


class TestSeriesCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "series.csv"
        frequencies = np.linspace(0.0, 1e6, 33)
        power = np.random.default_rng(0).normal(size=33)
        write_series_csv(path, {"frequency_hz": frequencies, "power_db": power})
        loaded = read_series_csv(path)
        np.testing.assert_allclose(loaded["frequency_hz"], frequencies)
        np.testing.assert_allclose(loaded["power_db"], power)

    def test_exact_float_round_trip(self, tmp_path):
        # repr-based serialisation: bit-exact round trips.
        path = tmp_path / "exact.csv"
        values = np.array([1.0 / 3.0, np.pi, 33e-9])
        write_series_csv(path, {"v": values})
        np.testing.assert_array_equal(read_series_csv(path)["v"], values)

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_series_csv(tmp_path / "x.csv", {})

    def test_rejects_mismatched_lengths(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_series_csv(
                tmp_path / "x.csv", {"a": np.zeros(3), "b": np.zeros(4)}
            )

    def test_read_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("only,a,header\n")
        with pytest.raises(ConfigurationError):
            read_series_csv(path)


class TestComparisonJson:
    def test_structure(self, tmp_path):
        comparison = PaperComparison()
        comparison.add("Table 1", "THD", "-50 dB", "-49.9 dB", True)
        comparison.add("Fig. 7", "DR", "63 dB", "60.3 dB", True)
        path = write_comparison_json(
            tmp_path / "cmp.json", comparison, metadata={"seed": 7}
        )
        payload = json.loads(path.read_text())
        assert payload["all_shapes_hold"] is True
        assert len(payload["records"]) == 2
        assert payload["records"][0]["experiment"] == "Table 1"
        assert payload["metadata"]["seed"] == 7

    def test_failed_shape_serialised(self, tmp_path):
        comparison = PaperComparison()
        comparison.add("X", "y", "1", "2", False)
        path = write_comparison_json(tmp_path / "cmp.json", comparison)
        payload = json.loads(path.read_text())
        assert payload["all_shapes_hold"] is False
        assert payload["records"][0]["shape_holds"] is False
