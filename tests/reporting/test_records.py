"""Tests for paper-vs-measured comparison records."""

import pytest

from repro.errors import ConfigurationError
from repro.reporting.records import PaperComparison


class TestPaperComparison:
    def test_add_and_render(self):
        comparison = PaperComparison()
        comparison.add("Table 1", "THD @ 8 uA", "-50 dB", "-49.9 dB", True)
        text = comparison.render()
        assert "Table 1" in text
        assert "-49.9 dB" in text
        assert "yes" in text

    def test_failed_shape_flagged(self):
        comparison = PaperComparison()
        comparison.add("Fig. 7", "DR", "63 dB", "20 dB", False)
        assert "NO" in comparison.render()
        assert not comparison.all_shapes_hold

    def test_all_shapes_hold(self):
        comparison = PaperComparison()
        comparison.add("Table 1", "a", "1", "1", True)
        comparison.add("Table 2", "b", "2", "2", True)
        assert comparison.all_shapes_hold

    def test_empty_comparison_holds_vacuously(self):
        assert PaperComparison().all_shapes_hold

    def test_rejects_empty_fields(self):
        with pytest.raises(ConfigurationError):
            PaperComparison().add("", "q", "1", "1", True)
        with pytest.raises(ConfigurationError):
            PaperComparison().add("e", "", "1", "1", True)

    def test_custom_title(self):
        comparison = PaperComparison()
        comparison.add("Table 1", "a", "1", "1", True)
        assert "My title" in comparison.render("My title")
