"""Tests for ASCII table rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.reporting.tables import Table, render_table


class TestRenderTable:
    def test_contains_all_cells(self):
        text = render_table(
            "Table 1. Performance of the delay line",
            ("quantity", "value"),
            [("Power supply voltage", "3.3 V"), ("Power dissipation", "0.7 mW")],
        )
        assert "3.3 V" in text
        assert "0.7 mW" in text
        assert "Table 1" in text

    def test_columns_aligned(self):
        text = render_table(
            "t", ("a", "bbbb"), [("xxxxxxxx", "y"), ("z", "w")]
        )
        lines = [ln for ln in text.splitlines() if ln and not set(ln) <= {"-"}]
        # The second column starts at the same offset in every row.
        offsets = {line.index(token) for line, token in zip(lines[1:], ("bbbb", "y", "w"))}
        assert len(offsets) == 1

    def test_rejects_mismatched_row(self):
        with pytest.raises(ConfigurationError):
            render_table("t", ("a", "b"), [("only one",)])


class TestTableObject:
    def test_add_row_and_render(self):
        table = Table("Table 2", ("quantity", "chopper", "non-chopper"))
        table.add_row("Power diss.", "3.2 mW", "3.2 mW")
        text = table.render()
        assert "chopper" in text
        assert "3.2 mW" in text

    def test_add_row_validates(self):
        table = Table("t", ("a", "b"))
        with pytest.raises(ConfigurationError):
            table.add_row("too", "many", "cells")

    def test_non_string_cells_coerced(self):
        table = Table("t", ("a", "b"))
        table.add_row("x", 3.3)
        assert "3.3" in table.render()
