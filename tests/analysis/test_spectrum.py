"""Tests for the windowed periodogram.

The normalisation contract: bin sums are exact for tones (over the main
lobe) and for noise (over a band), which is what makes the downstream
SNR/THD arithmetic correct for any window.
"""

import numpy as np
import pytest

from repro.analysis.spectrum import compute_spectrum
from repro.analysis.windows import WindowKind
from repro.errors import AnalysisError


def make_tone(amplitude, cycles, n, phase=0.0):
    t = np.arange(n)
    return amplitude * np.sin(2.0 * np.pi * cycles * t / n + phase)


class TestToneNormalisation:
    @pytest.mark.parametrize(
        "window_kind",
        [WindowKind.RECTANGULAR, WindowKind.HANN, WindowKind.BLACKMAN],
    )
    def test_coherent_tone_lobe_power(self, window_kind):
        n = 4096
        amplitude = 2.5
        signal = make_tone(amplitude, 129, n)
        spectrum = compute_spectrum(signal, 1e6, window_kind=window_kind)
        lobe = spectrum.window.main_lobe_bins
        power = float(np.sum(spectrum.power[129 - lobe : 129 + lobe + 1]))
        assert power == pytest.approx(amplitude**2 / 2.0, rel=0.01)

    def test_noncoherent_tone_lobe_power_blackman(self):
        # Blackman contains the leakage of an off-grid tone within its
        # lobe well enough for 1 percent-level power accuracy.
        n = 4096
        t = np.arange(n)
        amplitude = 1.0
        signal = amplitude * np.sin(2.0 * np.pi * 129.4 * t / n)
        spectrum = compute_spectrum(signal, 1e6, window_kind=WindowKind.BLACKMAN)
        power = float(np.sum(spectrum.power[129 - 4 : 129 + 5]))
        assert power == pytest.approx(amplitude**2 / 2.0, rel=0.02)

    def test_two_tones_independent(self):
        n = 8192
        signal = make_tone(1.0, 200, n) + make_tone(0.5, 900, n)
        spectrum = compute_spectrum(signal, 1e6)
        lobe = spectrum.window.main_lobe_bins
        p1 = float(np.sum(spectrum.power[200 - lobe : 200 + lobe + 1]))
        p2 = float(np.sum(spectrum.power[900 - lobe : 900 + lobe + 1]))
        assert p1 == pytest.approx(0.5, rel=0.01)
        assert p2 == pytest.approx(0.125, rel=0.01)


class TestNoiseNormalisation:
    @pytest.mark.parametrize(
        "window_kind",
        [WindowKind.RECTANGULAR, WindowKind.HANN, WindowKind.BLACKMAN],
    )
    def test_white_noise_band_sum(self, window_kind):
        rng = np.random.default_rng(0)
        sigma = 0.1
        noise = rng.normal(0.0, sigma, size=1 << 15)
        spectrum = compute_spectrum(noise, 1e6, window_kind=window_kind)
        total = float(np.sum(spectrum.power))
        assert total == pytest.approx(sigma**2, rel=0.05)


class TestDcHandling:
    def test_dc_removed_by_default(self):
        signal = make_tone(1.0, 100, 4096) + 5.0
        spectrum = compute_spectrum(signal, 1e6)
        assert spectrum.power[0] < 1e-6

    def test_dc_kept_when_requested(self):
        signal = np.full(4096, 2.0) + make_tone(0.001, 100, 4096)
        spectrum = compute_spectrum(signal, 1e6, remove_dc=False)
        assert spectrum.power[0] > 0.1


class TestAccessors:
    def test_bin_width(self):
        spectrum = compute_spectrum(np.random.default_rng(1).normal(size=4096), 1e6)
        assert spectrum.bin_width == pytest.approx(1e6 / 4096)

    def test_bin_of(self):
        spectrum = compute_spectrum(np.random.default_rng(2).normal(size=4096), 1e6)
        assert spectrum.bin_of(0.0) == 0
        assert spectrum.bin_of(1e6 / 4096 * 100) == 100

    def test_bin_of_rejects_out_of_range(self):
        spectrum = compute_spectrum(np.random.default_rng(3).normal(size=4096), 1e6)
        with pytest.raises(AnalysisError):
            spectrum.bin_of(6e5)

    def test_band_power_rejects_inverted_band(self):
        spectrum = compute_spectrum(np.random.default_rng(4).normal(size=4096), 1e6)
        with pytest.raises(AnalysisError):
            spectrum.band_power(2e5, 1e5)

    def test_power_db_is_finite(self):
        spectrum = compute_spectrum(make_tone(1.0, 100, 4096), 1e6)
        db = spectrum.power_db(reference_power=0.5)
        assert np.all(np.isfinite(db))

    def test_power_db_reference(self):
        spectrum = compute_spectrum(make_tone(1.0, 100, 4096), 1e6)
        lobe = spectrum.window.main_lobe_bins
        tone_power = float(np.sum(spectrum.power[100 - lobe : 100 + lobe + 1]))
        db = spectrum.power_db(reference_power=tone_power)
        # The peak bin is below 0 dB since the lobe spreads the power.
        assert float(np.max(db)) < 0.0

    def test_power_db_rejects_bad_reference(self):
        spectrum = compute_spectrum(make_tone(1.0, 100, 4096), 1e6)
        with pytest.raises(AnalysisError):
            spectrum.power_db(0.0)


class TestValidation:
    def test_rejects_2d(self):
        with pytest.raises(AnalysisError):
            compute_spectrum(np.zeros((4, 4)), 1e6)

    def test_rejects_short_signal(self):
        with pytest.raises(AnalysisError):
            compute_spectrum(np.zeros(8), 1e6)

    def test_rejects_bad_rate(self):
        with pytest.raises(AnalysisError):
            compute_spectrum(np.zeros(1024), 0.0)
