"""Tests for the amplitude-sweep workload (Fig. 7 machinery)."""

import numpy as np
import pytest

from repro.analysis.sweeps import run_amplitude_sweep
from repro.errors import AnalysisError

FS = 1e6
N = 1 << 12


class NoisyPassthrough:
    """A linear device with additive white noise, known SNDR curve."""

    def __init__(self, noise_rms: float, seed: int = 0) -> None:
        self.noise_rms = noise_rms
        self._rng = np.random.default_rng(seed)

    def __call__(self, stimulus: np.ndarray) -> np.ndarray:
        return stimulus + self._rng.normal(0.0, self.noise_rms, size=stimulus.shape)


class TestSweep:
    def test_sndr_rises_1db_per_db_when_noise_limited(self):
        device = NoisyPassthrough(noise_rms=1e-8)
        sweep = run_amplitude_sweep(
            device,
            levels_db=[-40.0, -30.0, -20.0, -10.0],
            full_scale=6e-6,
            signal_frequency=2e3,
            sample_rate=FS,
            n_samples=N,
            bandwidth=FS / 2.0,
        )
        slopes = np.diff(sweep.sndr_db) / np.diff(sweep.levels_db)
        np.testing.assert_allclose(slopes, 1.0, atol=0.15)

    def test_peak_level_is_largest_for_linear_device(self):
        device = NoisyPassthrough(noise_rms=1e-8)
        sweep = run_amplitude_sweep(
            device,
            levels_db=[-30.0, -20.0, -10.0, 0.0],
            full_scale=6e-6,
            signal_frequency=2e3,
            sample_rate=FS,
            n_samples=N,
            bandwidth=FS / 2.0,
        )
        assert sweep.peak_level_db == pytest.approx(0.0)
        assert sweep.peak_sndr_db == pytest.approx(float(sweep.sndr_db[-1]))

    def test_metrics_tuple_lengths(self):
        device = NoisyPassthrough(noise_rms=1e-8)
        sweep = run_amplitude_sweep(
            device,
            levels_db=[-20.0, -10.0],
            full_scale=6e-6,
            signal_frequency=2e3,
            sample_rate=FS,
            n_samples=N,
            bandwidth=FS / 2.0,
        )
        assert len(sweep.metrics) == 2
        assert sweep.sndr_db.shape == (2,)

    def test_settle_samples_are_discarded(self):
        # A device with a gross start-up transient must still measure
        # cleanly when the bench discards the transient.
        def device(stimulus):
            output = stimulus.copy()
            output[:100] += 1.0
            return output

        sweep = run_amplitude_sweep(
            device,
            levels_db=[-10.0],
            full_scale=6e-6,
            # Coherent frequency so window leakage does not set a floor.
            signal_frequency=9.0 * FS / N,
            sample_rate=FS,
            n_samples=N,
            bandwidth=FS / 2.0,
            settle_samples=128,
        )
        assert sweep.sndr_db[0] > 100.0


class TestValidation:
    def test_rejects_empty_levels(self):
        with pytest.raises(AnalysisError):
            run_amplitude_sweep(
                lambda x: x,
                levels_db=[],
                full_scale=6e-6,
                signal_frequency=2e3,
                sample_rate=FS,
                n_samples=N,
                bandwidth=FS / 2.0,
            )

    def test_rejects_bad_full_scale(self):
        with pytest.raises(AnalysisError):
            run_amplitude_sweep(
                lambda x: x,
                levels_db=[-10.0],
                full_scale=0.0,
                signal_frequency=2e3,
                sample_rate=FS,
                n_samples=N,
                bandwidth=FS / 2.0,
            )

    def test_rejects_wrong_output_length(self):
        with pytest.raises(AnalysisError):
            run_amplitude_sweep(
                lambda x: x[:-1],
                levels_db=[-10.0],
                full_scale=6e-6,
                signal_frequency=2e3,
                sample_rate=FS,
                n_samples=N,
                bandwidth=FS / 2.0,
            )

    def test_rejects_negative_settle(self):
        with pytest.raises(AnalysisError):
            run_amplitude_sweep(
                lambda x: x,
                levels_db=[-10.0],
                full_scale=6e-6,
                signal_frequency=2e3,
                sample_rate=FS,
                n_samples=N,
                bandwidth=FS / 2.0,
                settle_samples=-1,
            )
