"""Tests for window functions and their metrological constants."""

import numpy as np
import pytest

from repro.analysis.windows import Window, WindowKind, make_window
from repro.errors import AnalysisError


class TestRectangular:
    def test_coherent_gain_is_one(self):
        window = make_window(WindowKind.RECTANGULAR, 1024)
        assert window.coherent_gain == pytest.approx(1.0)

    def test_enbw_is_one_bin(self):
        window = make_window(WindowKind.RECTANGULAR, 1024)
        assert window.enbw_bins == pytest.approx(1.0)


class TestHann:
    def test_coherent_gain(self):
        window = make_window(WindowKind.HANN, 4096)
        assert window.coherent_gain == pytest.approx(0.5, abs=0.001)

    def test_enbw(self):
        window = make_window(WindowKind.HANN, 4096)
        assert window.enbw_bins == pytest.approx(1.5, abs=0.01)


class TestBlackman:
    def test_coherent_gain(self):
        # The paper's window: Blackman, CG = 0.42.
        window = make_window(WindowKind.BLACKMAN, 1 << 16)
        assert window.coherent_gain == pytest.approx(0.42, abs=0.001)

    def test_enbw(self):
        window = make_window(WindowKind.BLACKMAN, 1 << 16)
        assert window.enbw_bins == pytest.approx(1.7268, abs=0.005)

    def test_main_lobe_width(self):
        window = make_window(WindowKind.BLACKMAN, 1024)
        assert window.main_lobe_bins == 3

    def test_edges_near_zero(self):
        window = make_window(WindowKind.BLACKMAN, 1024)
        assert abs(window.samples[0]) < 1e-12

    def test_symmetry(self):
        window = make_window(WindowKind.BLACKMAN, 513)
        np.testing.assert_allclose(window.samples, window.samples[::-1], atol=1e-12)


class TestValidation:
    def test_rejects_tiny_window(self):
        with pytest.raises(AnalysisError):
            make_window(WindowKind.BLACKMAN, 4)

    def test_length_property(self):
        assert make_window(WindowKind.HANN, 256).length == 256

    def test_zero_sum_window_enbw_raises(self):
        window = Window(kind=WindowKind.RECTANGULAR, samples=np.zeros(16))
        with pytest.raises(AnalysisError):
            _ = window.enbw_bins
