"""Tests for tone metrology: SNR, THD and SNDR extraction."""

import numpy as np
import pytest

from repro.analysis.metrics import measure_tone, sndr_db, snr_db, thd_db
from repro.analysis.spectrum import compute_spectrum
from repro.errors import AnalysisError

FS = 1e6
N = 1 << 14


def tone(amplitude, cycles, n=N, phase=0.0):
    t = np.arange(n)
    return amplitude * np.sin(2.0 * np.pi * cycles * t / n + phase)


class TestSnr:
    def test_known_snr(self):
        rng = np.random.default_rng(0)
        signal = tone(1.0, 301) + rng.normal(0.0, 0.001, size=N)
        spectrum = compute_spectrum(signal, FS)
        # SNR = 20 log10((1/sqrt 2)/0.001) = 57 dB over full Nyquist.
        assert snr_db(spectrum) == pytest.approx(57.0, abs=1.0)

    def test_bandwidth_limits_noise(self):
        rng = np.random.default_rng(1)
        signal = tone(1.0, 301) + rng.normal(0.0, 0.01, size=N)
        spectrum = compute_spectrum(signal, FS)
        full = snr_db(spectrum)
        narrow = snr_db(spectrum, bandwidth=FS / 8.0)
        # Quartering the band cuts the white-noise power by 4: +6 dB.
        assert narrow - full == pytest.approx(6.0, abs=1.0)

    def test_explicit_fundamental(self):
        rng = np.random.default_rng(2)
        signal = tone(1.0, 301) + rng.normal(0.0, 0.01, size=N)
        spectrum = compute_spectrum(signal, FS)
        f0 = 301 * FS / N
        assert snr_db(spectrum, fundamental_frequency=f0) == pytest.approx(
            snr_db(spectrum), abs=0.1
        )


class TestThd:
    def test_single_harmonic(self):
        # A -40 dB second harmonic gives THD = -40 dB.
        signal = tone(1.0, 301) + tone(0.01, 602)
        spectrum = compute_spectrum(signal, FS)
        assert thd_db(spectrum) == pytest.approx(-40.0, abs=0.3)

    def test_multiple_harmonics_add_in_power(self):
        signal = tone(1.0, 301) + tone(0.01, 602) + tone(0.01, 903)
        spectrum = compute_spectrum(signal, FS)
        assert thd_db(spectrum) == pytest.approx(-37.0, abs=0.3)

    def test_folded_harmonic_is_counted(self):
        # Fundamental at 0.3 fs: its 2nd harmonic (0.6 fs) folds to
        # 0.4 fs and must still be attributed to distortion.
        cycles = int(0.3 * N)
        folded_cycles = N - 2 * cycles  # alias of the 2nd harmonic
        signal = tone(1.0, cycles) + tone(0.01, folded_cycles)
        spectrum = compute_spectrum(signal, FS)
        assert thd_db(spectrum) == pytest.approx(-40.0, abs=0.5)

    def test_clean_tone_has_deep_thd(self):
        spectrum = compute_spectrum(tone(1.0, 301), FS)
        assert thd_db(spectrum) < -100.0

    def test_harmonic_count_limits(self):
        signal = tone(1.0, 301) + tone(0.01, 301 * 7)
        spectrum = compute_spectrum(signal, FS)
        with_h7 = thd_db(spectrum, n_harmonics=8)
        without_h7 = thd_db(spectrum, n_harmonics=5)
        assert with_h7 == pytest.approx(-40.0, abs=0.5)
        assert without_h7 < -80.0


class TestSndr:
    def test_sndr_below_both(self):
        rng = np.random.default_rng(3)
        signal = tone(1.0, 301) + tone(0.01, 602) + rng.normal(0.0, 0.01, size=N)
        spectrum = compute_spectrum(signal, FS)
        assert sndr_db(spectrum) < snr_db(spectrum)
        assert sndr_db(spectrum) < -thd_db(spectrum)

    def test_sndr_equals_snr_without_distortion(self):
        rng = np.random.default_rng(4)
        signal = tone(1.0, 301) + rng.normal(0.0, 0.01, size=N)
        spectrum = compute_spectrum(signal, FS)
        assert sndr_db(spectrum) == pytest.approx(snr_db(spectrum), abs=0.3)


class TestMeasureTone:
    def test_amplitude_estimate(self):
        spectrum = compute_spectrum(tone(2.5, 301), FS)
        metrics = measure_tone(spectrum)
        assert metrics.signal_amplitude == pytest.approx(2.5, rel=0.01)

    def test_fundamental_location(self):
        spectrum = compute_spectrum(tone(1.0, 301), FS)
        metrics = measure_tone(spectrum)
        assert metrics.fundamental_frequency == pytest.approx(301 * FS / N, rel=1e-6)

    def test_search_above_skips_interferer(self):
        # A large 50 Hz-like interferer below the search floor must not
        # be mistaken for the fundamental.
        signal = tone(5.0, 3) + tone(1.0, 301)
        spectrum = compute_spectrum(signal, FS)
        metrics = measure_tone(spectrum, search_above=50 * FS / N)
        assert metrics.fundamental_frequency == pytest.approx(301 * FS / N, rel=1e-6)

    def test_rejects_bad_bandwidth(self):
        spectrum = compute_spectrum(tone(1.0, 301), FS)
        with pytest.raises(AnalysisError):
            measure_tone(spectrum, bandwidth=FS)

    def test_rejects_dc_fundamental(self):
        spectrum = compute_spectrum(tone(1.0, 301), FS)
        with pytest.raises(AnalysisError):
            measure_tone(spectrum, fundamental_frequency=FS)  # > Nyquist

    def test_rejects_bad_harmonic_count(self):
        spectrum = compute_spectrum(tone(1.0, 301), FS)
        with pytest.raises(AnalysisError):
            measure_tone(spectrum, n_harmonics=0)

    def test_degenerate_noiseless_snr_is_clamped(self):
        spectrum = compute_spectrum(tone(1.0, 301), FS)
        metrics = measure_tone(spectrum)
        assert metrics.snr_db <= 200.0
