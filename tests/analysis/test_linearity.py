"""Tests for the code-density (INL/DNL) linearity metrology."""

import numpy as np
import pytest

from repro.analysis.linearity import code_density_test
from repro.errors import AnalysisError

#: Irrational tone frequency: every sample lands on a fresh phase, so
#: the histogram fills smoothly.
F_IRRATIONAL = np.sqrt(2.0) - 1.0


def sine_record(n=1 << 17, amplitude=0.95):
    return amplitude * np.sin(2.0 * np.pi * np.arange(n) * F_IRRATIONAL)


class TestIdealConverter:
    def test_ideal_sine_is_linear(self):
        result = code_density_test(sine_record(), n_bits=8)
        assert result.peak_inl < 0.1
        assert result.peak_dnl < 0.1

    def test_code_count(self):
        result = code_density_test(sine_record(), n_bits=8)
        # 95 % amplitude exercises ~243 codes; clipping trims the ends.
        assert 200 < result.n_codes < 250

    def test_inl_endpoint_corrected(self):
        result = code_density_test(sine_record(), n_bits=8)
        assert result.inl[0] == pytest.approx(0.0, abs=1e-9)
        assert result.inl[-1] == pytest.approx(0.0, abs=1e-9)


class TestNonlinearConverter:
    def test_compression_shows_inl(self):
        compressed = np.tanh(1.2 * sine_record()) / np.tanh(1.2)
        result = code_density_test(compressed, n_bits=8)
        assert result.peak_inl > 2.0

    def test_more_compression_more_inl(self):
        mild = np.tanh(0.5 * sine_record()) / np.tanh(0.5)
        strong = np.tanh(2.0 * sine_record()) / np.tanh(2.0)
        inl_mild = code_density_test(mild, n_bits=8).peak_inl
        inl_strong = code_density_test(strong, n_bits=8).peak_inl
        assert inl_strong > inl_mild

    def test_missing_code_shows_dnl(self):
        # Knock out one code by snapping its values to the neighbour.
        record = sine_record()
        n_codes = 256
        scaled = (record + 1.0) / 2.0 * n_codes
        codes = scaled.astype(int)
        target = 100
        record = record.copy()
        record[codes == target] += 2.0 / n_codes
        result = code_density_test(record, n_bits=8)
        assert result.peak_dnl > 0.8


class TestValidation:
    def test_rejects_2d(self):
        with pytest.raises(AnalysisError):
            code_density_test(np.zeros((4, 4)), n_bits=8)

    def test_rejects_short_record(self):
        with pytest.raises(AnalysisError):
            code_density_test(sine_record(n=256), n_bits=8)

    def test_rejects_bad_bits(self):
        with pytest.raises(AnalysisError):
            code_density_test(sine_record(), n_bits=1)

    def test_rejects_bad_full_scale(self):
        with pytest.raises(AnalysisError):
            code_density_test(sine_record(), n_bits=8, full_scale=0.0)

    def test_rejects_tiny_amplitude(self):
        with pytest.raises(AnalysisError):
            code_density_test(0.001 * sine_record(), n_bits=8)
