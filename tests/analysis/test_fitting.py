"""Tests for dynamic-range extraction from sweeps."""

import numpy as np
import pytest

from repro.analysis.fitting import (
    LinearFit,
    dynamic_range_from_sweep,
    linear_fit_through_noise,
)
from repro.analysis.sweeps import AmplitudeSweepResult
from repro.errors import AnalysisError


def synthetic_sweep(dr_db: float, levels=None) -> AmplitudeSweepResult:
    """Build a textbook noise-limited sweep with a known DR."""
    if levels is None:
        levels = np.arange(-80.0, 1.0, 5.0)
    levels = np.asarray(levels, dtype=float)
    sndr = levels + dr_db
    # Overload: the top 5 dB of input flattens the curve.
    sndr = np.where(levels > -5.0, sndr - 2.0 * (levels + 5.0), sndr)
    sndr = np.maximum(sndr, 0.0)
    return AmplitudeSweepResult(
        levels_db=levels,
        sndr_db=sndr,
        snr_db=sndr,
        thd_db=np.full_like(levels, -90.0),
        metrics=(),
    )


class TestLinearFit:
    def test_fit_recovers_slope_and_intercept(self):
        levels = np.arange(-70.0, -19.0, 5.0)
        sndr = levels + 63.0
        fit = linear_fit_through_noise(levels, sndr)
        assert fit.slope == pytest.approx(1.0, abs=1e-9)
        assert fit.intercept == pytest.approx(63.0, abs=1e-9)

    def test_crossing(self):
        fit = LinearFit(slope=1.0, intercept=63.0)
        assert fit.crossing(0.0) == pytest.approx(-63.0)

    def test_flat_line_crossing_raises(self):
        with pytest.raises(AnalysisError):
            LinearFit(slope=0.0, intercept=10.0).crossing(0.0)

    def test_overload_region_excluded(self):
        sweep = synthetic_sweep(63.0)
        fit = linear_fit_through_noise(sweep.levels_db, sweep.sndr_db)
        assert fit.slope == pytest.approx(1.0, abs=0.02)

    def test_buried_points_excluded(self):
        # Points where SNDR saturates near 0 must not drag the fit.
        levels = np.arange(-90.0, -19.0, 5.0)
        sndr = np.maximum(levels + 63.0, 0.5)
        fit = linear_fit_through_noise(levels, sndr)
        assert fit.intercept == pytest.approx(63.0, abs=0.5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(AnalysisError):
            linear_fit_through_noise(np.zeros(3), np.zeros(4))

    def test_too_few_points_raises(self):
        with pytest.raises(AnalysisError):
            linear_fit_through_noise(
                np.array([-10.0, -5.0]), np.array([50.0, 55.0])
            )


class TestDynamicRange:
    def test_recovers_known_dr(self):
        sweep = synthetic_sweep(63.0)
        assert dynamic_range_from_sweep(sweep) == pytest.approx(63.0, abs=0.5)

    def test_dr_independent_of_overload_shape(self):
        assert dynamic_range_from_sweep(synthetic_sweep(45.0)) == pytest.approx(
            45.0, abs=0.5
        )
