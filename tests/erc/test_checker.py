"""Tests for run_erc/check_design, reports and the named designs."""

import pytest

from repro.config import delay_line_cell_config, paper_cell_config
from repro.deltasigma import SIModulator2
from repro.erc import (
    ErcReport,
    Severity,
    build_design,
    check_design,
    default_registry,
    run_erc,
)
from repro.erc.designs import DESIGNS
from repro.erc.graph import CircuitGraph
from repro.errors import ConfigurationError, ERCError
from repro.si import DelayLine


def bad_graph():
    """A graph violating ERC001 (no phase) and ERC005 (mis-scaled bias)."""
    graph = CircuitGraph("bad", supply_voltage=3.3)
    graph.add_node("c", "memory_cell", quiescent_current=2.0)
    return graph


class TestRunErc:
    @pytest.mark.parametrize("name", sorted(DESIGNS))
    def test_every_named_design_is_error_free(self, name):
        report = run_erc(build_design(name))
        assert report.ok, report.summary()

    def test_delay_line_reports_cmff_warning_only(self):
        report = run_erc(build_design("delay-line"))
        assert [v.rule for v in report.warnings] == ["ERC003"]
        assert report.errors == ()

    def test_accepts_design_object(self):
        line = DelayLine(delay_line_cell_config(), n_cells=2)
        report = run_erc(line)
        assert isinstance(report, ErcReport)
        assert report.ok

    def test_bad_graph_reports_errors(self):
        report = run_erc(bad_graph())
        assert not report.ok
        assert {v.rule for v in report.errors} == {"ERC001", "ERC005"}

    def test_min_severity_filters(self):
        report = run_erc(build_design("delay-line"), min_severity=Severity.ERROR)
        assert report.violations == ()
        assert report.ok

    def test_custom_registry(self):
        registry = default_registry().without("ERC001", "ERC005")
        report = run_erc(bad_graph(), registry=registry)
        assert report.ok

    def test_rejects_graphless_object(self):
        with pytest.raises(ConfigurationError, match="describe_graph"):
            run_erc(object())

    def test_unknown_design_name(self):
        with pytest.raises(ConfigurationError, match="unknown design"):
            build_design("flux-capacitor")


class TestCheckDesign:
    def test_clean_design_returns_report(self):
        report = check_design(build_design("mod2"))
        assert report.ok

    def test_violating_design_raises_with_report(self):
        with pytest.raises(ERCError) as excinfo:
            check_design(bad_graph())
        assert "ERC FAIL" in str(excinfo.value)
        assert isinstance(excinfo.value.report, ErcReport)
        assert not excinfo.value.report.ok


class TestErcReport:
    def test_summary_and_table(self):
        report = run_erc(bad_graph())
        assert report.summary().startswith("ERC FAIL: bad --")
        table = report.render_table()
        assert "ERC report: bad" in table
        assert "ERC001" in table

    def test_empty_table_renders(self):
        report = run_erc(build_design("mod2"), min_severity=Severity.ERROR)
        assert "no violations" in report.render_table()

    def test_filtered_keeps_design_name(self):
        report = run_erc(bad_graph()).filtered(Severity.ERROR)
        assert report.design == "bad"
        assert all(v.severity >= Severity.ERROR for v in report.violations)


class TestDesignGraphs:
    def test_modulator_graph_structure(self):
        modulator = SIModulator2(cell_config=paper_cell_config())
        graph = modulator.describe_graph()
        assert len(list(graph.nodes("memory_cell"))) == 2
        assert len(list(graph.nodes("quantizer"))) == 1
        assert len(list(graph.nodes("dac"))) == 1
        assert graph.param("full_scale") == pytest.approx(6e-6)

    def test_chopper_graph_has_paired_choppers(self):
        graph = build_design("chopper")
        roles = sorted(n.param("role") for n in graph.nodes("chopper"))
        assert roles == ["input", "output"]

    def test_biquad_cascade_alternates_phases(self):
        graph = build_design("biquad-cascade")
        cells = list(graph.nodes("memory_cell"))
        assert len(cells) == 6  # 3 sections x 2 integrators
        assert all(n.param("sample_phase") is not None for n in cells)
