"""CLI tests: repro erc exit codes and --help for every listed command."""

import pytest

from repro.cli import COMMANDS, build_parser, list_commands, main
from repro.erc.designs import DESIGNS


class TestErcCommand:
    def test_clean_design_exits_zero(self, capsys):
        assert main(["erc", "mod2"]) == 0
        out = capsys.readouterr().out
        assert "ERC PASS: SIModulator2" in out
        assert "no violations" in out

    def test_all_designs_exit_zero(self, capsys):
        assert main(["erc", "all"]) == 0
        out = capsys.readouterr().out
        assert out.count("ERC PASS") == len(DESIGNS)

    def test_strict_promotes_warning_to_failure(self, capsys):
        # The paper's delay line ships without CMFF, so ERC003 warns.
        assert main(["erc", "delay-line"]) == 0
        assert main(["erc", "delay-line", "--strict"]) == 1
        out = capsys.readouterr().out
        assert "ERC003" in out

    def test_min_severity_hides_warning(self, capsys):
        assert main(["erc", "delay-line", "--min-severity", "error"]) == 0
        out = capsys.readouterr().out
        assert "ERC003" not in out
        assert "no violations" in out

    def test_strict_with_min_severity_error_still_passes(self):
        # Filtering below ERROR removes the warnings strict mode trips on.
        assert main(["erc", "delay-line", "--min-severity", "error", "--strict"]) == 0

    def test_unknown_design_rejected_by_parser(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["erc", "flux-capacitor"])
        assert excinfo.value.code == 2


class TestListing:
    def test_list_flag_names_every_command(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in list(COMMANDS) + [
            "erc", "lint", "trace", "report", "compare", "sweep",
            "stats", "profile", "bench-gate", "history", "trend",
            "serve", "submit"
        ]:
            assert name in out

    def test_list_has_one_line_descriptions(self):
        lines = [line for line in list_commands().splitlines() if line.strip()]
        # One line per measurement command plus the erc, lint, trace,
        # report, compare, sweep, stats, profile, bench-gate, history,
        # trend, serve and submit commands.
        assert len(lines) == len(COMMANDS) + 13
        for line in lines:
            name, _, description = line.strip().partition(" ")
            assert description.strip(), f"{name} has no description"

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "erc" in capsys.readouterr().out


class TestHelpSmoke:
    @pytest.mark.parametrize("name", sorted(COMMANDS) + ["erc"])
    def test_every_listed_command_parses_help(self, name, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([name, "--help"])
        assert excinfo.value.code == 0
        assert "usage:" in capsys.readouterr().out

    def test_top_level_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--help"])
        assert excinfo.value.code == 0
