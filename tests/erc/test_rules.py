"""Per-rule tests: a paper-faithful pass and a malformed fail for each."""

import math

import pytest

from repro.clocks import Phase
from repro.erc.graph import CircuitGraph
from repro.erc.rules import (
    DEFAULT_MAX_FANOUT,
    ChopperPairingRule,
    ClassABBiasRule,
    ClockPhaseRule,
    CmffCoverageRule,
    FanoutRule,
    FullScaleRule,
    HeadroomRule,
    Rule,
    RuleRegistry,
    Severity,
    UnitsRule,
    default_registry,
)
from repro.errors import ConfigurationError


def two_cell_line(phase1=Phase.PHI1, phase2=Phase.PHI2, **cell_params):
    """Two cascaded class-AB cells at the paper's operating point."""
    params = {
        "quiescent_current": 2e-6,
        "peak_signal_current": 8e-6,
        "differential": True,
        "integrating": False,
        **cell_params,
    }
    graph = CircuitGraph("line", supply_voltage=3.3, sample_rate=5e6)
    graph.add_node("c0", "memory_cell", sample_phase=phase1, read_phase=phase1.other, **params)
    graph.add_node("c1", "memory_cell", sample_phase=phase2, read_phase=phase2.other, **params)
    graph.connect("c0", "c1")
    return graph


def violations(rule, graph):
    return list(rule.check(graph))


class TestClockPhaseRule:
    def test_alternating_cascade_passes(self):
        assert violations(ClockPhaseRule(), two_cell_line()) == []

    def test_same_phase_cascade_fails(self):
        graph = two_cell_line(phase1=Phase.PHI1, phase2=Phase.PHI1)
        found = violations(ClockPhaseRule(), graph)
        assert len(found) == 1
        assert found[0].rule == "ERC001"
        assert found[0].severity is Severity.ERROR
        assert "alternate" in found[0].message

    def test_sample_equals_read_fails(self):
        graph = CircuitGraph("bad")
        graph.add_node(
            "c", "memory_cell", sample_phase=Phase.PHI1, read_phase=Phase.PHI1
        )
        found = violations(ClockPhaseRule(), graph)
        assert [v.rule for v in found] == ["ERC001"]
        assert "same phase" in found[0].message

    def test_missing_phase_fails(self):
        graph = CircuitGraph("bad")
        graph.add_node("c", "memory_cell")
        found = violations(ClockPhaseRule(), graph)
        assert [v.rule for v in found] == ["ERC001"]
        assert "no sample_phase" in found[0].message


class TestHeadroomRule:
    def test_paper_supply_passes(self):
        assert violations(HeadroomRule(), two_cell_line()) == []

    def test_low_supply_fails(self):
        graph = two_cell_line()
        graph.params["supply_voltage"] = 2.0
        found = violations(HeadroomRule(), graph)
        assert len(found) == 2  # both cells
        assert all(v.rule == "ERC002" for v in found)
        assert "V_dd" in found[0].message

    def test_cell_without_bias_skipped(self):
        graph = CircuitGraph("g", supply_voltage=3.3)
        graph.add_node("c", "memory_cell", sample_phase=Phase.PHI1)
        assert violations(HeadroomRule(), graph) == []


class TestCmffCoverageRule:
    def test_covered_cascade_passes(self):
        graph = two_cell_line()
        graph.add_node("cm", "cmff")
        graph.connect("c1", "cm")
        assert violations(CmffCoverageRule(), graph) == []

    def test_plain_delay_cascade_warns(self):
        found = violations(CmffCoverageRule(), two_cell_line())
        assert [v.rule for v in found] == ["ERC003"]
        assert found[0].severity is Severity.WARNING

    def test_integrating_cascade_errors(self):
        graph = two_cell_line(integrating=True)
        found = violations(CmffCoverageRule(), graph)
        assert [v.severity for v in found] == [Severity.ERROR]
        assert "without bound" in found[0].message

    def test_single_ended_cascade_passes(self):
        graph = two_cell_line(differential=False)
        assert violations(CmffCoverageRule(), graph) == []


class TestClassABBiasRule:
    def test_paper_modulation_index_passes(self):
        # m_i = 8 uA / 2 uA = 4, inside the modeled range.
        assert violations(ClassABBiasRule(), two_cell_line()) == []

    def test_excessive_modulation_index_fails(self):
        graph = two_cell_line(peak_signal_current=40e-6)  # m_i = 20
        found = violations(ClassABBiasRule(), graph)
        assert len(found) == 2
        assert all(v.rule == "ERC004" for v in found)
        assert "modeled class-AB range" in found[0].message

    def test_class_a_clipping_fails(self):
        graph = two_cell_line(cell_class="class_a")  # m_i = 4 > 1
        found = violations(ClassABBiasRule(), graph)
        assert len(found) == 2
        assert "class-A stage clips" in found[0].message

    def test_custom_limit_respected(self):
        graph = two_cell_line(peak_signal_current=40e-6)
        graph.params["max_modulation_index"] = 25.0
        assert violations(ClassABBiasRule(), graph) == []


class TestUnitsRule:
    def test_si_units_pass(self):
        assert violations(UnitsRule(), two_cell_line()) == []

    def test_microamp_as_amp_fails(self):
        graph = two_cell_line(quiescent_current=2.0)
        found = violations(UnitsRule(), graph)
        assert all(v.rule == "ERC005" for v in found)
        assert any("implausibly large" in v.message for v in found)

    def test_nonpositive_sample_rate_fails(self):
        graph = CircuitGraph("g", sample_rate=0.0)
        found = violations(UnitsRule(), graph)
        assert any("must be positive" in v.message for v in found)

    def test_zero_corner_allowed_negative_rejected(self):
        ok = CircuitGraph("g")
        ok.add_node("c", "memory_cell", flicker_corner_hz=0.0)
        assert violations(UnitsRule(), ok) == []
        bad = CircuitGraph("g")
        bad.add_node("c", "memory_cell", flicker_corner_hz=-1.0)
        found = violations(UnitsRule(), bad)
        assert any("non-negative" in v.message for v in found)

    def test_non_finite_value_fails(self):
        graph = CircuitGraph("g", sample_rate=math.inf)
        found = violations(UnitsRule(), graph)
        assert any("not finite" in v.message for v in found)

    def test_fractional_osr_fails(self):
        graph = CircuitGraph("g", oversampling_ratio=2.5)
        found = violations(UnitsRule(), graph)
        assert any("integer >= 4" in v.message for v in found)

    def test_non_power_of_two_osr_warns(self):
        graph = CircuitGraph("g", oversampling_ratio=96)
        found = violations(UnitsRule(), graph)
        assert [v.severity for v in found] == [Severity.WARNING]
        assert "power of" in found[0].message

    def test_paper_osr_passes(self):
        graph = CircuitGraph("g", oversampling_ratio=128)
        assert violations(UnitsRule(), graph) == []


class TestFanoutRule:
    def make_star(self, n_receivers, **hub_params):
        graph = CircuitGraph("star")
        graph.add_node("hub", "memory_cell", **hub_params)
        for index in range(n_receivers):
            graph.add_node(f"rx{index}", "sink")
            graph.connect("hub", f"rx{index}")
        return graph

    def test_within_limit_passes(self):
        assert violations(FanoutRule(), self.make_star(DEFAULT_MAX_FANOUT)) == []

    def test_excess_fanout_fails(self):
        found = violations(FanoutRule(), self.make_star(DEFAULT_MAX_FANOUT + 1))
        assert [v.rule for v in found] == ["ERC006"]
        assert f"at most {DEFAULT_MAX_FANOUT}" in found[0].message

    def test_node_limit_overrides_default(self):
        graph = self.make_star(6, max_fanout=6)
        assert violations(FanoutRule(), graph) == []

    def test_unlimited_kind_ignored(self):
        graph = CircuitGraph("g")
        graph.add_node("src", "source")
        for index in range(8):
            graph.add_node(f"rx{index}", "sink")
            graph.connect("src", f"rx{index}")
        assert violations(FanoutRule(), graph) == []


class TestFullScaleRule:
    def make_loop(self, dac_full_scale=6e-6, with_quantizer=True, with_dac=True):
        graph = CircuitGraph("loop", full_scale=6e-6)
        if with_quantizer:
            graph.add_node("q", "quantizer")
        if with_dac:
            graph.add_node("dac", "dac", full_scale=dac_full_scale)
        return graph

    def test_matching_references_pass(self):
        assert violations(FullScaleRule(), self.make_loop()) == []

    def test_mismatched_dac_fails(self):
        found = violations(FullScaleRule(), self.make_loop(dac_full_scale=3e-6))
        assert [v.rule for v in found] == ["ERC007"]
        assert "disagrees" in found[0].message

    def test_dac_without_quantizer_fails(self):
        found = violations(FullScaleRule(), self.make_loop(with_quantizer=False))
        assert any("no quantizer" in v.message for v in found)

    def test_quantizer_without_dac_fails(self):
        found = violations(FullScaleRule(), self.make_loop(with_dac=False))
        assert any("no feedback DAC" in v.message for v in found)

    def test_filter_without_loop_passes(self):
        assert violations(FullScaleRule(), two_cell_line()) == []


class TestChopperPairingRule:
    def make_choppers(self, roles):
        graph = CircuitGraph("chop")
        for index, role in enumerate(roles):
            params = {} if role is None else {"role": role}
            graph.add_node(f"ch{index}", "chopper", **params)
        return graph

    def test_paired_choppers_pass(self):
        graph = self.make_choppers(["input", "output"])
        assert violations(ChopperPairingRule(), graph) == []

    def test_no_choppers_pass(self):
        assert violations(ChopperPairingRule(), two_cell_line()) == []

    def test_unpaired_input_fails(self):
        found = violations(ChopperPairingRule(), self.make_choppers(["input"]))
        assert [v.rule for v in found] == ["ERC008"]
        assert found[0].node is None
        assert "matching output" in found[0].message

    def test_roleless_chopper_fails(self):
        found = violations(ChopperPairingRule(), self.make_choppers([None]))
        assert any("no valid role" in v.message for v in found)


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_from_name(self):
        assert Severity.from_name("warning") is Severity.WARNING
        assert Severity.from_name("ERROR") is Severity.ERROR

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            Severity.from_name("fatal")


class TestRuleRegistry:
    def test_default_registry_has_eight_rules(self):
        registry = default_registry()
        assert len(registry) == 8
        assert registry.codes() == [f"ERC00{i}" for i in range(1, 9)]

    def test_duplicate_code_rejected(self):
        registry = default_registry()
        with pytest.raises(ConfigurationError):
            registry.register(ClockPhaseRule())

    def test_get_and_unknown_code(self):
        registry = default_registry()
        assert registry.get("ERC002").name == "headroom"
        with pytest.raises(ConfigurationError):
            registry.get("ERC999")

    def test_without_removes_rules(self):
        registry = default_registry().without("ERC003", "ERC005")
        assert len(registry) == 6
        assert "ERC003" not in registry.codes()

    def test_custom_rule_pluggable(self):
        class NoSinksRule(Rule):
            code = "ERC100"
            name = "no-sinks"
            severity = Severity.INFO

            def check(self, graph):
                for node in graph.nodes("sink"):
                    yield self.violation("sink present", node.name)

        registry = RuleRegistry([NoSinksRule()])
        graph = CircuitGraph("g")
        graph.add_node("out", "sink")
        found = [v for rule in registry for v in rule.check(graph)]
        assert [(v.rule, v.severity) for v in found] == [("ERC100", Severity.INFO)]

    def test_violation_str_format(self):
        rule = ClockPhaseRule()
        text = str(rule.violation("broken", "cell[0]"))
        assert text == "[ERC001/ERROR] cell[0]: broken"
        assert str(rule.violation("broken")).startswith("[ERC001/ERROR] <design>:")
