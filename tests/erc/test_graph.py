"""Tests for the declarative circuit graph."""

import pytest

from repro.erc.graph import CircuitGraph
from repro.errors import ConfigurationError


def build_chain(n=3):
    graph = CircuitGraph("chain", supply_voltage=3.3)
    graph.add_node("in", "source")
    names = []
    for index in range(n):
        names.append(f"cell[{index}]")
        graph.add_node(names[-1], "memory_cell", index=index)
    graph.add_node("out", "sink")
    graph.chain("in", *names, "out")
    return graph, names


class TestConstruction:
    def test_nodes_and_edges(self):
        graph, names = build_chain()
        assert len(graph) == 5
        assert names[0] in graph
        assert graph.node(names[1]).param("index") == 1
        assert list(graph.edges())[0] == ("in", "cell[0]")

    def test_duplicate_node_rejected(self):
        graph, _ = build_chain()
        with pytest.raises(ConfigurationError):
            graph.add_node("in", "source")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            CircuitGraph("")

    def test_empty_kind_rejected(self):
        graph = CircuitGraph("g")
        with pytest.raises(ConfigurationError):
            graph.add_node("a", "")

    def test_connect_unknown_node_rejected(self):
        graph, _ = build_chain()
        with pytest.raises(ConfigurationError):
            graph.connect("in", "nowhere")

    def test_unknown_node_lookup_rejected(self):
        graph, _ = build_chain()
        with pytest.raises(ConfigurationError):
            graph.node("nowhere")


class TestTraversal:
    def test_successors_predecessors(self):
        graph, names = build_chain()
        assert [n.name for n in graph.successors("in")] == [names[0]]
        assert [n.name for n in graph.predecessors(names[1])] == [names[0]]
        assert graph.out_degree(names[0]) == 1

    def test_nodes_by_kind(self):
        graph, names = build_chain()
        assert [n.name for n in graph.nodes("memory_cell")] == names

    def test_param_fallback(self):
        graph, names = build_chain()
        node = graph.node(names[0])
        assert graph.node_param(node, "supply_voltage") == 3.3
        assert graph.node_param(node, "absent", 7) == 7


class TestCascades:
    def test_chain_is_one_run(self):
        graph, names = build_chain(4)
        runs = graph.cascades({"memory_cell"})
        assert [[n.name for n in run] for run in runs] == [names]

    def test_interposed_node_breaks_run(self):
        graph, names = build_chain(2)
        graph.add_node("mid", "cmff")
        # Rewire cell[0] -> mid -> cell[1] alongside the direct edge-free path.
        other = CircuitGraph("broken")
        other.add_node("a", "memory_cell")
        other.add_node("mid", "cmff")
        other.add_node("b", "memory_cell")
        other.chain("a", "mid", "b")
        runs = other.cascades({"memory_cell"})
        assert sorted(len(run) for run in runs) == [1, 1]


class TestInclude:
    def test_include_prefixes_and_merges_params(self):
        inner = CircuitGraph("inner", sample_rate=5e6)
        inner.add_node("cell", "memory_cell")
        inner.add_node("cmff", "cmff")
        inner.connect("cell", "cmff")
        outer = CircuitGraph("outer", supply_voltage=3.3)
        mapping = outer.include(inner, "int1")
        assert mapping == {"cell": "int1.cell", "cmff": "int1.cmff"}
        assert "int1.cell" in outer
        assert list(outer.edges()) == [("int1.cell", "int1.cmff")]
        assert outer.param("sample_rate") == 5e6
        assert outer.param("supply_voltage") == 3.3

    def test_include_does_not_override_existing_params(self):
        inner = CircuitGraph("inner", supply_voltage=1.0)
        outer = CircuitGraph("outer", supply_voltage=3.3)
        outer.include(inner, "sub")
        assert outer.param("supply_voltage") == 3.3
