"""TestBench pre-flight: ERC gates simulation unless explicitly disabled."""

import numpy as np
import pytest

from repro.config import MODULATOR_CLOCK, paper_cell_config
from repro.deltasigma import SIModulator2
from repro.erc.graph import CircuitGraph
from repro.errors import ERCError
from repro.systems import TestBench


class ViolatingDevice:
    """An identity device whose declared graph fails ERC005."""

    def describe_graph(self):
        graph = CircuitGraph("broken-device")
        graph.add_node(
            "c",
            "memory_cell",
            sample_phase="phi1",
            quiescent_current=2.0,  # amps, i.e. a uA value missing its 1e-6
        )
        return graph

    def __call__(self, x):
        return np.asarray(x, dtype=float)


def make_bench(**kwargs):
    return TestBench(
        sample_rate=MODULATOR_CLOCK,
        n_samples=1 << 12,
        settle_samples=16,
        **kwargs,
    )


class TestPreflight:
    def test_violating_device_refused(self):
        with pytest.raises(ERCError) as excinfo:
            make_bench().measure(ViolatingDevice(), amplitude=1e-6, frequency=100e3)
        assert "ERC005" in str(excinfo.value)
        assert not excinfo.value.report.ok

    def test_opt_out_simulates_anyway(self):
        result = make_bench(erc=False).measure(
            ViolatingDevice(), amplitude=1e-6, frequency=100e3
        )
        assert np.isfinite(result.snr_db)

    def test_plain_callable_skipped(self):
        result = make_bench().measure(
            lambda x: np.asarray(x, dtype=float), amplitude=1e-6, frequency=100e3
        )
        assert np.isfinite(result.snr_db)

    def test_clean_design_simulates(self):
        modulator = SIModulator2(
            cell_config=paper_cell_config(sample_rate=MODULATOR_CLOCK)
        )
        result = make_bench().measure(modulator, amplitude=3e-6, frequency=100e3)
        assert np.isfinite(result.sndr_db)

    def test_preflight_method_direct(self):
        bench = make_bench()
        with pytest.raises(ERCError):
            bench.preflight(ViolatingDevice())
        bench.erc = False
        bench.preflight(ViolatingDevice())  # no raise once disabled
