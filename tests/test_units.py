"""Tests for unit and level conversions."""

import math

import pytest

from repro.units import (
    amplitude_from_dbfs,
    db_from_dynamic_range_bits,
    db_from_power_ratio,
    db_from_ratio,
    dbfs_from_amplitude,
    dynamic_range_bits_from_db,
    power_ratio_from_db,
    ratio_from_db,
    rms_of_sine,
)


class TestAmplitudeDb:
    def test_unity_is_zero_db(self):
        assert db_from_ratio(1.0) == pytest.approx(0.0)

    def test_factor_of_ten_is_twenty_db(self):
        assert db_from_ratio(10.0) == pytest.approx(20.0)

    def test_half_is_minus_six_db(self):
        assert db_from_ratio(0.5) == pytest.approx(-6.0206, rel=1e-4)

    def test_round_trip(self):
        for level in (-73.2, -6.0, 0.0, 12.5):
            assert db_from_ratio(ratio_from_db(level)) == pytest.approx(level)

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rejects_nonpositive_ratio(self, bad):
        with pytest.raises(ValueError):
            db_from_ratio(bad)


class TestPowerDb:
    def test_factor_of_ten_is_ten_db(self):
        assert db_from_power_ratio(10.0) == pytest.approx(10.0)

    def test_oversampling_128_gives_21_db(self):
        # The paper: "Oversampling by a factor of 128 increased the
        # dynamic range by 21 dB."
        assert db_from_power_ratio(128.0) == pytest.approx(21.07, abs=0.01)

    def test_round_trip(self):
        assert power_ratio_from_db(db_from_power_ratio(3.7)) == pytest.approx(3.7)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            db_from_power_ratio(0.0)


class TestDynamicRangeBits:
    def test_paper_63_db_is_about_10_5_bits(self):
        # Table 2 reports the 63 dB measured dynamic range as 10.5 bits.
        assert dynamic_range_bits_from_db(63.0) == pytest.approx(10.17, abs=0.02)

    def test_10_5_bits_is_about_65_db(self):
        assert db_from_dynamic_range_bits(10.5) == pytest.approx(64.97, abs=0.01)

    def test_round_trip(self):
        assert dynamic_range_bits_from_db(
            db_from_dynamic_range_bits(13.0)
        ) == pytest.approx(13.0)


class TestFullScaleLevels:
    def test_minus_6_db_of_6ua_is_about_3ua(self):
        # The paper's modulator test input: "2-kHz 3-uA (-6 dB)" with a
        # 6 uA 0-dB level.
        assert amplitude_from_dbfs(-6.0206, 6e-6) == pytest.approx(3e-6, rel=1e-4)

    def test_zero_db_is_full_scale(self):
        assert amplitude_from_dbfs(0.0, 6e-6) == pytest.approx(6e-6)

    def test_round_trip(self):
        level = dbfs_from_amplitude(amplitude_from_dbfs(-40.0, 6e-6), 6e-6)
        assert level == pytest.approx(-40.0)

    def test_rejects_bad_full_scale(self):
        with pytest.raises(ValueError):
            amplitude_from_dbfs(-6.0, 0.0)

    def test_rejects_bad_amplitude(self):
        with pytest.raises(ValueError):
            dbfs_from_amplitude(0.0, 6e-6)


class TestRmsOfSine:
    def test_value(self):
        assert rms_of_sine(1.0) == pytest.approx(1.0 / math.sqrt(2.0))

    def test_negative_peak_gives_positive_rms(self):
        assert rms_of_sine(-2.0) == pytest.approx(math.sqrt(2.0))
