"""Tests for the manifest comparison gate and its exit codes."""

import pytest

from repro.metrics import (
    DiffStatus,
    MetricRegistry,
    compare_manifests,
    manifest_from_registry,
    registry_for,
)


def _manifest(sndr=53.3, thd=-57.1, wall=0.4, design="modulator2", **config):
    registry = registry_for(design)
    registry.record("sndr_db", sndr, "span:test")
    registry.record("thd_db", thd, "span:test")
    registry.record("wall_s", wall, "span:test")
    return manifest_from_registry(
        registry, config={"n_samples": 16384, **config}
    )


class TestCompareVerdicts:
    def test_identical_manifests_pass(self):
        report = compare_manifests(_manifest(), _manifest())
        assert report.ok
        assert not report.warnings
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 0

    def test_sndr_regression_fails(self):
        # The acceptance criterion: degrading SNDR by more than 1 dB
        # must exit non-zero and name the metric.
        report = compare_manifests(_manifest(sndr=52.0), _manifest(sndr=53.3))
        assert not report.ok
        assert report.exit_code() == 1
        assert [d.name for d in report.regressions] == ["sndr_db"]
        assert "sndr_db" in report.summary()

    def test_higher_sndr_warns_stale_baseline(self):
        report = compare_manifests(_manifest(sndr=55.0), _manifest(sndr=53.3))
        assert report.ok
        assert [d.name for d in report.warnings] == ["sndr_db"]
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_lower_is_better_direction(self):
        # THD is a LOWER metric: rising past tolerance regresses.
        report = compare_manifests(_manifest(thd=-54.0), _manifest(thd=-57.1))
        assert [d.name for d in report.regressions] == ["thd_db"]

    def test_ungated_metric_never_fails(self):
        report = compare_manifests(_manifest(wall=40.0), _manifest(wall=0.4))
        wall = next(d for d in report.diffs if d.name == "wall_s")
        assert wall.status is DiffStatus.INFO
        assert report.ok

    def test_paper_mismatch_warns(self):
        # 40 dB SNDR is within no baseline gate here (both sides equal)
        # but far outside the paper's published band -> WARN.
        report = compare_manifests(_manifest(sndr=40.0), _manifest(sndr=40.0))
        sndr = next(d for d in report.diffs if d.name == "sndr_db")
        assert sndr.status is DiffStatus.PASS  # modulator2 has no sndr ref
        snr_report = compare_manifests(
            _manifest(thd=-40.0), _manifest(thd=-40.0)
        )
        thd = next(d for d in snr_report.diffs if d.name == "thd_db")
        assert thd.status is DiffStatus.WARN
        assert "paper" in thd.note


class TestCompareStructure:
    def test_new_metric_warns(self):
        current = _manifest()
        baseline_registry = registry_for("modulator2")
        baseline_registry.record("sndr_db", 53.3)
        baseline = manifest_from_registry(
            baseline_registry, config={"n_samples": 16384}
        )
        report = compare_manifests(current, baseline)
        new = [
            d
            for d in report.diffs
            if "NEW" in d.note and d.status is DiffStatus.WARN
        ]
        assert {d.name for d in new} == {"thd_db"}  # wall_s is ungated

    def test_missing_metric_warns(self):
        current_registry = registry_for("modulator2")
        current_registry.record("sndr_db", 53.3)
        current = manifest_from_registry(
            current_registry, config={"n_samples": 16384}
        )
        report = compare_manifests(current, _manifest())
        missing = [
            d
            for d in report.diffs
            if "MISSING" in d.note and d.status is DiffStatus.WARN
        ]
        assert {d.name for d in missing} == {"thd_db"}

    def test_config_mismatch_noted_and_strict_fails(self):
        report = compare_manifests(
            _manifest(), _manifest(n_samples=65536)
        )
        assert any("n_samples" in note for note in report.config_notes)
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_design_mismatch_noted(self):
        report = compare_manifests(_manifest(), _manifest(design="chopper"))
        assert any("design mismatch" in note for note in report.config_notes)

    def test_table_orders_worst_first(self):
        report = compare_manifests(
            _manifest(sndr=50.0, wall=9.9), _manifest(sndr=53.3)
        )
        table = report.render_table()
        assert table.index("REGRESS") < table.index("INFO")


class TestRenderedOutput:
    def test_table_names_the_regressed_metric(self):
        report = compare_manifests(_manifest(sndr=51.0), _manifest())
        table = report.render_table()
        assert "sndr_db" in table
        assert "REGRESS" in table
        assert "against a" in table

    @pytest.mark.parametrize("strict", [False, True])
    def test_summary_counts(self, strict):
        report = compare_manifests(_manifest(), _manifest())
        assert "0 regression(s)" in report.summary()
        assert report.exit_code(strict=strict) == 0
