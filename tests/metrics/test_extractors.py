"""Tests for the metric extractors against closed-form signals.

A noiseless coherent sine and an ideal (identity-with-delay) device
have exactly known metrics, so the extractors can be checked against
analytic answers rather than against the simulator's own output.
"""

import numpy as np
import pytest

from repro.analysis.metrics import measure_tone
from repro.analysis.spectrum import compute_spectrum
from repro.errors import MetricsError
from repro.metrics import (
    MetricRegistry,
    delay_line_error_records,
    fit_delay_line_error,
    telemetry_event_records,
    throughput_records,
    tone_records,
)
from repro.telemetry.session import TelemetrySession


def _pure_tone_metrics(n=8192, rate=1e6, cycles=256, amplitude=3e-6):
    t = np.arange(n) / rate
    frequency = cycles * rate / n
    samples = amplitude * np.sin(2.0 * np.pi * frequency * t)
    spectrum = compute_spectrum(samples, rate)
    return measure_tone(spectrum, fundamental_frequency=frequency)


class TestToneRecords:
    def test_pure_sine_recovers_amplitude_and_huge_snr(self):
        registry = MetricRegistry()
        metrics = _pure_tone_metrics(amplitude=3e-6)
        records = tone_records(registry, metrics)
        by_name = {record.name: record for record in records}
        # A noiseless coherent sine: amplitude recovered exactly, noise
        # floor at numerical precision -> SNR far beyond any converter.
        assert by_name["signal_amplitude_ua"].value == pytest.approx(3.0, rel=1e-6)
        assert by_name["snr_db"].value > 100.0
        assert by_name["sndr_db"].value > 100.0

    def test_enob_matches_the_identity(self):
        registry = MetricRegistry()
        metrics = _pure_tone_metrics()
        tone_records(registry, metrics)
        sndr = registry.get("sndr_db").value
        assert registry.get("enob_bits").value == pytest.approx(
            (sndr - 1.76) / 6.02
        )

    def test_provenance_tag_filed(self):
        registry = MetricRegistry()
        tone_records(registry, _pure_tone_metrics(), provenance="span:test")
        assert registry.get("snr_db").provenance == "span:test"


class TestDelayLineFit:
    def test_ideal_delay_line_has_zero_error(self):
        rng = np.random.default_rng(3)
        x = rng.normal(0.0, 1e-6, 4096)
        y = np.roll(x, 2)
        gain_error, offset = fit_delay_line_error(x, y, delay_samples=2)
        # np.roll wraps two samples; the fit over 4094 aligned points
        # still lands at machine precision.
        assert gain_error == pytest.approx(0.0, abs=1e-3)
        assert offset == pytest.approx(0.0, abs=1e-9)

    def test_known_gain_and_offset_recovered(self):
        rng = np.random.default_rng(4)
        x = rng.normal(0.0, 1e-6, 4096)
        y = np.concatenate([np.zeros(3), 0.98 * x[:-3] + 5e-8])
        gain_error, offset = fit_delay_line_error(x, y, delay_samples=3)
        assert gain_error == pytest.approx(-0.02, abs=1e-9)
        assert offset == pytest.approx(5e-8, abs=1e-12)

    def test_inverting_cascade(self):
        rng = np.random.default_rng(5)
        x = rng.normal(0.0, 1e-6, 1024)
        y = np.concatenate([np.zeros(1), -x[:-1]])
        gain_error, offset = fit_delay_line_error(
            x, y, delay_samples=1, inverting=True
        )
        assert gain_error == pytest.approx(0.0, abs=1e-12)

    def test_records_filed_in_microamps(self):
        registry = MetricRegistry()
        x = np.sin(np.linspace(0.0, 20.0, 2048)) * 1e-6
        y = np.concatenate([np.zeros(1), x[:-1] + 2e-8])
        records = delay_line_error_records(registry, x, y, delay_samples=1)
        by_name = {record.name: record for record in records}
        assert by_name["offset_ua"].value == pytest.approx(0.02, abs=1e-3)

    def test_length_mismatch_rejected(self):
        with pytest.raises(MetricsError, match="lengths differ"):
            fit_delay_line_error(np.zeros(64), np.zeros(65), delay_samples=1)

    def test_constant_stimulus_rejected(self):
        with pytest.raises(MetricsError, match="constant"):
            fit_delay_line_error(np.ones(64), np.ones(64), delay_samples=1)

    def test_too_short_rejected(self):
        with pytest.raises(MetricsError, match="at least 16"):
            fit_delay_line_error(np.zeros(8), np.zeros(8), delay_samples=0)


class TestTelemetryExtractors:
    def test_quiet_session_files_zero_counts(self):
        registry = MetricRegistry()
        session = TelemetrySession("test")
        records = telemetry_event_records(registry, session)
        assert len(records) == 4
        assert all(record.value == 0.0 for record in records)

    def test_span_durations_become_throughput(self):
        registry = MetricRegistry()
        session = TelemetrySession("test")
        with session.span("measure", samples=1024):
            with session.span("device", samples=1024):
                pass
        records = throughput_records(registry, session)
        names = {record.name for record in records}
        assert "wall_s" in names
        assert "samples_per_s" in names
        assert registry.get("wall_s").gate is False
