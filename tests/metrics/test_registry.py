"""Tests for the metric registry and its per-design paper references."""

import pytest

from repro.errors import MetricsError
from repro.metrics import Direction, MetricRegistry, MetricSpec, registry_for
from repro.metrics.registry import BASE_SPECS, PAPER_REFERENCES


class TestMetricRegistry:
    def test_base_specs_declared_by_default(self):
        registry = MetricRegistry()
        assert {spec.name for spec in registry.specs} == {
            spec.name for spec in BASE_SPECS
        }

    def test_record_files_in_order(self):
        registry = MetricRegistry()
        registry.record("snr_db", 55.0)
        registry.record("thd_db", -57.0)
        assert [r.name for r in registry.records] == ["snr_db", "thd_db"]

    def test_rerecord_replaces_in_place(self):
        registry = MetricRegistry()
        registry.record("snr_db", 55.0)
        registry.record("thd_db", -57.0)
        registry.record("snr_db", 56.0)
        assert [r.name for r in registry.records] == ["snr_db", "thd_db"]
        assert registry.get("snr_db").value == 56.0

    def test_unknown_metric_rejected(self):
        registry = MetricRegistry()
        with pytest.raises(MetricsError, match="unknown metric"):
            registry.record("nonsense_db", 1.0)

    def test_redeclare_same_spec_is_idempotent(self):
        registry = MetricRegistry()
        registry.declare(registry.spec("snr_db"))

    def test_redeclare_conflicting_spec_rejected(self):
        registry = MetricRegistry()
        clash = MetricSpec(
            name="snr_db",
            unit="V",
            description="not the same",
            direction=Direction.LOWER,
        )
        with pytest.raises(MetricsError, match="already declared"):
            registry.declare(clash)


class TestRegistryFor:
    @pytest.mark.parametrize("design", sorted(PAPER_REFERENCES))
    def test_paper_references_attached(self, design):
        registry = registry_for(design)
        assert registry.design == design
        for name, (value, band) in PAPER_REFERENCES[design].items():
            spec = registry.spec(name)
            assert spec.paper_value == value
            assert spec.paper_tolerance == band

    def test_modulator2_snr_reference(self):
        spec = registry_for("modulator2").spec("snr_db")
        assert spec.paper_value == 58.0

    def test_delay_line_uses_pp_convention(self):
        registry = registry_for("delay-line")
        assert registry.spec("snr_pp_db").paper_value == 50.0
        assert registry.spec("snr_db").paper_value is None
