"""Tests for the shared spectral arithmetic helpers."""

import numpy as np
import pytest

from repro.analysis.metrics import measure_tone
from repro.analysis.spectrum import compute_spectrum
from repro.errors import MetricsError
from repro.metrics import (
    bits_to_db,
    db_to_bits,
    enob_bits,
    full_scale_reference_power,
    harmonic_visibility_db,
    spectrum_view,
)


class TestBitConversions:
    def test_paper_dynamic_range(self):
        # "about 10.5 bits" from the paper's 63 dB figure.
        assert db_to_bits(63.0) == pytest.approx(10.17, abs=0.01)
        assert db_to_bits(65.0) == pytest.approx(10.5, abs=0.01)

    def test_roundtrip(self):
        for value in (-10.0, 0.0, 58.0, 63.0):
            assert bits_to_db(db_to_bits(value)) == pytest.approx(value)

    def test_enob_is_sndr_through_the_identity(self):
        assert enob_bits(53.3) == pytest.approx((53.3 - 1.76) / 6.02)


class TestFullScaleReference:
    def test_sine_power(self):
        # A full-scale sine has power A^2/2.
        assert full_scale_reference_power(6e-6) == pytest.approx(1.8e-11)

    def test_rejects_non_positive(self):
        with pytest.raises(MetricsError, match="positive"):
            full_scale_reference_power(0.0)


def _tone_spectrum(
    n=4096, rate=1e6, cycles=128, amplitude=1e-6, noise=0.0, hd3=0.0
):
    t = np.arange(n) / rate
    frequency = cycles * rate / n
    samples = amplitude * np.sin(2.0 * np.pi * frequency * t)
    if hd3:
        samples = samples + hd3 * amplitude * np.sin(
            2.0 * np.pi * 3.0 * frequency * t
        )
    if noise:
        samples = samples + np.random.default_rng(7).normal(0.0, noise, n)
    spectrum = compute_spectrum(samples, rate)
    metrics = measure_tone(spectrum, fundamental_frequency=frequency)
    return spectrum, metrics


class TestHarmonicVisibility:
    def test_injected_harmonic_stands_out(self):
        _, pure = _tone_spectrum(noise=1e-9)
        spectrum, distorted = _tone_spectrum(noise=1e-9, hd3=0.01)
        pure_vis = harmonic_visibility_db(pure, spectrum, 5e5)
        distorted_vis = harmonic_visibility_db(distorted, spectrum, 5e5)
        # A -40 dB third harmonic towers over the tiny noise floor; the
        # pure tone's "harmonics" are just noise in the harmonic bins.
        assert distorted_vis > pure_vis + 20.0
        assert distorted_vis > 30.0

    def test_rejects_non_positive_bandwidth(self):
        spectrum, metrics = _tone_spectrum(noise=1e-9)
        with pytest.raises(MetricsError, match="bandwidth"):
            harmonic_visibility_db(metrics, spectrum, 0.0)


class TestSpectrumView:
    def test_masks_dc_and_converts_to_db(self):
        spectrum, _ = _tone_spectrum()
        log_freqs, power_db = spectrum_view(spectrum, 1e-6, max_points=64)
        assert log_freqs.shape == power_db.shape
        assert np.all(np.isfinite(log_freqs))
        # The full-scale tone's peak sits near 0 dB re full scale (a
        # few dB low: the window spreads the tone across its lobe bins).
        assert -6.0 < power_db.max() < 1.0
