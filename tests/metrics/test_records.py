"""Tests for the typed metric records and their serialization."""

import math

import pytest

from repro.errors import MetricsError
from repro.metrics import Direction, MetricRecord, MetricSpec


class TestDirection:
    def test_from_name_roundtrip(self):
        for member in Direction:
            assert Direction.from_name(member.value) is member

    def test_from_name_rejects_unknown(self):
        with pytest.raises(MetricsError, match="unknown direction"):
            Direction.from_name("sideways")


class TestMetricSpec:
    def test_record_carries_spec_fields(self):
        spec = MetricSpec(
            name="sndr_db",
            unit="dB",
            description="test",
            direction=Direction.HIGHER,
            tolerance=0.75,
            paper_value=58.0,
            paper_tolerance=8.0,
        )
        record = spec.record(53.2, provenance="span:measure/analysis")
        assert record.name == "sndr_db"
        assert record.value == 53.2
        assert record.direction is Direction.HIGHER
        assert record.tolerance == 0.75
        assert record.provenance == "span:measure/analysis"

    def test_empty_name_rejected(self):
        with pytest.raises(MetricsError, match="non-empty"):
            MetricSpec(name="", unit="dB", description="x")

    def test_negative_tolerance_rejected(self):
        with pytest.raises(MetricsError, match="non-negative"):
            MetricSpec(name="x", unit="dB", description="x", tolerance=-1.0)

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_non_finite_value_rejected(self, bad):
        spec = MetricSpec(name="x", unit="dB", description="x")
        with pytest.raises(MetricsError, match="finite"):
            spec.record(bad)


class TestMetricRecord:
    def _record(self, value=53.0, paper=58.0, band=8.0):
        spec = MetricSpec(
            name="sndr_db",
            unit="dB",
            description="test",
            direction=Direction.HIGHER,
            tolerance=0.75,
            paper_value=paper,
            paper_tolerance=band,
        )
        return spec.record(value)

    def test_matches_paper_inside_band(self):
        assert self._record(value=53.0).matches_paper is True

    def test_matches_paper_outside_band(self):
        assert self._record(value=40.0).matches_paper is False

    def test_matches_paper_none_without_reference(self):
        assert self._record(paper=None, band=None).matches_paper is None

    def test_dict_roundtrip(self):
        record = self._record()
        clone = MetricRecord.from_dict(record.as_dict())
        assert clone == record

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(MetricsError):
            MetricRecord.from_dict({"name": "x"})
