"""Tests for the ``repro report`` / ``repro compare`` CLI sub-commands.

The report runs use the delay line at 8192 samples: the fastest design
whose 5 kHz tone clears the analysis window at that length, so every
test stays well under a second of simulation.
"""

import json

import pytest

from repro.cli import main
from repro.metrics import MANIFEST_SCHEMA, build_report

FAST = ["--samples", "8192"]


@pytest.fixture(scope="module")
def baseline_path(tmp_path_factory):
    """A golden delay-line manifest measured once for the module."""
    target = tmp_path_factory.mktemp("baseline") / "delay-line.json"
    build_report("delay-line", n_samples=8192).write_json(target)
    return target


class TestReportCommand:
    def test_report_prints_manifest_table(self, capsys):
        assert main(["report", "delay-line", *FAST]) == 0
        output = capsys.readouterr().out
        assert "run manifest: delay-line" in output
        assert "thd_db" in output
        assert "gain_error" in output

    def test_report_writes_json(self, tmp_path, capsys):
        target = tmp_path / "m.json"
        assert main(["report", "delay-line", *FAST, "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["schema"] == MANIFEST_SCHEMA
        assert payload["design"] == "delay-line"
        assert payload["provenance"]["git_sha"]
        # The CLI stamps its own argv into the manifest.
        assert "report" in " ".join(payload["provenance"]["argv"])

    def test_report_writes_markdown(self, tmp_path, capsys):
        target = tmp_path / "m.md"
        assert (
            main(["report", "delay-line", *FAST, "--markdown", str(target)]) == 0
        )
        assert "## Run manifest: `delay-line`" in target.read_text()

    def test_report_rejects_unknown_design(self, capsys):
        with pytest.raises(SystemExit):
            main(["report", "not-a-design"])


class TestCompareCommand:
    def test_self_compare_passes(self, baseline_path, tmp_path, capsys):
        current = tmp_path / "current.json"
        build_report("delay-line", n_samples=8192).write_json(current)
        code = main(
            ["compare", str(current), "--baseline", str(baseline_path)]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "compare PASS" in output

    def test_degraded_run_fails_and_names_metric(
        self, baseline_path, tmp_path, capsys
    ):
        # The acceptance criterion: artificially degrading the noise
        # floor must exit non-zero with a diff table naming the metric.
        current = tmp_path / "degraded.json"
        build_report("delay-line", n_samples=8192, noise_scale=3.0).write_json(
            current
        )
        code = main(
            ["compare", str(current), "--baseline", str(baseline_path)]
        )
        output = capsys.readouterr().out
        assert code == 1
        assert "compare FAIL" in output
        assert "REGRESS" in output
        assert "noise_rms_na" in output

    def test_missing_manifest_exits_two(self, capsys):
        assert main(["compare", "/nonexistent/m.json"]) == 2
        assert "error:" in capsys.readouterr().err
