"""Tests for run manifests, provenance stamping and bench telemetry."""

import json

import pytest

from repro.errors import MetricsError
from repro.metrics import (
    BENCH_SCHEMA,
    MANIFEST_SCHEMA,
    MetricRegistry,
    Provenance,
    RunManifest,
    collect_provenance,
    load_manifest,
    manifest_from_registry,
    write_bench_telemetry,
)
from repro.metrics.manifest import merge_bench_records


def _manifest(design="modulator2", sndr=53.3):
    registry = MetricRegistry(design)
    registry.record("sndr_db", sndr, "span:test")
    registry.record("power_mw", 2.6)
    return manifest_from_registry(
        registry, config={"n_samples": 16384, "amplitude": 3e-6}
    )


class TestProvenance:
    def test_collect_fills_every_field(self):
        stamp = collect_provenance(argv=["repro", "report", "mod2"])
        assert stamp.git_sha
        assert stamp.timestamp.endswith("+00:00")
        assert stamp.python_version
        assert stamp.numpy_version
        assert stamp.argv == ("repro", "report", "mod2")

    def test_dict_roundtrip(self):
        stamp = collect_provenance()
        assert Provenance.from_dict(stamp.as_dict()) == stamp

    def test_from_dict_tolerates_missing_fields(self):
        stamp = Provenance.from_dict({})
        assert stamp.git_sha == "unknown"


class TestRunManifest:
    def test_json_roundtrip(self, tmp_path):
        manifest = _manifest()
        path = manifest.write_json(tmp_path / "m.json")
        loaded = load_manifest(path)
        assert loaded.design == "modulator2"
        assert loaded.config["n_samples"] == 16384
        assert loaded.get("sndr_db").value == 53.3
        assert loaded.provenance == manifest.provenance

    def test_schema_stamped(self, tmp_path):
        path = _manifest().write_json(tmp_path / "m.json")
        assert json.loads(path.read_text())["schema"] == MANIFEST_SCHEMA

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(MetricsError, match="not found"):
            load_manifest(tmp_path / "absent.json")

    def test_load_rejects_wrong_schema(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(MetricsError, match="not a run manifest"):
            load_manifest(target)

    def test_empty_design_rejected(self):
        with pytest.raises(MetricsError, match="non-empty"):
            RunManifest(design="", metrics=[])

    def test_render_table_mentions_every_metric(self):
        table = _manifest().render_table()
        assert "sndr_db" in table
        assert "power_mw" in table

    def test_render_markdown_carries_provenance(self):
        markdown = _manifest().render_markdown()
        assert "git SHA" in markdown
        assert "| `sndr_db` |" in markdown


class TestBenchTelemetry:
    def test_merge_keeps_other_benchmarks(self):
        existing = {
            "records": [
                {"benchmark": "a", "wall_s": 1.0},
                {"benchmark": "b", "wall_s": 2.0},
            ]
        }
        merged = merge_bench_records(existing, [{"benchmark": "b", "wall_s": 9.0}])
        by_name = {entry["benchmark"]: entry for entry in merged}
        assert set(by_name) == {"a", "b"}
        assert by_name["b"]["wall_s"] == 9.0

    def test_partial_run_does_not_clobber(self, tmp_path):
        target = tmp_path / "BENCH_telemetry.json"
        write_bench_telemetry(target, [{"benchmark": "a", "wall_s": 1.0}])
        write_bench_telemetry(target, [{"benchmark": "b", "wall_s": 2.0}])
        payload = json.loads(target.read_text())
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["n_benchmarks"] == 2
        assert payload["total_wall_s"] == pytest.approx(3.0)
        assert "provenance" in payload

    def test_legacy_alias_keys_preserved(self, tmp_path):
        target = tmp_path / "BENCH_telemetry.json"
        write_bench_telemetry(target, [{"benchmark": "a", "wall_s": 1.5}])
        payload = json.loads(target.read_text())
        # The pre-manifest consumers read exactly these keys.
        assert payload["n_benchmarks"] == 1
        assert payload["records"][0]["benchmark"] == "a"
