"""Request normalization: the canonical form behind service dedup."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service.app import DEFAULT_REPORT_SAMPLES, normalize_request


class TestReportRequests:
    def test_defaults_are_materialized(self):
        request = normalize_request({"design": "modulator2"})
        assert request.kind == "report"
        assert request.params == {
            "design": "modulator2",
            "n_samples": DEFAULT_REPORT_SAMPLES,
            "sweep": True,
            "noise_scale": 1.0,
            "mismatch": 0.0,
        }

    def test_aliases_digest_identically(self):
        short = normalize_request({"design": "mod2", "n_samples": 8192})
        long = normalize_request({"design": "modulator2", "n_samples": 8192})
        assert short.params["design"] == long.params["design"]
        assert short.digest() == long.digest()

    def test_spelled_out_defaults_digest_identically(self):
        bare = normalize_request({"design": "mod2"})
        explicit = normalize_request(
            {
                "design": "mod2",
                "n_samples": DEFAULT_REPORT_SAMPLES,
                "sweep": True,
                "noise_scale": 1,
                "mismatch": 0,
            }
        )
        assert bare.digest() == explicit.digest()

    def test_different_params_digest_differently(self):
        a = normalize_request({"design": "mod2"})
        b = normalize_request({"design": "mod2", "noise_scale": 2.0})
        assert a.digest() != b.digest()

    @pytest.mark.parametrize(
        "raw",
        [
            {},
            {"design": ""},
            {"design": 7},
            {"design": "no-such-design"},
            {"design": "mod2", "n_samples": "many"},
            {"design": "mod2", "n_samples": True},
            {"design": "mod2", "n_samples": 1024},
            {"design": "mod2", "noise_scale": "loud"},
            {"kind": "unknown", "design": "mod2"},
            "not-a-mapping",
        ],
    )
    def test_invalid_requests_raise_service_error(self, raw):
        with pytest.raises(ServiceError):
            normalize_request(raw)


class TestSweepRequests:
    SPEC = {
        "design": "modulator2",
        "levels_db": [-40.0, -20.0],
        "full_scale": 2e-6,
        "signal_frequency": 1953.125,
        "sample_rate": 1_000_000.0,
        "n_samples": 8192,
        "bandwidth": 3400.0,
    }

    def test_spec_normalizes_to_its_cache_key(self):
        request = normalize_request({"kind": "sweep", "spec": self.SPEC})
        assert request.kind == "sweep"
        assert request.params["kind"] == "amplitude-sweep"
        assert request.params["design"] == "modulator2"
        assert request.params["levels_db"] == [-40.0, -20.0]

    def test_levels_coerce_before_digesting(self):
        ints = dict(self.SPEC, levels_db=[-40, -20])
        a = normalize_request({"kind": "sweep", "spec": self.SPEC})
        b = normalize_request({"kind": "sweep", "spec": ints})
        assert a.digest() == b.digest()

    @pytest.mark.parametrize(
        "raw",
        [
            {"kind": "sweep"},
            {"kind": "sweep", "spec": "not-a-mapping"},
            {"kind": "sweep", "spec": {"design": "mod2", "bogus": 1}},
        ],
    )
    def test_invalid_specs_raise_service_error(self, raw):
        with pytest.raises(ServiceError):
            normalize_request(raw)
