"""Job-queue semantics: dedup, cancellation, backpressure, crashes.

These tests drive :class:`repro.service.queue.JobQueue` directly with
stub runners (no HTTP, no simulations), using gate events to hold jobs
in deliberate states -- the queue's concurrency contract is what's
under test, not the engines behind it.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import QueueFullError, ServiceError
from repro.observability.instruments import InstrumentRegistry, use_registry
from repro.service.queue import JobQueue, JobRequest, JobState


def _request(tag: str) -> JobRequest:
    return JobRequest(kind="report", params={"design": tag})


def _blocking_runner(gate: threading.Event):
    """Return a runner that holds its job until ``gate`` is set."""

    def runner(job):
        gate.wait(timeout=10.0)
        return {}

    return runner


def _spin_until_running(job) -> None:
    """Busy-wait (bounded) until a worker claims ``job``."""
    import time

    deadline = time.monotonic() + 10.0
    while job.state is JobState.QUEUED:
        if time.monotonic() > deadline:  # pragma: no cover
            raise AssertionError("job never left QUEUED")
        time.sleep(0.001)


@pytest.fixture
def registry():
    """Run each test under a fresh process-wide instrument registry."""
    fresh = InstrumentRegistry()
    with use_registry(fresh):
        yield fresh


def _counter_value(registry: InstrumentRegistry, name: str, **labels) -> float:
    instruments = registry.snapshot().get("instruments", {})
    instrument = instruments.get(name, {})
    wanted = {k: str(v) for k, v in labels.items()}
    for series in instrument.get("series", []):
        if series.get("labels", {}) == wanted:
            return float(series.get("value", 0.0))
    return 0.0


class TestDedup:
    def test_concurrent_duplicates_coalesce_to_one_execution(self, registry):
        gate = threading.Event()
        runs: list[str] = []

        def runner(job):
            runs.append(job.id)
            gate.wait(timeout=10.0)
            return {"ok": True}

        queue = JobQueue(runner, workers=1)
        try:
            job1, disp1 = queue.submit(_request("mod2"))
            # Wait until the worker owns the job so the duplicate hits
            # the RUNNING (not QUEUED) coalescing branch too.
            _spin_until_running(job1)
            job2, disp2 = queue.submit(_request("mod2"))
            assert disp1 == "new"
            assert disp2 == "coalesced"
            assert job1 is job2
            gate.set()
            assert job1.wait(timeout=10.0)
            assert job1.state is JobState.DONE
            assert runs == [job1.id]
            assert _counter_value(
                registry, "repro.service.executed", kind="report"
            ) == 1.0
            assert _counter_value(
                registry, "repro.service.dedup_hits", mode="coalesced"
            ) == 1.0
        finally:
            gate.set()
            queue.close()

    def test_completed_job_reuses_stored_result(self, registry):
        queue = JobQueue(lambda job: {"n": 1}, workers=1)
        try:
            job1, _ = queue.submit(_request("mod2"))
            assert job1.wait(timeout=10.0)
            job2, disposition = queue.submit(_request("mod2"))
            assert disposition == "completed"
            assert job2 is job1
            assert job2.result == {"n": 1}
            assert _counter_value(
                registry, "repro.service.executed", kind="report"
            ) == 1.0
        finally:
            queue.close()

    def test_failed_job_is_retried_not_reused(self, registry):
        attempts: list[int] = []

        def runner(job):
            attempts.append(1)
            if len(attempts) == 1:
                raise ValueError("boom")
            return {"ok": True}

        queue = JobQueue(runner, workers=1)
        try:
            job1, _ = queue.submit(_request("mod2"))
            assert job1.wait(timeout=10.0)
            assert job1.state is JobState.FAILED
            assert "boom" in (job1.error or "")
            job2, disposition = queue.submit(_request("mod2"))
            assert disposition == "retried"
            assert job2 is not job1
            assert job2.wait(timeout=10.0)
            assert job2.state is JobState.DONE
        finally:
            queue.close()

    def test_digest_is_request_content_address(self):
        assert _request("a").digest() == _request("a").digest()
        assert _request("a").digest() != _request("b").digest()


class TestCancellation:
    def test_cancel_queued_job(self, registry):
        gate = threading.Event()
        queue = JobQueue(_blocking_runner(gate), workers=1)
        try:
            blocker, _ = queue.submit(_request("a"))
            _spin_until_running(blocker)
            queued, _ = queue.submit(_request("b"))
            assert queued.state is JobState.QUEUED
            assert queue.cancel(queued.id) is True
            assert queued.state is JobState.CANCELLED
            assert queued.wait(timeout=1.0)
            assert queued.events.closed
            assert _counter_value(
                registry, "repro.service.cancelled", kind="report"
            ) == 1.0
        finally:
            gate.set()
            queue.close()

    def test_cannot_cancel_running_or_done(self, registry):
        gate = threading.Event()
        queue = JobQueue(_blocking_runner(gate), workers=1)
        try:
            job, _ = queue.submit(_request("a"))
            _spin_until_running(job)
            assert queue.cancel(job.id) is False
            gate.set()
            assert job.wait(timeout=10.0)
            assert queue.cancel(job.id) is False
            assert queue.cancel("no-such-job") is False
        finally:
            gate.set()
            queue.close()


class TestBackpressure:
    def test_queue_full_rejects_new_requests(self, registry):
        gate = threading.Event()
        queue = JobQueue(
            _blocking_runner(gate),
            workers=1,
            max_pending=1,
        )
        try:
            running, _ = queue.submit(_request("a"))
            _spin_until_running(running)
            queued, _ = queue.submit(_request("b"))
            with pytest.raises(QueueFullError):
                queue.submit(_request("c"))
            # Duplicates of existing jobs still coalesce at zero cost.
            _, disposition = queue.submit(_request("b"))
            assert disposition == "coalesced"
            assert _counter_value(
                registry, "repro.service.rejected", kind="report"
            ) == 1.0
        finally:
            gate.set()
            queue.close()

    def test_invalid_construction(self):
        with pytest.raises(ServiceError):
            JobQueue(lambda job: {}, workers=0)
        with pytest.raises(ServiceError):
            JobQueue(lambda job: {}, max_pending=0)


class TestWorkerCrash:
    def test_crash_marks_failed_without_wedging_the_queue(self, registry):
        def runner(job):
            if job.request.params["design"] == "poison":
                raise RuntimeError("worker crash")
            return {"ok": True}

        queue = JobQueue(runner, workers=1)
        try:
            poisoned, _ = queue.submit(_request("poison"))
            healthy, _ = queue.submit(_request("fine"))
            assert poisoned.wait(timeout=10.0)
            assert healthy.wait(timeout=10.0)
            assert poisoned.state is JobState.FAILED
            assert poisoned.error is not None
            assert healthy.state is JobState.DONE
            assert _counter_value(
                registry, "repro.service.failed", kind="report"
            ) == 1.0
        finally:
            queue.close()

    def test_failed_job_event_stream_records_the_error(self, registry):
        def runner(job):
            raise RuntimeError("boom")

        queue = JobQueue(runner, workers=1)
        try:
            job, _ = queue.submit(_request("a"))
            assert job.wait(timeout=10.0)
            lines = job.events.lines()
            assert any('"job_finish"' in line for line in lines)
            assert any("boom" in line for line in lines)
            assert job.events.closed
        finally:
            queue.close()


class TestLifecycle:
    def test_close_cancels_pending_and_rejects_submissions(self, registry):
        gate = threading.Event()
        queue = JobQueue(_blocking_runner(gate), workers=1)
        running, _ = queue.submit(_request("a"))
        _spin_until_running(running)
        pending, _ = queue.submit(_request("b"))
        gate.set()
        queue.close()
        assert pending.state is JobState.CANCELLED
        with pytest.raises(ServiceError):
            queue.submit(_request("c"))

    def test_descriptor_shape(self, registry):
        queue = JobQueue(lambda job: {"ok": True}, workers=1)
        try:
            job, _ = queue.submit(_request("a"))
            assert job.wait(timeout=10.0)
            descriptor = job.descriptor()
            assert descriptor["id"] == job.id
            assert descriptor["kind"] == "report"
            assert descriptor["state"] == "done"
            assert descriptor["params"] == {"design": "a"}
            assert descriptor["n_events"] >= 2  # stream_start + job events
        finally:
            queue.close()
