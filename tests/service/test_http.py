"""HTTP API tests against a live threaded server on an ephemeral port.

Most tests swap the service's queue for one with a stub runner, so the
HTTP contract (status codes, dedup dispositions, byte-identity, event
tailing) is exercised without running simulations.  The integration
tests at the bottom run one real (reduced-size) report job end to end,
including the run-ledger recording contract.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import QueueFullError, ServiceError
from repro.observability.instruments import InstrumentRegistry, use_registry
from repro.service import (
    ServiceClient,
    ServiceConfig,
    SimulationService,
    build_server,
)
from repro.service.queue import JobQueue


@pytest.fixture(autouse=True)
def _fresh_registry():
    with use_registry(InstrumentRegistry()):
        yield


class _Harness:
    """A live server bound to port 0 plus its client and gate."""

    def __init__(self, service: SimulationService) -> None:
        self.service = service
        self.server = build_server(service, port=0)
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()
        port = self.server.server_address[1]
        self.client = ServiceClient(f"http://127.0.0.1:{port}", timeout_s=10.0)

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.service.close()


@pytest.fixture
def harness(tmp_path):
    """A server whose queue runs a gated stub instead of simulations."""
    gate = threading.Event()

    def stub_runner(job):
        if job.request.params.get("mismatch") == 0.5:
            raise RuntimeError("stub failure")
        gate.wait(timeout=10.0)
        return {"kind": job.request.kind, "params": dict(job.request.params)}

    service = SimulationService(
        ServiceConfig(cache_dir=str(tmp_path / "cache"), ledger=False)
    )
    service.queue.close()
    service.queue = JobQueue(stub_runner, workers=1, max_pending=2)
    h = _Harness(service)
    h.gate = gate
    gate.set()  # default: jobs complete immediately; tests may clear
    yield h
    gate.set()
    h.close()


REQ = {"kind": "report", "design": "modulator2", "n_samples": 8192}


class TestEndpoints:
    def test_health(self, harness):
        health = harness.client.health()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0.0

    def test_unknown_routes_404(self, harness):
        with pytest.raises(ServiceError, match="404"):
            harness.client._request("GET", "/nope")
        with pytest.raises(ServiceError, match="404"):
            harness.client.job("not-a-job")

    def test_invalid_request_400(self, harness):
        with pytest.raises(ServiceError, match="design"):
            harness.client.submit({"design": "no-such-design"})

    def test_statsz_prometheus_and_json(self, harness):
        harness.client.submit(REQ)
        text = harness.client.stats_text()
        assert "repro_service_submitted" in text
        snapshot = harness.client.stats()
        assert "repro.service.submitted" in snapshot.get("instruments", {})

    def test_job_listing(self, harness):
        descriptor = harness.client.submit(REQ)
        listed = harness.client.jobs()
        assert [job["id"] for job in listed] == [descriptor["id"]]


class TestDedupOverHTTP:
    def test_three_submissions_one_execution_identical_bytes(self, harness):
        harness.gate.clear()
        d1 = harness.client.submit(REQ)
        d2 = harness.client.submit(dict(REQ, design="mod2"))  # alias
        d3 = harness.client.submit(REQ)
        assert d1["disposition"] == "new"
        assert {d2["disposition"], d3["disposition"]} == {"coalesced"}
        assert d1["id"] == d2["id"] == d3["id"]
        harness.gate.set()

        payloads = [
            harness.client.result_bytes(d["id"], timeout_s=10.0)
            for d in (d1, d2, d3)
        ]
        assert payloads[0] == payloads[1] == payloads[2]

        instruments = harness.client.stats().get("instruments", {})
        executed = sum(
            float(series["value"])
            for series in instruments["repro.service.executed"]["series"]
        )
        coalesced = sum(
            float(series["value"])
            for series in instruments["repro.service.dedup_hits"]["series"]
            if series.get("labels", {}).get("mode") == "coalesced"
        )
        assert executed == 1.0
        assert coalesced == 2.0

    def test_completed_job_served_from_store(self, harness):
        d1 = harness.client.submit(REQ)
        first = harness.client.result_bytes(d1["id"], timeout_s=10.0)
        d2 = harness.client.submit(REQ)
        assert d2["disposition"] == "completed"
        assert harness.client.result_bytes(d2["id"], timeout_s=10.0) == first


class TestResultStates:
    def test_failed_job_returns_500(self, harness):
        descriptor = harness.client.submit(dict(REQ, mismatch=0.5))
        job = harness.service.queue.get(descriptor["id"])
        assert job.wait(timeout=10.0)
        with pytest.raises(ServiceError, match="stub failure"):
            harness.client.result_bytes(descriptor["id"], timeout_s=10.0)

    def test_pending_result_is_202_descriptor(self, harness):
        harness.gate.clear()
        descriptor = harness.client.submit(REQ)
        status, payload = harness.client._request(
            "GET", f"/jobs/{descriptor['id']}/result"
        )
        assert status == 202
        assert json.loads(payload)["state"] in ("queued", "running")
        harness.gate.set()

    def test_cancel_queued_then_410(self, harness):
        harness.gate.clear()
        blocker = harness.client.submit(REQ)
        queued = harness.client.submit(dict(REQ, noise_scale=2.0))
        assert queued["state"] == "queued"
        cancelled = harness.client.cancel(queued["id"])
        assert cancelled["state"] == "cancelled"
        with pytest.raises(ServiceError, match="410"):
            harness.client.result_bytes(queued["id"], timeout_s=5.0)
        # The running blocker cannot be cancelled.
        with pytest.raises(ServiceError, match="409"):
            harness.client.cancel(blocker["id"])
        harness.gate.set()

    def test_queue_full_is_429(self, harness):
        harness.gate.clear()
        harness.client.submit(REQ)  # claimed by the worker
        harness.client.submit(dict(REQ, noise_scale=2.0))  # pending 1
        harness.client.submit(dict(REQ, noise_scale=3.0))  # pending 2
        with pytest.raises(QueueFullError):
            harness.client.submit(dict(REQ, noise_scale=4.0))
        harness.gate.set()


class TestEvents:
    def test_event_log_is_seq_monotonic_ndjson(self, harness):
        descriptor = harness.client.submit(REQ)
        harness.client.result_bytes(descriptor["id"], timeout_s=10.0)
        events = list(harness.client.events(descriptor["id"]))
        assert events, "expected at least the stream_start event"
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "stream_start"
        assert "job_start" in kinds
        assert "job_finish" in kinds
        assert kinds[-1] == "stream_finish"

    def test_follow_streams_until_terminal(self, harness):
        descriptor = harness.client.submit(REQ)
        # follow=1 blocks until the job's buffer closes, then the
        # iterator ends -- a completed job terminates promptly.
        harness.client.result_bytes(descriptor["id"], timeout_s=10.0)
        events = list(harness.client.events(descriptor["id"], follow=True))
        assert events[-1]["event"] == "stream_finish"


class TestRealSimulation:
    """End-to-end: real report job, reduced size, through HTTP."""

    def _serve(self, tmp_path, ledger: bool):
        service = SimulationService(
            ServiceConfig(
                cache_dir=str(tmp_path / "cache"),
                ledger=ledger,
                ledger_dir=str(tmp_path / "ledger"),
            )
        )
        return _Harness(service)

    def test_report_manifest_and_ledger(self, tmp_path):
        from repro.observability.ledger import RunLedger

        harness = self._serve(tmp_path, ledger=True)
        try:
            descriptor = harness.client.submit(
                {"design": "mod2", "n_samples": 8192, "sweep": False}
            )
            manifest = harness.client.result(
                descriptor["id"], timeout_s=120.0
            )
            assert manifest["schema"] == "repro.metrics/run-manifest/v1"
            assert manifest["design"] == "modulator2"
            assert any(
                record["name"] == "sndr_db" for record in manifest["metrics"]
            )
            # Satellite: every service-executed run lands in the ledger.
            entries = list(RunLedger(str(tmp_path / "ledger")).entries())
            assert len(entries) == 1
            assert entries[0].kind == "report"
            assert entries[0].design == "modulator2"
        finally:
            harness.close()

    def test_no_ledger_opt_out(self, tmp_path):
        harness = self._serve(tmp_path, ledger=False)
        try:
            descriptor = harness.client.submit(
                {"design": "mod2", "n_samples": 8192, "sweep": False}
            )
            harness.client.result(descriptor["id"], timeout_s=120.0)
            assert not (tmp_path / "ledger").exists()
        finally:
            harness.close()
