"""Property-based tests for the class-AB translinear split."""

import math

from hypothesis import given, strategies as st

from repro.si.memory_cell import class_ab_split

signals = st.floats(
    min_value=-1e-3, max_value=1e-3, allow_nan=False, allow_infinity=False
)
quiescents = st.floats(min_value=1e-9, max_value=1e-4)


class TestSplitInvariants:
    @given(signal=signals, iq=quiescents)
    def test_difference_is_signal(self, signal, iq):
        i_n, i_p = class_ab_split(signal, iq)
        assert math.isclose(i_n - i_p, signal, rel_tol=1e-9, abs_tol=1e-18)

    @given(signal=signals, iq=quiescents)
    def test_both_devices_conduct(self, signal, iq):
        i_n, i_p = class_ab_split(signal, iq)
        assert i_n > 0.0
        assert i_p > 0.0

    @given(signal=signals, iq=quiescents)
    def test_translinear_product(self, signal, iq):
        # i_n * i_p = I_Q^2: the square-law translinear-loop invariant.
        i_n, i_p = class_ab_split(signal, iq)
        assert math.isclose(i_n * i_p, iq * iq, rel_tol=1e-6)

    @given(signal=signals, iq=quiescents)
    def test_odd_symmetry(self, signal, iq):
        # Negating the signal swaps the two devices.
        i_n1, i_p1 = class_ab_split(signal, iq)
        i_n2, i_p2 = class_ab_split(-signal, iq)
        assert math.isclose(i_n1, i_p2, rel_tol=1e-9, abs_tol=1e-18)
        assert math.isclose(i_p1, i_n2, rel_tol=1e-9, abs_tol=1e-18)

    @given(signal=st.floats(min_value=1e-9, max_value=1e-3), iq=quiescents)
    def test_conducting_device_carries_more_than_signal(self, signal, iq):
        i_n, _ = class_ab_split(signal, iq)
        assert i_n > signal

    @given(iq=quiescents)
    def test_quiescent_point(self, iq):
        i_n, i_p = class_ab_split(0.0, iq)
        assert math.isclose(i_n, iq, rel_tol=1e-12)
        assert math.isclose(i_p, iq, rel_tol=1e-12)
