"""Property-based tests for delay-line composition."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import ideal_cell_config
from repro.si.delay_line import DelayLine


class TestCompositionLaws:
    @settings(max_examples=15, deadline=None)
    @given(n_cells=st.integers(min_value=1, max_value=6))
    def test_ideal_cascade_delays_by_n(self, n_cells):
        line = DelayLine(ideal_cell_config(), n_cells=n_cells)
        rng = np.random.default_rng(n_cells)
        x = rng.normal(0.0, 1e-6, size=32)
        y = line.run(x)
        sign = -1.0 if n_cells % 2 == 1 else 1.0
        np.testing.assert_allclose(
            y[n_cells:], sign * x[:-n_cells], rtol=1e-9, atol=1e-18
        )

    @settings(max_examples=15, deadline=None)
    @given(
        n_cells=st.integers(min_value=1, max_value=4),
        scale=st.floats(min_value=0.1, max_value=5.0),
    )
    def test_ideal_cascade_is_linear(self, n_cells, scale):
        rng = np.random.default_rng(7)
        x = rng.normal(0.0, 1e-6, size=24)
        line_a = DelayLine(ideal_cell_config(), n_cells=n_cells)
        line_b = DelayLine(ideal_cell_config(), n_cells=n_cells)
        y_unit = line_a.run(x)
        y_scaled = line_b.run(scale * x)
        np.testing.assert_allclose(y_scaled, scale * y_unit, rtol=1e-9, atol=1e-18)

    @settings(max_examples=10, deadline=None)
    @given(n_cells=st.integers(min_value=1, max_value=4))
    def test_inverting_parity(self, n_cells):
        line = DelayLine(ideal_cell_config(), n_cells=n_cells)
        assert line.inverting == (n_cells % 2 == 1)

    @settings(max_examples=10, deadline=None)
    @given(n_cells=st.integers(min_value=2, max_value=5))
    def test_cascade_equals_two_subcascades(self, n_cells):
        # Running N cells equals running k cells into N-k cells.
        split = n_cells // 2
        rng = np.random.default_rng(3)
        x = rng.normal(0.0, 1e-6, size=24)
        whole = DelayLine(ideal_cell_config(), n_cells=n_cells).run(x)
        first = DelayLine(ideal_cell_config(), n_cells=split).run(x)
        second = DelayLine(ideal_cell_config(), n_cells=n_cells - split).run(first)
        np.testing.assert_allclose(whole, second, rtol=1e-9, atol=1e-18)
