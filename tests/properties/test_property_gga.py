"""Property-based tests for the GGA settling model."""

import math

from hypothesis import given, strategies as st

from repro.si.gga import GroundedGateAmplifier

currents = st.floats(
    min_value=-50e-6, max_value=50e-6, allow_nan=False, allow_infinity=False
)
biases = st.floats(min_value=1e-6, max_value=100e-6)


class TestSettlingInvariants:
    @given(previous=currents, target=currents, bias=biases)
    def test_residual_consistency(self, previous, target, bias):
        # settled = target - residual, always.
        gga = GroundedGateAmplifier(bias_current=bias)
        result = gga.settle(previous, target)
        assert math.isclose(
            result.settled_current,
            target - result.residual_error,
            rel_tol=1e-12,
            abs_tol=1e-24,
        )

    @given(previous=currents, target=currents, bias=biases)
    def test_residual_bounded_by_excursion(self, previous, target, bias):
        # Settling never overshoots: the residual is no larger than the
        # total excursion it had to cover (step plus phase kick).
        gga = GroundedGateAmplifier(bias_current=bias)
        result = gga.settle(previous, target)
        excursion = abs(target - previous) + gga.phase_kick_fraction * abs(target)
        assert abs(result.residual_error) <= excursion + 1e-24

    @given(previous=currents, target=currents, bias=biases)
    def test_no_kick_means_settling_toward_target(self, previous, target, bias):
        # Without the phase kick the settled value lies between the
        # previous value and the target (monotone first-order settling).
        gga = GroundedGateAmplifier(bias_current=bias, phase_kick_fraction=0.0)
        result = gga.settle(previous, target)
        low, high = min(previous, target), max(previous, target)
        assert low - 1e-24 <= result.settled_current <= high + 1e-24

    @given(target=currents, bias=biases)
    def test_margin_in_unit_interval(self, target, bias):
        gga = GroundedGateAmplifier(bias_current=bias)
        margin = gga.drive_margin(target)
        assert gga.drive_margin_floor <= margin <= 1.0

    @given(previous=currents, target=currents)
    def test_more_bias_never_hurts(self, previous, target):
        small = GroundedGateAmplifier(bias_current=2e-6)
        large = GroundedGateAmplifier(bias_current=50e-6)
        err_small = abs(small.settle(previous, target).residual_error)
        err_large = abs(large.settle(previous, target).residual_error)
        assert err_large <= err_small + 1e-18
