"""Property suite: the engine ladder is byte-identical to the scalar oracle.

The kernel tier's contract (docs/RUNTIME.md) is *byte*-equality with
``force_scalar()`` -- not approximate agreement -- across every
lowerable design, including dithered quantizers, metastability bands,
DAC reference noise, and telemetry-probed runs.  Hypothesis drives the
device variants and stimuli; each drawn case runs once through the
scalar loop and once per engine rung on an identically-seeded twin.

Probe statistics are the one deliberate exception: ``observe_array``
accumulates with pairwise summation while the scalar loop's
``observe`` is sequential, so means/rms agree to 1e-12 relative, not
bitwise (the same contract ``tests/telemetry`` asserts).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import paper_cell_config
from repro.deltasigma.chopper_modulator import ChopperStabilizedSIModulator
from repro.deltasigma.dac import FeedbackDac
from repro.deltasigma.dither import DitheredQuantizer
from repro.deltasigma.modulator1 import SIModulator1
from repro.deltasigma.modulator2 import SIModulator2
from repro.deltasigma.quantizer import CurrentQuantizer
from repro.runtime.engine import use_engine
from repro.runtime.single import consume_fallbacks, force_scalar
from repro.runtime.sweeps import run_sweep, sweep_spec_for_design
from repro.telemetry.designs import TRACE_DESIGNS
from repro.telemetry.session import TelemetrySession

CONFIG = paper_cell_config(sample_rate=2.45e6)

#: Every selectable rung; ``scalar`` included so the pin itself is
#: covered (it must reproduce the oracle trivially).
ENGINES = ("auto", "batch", "kernel", "scalar")

MODULATOR_KINDS = {
    "chopper": ChopperStabilizedSIModulator,
    "modulator1": SIModulator1,
    "modulator2": SIModulator2,
}


def _build_modulator(kind, dither, metastable, dac_noise):
    kwargs = dict(
        offset=1e-8 if metastable else 0.0,
        hysteresis=2e-9 if metastable else 0.0,
        metastability_band=5e-8 if metastable else 0.0,
        seed=11,
    )
    quantizer = (
        DitheredQuantizer(2e-7, **kwargs)
        if dither
        else CurrentQuantizer(**kwargs)
    )
    dac = (
        FeedbackDac(6e-6, reference_noise_rms=3e-8, seed=5)
        if dac_noise
        else None
    )
    return MODULATOR_KINDS[kind](cell_config=CONFIG, quantizer=quantizer, dac=dac)


def _stimulus(n, amplitude, seed):
    rng = np.random.default_rng(seed)
    tone = amplitude * np.sin(2.0 * np.pi * 2e3 * np.arange(n) / 2.45e6)
    return tone + 0.05 * amplitude * rng.standard_normal(n)


@pytest.fixture(autouse=True)
def _drain_fallback_notes():
    """Keep one case's engine-fallback notes out of the next case."""
    yield
    consume_fallbacks()


class TestModulatorParity:
    @settings(max_examples=24, deadline=None)
    @given(
        kind=st.sampled_from(sorted(MODULATOR_KINDS)),
        dither=st.booleans(),
        metastable=st.booleans(),
        dac_noise=st.booleans(),
        engine=st.sampled_from(ENGINES),
        amplitude=st.floats(min_value=1e-7, max_value=6e-6),
        n=st.integers(min_value=16, max_value=512),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_engine_matches_scalar_oracle(
        self, kind, dither, metastable, dac_noise, engine, amplitude, n, seed
    ):
        stimulus = _stimulus(n, amplitude, seed)
        reference = _build_modulator(kind, dither, metastable, dac_noise)
        with force_scalar():
            want = reference.run(stimulus)
        device = _build_modulator(kind, dither, metastable, dac_noise)
        with use_engine(engine):
            got = device.run(stimulus)
        assert got.tobytes() == want.tobytes()
        # The loop state the next run would start from must match too.
        assert (
            device.quantizer._last_decision
            == reference.quantizer._last_decision
        )

    @settings(max_examples=12, deadline=None)
    @given(
        kind=st.sampled_from(sorted(MODULATOR_KINDS)),
        dither=st.booleans(),
        engine=st.sampled_from(ENGINES),
        n=st.integers(min_value=16, max_value=256),
    )
    def test_streams_advance_identically(self, kind, dither, engine, n):
        # After a run, every noise stream must sit at the same position
        # as the scalar oracle's, or the *next* run would diverge: the
        # first post-run draw is compared for the quantizer, dither and
        # DAC streams.
        stimulus = _stimulus(n, 3e-6, seed=1)
        reference = _build_modulator(kind, dither, True, True)
        with force_scalar():
            reference.run(stimulus)
        device = _build_modulator(kind, dither, True, True)
        with use_engine(engine):
            device.run(stimulus)
        assert device.quantizer._stream.next() == reference.quantizer._stream.next()
        assert device.dac._stream.next() == reference.dac._stream.next()
        if dither:
            assert (
                device.quantizer._dither.next()
                == reference.quantizer._dither.next()
            )


class TestTraceDesignParity:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("name", sorted(TRACE_DESIGNS))
    def test_probed_run_matches_scalar_oracle(self, name, engine):
        # The paper pipeline runs its devices with telemetry attached;
        # the ladder must stay byte-identical with probes feeding.
        setup = TRACE_DESIGNS[name]
        n = 2048
        t = np.arange(n) / setup.sample_rate
        stimulus = setup.amplitude * np.sin(
            2.0 * np.pi * setup.frequency * t
        )

        def probed(context):
            device = setup.build()
            session = TelemetrySession(setup.name)
            device.attach_telemetry(session)
            with context:
                out = device.run(stimulus)
            stats = {
                probe_name: (probe.count, probe.mean, probe.rms, probe.peak)
                for probe_name, probe in session.probes.items()
            }
            return out, stats

        want, want_stats = probed(force_scalar())
        got, got_stats = probed(use_engine(engine))
        assert got.tobytes() == want.tobytes()
        assert set(got_stats) == set(want_stats)
        for key, (count, *floats) in want_stats.items():
            got_count, *got_floats = got_stats[key]
            assert got_count == count
            for a, b in zip(got_floats, floats):
                assert a == b or math.isclose(a, b, rel_tol=1e-12, abs_tol=0.0)


class TestSweepParity:
    def test_sweep_identical_on_every_engine(self):
        # One compact dynamic-range sweep per rung: identical SNDR
        # arrays (bitwise), so `repro report --engine X` can promise
        # identical manifests for any X.
        spec = sweep_spec_for_design(
            "modulator2", levels_db=(-40.0, -20.0, -10.0)
        )
        results = {
            engine: run_sweep(spec, engine=engine) for engine in ENGINES
        }
        want = results["scalar"]
        for engine, got in results.items():
            assert got.sndr_db.tobytes() == want.sndr_db.tobytes(), engine
            assert got.metrics == want.metrics, engine
