"""Property-based tests for the differential-sample algebra."""

from hypothesis import given, strategies as st

from repro.si.differential import DifferentialSample

currents = st.floats(
    min_value=-1e-3, max_value=1e-3, allow_nan=False, allow_infinity=False
)


class TestRoundTrips:
    @given(diff=currents, cm=currents)
    def test_components_round_trip(self, diff, cm):
        sample = DifferentialSample.from_components(diff, cm)
        assert abs(sample.differential - diff) <= 1e-9 * max(1.0, abs(diff))
        assert abs(sample.common_mode - cm) <= 1e-9 * max(1.0, abs(cm))

    @given(pos=currents, neg=currents)
    def test_pair_round_trip(self, pos, neg):
        sample = DifferentialSample(pos, neg)
        rebuilt = DifferentialSample.from_components(
            sample.differential, sample.common_mode
        )
        assert abs(rebuilt.pos - pos) <= 1e-12 + 1e-9 * abs(pos)
        assert abs(rebuilt.neg - neg) <= 1e-12 + 1e-9 * abs(neg)


class TestAlgebraicLaws:
    @given(pos=currents, neg=currents)
    def test_cross_is_involution(self, pos, neg):
        sample = DifferentialSample(pos, neg)
        assert sample.crossed().crossed() == sample

    @given(pos=currents, neg=currents)
    def test_cross_negates_differential_preserves_cm(self, pos, neg):
        sample = DifferentialSample(pos, neg)
        crossed = sample.crossed()
        assert crossed.differential == -sample.differential
        assert crossed.common_mode == sample.common_mode

    @given(pos=currents, neg=currents, factor=st.floats(-10.0, 10.0))
    def test_scaling_is_linear_in_components(self, pos, neg, factor):
        sample = DifferentialSample(pos, neg)
        scaled = sample.scaled(factor)
        assert abs(scaled.differential - factor * sample.differential) <= 1e-9
        assert abs(scaled.common_mode - factor * sample.common_mode) <= 1e-9

    @given(p1=currents, n1=currents, p2=currents, n2=currents)
    def test_addition_commutes(self, p1, n1, p2, n2):
        a = DifferentialSample(p1, n1)
        b = DifferentialSample(p2, n2)
        assert a + b == b + a

    @given(pos=currents, neg=currents)
    def test_negation_matches_subtraction_from_zero(self, pos, neg):
        sample = DifferentialSample(pos, neg)
        zero = DifferentialSample(0.0, 0.0)
        assert -sample == zero - sample
