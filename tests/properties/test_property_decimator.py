"""Property-based tests for the sinc decimator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.deltasigma.decimator import SincDecimator


class TestDecimatorInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        ratio=st.integers(min_value=2, max_value=64),
        order=st.integers(min_value=1, max_value=4),
    )
    def test_dc_gain_always_unity(self, ratio, order):
        decimator = SincDecimator(ratio=ratio, order=order)
        assert decimator.dc_gain == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        ratio=st.integers(min_value=2, max_value=32),
        order=st.integers(min_value=1, max_value=4),
    )
    def test_impulse_response_length_law(self, ratio, order):
        decimator = SincDecimator(ratio=ratio, order=order)
        assert decimator.impulse_response.shape[0] == order * (ratio - 1) + 1

    @settings(max_examples=20, deadline=None)
    @given(
        ratio=st.integers(min_value=2, max_value=16),
        order=st.integers(min_value=1, max_value=3),
        level=st.floats(min_value=-1.0, max_value=1.0),
    )
    def test_dc_stream_passes_exactly(self, ratio, order, level):
        decimator = SincDecimator(ratio=ratio, order=order)
        stream = np.full(1024, level)
        out = decimator.process(stream)
        np.testing.assert_allclose(out, level, atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(
        ratio=st.integers(min_value=2, max_value=16),
        scale=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_linearity_in_amplitude(self, ratio, scale):
        decimator = SincDecimator(ratio=ratio, order=2)
        rng = np.random.default_rng(ratio)
        stream = rng.normal(size=1024)
        out1 = decimator.process(stream)
        out2 = decimator.process(scale * stream)
        np.testing.assert_allclose(out2, scale * out1, rtol=1e-9, atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(ratio=st.integers(min_value=2, max_value=16))
    def test_impulse_response_nonnegative(self, ratio):
        # A cascade of boxcars is a B-spline: strictly non-negative.
        decimator = SincDecimator(ratio=ratio, order=3)
        assert np.all(decimator.impulse_response >= 0.0)
