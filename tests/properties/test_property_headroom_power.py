"""Property-based tests for the headroom and power models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.si.headroom import HeadroomAnalysis
from repro.si.power import ClassKind, PowerModel

modulations = st.floats(min_value=0.0, max_value=20.0)


class TestHeadroomInvariants:
    @settings(max_examples=50, deadline=None)
    @given(m1=modulations, m2=modulations)
    def test_vdd_min_monotone_in_modulation(self, m1, m2):
        analysis = HeadroomAnalysis()
        lo, hi = sorted((m1, m2))
        assert analysis.evaluate(lo).vdd_min <= analysis.evaluate(hi).vdd_min

    @settings(max_examples=50, deadline=None)
    @given(m=modulations)
    def test_eq2_threshold_contribution(self, m):
        # The memory branch always carries both thresholds.
        analysis = HeadroomAnalysis()
        budget = analysis.evaluate(m)
        floors = analysis.process.vth_p + analysis.process.vth_n
        assert budget.vdd_min_memory_branch >= floors

    @settings(max_examples=30, deadline=None)
    @given(supply=st.floats(min_value=2.3, max_value=6.0))
    def test_max_modulation_round_trips(self, supply):
        analysis = HeadroomAnalysis()
        m_max = analysis.max_modulation_index(supply)
        if m_max > 0.0:
            assert analysis.evaluate(m_max).vdd_min == pytest.approx(
                supply, abs=1e-6
            )

    @settings(max_examples=30, deadline=None)
    @given(m=st.floats(min_value=0.1, max_value=20.0))
    def test_binding_constraint_is_the_max(self, m):
        budget = HeadroomAnalysis().evaluate(m)
        if budget.binding_constraint == "eq1":
            assert budget.vdd_min == budget.vdd_min_gga_branch
        else:
            assert budget.vdd_min == budget.vdd_min_memory_branch


class TestPowerInvariants:
    @settings(max_examples=50, deadline=None)
    @given(m=st.floats(min_value=0.01, max_value=20.0))
    def test_class_a_never_cheaper(self, m):
        model = PowerModel()
        assert model.power_ratio_a_over_ab(m) >= 1.0

    @settings(max_examples=50, deadline=None)
    @given(m1=modulations, m2=modulations)
    def test_class_ab_power_monotone_in_modulation(self, m1, m2):
        model = PowerModel()
        lo, hi = sorted((m1, m2))
        assert model.cell_power(ClassKind.CLASS_AB, lo) <= model.cell_power(
            ClassKind.CLASS_AB, hi
        ) * (1.0 + 1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        m=modulations,
        supply=st.floats(min_value=1.0, max_value=5.0),
    )
    def test_power_proportional_to_supply(self, m, supply):
        base = PowerModel(supply_voltage=1.0)
        scaled = PowerModel(supply_voltage=supply)
        assert scaled.cell_power(ClassKind.CLASS_AB, m) == pytest.approx(
            supply * base.cell_power(ClassKind.CLASS_AB, m), rel=1e-9
        )

    @settings(max_examples=30, deadline=None)
    @given(m=modulations)
    def test_class_ab_draw_at_least_quiescent(self, m):
        model = PowerModel(gga_bias_current=0.0, n_ggas=0)
        draw = model.cell_supply_current(ClassKind.CLASS_AB, m)
        assert draw >= model.n_memory_pairs * 2.0 * model.quiescent_current - 1e-18
