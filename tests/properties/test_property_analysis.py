"""Property-based tests for the spectral-analysis invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import measure_tone
from repro.analysis.spectrum import compute_spectrum
from repro.analysis.windows import WindowKind


class TestToneMeasurementInvariance:
    @settings(max_examples=20, deadline=None)
    @given(
        amplitude=st.floats(min_value=1e-7, max_value=1e-3),
        cycles=st.integers(min_value=11, max_value=400),
        phase=st.floats(min_value=0.0, max_value=6.28),
    )
    def test_amplitude_recovered(self, amplitude, cycles, phase):
        n = 2048
        t = np.arange(n)
        signal = amplitude * np.sin(2.0 * np.pi * cycles * t / n + phase)
        spectrum = compute_spectrum(signal, 1e6)
        metrics = measure_tone(spectrum)
        assert abs(metrics.signal_amplitude - amplitude) < 0.02 * amplitude

    @settings(max_examples=20, deadline=None)
    @given(
        scale=st.floats(min_value=1e-3, max_value=1e3),
        cycles=st.integers(min_value=11, max_value=200),
    )
    def test_snr_invariant_under_scaling(self, scale, cycles):
        # SNR is a ratio: scaling the whole signal must not change it.
        n = 2048
        rng = np.random.default_rng(cycles)
        t = np.arange(n)
        base = np.sin(2.0 * np.pi * cycles * t / n) + rng.normal(0.0, 0.01, n)
        f0 = cycles * 1e6 / n
        snr_base = measure_tone(
            compute_spectrum(base, 1e6), fundamental_frequency=f0
        ).snr_db
        snr_scaled = measure_tone(
            compute_spectrum(scale * base, 1e6), fundamental_frequency=f0
        ).snr_db
        assert abs(snr_base - snr_scaled) < 0.01

    @settings(max_examples=10, deadline=None)
    @given(cycles=st.integers(min_value=11, max_value=200))
    def test_window_choice_does_not_bias_snr(self, cycles):
        # Correct ENBW bookkeeping: the same signal measures the same
        # SNR (within a fraction of a dB) under different windows.
        n = 4096
        rng = np.random.default_rng(cycles)
        t = np.arange(n)
        signal = np.sin(2.0 * np.pi * cycles * t / n) + rng.normal(0.0, 0.01, n)
        f0 = cycles * 1e6 / n
        snrs = [
            measure_tone(
                compute_spectrum(signal, 1e6, window_kind=kind),
                fundamental_frequency=f0,
            ).snr_db
            for kind in (WindowKind.BLACKMAN, WindowKind.HANN)
        ]
        assert abs(snrs[0] - snrs[1]) < 1.0


class TestSpectrumInvariants:
    @settings(max_examples=20, deadline=None)
    @given(sigma=st.floats(min_value=1e-9, max_value=1e-3), seed=st.integers(0, 1000))
    def test_parseval_for_noise(self, sigma, seed):
        rng = np.random.default_rng(seed)
        noise = rng.normal(0.0, sigma, size=4096)
        spectrum = compute_spectrum(noise, 1e6)
        total = float(np.sum(spectrum.power))
        actual = float(np.var(noise))
        assert abs(total - actual) < 0.2 * actual
