"""Property-based tests for chopper algebra and the z -> -z identity."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.deltasigma.chopper import chop
from repro.deltasigma.linear_model import LinearLoopModel

signal_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=4, max_value=64),
    elements=st.floats(min_value=-10.0, max_value=10.0, width=64),
)


class TestChopAlgebra:
    @given(x=signal_arrays)
    def test_involution(self, x):
        np.testing.assert_allclose(chop(chop(x)), x)

    @given(x=signal_arrays)
    def test_preserves_energy(self, x):
        assert np.sum(chop(x) ** 2) == np.sum(x**2)

    @given(x=signal_arrays, y=signal_arrays)
    def test_linearity(self, x, y):
        n = min(x.shape[0], y.shape[0])
        np.testing.assert_allclose(
            chop(x[:n] + y[:n]), chop(x[:n]) + chop(y[:n])
        )

    @given(x=signal_arrays)
    def test_start_sign_flip(self, x):
        np.testing.assert_allclose(chop(x, start=-1), -chop(x, start=1))


class TestLoopEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(x=signal_arrays)
    def test_chopper_loop_equals_integrator_loop(self, x):
        # For ANY input, the chopper topology's output-chopped stream
        # equals the integrator topology's output: the structural
        # identity behind Fig. 3(b).
        y_int = LinearLoopModel(topology="integrator").run(x)
        y_chop = LinearLoopModel(topology="chopper").run(x)
        np.testing.assert_allclose(y_chop, y_int, atol=1e-9 * max(1.0, float(np.max(np.abs(x)))))

    @settings(max_examples=25, deadline=None)
    @given(
        a1=st.floats(min_value=0.1, max_value=2.0),
        s2=st.floats(min_value=0.1, max_value=2.0),
    )
    def test_eq3_for_any_valid_scaling(self, a1, s2):
        # Any a1*a2 = 1 (with b2 = 2) realises Eq. (3) exactly in the
        # linearised loop.
        model = LinearLoopModel(a1=a1, a2=1.0 / a1, b2=2.0)
        stf = model.signal_impulse_response(12)
        expected = np.zeros(12)
        expected[2] = 1.0
        np.testing.assert_allclose(stf, expected, atol=1e-9)
