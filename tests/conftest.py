"""Shared fixtures for the test suite.

Tests that simulate the modulators use reduced sample counts (the
paper's 64K-point runs live in the benchmarks); the fixtures here give
every test the same calibrated configurations with fixed seeds so
results are reproducible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    MODULATOR_CLOCK,
    delay_line_cell_config,
    ideal_cell_config,
    paper_cell_config,
)


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    """Point the run ledger at a per-test directory.

    CLI-level tests exercise commands that append to the persistent
    run ledger; without this they would pollute the repository's real
    ``.repro/ledger`` history with test entries.
    """
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded random generator for test-local randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def cell_config():
    """The calibrated paper cell configuration at the modulator clock."""
    return paper_cell_config(sample_rate=MODULATOR_CLOCK)


@pytest.fixture
def quiet_cell_config():
    """The paper cell with noise disabled (static errors kept)."""
    return paper_cell_config(sample_rate=MODULATOR_CLOCK).noiseless()


@pytest.fixture
def ideal_config():
    """A cell configuration with every nonideality disabled."""
    return ideal_cell_config(sample_rate=MODULATOR_CLOCK)


@pytest.fixture
def delay_config():
    """The calibrated delay-line cell configuration."""
    return delay_line_cell_config()
