"""Tests for the composable noise-source framework."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.noise.sources import CompositeNoiseSource, NoiseBudget, WhiteNoiseSource


class TestWhiteNoise:
    def test_rms_matches_request(self):
        source = WhiteNoiseSource(33e-9, rng=np.random.default_rng(0))
        samples = source.sample(200_000)
        assert float(np.std(samples)) == pytest.approx(33e-9, rel=0.02)

    def test_zero_mean(self):
        source = WhiteNoiseSource(33e-9, rng=np.random.default_rng(1))
        samples = source.sample(200_000)
        assert abs(float(np.mean(samples))) < 1e-9

    def test_zero_rms_is_silent(self):
        source = WhiteNoiseSource(0.0)
        assert np.all(source.sample(100) == 0.0)

    def test_rms_report(self):
        assert WhiteNoiseSource(10e-9).rms() == pytest.approx(10e-9)

    def test_rejects_negative_rms(self):
        with pytest.raises(ConfigurationError):
            WhiteNoiseSource(-1e-9)

    def test_rejects_negative_count(self):
        with pytest.raises(ConfigurationError):
            WhiteNoiseSource(1e-9).sample(-1)

    def test_white_spectrum_is_flat(self):
        source = WhiteNoiseSource(1.0, rng=np.random.default_rng(2))
        samples = source.sample(1 << 15)
        spectrum = np.abs(np.fft.rfft(samples)) ** 2
        low = float(np.mean(spectrum[1 : len(spectrum) // 4]))
        high = float(np.mean(spectrum[3 * len(spectrum) // 4 :]))
        assert low == pytest.approx(high, rel=0.2)


class TestComposite:
    def test_powers_add(self):
        composite = CompositeNoiseSource(
            [WhiteNoiseSource(3e-9), WhiteNoiseSource(4e-9)]
        )
        assert composite.rms() == pytest.approx(5e-9)

    def test_empty_composite_is_silent(self):
        composite = CompositeNoiseSource([])
        assert composite.rms() == 0.0
        assert np.all(composite.sample(16) == 0.0)

    def test_sample_variance_matches_rms(self):
        composite = CompositeNoiseSource(
            [
                WhiteNoiseSource(3e-9, rng=np.random.default_rng(3)),
                WhiteNoiseSource(4e-9, rng=np.random.default_rng(4)),
            ]
        )
        samples = composite.sample(200_000)
        assert float(np.std(samples)) == pytest.approx(5e-9, rel=0.02)


class TestNoiseBudget:
    def test_paper_budget(self):
        # Section V: 33 nA noise with 6 uA peak gives "a dynamic range
        # of 45 dB" before oversampling (peak-over-noise convention):
        # here we verify the rms-signal SNR is 3 dB below that.
        budget = NoiseBudget()
        budget.add("memory-cell thermal", 33e-9)
        snr = budget.snr_db(6e-6 / math.sqrt(2.0))
        assert snr == pytest.approx(45.2 - 3.0, abs=0.2)

    def test_total_is_power_sum(self):
        budget = NoiseBudget()
        budget.add("a", 3e-9)
        budget.add("b", 4e-9)
        assert budget.total_rms() == pytest.approx(5e-9)

    def test_dominant(self):
        budget = NoiseBudget()
        budget.add("thermal", 33e-9)
        budget.add("quantization", 5e-9)
        assert budget.dominant() == "thermal"

    def test_dominant_empty_raises(self):
        with pytest.raises(ConfigurationError):
            NoiseBudget().dominant()

    def test_duplicate_entry_raises(self):
        budget = NoiseBudget()
        budget.add("a", 1e-9)
        with pytest.raises(ConfigurationError):
            budget.add("a", 2e-9)

    def test_snr_rejects_zero_budget(self):
        budget = NoiseBudget()
        budget.add("nothing", 0.0)
        with pytest.raises(ConfigurationError):
            budget.snr_db(1e-6)

    def test_snr_rejects_bad_signal(self):
        budget = NoiseBudget()
        budget.add("a", 1e-9)
        with pytest.raises(ConfigurationError):
            budget.snr_db(0.0)
