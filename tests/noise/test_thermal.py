"""Tests for the memory-cell thermal-noise model."""

import math

import pytest

from repro.constants import kt
from repro.errors import ConfigurationError
from repro.noise.thermal import MemoryCellThermalNoise


class TestPaperDesignPoint:
    def test_33na_with_plausible_08um_parameters(self):
        # The paper's 33 nA floor emerges from gm ~ 100 uS and
        # C_gs ~ 25 fF -- typical for the process.
        model = MemoryCellThermalNoise(gm=100e-6, cgs=25e-15)
        assert model.current_noise_rms == pytest.approx(33e-9, rel=0.02)

    def test_for_target_rms_solves_capacitance(self):
        model = MemoryCellThermalNoise.for_target_rms(33e-9, gm=100e-6)
        assert model.current_noise_rms == pytest.approx(33e-9, rel=1e-9)
        assert 10e-15 < model.cgs < 100e-15

    def test_small_capacitance_means_large_noise(self):
        # "Large thermal noise in SI circuits is due to the small
        # storage capacitance."
        small_c = MemoryCellThermalNoise(gm=100e-6, cgs=10e-15)
        large_c = MemoryCellThermalNoise(gm=100e-6, cgs=1e-12)
        assert small_c.current_noise_rms > large_c.current_noise_rms

    def test_sc_comparison(self):
        # An SC circuit with pF-scale storage has far lower noise: this
        # is the paper's closing SI-vs-SC point.
        si_like = MemoryCellThermalNoise(gm=100e-6, cgs=25e-15)
        sc_like = MemoryCellThermalNoise(gm=100e-6, cgs=2.5e-12)
        assert si_like.current_noise_rms == pytest.approx(
            10.0 * sc_like.current_noise_rms, rel=1e-6
        )


class TestPhysics:
    def test_gate_noise_is_kt_over_c(self):
        model = MemoryCellThermalNoise(gm=100e-6, cgs=25e-15, gamma=1.0)
        expected = math.sqrt(kt(300.0) / 25e-15)
        assert model.gate_voltage_noise_rms == pytest.approx(expected)

    def test_gamma_scales_noise_power(self):
        base = MemoryCellThermalNoise(gm=100e-6, cgs=25e-15, gamma=1.0)
        hot = MemoryCellThermalNoise(gm=100e-6, cgs=25e-15, gamma=4.0)
        assert hot.current_noise_rms == pytest.approx(2.0 * base.current_noise_rms)

    def test_noise_bandwidth(self):
        model = MemoryCellThermalNoise(gm=100e-6, cgs=25e-15)
        assert model.noise_bandwidth == pytest.approx(100e-6 / (4.0 * 25e-15))

    def test_current_noise_scales_with_gm(self):
        a = MemoryCellThermalNoise(gm=50e-6, cgs=25e-15)
        b = MemoryCellThermalNoise(gm=200e-6, cgs=25e-15)
        assert b.current_noise_rms == pytest.approx(4.0 * a.current_noise_rms)


class TestOversampling:
    def test_inband_reduction(self):
        # OSR 128 reduces in-band noise rms by sqrt(128), i.e. the
        # paper's 21 dB of DR.
        model = MemoryCellThermalNoise(gm=100e-6, cgs=25e-15)
        ratio = model.current_noise_rms / model.inband_rms(128.0)
        assert 20.0 * math.log10(ratio) == pytest.approx(21.07, abs=0.01)

    def test_osr_one_is_identity(self):
        model = MemoryCellThermalNoise(gm=100e-6, cgs=25e-15)
        assert model.inband_rms(1.0) == pytest.approx(model.current_noise_rms)

    def test_rejects_osr_below_one(self):
        model = MemoryCellThermalNoise(gm=100e-6, cgs=25e-15)
        with pytest.raises(ConfigurationError):
            model.inband_rms(0.5)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gm": 0.0, "cgs": 25e-15},
            {"gm": 100e-6, "cgs": 0.0},
            {"gm": 100e-6, "cgs": 25e-15, "gamma": 0.0},
            {"gm": 100e-6, "cgs": 25e-15, "temperature": 0.0},
        ],
    )
    def test_rejects_nonpositive_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            MemoryCellThermalNoise(**kwargs)

    def test_for_target_rejects_bad_target(self):
        with pytest.raises(ConfigurationError):
            MemoryCellThermalNoise.for_target_rms(0.0, gm=100e-6)
