"""Tests for the quantisation-noise predictions."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.noise.quantization import (
    QuantizationNoiseModel,
    inband_noise_fraction,
    sqnr_second_order_db,
)


class TestInbandFraction:
    def test_order_zero_is_plain_oversampling(self):
        assert inband_noise_fraction(0, 128.0) == pytest.approx(1.0 / 128.0)

    def test_second_order_fraction(self):
        expected = (math.pi**4 / 5.0) * 128.0**-5
        assert inband_noise_fraction(2, 128.0) == pytest.approx(expected)

    def test_higher_order_is_smaller_at_high_osr(self):
        assert inband_noise_fraction(2, 64.0) < inband_noise_fraction(1, 64.0)

    def test_rejects_negative_order(self):
        with pytest.raises(ConfigurationError):
            inband_noise_fraction(-1, 64.0)

    def test_rejects_osr_below_one(self):
        with pytest.raises(ConfigurationError):
            inband_noise_fraction(2, 0.5)


class TestSecondOrderSqnr:
    def test_15db_per_octave(self):
        # Second-order noise shaping gains 15 dB per octave of OSR.
        gain = sqnr_second_order_db(128.0) - sqnr_second_order_db(64.0)
        assert gain == pytest.approx(15.05, abs=0.01)

    def test_paper_13_bit_claim(self):
        # "the second-order modulator would have achieved a dynamic
        # range over 13 bits" at OSR 128: 13 bits is 80 dB.
        sqnr = sqnr_second_order_db(128.0)
        bits = (sqnr - 1.76) / 6.02
        assert bits > 13.0

    def test_input_level_offsets_linearly(self):
        assert sqnr_second_order_db(128.0, -6.0) == pytest.approx(
            sqnr_second_order_db(128.0) - 6.0
        )


class TestModel:
    def test_quantizer_step(self):
        model = QuantizationNoiseModel(order=2, full_scale=6e-6, oversampling_ratio=128)
        assert model.quantizer_step == pytest.approx(12e-6)

    def test_peak_sqnr_matches_formula(self):
        model = QuantizationNoiseModel(order=2, full_scale=6e-6, oversampling_ratio=128)
        assert model.peak_sqnr_db() == pytest.approx(sqnr_second_order_db(128.0))

    def test_dynamic_range_bits(self):
        model = QuantizationNoiseModel(order=2, full_scale=6e-6, oversampling_ratio=128)
        assert model.dynamic_range_bits() > 13.0

    def test_inband_noise_much_smaller_than_thermal(self):
        # The crux of Section V: at OSR 128 the quantisation noise is
        # far below the 33 nA / sqrt(128) = 2.9 nA thermal in-band rms,
        # so the thermal floor dominates.
        model = QuantizationNoiseModel(order=2, full_scale=6e-6, oversampling_ratio=128)
        thermal_inband = 33e-9 / math.sqrt(128.0)
        assert model.inband_noise_rms < 0.5 * thermal_inband

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"order": -1, "full_scale": 1e-6, "oversampling_ratio": 128},
            {"order": 2, "full_scale": 0.0, "oversampling_ratio": 128},
            {"order": 2, "full_scale": 1e-6, "oversampling_ratio": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            QuantizationNoiseModel(**kwargs)
