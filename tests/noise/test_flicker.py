"""Tests for the flicker-noise source and CDS shaping."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.noise.flicker import FlickerNoiseSource, correlated_double_sampling_gain


def band_power(samples: np.ndarray, sample_rate: float, f_lo: float, f_hi: float) -> float:
    spectrum = np.abs(np.fft.rfft(samples)) ** 2
    freqs = np.fft.rfftfreq(samples.shape[0], d=1.0 / sample_rate)
    mask = (freqs >= f_lo) & (freqs < f_hi)
    return float(np.sum(spectrum[mask]))


class TestSpectralShape:
    def test_power_falls_with_frequency(self):
        source = FlickerNoiseSource(
            white_rms=1.0,
            corner_frequency=1e5,
            sample_rate=1e6,
            rng=np.random.default_rng(0),
        )
        samples = source.sample(1 << 15)
        low = band_power(samples, 1e6, 1e3, 1e4)
        high = band_power(samples, 1e6, 1e5, 1e6 / 2)
        # Equal power per decade is the 1/f signature; the low decade
        # here is much narrower in Hz yet carries comparable power.
        assert low > 0.2 * high

    def test_one_over_f_slope(self):
        source = FlickerNoiseSource(
            white_rms=1.0,
            corner_frequency=1e5,
            sample_rate=1e6,
            rng=np.random.default_rng(1),
        )
        samples = source.sample(1 << 16)
        # Average PSD in two octave bands an octave apart should differ
        # by about 3 dB (factor 2 in power density).
        p1 = band_power(samples, 1e6, 2e3, 4e3) / 2e3
        p2 = band_power(samples, 1e6, 8e3, 16e3) / 8e3
        assert p1 / p2 == pytest.approx(4.0, rel=0.5)

    def test_dc_bin_is_zero(self):
        source = FlickerNoiseSource(
            white_rms=1.0,
            corner_frequency=1e4,
            sample_rate=1e6,
            rng=np.random.default_rng(2),
        )
        samples = source.sample(1 << 12)
        spectrum = np.fft.rfft(samples)
        assert abs(spectrum[0]) < 1e-9

    def test_zero_corner_is_silent(self):
        source = FlickerNoiseSource(
            white_rms=1.0, corner_frequency=0.0, sample_rate=1e6
        )
        assert np.all(source.sample(256) == 0.0)
        assert source.rms() == 0.0

    def test_zero_length(self):
        source = FlickerNoiseSource(
            white_rms=1.0, corner_frequency=1e4, sample_rate=1e6
        )
        assert source.sample(0).shape == (0,)

    def test_rms_estimate_positive(self):
        source = FlickerNoiseSource(
            white_rms=1.0, corner_frequency=1e4, sample_rate=1e6
        )
        assert source.rms() > 0.0


class TestValidation:
    def test_rejects_negative_white_rms(self):
        with pytest.raises(ConfigurationError):
            FlickerNoiseSource(white_rms=-1.0, corner_frequency=1e3, sample_rate=1e6)

    def test_rejects_negative_corner(self):
        with pytest.raises(ConfigurationError):
            FlickerNoiseSource(white_rms=1.0, corner_frequency=-1.0, sample_rate=1e6)

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ConfigurationError):
            FlickerNoiseSource(white_rms=1.0, corner_frequency=1e3, sample_rate=0.0)

    def test_rejects_negative_count(self):
        source = FlickerNoiseSource(
            white_rms=1.0, corner_frequency=1e3, sample_rate=1e6
        )
        with pytest.raises(ConfigurationError):
            source.sample(-1)


class TestCdsGain:
    def test_dc_is_fully_cancelled(self):
        assert correlated_double_sampling_gain(0.0, 1e6) == pytest.approx(0.0)

    def test_low_frequency_strongly_attenuated(self):
        # "correlated double sampling reduced the low-frequency noise"
        assert correlated_double_sampling_gain(100.0, 1e6) < 0.01

    def test_nyquist_is_doubled(self):
        assert correlated_double_sampling_gain(5e5, 1e6) == pytest.approx(2.0)

    def test_white_noise_power_doubles_on_average(self):
        # Mean-square of 2 sin over the band is 2: CDS doubles white
        # noise power -- the price of the 1/f suppression.
        freqs = np.linspace(0.0, 5e5, 10001)
        gains = np.array(
            [correlated_double_sampling_gain(f, 1e6) for f in freqs]
        )
        assert float(np.mean(gains**2)) == pytest.approx(2.0, rel=0.01)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            correlated_double_sampling_gain(-1.0, 1e6)
        with pytest.raises(ConfigurationError):
            correlated_double_sampling_gain(1.0, 0.0)
