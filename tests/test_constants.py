"""Tests for physical constants and derived thermal quantities."""

import pytest

from repro.constants import (
    BOLTZMANN,
    ELEMENTARY_CHARGE,
    MOS_THERMAL_GAMMA,
    ROOM_TEMPERATURE,
    kt,
    thermal_voltage,
)


class TestConstants:
    def test_boltzmann_value(self):
        assert BOLTZMANN == pytest.approx(1.380649e-23)

    def test_elementary_charge_value(self):
        assert ELEMENTARY_CHARGE == pytest.approx(1.602176634e-19)

    def test_mos_gamma_is_two_thirds(self):
        assert MOS_THERMAL_GAMMA == pytest.approx(2.0 / 3.0)

    def test_room_temperature(self):
        assert ROOM_TEMPERATURE == 300.0


class TestThermalVoltage:
    def test_room_temperature_value(self):
        # kT/q at 300 K is about 25.85 mV.
        assert thermal_voltage(300.0) == pytest.approx(0.02585, rel=1e-3)

    def test_scales_linearly_with_temperature(self):
        assert thermal_voltage(600.0) == pytest.approx(2.0 * thermal_voltage(300.0))

    def test_default_is_room_temperature(self):
        assert thermal_voltage() == thermal_voltage(ROOM_TEMPERATURE)

    @pytest.mark.parametrize("bad", [0.0, -1.0, -300.0])
    def test_rejects_nonpositive_temperature(self, bad):
        with pytest.raises(ValueError):
            thermal_voltage(bad)


class TestKt:
    def test_room_temperature_value(self):
        assert kt(300.0) == pytest.approx(4.141947e-21, rel=1e-5)

    def test_consistent_with_thermal_voltage(self):
        assert kt(300.0) / ELEMENTARY_CHARGE == pytest.approx(thermal_voltage(300.0))

    @pytest.mark.parametrize("bad", [0.0, -10.0])
    def test_rejects_nonpositive_temperature(self, bad):
        with pytest.raises(ValueError):
            kt(bad)
