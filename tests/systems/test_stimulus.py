"""Tests for stimulus generation."""

import numpy as np
import pytest

from repro.errors import StimulusError
from repro.systems.stimulus import SineStimulus, coherent_frequency, interferer_tone


class TestCoherentFrequency:
    def test_snaps_to_bin(self):
        f = coherent_frequency(2e3, 2.45e6, 1 << 16)
        cycles = f * (1 << 16) / 2.45e6
        assert cycles == pytest.approx(round(cycles))

    def test_close_to_target(self):
        f = coherent_frequency(2e3, 2.45e6, 1 << 16)
        assert f == pytest.approx(2e3, rel=0.02)

    def test_never_dc(self):
        f = coherent_frequency(1.0, 1e6, 1024)
        assert f > 0.0

    def test_odd_bin(self):
        f = coherent_frequency(5e3, 5e6, 1 << 14)
        bin_index = round(f * (1 << 14) / 5e6)
        assert bin_index % 2 == 1

    @pytest.mark.parametrize(
        "target,fs,n",
        [
            (0.0, 1e6, 1024),
            (6e5, 1e6, 1024),
            (1e3, 0.0, 1024),
            (1e3, 1e6, 8),
        ],
    )
    def test_validation(self, target, fs, n):
        with pytest.raises(StimulusError):
            coherent_frequency(target, fs, n)


class TestSineStimulus:
    def test_amplitude_and_frequency(self):
        stim = SineStimulus(amplitude=3e-6, frequency=2e3, sample_rate=2.45e6)
        samples = stim.generate(1 << 14)
        assert float(np.max(samples)) == pytest.approx(3e-6, rel=0.001)
        assert float(np.min(samples)) == pytest.approx(-3e-6, rel=0.001)

    def test_rms(self):
        stim = SineStimulus(amplitude=1.0, frequency=1e3, sample_rate=1e6)
        samples = stim.generate(1 << 16)
        assert float(np.std(samples)) == pytest.approx(1.0 / np.sqrt(2.0), rel=0.01)

    def test_starts_at_phase(self):
        stim = SineStimulus(
            amplitude=1.0, frequency=1e3, sample_rate=1e6, phase=np.pi / 2.0
        )
        assert stim.generate(4)[0] == pytest.approx(1.0)

    def test_coherent_helper(self):
        stim = SineStimulus(amplitude=1.0, frequency=2e3, sample_rate=2.45e6)
        coherent = stim.coherent(1 << 14)
        cycles = coherent.frequency * (1 << 14) / 2.45e6
        assert cycles == pytest.approx(round(cycles))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"amplitude": -1.0, "frequency": 1e3, "sample_rate": 1e6},
            {"amplitude": 1.0, "frequency": 0.0, "sample_rate": 1e6},
            {"amplitude": 1.0, "frequency": 6e5, "sample_rate": 1e6},
            {"amplitude": 1.0, "frequency": 1e3, "sample_rate": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(StimulusError):
            SineStimulus(**kwargs)

    def test_rejects_zero_samples(self):
        stim = SineStimulus(amplitude=1.0, frequency=1e3, sample_rate=1e6)
        with pytest.raises(StimulusError):
            stim.generate(0)


class TestInterferer:
    def test_low_frequency(self):
        tone = interferer_tone(1 << 16, 1e6, amplitude=1e-6, frequency=50.0)
        spectrum = np.abs(np.fft.rfft(tone))
        peak_bin = int(np.argmax(spectrum[1:])) + 1
        peak_freq = peak_bin * 1e6 / (1 << 16)
        assert peak_freq == pytest.approx(50.0, abs=1e6 / (1 << 16))

    def test_amplitude(self):
        tone = interferer_tone(1 << 16, 1e6, amplitude=2e-6, frequency=50.0)
        assert float(np.max(np.abs(tone))) == pytest.approx(2e-6, rel=0.01)

    def test_zero_amplitude_silent(self):
        assert np.all(interferer_tone(128, 1e6, 0.0) == 0.0)

    def test_validation(self):
        with pytest.raises(StimulusError):
            interferer_tone(0, 1e6, 1e-6)
        with pytest.raises(StimulusError):
            interferer_tone(128, 1e6, -1e-6)
        with pytest.raises(StimulusError):
            interferer_tone(128, 1e6, 1e-6, frequency=0.0)
