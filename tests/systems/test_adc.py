"""Tests for the complete oversampling ADC."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.systems.adc import AdcKind, OversamplingAdc


class TestOperatingPoint:
    def test_paper_defaults(self, ideal_config):
        adc = OversamplingAdc(cell_config=ideal_config)
        assert adc.sample_rate == pytest.approx(2.45e6)
        assert adc.oversampling_ratio == 128

    def test_signal_bandwidth_is_9_6_khz(self, ideal_config):
        # Table 2: "Signal band. 9.6 KHz" = 2.45 MHz / 128 / 2.
        adc = OversamplingAdc(cell_config=ideal_config)
        assert adc.signal_bandwidth == pytest.approx(9.57e3, rel=0.01)

    def test_output_rate(self, ideal_config):
        adc = OversamplingAdc(cell_config=ideal_config)
        assert adc.output_rate == pytest.approx(2.45e6 / 128)


class TestConversion:
    def test_dc_conversion(self, ideal_config):
        adc = OversamplingAdc(cell_config=ideal_config, oversampling_ratio=64)
        samples = adc.convert(np.full(1 << 14, 3e-6))
        # 3 uA of a 6 uA full scale converts to 0.5.
        assert float(np.mean(samples[4:])) == pytest.approx(0.5, abs=0.01)

    def test_sine_conversion(self, ideal_config):
        adc = OversamplingAdc(cell_config=ideal_config, oversampling_ratio=64)
        n = 1 << 15
        t = np.arange(n)
        x = 3e-6 * np.sin(2.0 * np.pi * 8 * t / n)
        samples = adc.convert(x)
        assert float(np.max(samples)) == pytest.approx(0.5, abs=0.05)
        assert float(np.min(samples)) == pytest.approx(-0.5, abs=0.05)

    def test_both_kinds_convert(self, ideal_config):
        x = np.full(1 << 14, 2e-6)
        conventional = OversamplingAdc(
            AdcKind.CONVENTIONAL, cell_config=ideal_config, oversampling_ratio=64
        ).convert(x)
        chopper = OversamplingAdc(
            AdcKind.CHOPPER_STABILIZED,
            cell_config=ideal_config,
            oversampling_ratio=64,
        ).convert(x)
        assert float(np.mean(conventional[4:])) == pytest.approx(
            float(np.mean(chopper[4:])), abs=0.01
        )

    def test_decimated_length(self, ideal_config):
        adc = OversamplingAdc(cell_config=ideal_config, oversampling_ratio=64)
        samples = adc.convert(np.zeros(1 << 14))
        assert samples.shape[0] == pytest.approx((1 << 14) / 64, rel=0.05)


class TestValidation:
    def test_rejects_bad_osr(self, ideal_config):
        with pytest.raises(ConfigurationError):
            OversamplingAdc(cell_config=ideal_config, oversampling_ratio=1)
