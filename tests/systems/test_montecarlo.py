"""Tests for the CMFF Monte-Carlo analysis."""

import numpy as np
import pytest

from repro.devices.mismatch import PelgromMismatch
from repro.errors import ConfigurationError
from repro.systems.montecarlo import CmffMonteCarlo, MonteCarloSummary


@pytest.fixture
def study():
    return CmffMonteCarlo(
        mismatch=PelgromMismatch(rng=np.random.default_rng(7)), n_trials=200
    )


class TestSummary:
    def test_percentiles_ordered(self):
        summary = MonteCarloSummary.from_samples(
            np.random.default_rng(0).normal(0.0, 1.0, size=1000)
        )
        assert summary.median <= summary.p90 <= summary.p99
        assert summary.n_trials == 1000

    def test_magnitudes_used(self):
        summary = MonteCarloSummary.from_samples(np.array([-3.0, -2.0, 2.0, 3.0]))
        assert summary.median == pytest.approx(2.5)


class TestCmffStudy:
    def test_rejection_improves_with_area(self, study):
        small = study.rejection_statistics(2e-6, 2e-6)
        large = study.rejection_statistics(20e-6, 20e-6)
        assert large.median < small.median

    def test_rejection_magnitude_plausible(self, study):
        # 8x8 um mirrors in 0.8 um CMOS: sub-percent CM residue.
        summary = study.rejection_statistics(8e-6, 8e-6)
        assert summary.p90 < 0.02

    def test_leakage_statistics(self, study):
        summary = study.leakage_statistics(8e-6, 8e-6)
        assert summary.median > 0.0
        assert summary.p99 < 0.05

    def test_area_sweep_monotone(self, study):
        results = study.area_sweep([4.0, 64.0, 400.0])
        medians = [summary.median for _, summary in results]
        assert medians[0] > medians[-1]

    def test_reproducible_with_seeded_sampler(self):
        a = CmffMonteCarlo(
            mismatch=PelgromMismatch(rng=np.random.default_rng(3)), n_trials=50
        ).rejection_statistics(4e-6, 4e-6)
        b = CmffMonteCarlo(
            mismatch=PelgromMismatch(rng=np.random.default_rng(3)), n_trials=50
        ).rejection_statistics(4e-6, 4e-6)
        assert a.median == b.median


class TestValidation:
    def test_rejects_few_trials(self):
        with pytest.raises(ConfigurationError):
            CmffMonteCarlo(n_trials=5)

    def test_rejects_bad_geometry(self, study):
        with pytest.raises(ConfigurationError):
            study.rejection_statistics(0.0, 1e-6)
        with pytest.raises(ConfigurationError):
            study.leakage_statistics(1e-6, -1e-6)

    def test_rejects_bad_area(self, study):
        with pytest.raises(ConfigurationError):
            study.area_sweep([0.0])
