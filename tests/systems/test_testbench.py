"""Tests for the single-tone test bench."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.systems.testbench import TestBench as Bench


class TestMeasurement:
    def test_ideal_passthrough_measures_cleanly(self):
        bench = Bench(sample_rate=1e6, n_samples=1 << 12, settle_samples=64)
        result = bench.measure(lambda x: x, amplitude=1e-6, frequency=5e3)
        assert result.metrics.signal_amplitude == pytest.approx(1e-6, rel=0.01)
        assert result.snr_db > 100.0

    def test_known_noise_floor(self):
        rng = np.random.default_rng(0)

        def noisy(x):
            return x + rng.normal(0.0, 1e-8, size=x.shape)

        bench = Bench(sample_rate=1e6, n_samples=1 << 14, settle_samples=0)
        result = bench.measure(noisy, amplitude=1e-6, frequency=5e3)
        # SNR = 20 log10((1e-6/sqrt2)/1e-8) = 37 dB.
        assert result.snr_db == pytest.approx(37.0, abs=1.0)

    def test_known_distortion(self):
        def distorting(x):
            return x + 0.01 * x**2 / 1e-6

        bench = Bench(sample_rate=1e6, n_samples=1 << 13, settle_samples=0)
        result = bench.measure(distorting, amplitude=1e-6, frequency=5e3)
        # Second harmonic amplitude = 0.01 * A^2/(2 * 1e-6) = 5e-9,
        # i.e. -46 dB below the carrier.
        assert result.thd_db == pytest.approx(-46.0, abs=1.0)

    def test_bandwidth_passed_through(self):
        rng = np.random.default_rng(1)

        def noisy(x):
            return x + rng.normal(0.0, 1e-8, size=x.shape)

        wide = Bench(sample_rate=1e6, n_samples=1 << 13, settle_samples=0)
        narrow = Bench(
            sample_rate=1e6, n_samples=1 << 13, bandwidth=125e3, settle_samples=0
        )
        snr_wide = wide.measure(noisy, 1e-6, 5e3).snr_db
        snr_narrow = narrow.measure(noisy, 1e-6, 5e3).snr_db
        assert snr_narrow - snr_wide == pytest.approx(6.0, abs=1.5)

    def test_stimulus_is_coherent(self):
        bench = Bench(sample_rate=2.45e6, n_samples=1 << 12)
        stim = bench.make_stimulus(1e-6, 2e3)
        cycles = stim.frequency * (1 << 12) / 2.45e6
        assert cycles == pytest.approx(round(cycles))

    def test_extra_input_is_added(self):
        bench = Bench(sample_rate=1e6, n_samples=1 << 12, settle_samples=0)
        captured = {}

        def probe(x):
            captured["max"] = float(np.max(np.abs(x)))
            return x

        extra = np.full(1 << 12, 5e-6)
        bench.measure(probe, amplitude=1e-6, frequency=5e3, extra_input=extra)
        assert captured["max"] > 5e-6

    def test_settle_samples_discarded(self):
        bench = Bench(sample_rate=1e6, n_samples=1 << 12, settle_samples=100)

        def transient(x):
            out = x.copy()
            out[:50] += 1.0
            return out

        result = bench.measure(transient, amplitude=1e-6, frequency=5e3)
        assert result.snr_db > 100.0

    def test_output_length_recorded(self):
        bench = Bench(sample_rate=1e6, n_samples=1 << 12, settle_samples=32)
        result = bench.measure(lambda x: x, 1e-6, 5e3)
        assert result.output.shape[0] == 1 << 12


class TestValidation:
    def test_rejects_bad_rate(self):
        with pytest.raises(AnalysisError):
            Bench(sample_rate=0.0)

    def test_rejects_short_fft(self):
        with pytest.raises(AnalysisError):
            Bench(sample_rate=1e6, n_samples=8)

    def test_rejects_negative_settle(self):
        with pytest.raises(AnalysisError):
            Bench(sample_rate=1e6, settle_samples=-1)

    def test_rejects_wrong_device_length(self):
        bench = Bench(sample_rate=1e6, n_samples=1 << 12)
        with pytest.raises(AnalysisError):
            bench.measure(lambda x: x[:-1], 1e-6, 5e3)

    def test_rejects_wrong_extra_length(self):
        bench = Bench(sample_rate=1e6, n_samples=1 << 12)
        with pytest.raises(AnalysisError):
            bench.measure(lambda x: x, 1e-6, 5e3, extra_input=np.zeros(4))

    def test_rejects_2d_extra_input(self):
        bench = Bench(sample_rate=1e6, n_samples=1 << 12, settle_samples=0)
        bad = np.zeros((1 << 12, 1))
        with pytest.raises(AnalysisError, match="1-D"):
            bench.measure(lambda x: x, 1e-6, 5e3, extra_input=bad)

    def test_rejects_complex_extra_input(self):
        bench = Bench(sample_rate=1e6, n_samples=1 << 12, settle_samples=0)
        bad = np.zeros(1 << 12, dtype=complex)
        with pytest.raises(AnalysisError, match="complex"):
            bench.measure(lambda x: x, 1e-6, 5e3, extra_input=bad)

    def test_rejects_non_numeric_extra_input(self):
        bench = Bench(sample_rate=1e6, n_samples=1 << 12, settle_samples=0)
        bad = np.array(["a"] * (1 << 12))
        with pytest.raises(AnalysisError, match="numeric"):
            bench.measure(lambda x: x, 1e-6, 5e3, extra_input=bad)

    def test_integer_extra_input_still_accepted(self):
        bench = Bench(sample_rate=1e6, n_samples=1 << 12, settle_samples=0)
        extra = np.zeros(1 << 12, dtype=np.int64)
        result = bench.measure(lambda x: x, 1e-6, 5e3, extra_input=extra)
        assert result.snr_db > 100.0


class TestTelemetryKnob:
    def _session(self):
        from repro.telemetry import TelemetrySession

        return TelemetrySession("bench-test")

    def test_disabled_by_default(self):
        bench = Bench(sample_rate=1e6, n_samples=1 << 12)
        assert bench.telemetry is None

    def test_measure_opens_span_hierarchy(self):
        session = self._session()
        bench = Bench(
            sample_rate=1e6, n_samples=1 << 12, settle_samples=0, telemetry=session
        )
        bench.measure(lambda x: x, amplitude=1e-6, frequency=5e3)
        assert len(session.roots) == 1
        root = session.roots[0]
        assert root.name == "measure"
        assert [child.name for child in root.children] == [
            "stimulus",
            "device",
            "analysis",
        ]
        assert root.duration_s is not None and root.duration_s > 0.0
        assert root.samples == 1 << 12

    def test_measure_auto_attaches_device(self):
        from repro.config import delay_line_cell_config
        from repro.si.delay_line import DelayLine

        session = self._session()
        bench = Bench(
            sample_rate=5e6,
            n_samples=1 << 12,
            settle_samples=0,
            telemetry=session,
        )
        line = DelayLine(delay_line_cell_config(), n_cells=2)
        bench.measure(line, amplitude=8e-6, frequency=5e3)
        assert "delay_line.cell[0]" in session.probes
        assert session.probes["delay_line.cell[0]"].count == 1 << 12
        # The bench evaluates the dynamic rules after the run.
        assert session.events == ()
        assert session.ok

    def test_traced_output_matches_untraced(self):
        from repro.config import delay_line_cell_config
        from repro.si.delay_line import DelayLine

        config = delay_line_cell_config(seed=7)
        session = self._session()
        traced_bench = Bench(
            sample_rate=5e6, n_samples=1 << 12, settle_samples=0, telemetry=session
        )
        plain_bench = Bench(sample_rate=5e6, n_samples=1 << 12, settle_samples=0)
        traced = traced_bench.measure(
            DelayLine(config, n_cells=2), amplitude=8e-6, frequency=5e3
        )
        plain = plain_bench.measure(
            DelayLine(config, n_cells=2), amplitude=8e-6, frequency=5e3
        )
        np.testing.assert_array_equal(traced.output, plain.output)


class TestAmplitudeSweep:
    def test_sweep_runs_through_bench_settings(self):
        from repro.config import MODULATOR_CLOCK

        bench = Bench(
            sample_rate=MODULATOR_CLOCK, n_samples=1 << 13, settle_samples=64
        )
        result = bench.measure_amplitude_sweep(
            "modulator2", levels_db=(-40.0, -20.0, -6.0)
        )
        assert tuple(result.levels_db) == (-40.0, -20.0, -6.0)
        assert len(result.metrics) == 3
        # Louder drives resolve more SNDR in this range.
        assert result.sndr_db[2] > result.sndr_db[0]

    def test_sweep_uses_bench_executor_and_cache(self, tmp_path):
        from repro.config import MODULATOR_CLOCK
        from repro.runtime.cache import ResultCache
        from repro.runtime.executor import SweepExecutor

        cache = ResultCache(tmp_path)
        bench = Bench(
            sample_rate=MODULATOR_CLOCK,
            n_samples=1 << 13,
            settle_samples=64,
            executor=SweepExecutor(jobs=1, chunk_size=1),
            cache=cache,
        )
        cold = bench.measure_amplitude_sweep("modulator2", levels_db=(-20.0, -6.0))
        warm = bench.measure_amplitude_sweep("modulator2", levels_db=(-20.0, -6.0))
        assert cache.misses == 1 and cache.hits == 1
        assert warm.metrics == cold.metrics
        assert warm.sndr_db.tobytes() == cold.sndr_db.tobytes()

    def test_sweep_rejects_unknown_design(self):
        from repro.errors import ConfigurationError

        bench = Bench(sample_rate=2.45e6, n_samples=1 << 13)
        with pytest.raises(ConfigurationError):
            bench.measure_amplitude_sweep("not-a-design")
