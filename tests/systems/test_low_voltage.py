"""Tests for the low-voltage design explorer."""

import pytest

from repro.errors import ConfigurationError
from repro.systems.low_voltage import LowVoltageDesigner


@pytest.fixture
def designer():
    return LowVoltageDesigner()


class TestFeasibility:
    def test_3v3_at_1v_thresholds_feasible(self, designer):
        # The paper's own operating point.
        design = designer.evaluate(3.3, 1.0)
        assert design.feasible
        assert design.max_modulation_index > 1.0

    def test_1v2_at_1v_thresholds_infeasible(self, designer):
        # Two ~1 V thresholds alone exceed a 1.2 V supply.
        design = designer.evaluate(1.2, 1.0)
        assert not design.feasible
        assert design.power == 0.0

    def test_1v2_at_low_vt_feasible(self):
        # The authors' later 1.2 V converter [15] needs a low-V_T
        # process and scaled overdrives.
        designer = LowVoltageDesigner(vdsat_scale=0.6)
        design = designer.evaluate(1.2, 0.35)
        assert design.feasible

    def test_1v2_design_is_submilliwatt(self):
        # [15] reports 0.8 mW at 1.2 V.
        designer = LowVoltageDesigner(vdsat_scale=0.6)
        design = designer.evaluate(1.2, 0.35)
        assert design.power < 1e-3


class TestScaling:
    def test_power_scales_with_supply(self, designer):
        low = designer.evaluate(2.5, 0.7)
        high = designer.evaluate(5.0, 0.7)
        assert high.power > low.power

    def test_sweep(self, designer):
        designs = designer.sweep([1.2, 2.5, 3.3], threshold_voltage=1.0)
        assert len(designs) == 3
        assert [d.feasible for d in designs] == [False, True, True]

    def test_minimum_supply_monotone_in_vt(self, designer):
        assert designer.minimum_supply(0.4) < designer.minimum_supply(1.0)

    def test_minimum_supply_monotone_in_modulation(self, designer):
        assert designer.minimum_supply(1.0, 1.0) < designer.minimum_supply(1.0, 8.0)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"quiescent_current": 0.0},
            {"gga_bias_current": -1e-6},
            {"n_cells": 0},
            {"vdsat_scale": 0.0},
        ],
    )
    def test_constructor(self, kwargs):
        with pytest.raises(ConfigurationError):
            LowVoltageDesigner(**kwargs)

    def test_evaluate_rejects_bad_inputs(self, designer):
        with pytest.raises(ConfigurationError):
            designer.evaluate(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            designer.evaluate(3.3, 0.0)
