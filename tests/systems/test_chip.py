"""Tests for the test-chip assembly."""

import numpy as np
import pytest

from repro.systems.chip import ChipOperatingPoint
from repro.systems.chip import TestChip as Chip


class TestAssembly:
    def test_blocks_present(self, cell_config):
        chip = Chip(cell_config)
        assert chip.delay_line.n_cells == 2
        assert chip.modulator.sample_rate == pytest.approx(2.45e6)
        assert chip.chopper_modulator.sample_rate == pytest.approx(2.45e6)

    def test_operating_point_defaults_match_tables(self):
        op = ChipOperatingPoint()
        assert op.supply_voltage == pytest.approx(3.3)
        assert op.delay_line_clock == pytest.approx(5e6)
        assert op.modulator_clock == pytest.approx(2.45e6)
        assert op.oversampling_ratio == 128
        assert op.modulator_full_scale == pytest.approx(6e-6)

    def test_delay_line_runs_at_its_own_clock(self, cell_config):
        chip = Chip(cell_config)
        assert chip.delay_line.config.sample_rate == pytest.approx(5e6)

    def test_blocks_functional(self, ideal_config):
        chip = Chip(ideal_config)
        y = chip.delay_line.run(np.array([1e-6, 2e-6, 3e-6, 4e-6]))
        np.testing.assert_allclose(y[2:], [1e-6, 2e-6], rtol=1e-6)
        bits = chip.modulator(np.zeros(256))
        assert set(np.unique(bits)) <= {-6e-6, 6e-6}


class TestPowerEstimates:
    def test_delay_line_power_sub_milliwatt_scale(self, cell_config):
        # Table 1: 0.7 mW.  The behavioural estimate must land in the
        # same regime (same order of magnitude).
        chip = Chip(cell_config)
        power = chip.delay_line_power()
        assert 0.1e-3 < power < 2e-3

    def test_modulator_power_milliwatt_scale(self, cell_config):
        # Table 2: 3.2 mW per modulator.
        chip = Chip(cell_config)
        power = chip.modulator_power()
        assert 0.5e-3 < power < 6e-3

    def test_modulator_burns_more_than_delay_line(self, cell_config):
        chip = Chip(cell_config)
        assert chip.modulator_power() > chip.delay_line_power()

    def test_power_model_uses_chip_biases(self, cell_config):
        chip = Chip(cell_config)
        model = chip.power_model()
        assert model.supply_voltage == pytest.approx(3.3)
        assert model.quiescent_current == pytest.approx(
            cell_config.quiescent_current
        )
