"""Tests for the first-generation SI cell baseline."""

import numpy as np
import pytest

from repro.devices.current_mirror import CurrentMirror
from repro.si.differential import DifferentialSample
from repro.si.first_generation import FirstGenerationMemoryCell
from repro.si.memory_cell import ClassABMemoryCell


class TestBehaviour:
    def test_is_inverting_delay(self, ideal_config):
        cell = FirstGenerationMemoryCell(ideal_config)
        cell.step(DifferentialSample.from_components(1e-6))
        out = cell.step(DifferentialSample.from_components(0.0))
        assert out.differential == pytest.approx(-1e-6, rel=1e-6)

    def test_mirror_gain_error_appears_in_signal(self, ideal_config):
        cell = FirstGenerationMemoryCell(
            ideal_config, mirror=CurrentMirror(gain_error=0.02)
        )
        cell.step(DifferentialSample.from_components(1e-6))
        out = cell.step(DifferentialSample.from_components(0.0))
        assert abs(out.differential) == pytest.approx(1.02e-6, rel=1e-4)

    def test_static_gain_includes_mirror(self, quiet_cell_config):
        cell = FirstGenerationMemoryCell(
            quiet_cell_config, mirror=CurrentMirror(gain_error=0.05)
        )
        assert cell.static_gain() == pytest.approx(1.05, abs=0.01)

    def test_cds_forced_off(self, cell_config):
        cell = FirstGenerationMemoryCell(cell_config)
        assert not cell.config.cds_enabled

    def test_worse_injection_than_second_generation(self, quiet_cell_config):
        first = FirstGenerationMemoryCell(quiet_cell_config)
        second = ClassABMemoryCell(quiet_cell_config)
        assert (
            first.config.injection.residual_at_quiescent
            > second.config.injection.residual_at_quiescent
        )

    def test_run_and_reset(self, ideal_config):
        cell = FirstGenerationMemoryCell(ideal_config)
        y = cell.run(np.array([1e-6, 2e-6, 3e-6]))
        np.testing.assert_allclose(y[1:], [-1e-6, -2e-6], rtol=1e-6)
        cell.reset()
        out = cell.step(DifferentialSample.from_components(0.0))
        assert out.differential == 0.0

    def test_noise_present(self, cell_config):
        cell = FirstGenerationMemoryCell(cell_config)
        y = cell.run(np.zeros(2048))
        assert float(np.std(y[1:])) == pytest.approx(
            cell_config.thermal_noise_rms, rel=0.2
        )
