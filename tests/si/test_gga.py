"""Tests for the grounded-gate amplifier model."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.si.gga import GroundedGateAmplifier


@pytest.fixture
def gga():
    return GroundedGateAmplifier(
        voltage_gain=50.0,
        bias_current=10e-6,
        settling_tau_fraction=0.05,
        phase_kick_fraction=0.0,
    )


class TestConductanceBoost:
    def test_boost_by_voltage_gain(self, gga):
        # "the input conductance is increased by the voltage gain of the
        # ground-gate transistor"
        assert gga.boosted_input_conductance(100e-6) == pytest.approx(5e-3)

    def test_rejects_bad_conductance(self, gga):
        with pytest.raises(ConfigurationError):
            gga.boosted_input_conductance(0.0)


class TestLinearSettling:
    def test_small_step_settles_exponentially(self, gga):
        result = gga.settle(0.0, 1e-6)
        expected_residual = 1e-6 * math.exp(-20.0)
        assert result.residual_error == pytest.approx(expected_residual, rel=1e-6)
        assert not result.slewed

    def test_zero_step_is_exact(self, gga):
        result = gga.settle(2e-6, 2e-6)
        assert result.settled_current == pytest.approx(2e-6)
        assert result.residual_error == 0.0

    def test_negative_step_symmetric(self, gga):
        up = gga.settle(0.0, 1e-6)
        down = gga.settle(0.0, -1e-6)
        assert down.residual_error == pytest.approx(-up.residual_error)


class TestSlewRegime:
    def test_threshold_is_bias_current(self, gga):
        assert gga.slew_current_threshold == pytest.approx(10e-6)

    def test_large_step_slews(self, gga):
        result = gga.settle(0.0, 50e-6)
        assert result.slewed

    def test_huge_step_pure_ramp(self):
        gga = GroundedGateAmplifier(
            bias_current=1e-6,
            settling_tau_fraction=0.2,
            phase_kick_fraction=0.0,
        )
        # n_tau = 5 at zero margin derating... the margin floor applies
        # for |target| >> bias, so coverage is small and a residual is
        # left over.
        result = gga.settle(0.0, 100e-6)
        assert result.slewed
        assert abs(result.residual_error) > 1e-6

    def test_larger_bias_reduces_slew_error(self):
        # The paper's fix: "larger bias current in the GGAs".
        small = GroundedGateAmplifier(
            bias_current=2e-6, settling_tau_fraction=0.2, phase_kick_fraction=0.0
        )
        large = small.with_bias(40e-6)
        err_small = abs(small.settle(0.0, 30e-6).residual_error)
        err_large = abs(large.settle(0.0, 30e-6).residual_error)
        assert err_large < err_small


class TestDriveMargin:
    def test_full_margin_at_zero_signal(self, gga):
        assert gga.drive_margin(0.0) == pytest.approx(1.0)

    def test_margin_shrinks_with_signal(self, gga):
        assert gga.drive_margin(5e-6) == pytest.approx(0.5)

    def test_margin_floor(self, gga):
        assert gga.drive_margin(100e-6) == pytest.approx(0.1)

    def test_margin_symmetric_in_sign(self, gga):
        assert gga.drive_margin(-5e-6) == pytest.approx(gga.drive_margin(5e-6))

    def test_settling_error_grows_near_bias(self):
        gga = GroundedGateAmplifier(
            bias_current=10e-6,
            settling_tau_fraction=0.05,
            phase_kick_fraction=0.25,
        )
        # The same relative kick leaves far more residual near the bias
        # limit -- the distortion mechanism of the delay-line THD.
        small_signal = abs(gga.settle(1e-6, 1e-6).residual_error) / 1e-6
        large_signal = abs(gga.settle(9e-6, 9e-6).residual_error) / 9e-6
        assert large_signal > 100.0 * small_signal


class TestPhaseKick:
    def test_kick_makes_dc_settle_inexact(self):
        gga = GroundedGateAmplifier(
            bias_current=10e-6,
            settling_tau_fraction=0.05,
            phase_kick_fraction=0.25,
        )
        result = gga.settle(5e-6, 5e-6)
        assert result.residual_error != 0.0

    def test_no_kick_makes_dc_settle_exact(self, gga):
        result = gga.settle(5e-6, 5e-6)
        assert result.residual_error == 0.0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"voltage_gain": 0.5},
            {"bias_current": 0.0},
            {"settling_tau_fraction": 0.0},
            {"transconductance": 0.0},
            {"drive_margin_floor": 0.0},
            {"drive_margin_floor": 1.5},
            {"phase_kick_fraction": 1.0},
            {"phase_kick_fraction": -0.1},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            GroundedGateAmplifier(**kwargs)

    def test_with_bias_preserves_other_fields(self, gga):
        other = gga.with_bias(99e-6)
        assert other.bias_current == pytest.approx(99e-6)
        assert other.voltage_gain == gga.voltage_gain
        assert other.settling_tau_fraction == gga.settling_tau_fraction
        assert other.phase_kick_fraction == gga.phase_kick_fraction
