"""Tests for the SI differentiator (the chopper loop's block)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.si.differential import DifferentialSample
from repro.si.differentiator import SIDifferentiator


class TestIdealTransfer:
    def test_recursion(self, ideal_config):
        # y[n+1] = -y[n] + x[n]: an impulse produces an alternating tail.
        diff = SIDifferentiator(gain=1.0, config=ideal_config)
        x = np.zeros(6)
        x[0] = 1e-6
        y = np.array([diff.step_differential(float(v)) for v in x])
        np.testing.assert_allclose(
            y, [0.0, 1e-6, -1e-6, 1e-6, -1e-6, 1e-6], rtol=1e-5, atol=1e-15
        )

    def test_pole_at_nyquist(self, ideal_config):
        # A Nyquist-rate input (+1, -1, +1, ...) must accumulate, the
        # way DC accumulates in an integrator: the pole sits at z = -1.
        diff = SIDifferentiator(gain=1.0, config=ideal_config)
        for n in range(50):
            x = 1e-7 if n % 2 == 0 else -1e-7
            last = diff.step_differential(x)
        assert abs(last) > 40 * 1e-7

    def test_dc_gain_is_half(self, ideal_config):
        # H(1) = 1/(1+1) = 0.5: a DC input settles to half amplitude
        # (alternating around it); average the last two outputs.
        diff = SIDifferentiator(gain=1.0, config=ideal_config)
        outputs = [diff.step_differential(1e-6) for _ in range(101)]
        average = 0.5 * (outputs[-1] + outputs[-2])
        assert average == pytest.approx(0.5e-6, rel=1e-3)

    def test_gain_scaling(self, ideal_config):
        diff = SIDifferentiator(gain=0.5, config=ideal_config)
        diff.step_differential(2e-6)
        assert diff.step_differential(0.0) == pytest.approx(1e-6, rel=1e-6)

    def test_reset(self, ideal_config):
        diff = SIDifferentiator(gain=1.0, config=ideal_config)
        diff.step_differential(5e-6)
        diff.reset()
        assert diff.step_differential(0.0) == 0.0


class TestCommonMode:
    def test_cm_integrates_without_cmff(self, ideal_config):
        # The state feedback is a wire crossing: it flips the
        # differential sign but NOT the common mode, so CM accumulates
        # exactly as in the integrator -- CMFF is just as necessary.
        diff = SIDifferentiator(gain=1.0, config=ideal_config, cmff=None)
        for _ in range(200):
            diff.step(DifferentialSample.from_components(0.0, 1e-7))
        assert abs(diff.state.common_mode) > 1e-5 * 0.99

    def test_cmff_zeroes_cm(self, ideal_config):
        diff = SIDifferentiator(gain=1.0, config=ideal_config)
        for _ in range(50):
            diff.step(DifferentialSample.from_components(0.0, 1e-7))
        assert abs(diff.state.common_mode) < 1e-12


class TestChoppedEquivalence:
    def test_chopped_differentiator_is_inverted_integrator(self, ideal_config):
        # H(-z) = -z^-1/(1-z^-1): chopping the input and output of the
        # differentiator must reproduce a (negated) integrator.
        from repro.si.integrator import SIIntegrator

        diff = SIDifferentiator(gain=1.0, config=ideal_config)
        integ = SIIntegrator(gain=1.0, config=ideal_config)
        rng = np.random.default_rng(5)
        x = rng.normal(0.0, 1e-6, size=64)

        chop = 1.0
        chopped_outputs = []
        integ_outputs = []
        for value in x:
            u = chop * float(value)
            w = diff.step_differential(u)
            chopped_outputs.append(chop * w)
            integ_outputs.append(integ.step_differential(float(value)))
            chop = -chop
        np.testing.assert_allclose(
            chopped_outputs, [-v for v in integ_outputs], rtol=1e-9, atol=1e-18
        )


class TestValidation:
    def test_rejects_zero_gain(self, ideal_config):
        with pytest.raises(ConfigurationError):
            SIDifferentiator(gain=0.0, config=ideal_config)

    def test_slew_fraction_initially_zero(self, ideal_config):
        assert SIDifferentiator(gain=1.0, config=ideal_config).slew_event_fraction == 0.0
