"""Tests for the minimum-supply analysis (Eqs. 1-2)."""

import pytest

from repro.devices.process import CMOS_08UM
from repro.errors import ConfigurationError
from repro.si.headroom import HeadroomAnalysis


@pytest.fixture
def analysis():
    return HeadroomAnalysis()


class TestPaperClaim:
    def test_3v3_feasible_at_unity_modulation(self, analysis):
        # "the use of low power supply voltage, say 3.3 V, is possible,
        # given the threshold voltages around 1V"
        budget = analysis.evaluate(modulation_index=1.0)
        assert budget.feasible_at(3.3)

    def test_3v3_feasible_with_large_input(self, analysis):
        # "... even with large input currents": m_i well above 1.
        budget = analysis.evaluate(modulation_index=4.0)
        assert budget.feasible_at(3.3)

    def test_memory_branch_binds_with_1v_thresholds(self, analysis):
        # With ~1 V thresholds the two stacked V_T dominate: Eq. (2)
        # is the binding constraint.
        budget = analysis.evaluate(modulation_index=2.0)
        assert budget.binding_constraint == "eq2"

    def test_low_vt_process_binds_on_gga_branch(self):
        analysis = HeadroomAnalysis(process=CMOS_08UM.with_thresholds(0.3, 0.3))
        budget = analysis.evaluate(modulation_index=2.0)
        assert budget.binding_constraint == "eq1"


class TestScaling:
    def test_vdd_min_grows_with_modulation(self, analysis):
        low = analysis.evaluate(0.5).vdd_min
        high = analysis.evaluate(8.0).vdd_min
        assert high > low

    def test_overdrive_sqrt_law(self, analysis):
        # The conducting device carries (1 + m_i) I_Q at the peak.
        v0 = analysis.memory_overdrive_at_peak(0.0)
        v3 = analysis.memory_overdrive_at_peak(3.0)
        assert v3 == pytest.approx(2.0 * v0)

    def test_eq1_components(self, analysis):
        budget = analysis.evaluate(0.0)
        expected = (
            analysis.vdsat_bias_p
            + analysis.vdsat_gga
            + analysis.vdsat_cascode
            + analysis.vdsat_bias_n
            + 2.0 * analysis.vdsat_memory
        )
        assert budget.vdd_min_gga_branch == pytest.approx(expected)

    def test_eq2_components(self, analysis):
        budget = analysis.evaluate(0.0)
        expected = (
            analysis.process.vth_p
            + analysis.process.vth_n
            + 2.0 * analysis.vdsat_memory
        )
        assert budget.vdd_min_memory_branch == pytest.approx(expected)


class TestInverse:
    def test_max_modulation_round_trip(self, analysis):
        m_max = analysis.max_modulation_index(3.3)
        assert m_max > 0.0
        assert analysis.evaluate(m_max).vdd_min == pytest.approx(3.3, abs=1e-9)
        assert analysis.evaluate(m_max * 1.05).vdd_min > 3.3

    def test_too_low_supply_gives_zero(self, analysis):
        assert analysis.max_modulation_index(1.0) == 0.0

    def test_higher_supply_allows_more_modulation(self, analysis):
        assert analysis.max_modulation_index(5.0) > analysis.max_modulation_index(3.3)

    def test_rejects_bad_supply(self, analysis):
        with pytest.raises(ConfigurationError):
            analysis.max_modulation_index(0.0)


class TestValidation:
    def test_rejects_negative_modulation(self, analysis):
        with pytest.raises(ConfigurationError):
            analysis.evaluate(-1.0)

    def test_rejects_nonpositive_vdsat(self):
        with pytest.raises(ConfigurationError):
            HeadroomAnalysis(vdsat_memory=0.0)
