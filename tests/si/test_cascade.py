"""Tests for the biquad cascade."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.si.cascade import BiquadCascade, butterworth_q_values

FS = 5e6


def measured_gain(cascade, cycles, n=1 << 12, amplitude=1e-6):
    cascade.reset()
    t = np.arange(n)
    x = amplitude * np.sin(2.0 * np.pi * cycles * t / n)
    y = cascade.run(x)
    return float(np.sqrt(2.0) * np.std(y[n // 2 :])) / amplitude


class TestButterworthQ:
    def test_single_section(self):
        # A lone second-order Butterworth section has Q = 1/sqrt(2).
        assert butterworth_q_values(1) == [pytest.approx(1.0 / np.sqrt(2.0))]

    def test_two_sections(self):
        q = butterworth_q_values(2)
        assert q[0] == pytest.approx(0.5412, abs=1e-3)
        assert q[1] == pytest.approx(1.3066, abs=1e-3)

    def test_q_values_increase(self):
        q = butterworth_q_values(4)
        assert q == sorted(q)

    def test_rejects_zero_sections(self):
        with pytest.raises(ConfigurationError):
            butterworth_q_values(0)


class TestCascade:
    def test_order(self, ideal_config):
        cascade = BiquadCascade(100e3, 3, FS, config=ideal_config)
        assert cascade.order == 6

    def test_sharper_than_single_section(self, ideal_config):
        n = 1 << 12
        center = round(100e3 * n / FS)
        single = BiquadCascade(100e3, 1, FS, config=ideal_config)
        triple = BiquadCascade(100e3, 3, FS, config=ideal_config)

        def selectivity(cascade):
            at_center = measured_gain(cascade, center, n)
            off = measured_gain(cascade, center * 3, n)
            return at_center / off

        # Each extra section adds 6 dB/octave of skirt: three sections
        # are several times more selective one-and-a-half octaves out.
        assert selectivity(triple) > 5.0 * selectivity(single)

    def test_matches_analytic_response(self, ideal_config):
        n = 1 << 12
        cascade = BiquadCascade(100e3, 2, FS, config=ideal_config)
        for cycles in (41, 82, 164):
            measured = measured_gain(cascade, cycles, n)
            analytic = float(
                cascade.frequency_response(np.array([cycles * FS / n]))[0]
            )
            assert measured == pytest.approx(analytic, rel=0.15)

    def test_custom_q_values(self, ideal_config):
        cascade = BiquadCascade(
            100e3, 2, FS, config=ideal_config, q_values=[1.0, 2.0]
        )
        assert cascade.sections[0].quality_factor == pytest.approx(1.0, rel=0.01)
        assert cascade.sections[1].quality_factor == pytest.approx(2.0, rel=0.01)

    def test_rejects_wrong_q_count(self, ideal_config):
        with pytest.raises(ConfigurationError):
            BiquadCascade(100e3, 2, FS, config=ideal_config, q_values=[1.0])

    def test_rejects_2d(self, ideal_config):
        with pytest.raises(ConfigurationError):
            BiquadCascade(100e3, 1, FS, config=ideal_config).run(np.zeros((2, 2)))

    def test_reset(self, ideal_config):
        cascade = BiquadCascade(100e3, 2, FS, config=ideal_config)
        cascade.run(np.full(64, 1e-6))
        cascade.reset()
        assert cascade.step(0.0) == 0.0
