"""Tests for the clock-rate settling study."""

import math

import pytest

from repro.config import paper_cell_config
from repro.errors import ConfigurationError
from repro.si.settling_study import (
    config_at_clock,
    max_clock_for_accuracy,
    settling_error_at_clock,
)


@pytest.fixture
def base_config():
    return paper_cell_config(sample_rate=5e6)


class TestRetiming:
    def test_same_clock_is_identity(self, base_config):
        retimed = config_at_clock(base_config, 5e6)
        assert retimed.gga.settling_tau_fraction == pytest.approx(
            base_config.gga.settling_tau_fraction
        )

    def test_faster_clock_scales_tau_fraction(self, base_config):
        retimed = config_at_clock(base_config, 20e6)
        assert retimed.gga.settling_tau_fraction == pytest.approx(
            4.0 * base_config.gga.settling_tau_fraction
        )
        assert retimed.sample_rate == pytest.approx(20e6)

    def test_absurd_clock_rejected(self, base_config):
        with pytest.raises(ConfigurationError):
            config_at_clock(base_config, 5e6 * 1000.0)

    def test_rejects_bad_clock(self, base_config):
        with pytest.raises(ConfigurationError):
            config_at_clock(base_config, 0.0)


class TestErrorScaling:
    def test_error_grows_with_clock(self, base_config):
        assert settling_error_at_clock(base_config, 50e6) > settling_error_at_clock(
            base_config, 5e6
        )

    def test_error_grows_with_signal(self, base_config):
        assert settling_error_at_clock(
            base_config, 20e6, relative_signal=0.8
        ) > settling_error_at_clock(base_config, 20e6, relative_signal=0.2)

    def test_analytic_form(self, base_config):
        error = settling_error_at_clock(base_config, 5e6, relative_signal=0.0)
        expected = math.exp(-1.0 / base_config.gga.settling_tau_fraction)
        assert error == pytest.approx(expected)

    def test_rejects_bad_signal(self, base_config):
        with pytest.raises(ConfigurationError):
            settling_error_at_clock(base_config, 5e6, relative_signal=1.0)


class TestMaxClock:
    def test_round_trip(self, base_config):
        target = 1e-3
        f_max = max_clock_for_accuracy(base_config, target)
        assert settling_error_at_clock(base_config, f_max) == pytest.approx(
            target, rel=1e-6
        )

    def test_video_rate_claim(self, base_config):
        # "Low-voltage SI oversampling A/D converters for video
        # frequencies and beyond" [14]: at relaxed accuracy the cell
        # clocks well past 10 MHz.
        f_max = max_clock_for_accuracy(base_config, 0.05)
        assert f_max > 10e6

    def test_tighter_accuracy_lowers_clock(self, base_config):
        assert max_clock_for_accuracy(base_config, 1e-4) < max_clock_for_accuracy(
            base_config, 1e-2
        )

    @pytest.mark.parametrize("bad", [0.0, 1.0, 2.0])
    def test_rejects_bad_target(self, base_config, bad):
        with pytest.raises(ConfigurationError):
            max_clock_for_accuracy(base_config, bad)
