"""Tests for the class-AB (and class-A baseline) memory cell."""

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.si.differential import DifferentialSample
from repro.si.memory_cell import (
    ClassABMemoryCell,
    ClassAMemoryCell,
    MemoryCellConfig,
    class_ab_split,
)


class TestClassAbSplit:
    def test_difference_is_signal(self):
        i_n, i_p = class_ab_split(5e-6, 2e-6)
        assert i_n - i_p == pytest.approx(5e-6)

    def test_quiescent_point(self):
        i_n, i_p = class_ab_split(0.0, 2e-6)
        assert i_n == pytest.approx(2e-6)
        assert i_p == pytest.approx(2e-6)

    def test_both_devices_always_conduct(self):
        # The class-AB pair never cuts off -- for any signal both device
        # currents stay positive.
        for signal in (-50e-6, -5e-6, 0.0, 5e-6, 50e-6):
            i_n, i_p = class_ab_split(signal, 2e-6)
            assert i_n > 0.0
            assert i_p > 0.0

    def test_signal_exceeds_quiescent(self):
        # "the input current can be larger than the quiescent current"
        i_n, i_p = class_ab_split(20e-6, 2e-6)
        assert i_n > 20e-6
        assert i_p < 2e-6

    def test_geometric_mean_preserved(self):
        # Square-law translinear loop: i_n * i_p = I_Q^2 for all signals.
        for signal in (-10e-6, 0.0, 3e-6, 25e-6):
            i_n, i_p = class_ab_split(signal, 2e-6)
            assert i_n * i_p == pytest.approx((2e-6) ** 2, rel=1e-9)

    def test_rejects_bad_quiescent(self):
        with pytest.raises(ConfigurationError):
            class_ab_split(1e-6, 0.0)


@pytest.fixture
def ideal_cell(ideal_config):
    return ClassABMemoryCell(ideal_config)


@pytest.fixture
def paper_cell(cell_config):
    return ClassABMemoryCell(cell_config)


class TestIdealCellBehaviour:
    def test_is_inverting_delay(self, ideal_cell):
        first = ideal_cell.step(DifferentialSample.from_components(1e-6))
        second = ideal_cell.step(DifferentialSample.from_components(2e-6))
        assert first.differential == pytest.approx(0.0)
        assert second.differential == pytest.approx(-1e-6, rel=1e-6)

    def test_noninverting_option(self, ideal_config):
        cell = ClassABMemoryCell(replace(ideal_config, inverting=False))
        cell.step(DifferentialSample.from_components(1e-6))
        out = cell.step(DifferentialSample.from_components(0.0))
        assert out.differential == pytest.approx(1e-6, rel=1e-6)

    def test_run_delays_by_one(self, ideal_cell):
        x = np.array([1.0e-6, 2.0e-6, 3.0e-6, 4.0e-6])
        y = ideal_cell.run(x)
        np.testing.assert_allclose(y[1:], -x[:-1], rtol=1e-6)

    def test_reset_clears_state(self, ideal_cell):
        ideal_cell.step(DifferentialSample.from_components(5e-6))
        ideal_cell.reset()
        out = ideal_cell.step(DifferentialSample.from_components(0.0))
        assert out.differential == 0.0

    def test_stored_property(self, ideal_cell):
        ideal_cell.step(DifferentialSample.from_components(3e-6))
        assert ideal_cell.stored.differential == pytest.approx(3e-6, rel=1e-6)


class TestErrorMechanisms:
    def test_transmission_error_attenuates(self, quiet_cell_config):
        # Isolate the transmission error: disable the injection residue
        # (whose sign is independent and can mask the attenuation).
        config = replace(
            quiet_cell_config,
            injection=replace(
                quiet_cell_config.injection, full_injection_current=0.0
            ),
        )
        cell = ClassABMemoryCell(config)
        cell.step(DifferentialSample.from_components(4e-6))
        out = cell.step(DifferentialSample.from_components(0.0))
        assert abs(out.differential) < 4e-6
        assert abs(out.differential) > 0.99 * 4e-6

    def test_thermal_noise_visible(self, cell_config):
        cell = ClassABMemoryCell(cell_config)
        outputs = cell.run(np.zeros(4096))
        assert float(np.std(outputs[1:])) == pytest.approx(
            cell_config.thermal_noise_rms, rel=0.15
        )

    def test_noise_reproducible_with_seed(self, cell_config):
        a = ClassABMemoryCell(cell_config).run(np.zeros(256))
        b = ClassABMemoryCell(cell_config).run(np.zeros(256))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, cell_config):
        a = ClassABMemoryCell(cell_config).run(np.zeros(256))
        b = ClassABMemoryCell(replace(cell_config, seed=99)).run(np.zeros(256))
        assert not np.array_equal(a[1:], b[1:])

    def test_mismatch_converts_cm_to_differential(self, quiet_cell_config):
        matched = ClassABMemoryCell(quiet_cell_config)
        mismatched = ClassABMemoryCell(
            replace(quiet_cell_config, half_gain_mismatch=0.02)
        )
        cm_input = DifferentialSample.from_components(0.0, 2e-6)
        matched.step(cm_input)
        mismatched.step(cm_input)
        out_matched = matched.step(DifferentialSample.from_components(0.0))
        out_mismatched = mismatched.step(DifferentialSample.from_components(0.0))
        assert abs(out_matched.differential) < 1e-12
        assert abs(out_mismatched.differential) > 1e-9

    def test_slew_fraction_counts(self, quiet_cell_config):
        # Steps far beyond the GGA bias must register as slew events.
        cell = ClassABMemoryCell(quiet_cell_config)
        big = quiet_cell_config.gga.bias_current * 10.0
        for k in range(8):
            sign = 1.0 if k % 2 == 0 else -1.0
            cell.step(DifferentialSample.from_components(sign * 2.0 * big))
        assert cell.slew_event_fraction > 0.5

    def test_no_slew_for_small_signals(self, quiet_cell_config):
        cell = ClassABMemoryCell(quiet_cell_config)
        for _ in range(8):
            cell.step(DifferentialSample.from_components(1e-7))
        assert cell.slew_event_fraction == 0.0

    def test_even_order_cancellation(self, quiet_cell_config):
        # Fully differential: the differential error for +x equals the
        # negated error for -x (odd symmetry), so even harmonics cancel.
        cell_pos = ClassABMemoryCell(quiet_cell_config)
        cell_neg = ClassABMemoryCell(quiet_cell_config)
        cell_pos.step(DifferentialSample.from_components(4e-6))
        cell_neg.step(DifferentialSample.from_components(-4e-6))
        out_pos = cell_pos.step(DifferentialSample.from_components(0.0))
        out_neg = cell_neg.step(DifferentialSample.from_components(0.0))
        assert out_pos.differential == pytest.approx(-out_neg.differential, rel=1e-9)


class TestConfigHelpers:
    def test_ideal_disables_everything(self, cell_config):
        ideal = cell_config.ideal()
        assert ideal.thermal_noise_rms == 0.0
        assert ideal.transmission.base_ratio == 0.0
        assert ideal.injection.full_injection_current == 0.0

    def test_noiseless_keeps_static_errors(self, cell_config):
        quiet = cell_config.noiseless()
        assert quiet.thermal_noise_rms == 0.0
        assert quiet.transmission.base_ratio == cell_config.transmission.base_ratio

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"quiescent_current": 0.0},
            {"thermal_noise_rms": -1e-9},
            {"flicker_corner_hz": -1.0},
            {"sample_rate": 0.0},
            {"half_gain_mismatch": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            MemoryCellConfig(**kwargs)


class TestClassABaseline:
    def test_clips_beyond_bias(self, quiet_cell_config):
        # Class A cannot represent signals beyond its bias current.
        cell = ClassAMemoryCell(quiet_cell_config)
        bias = cell.bias_current
        cell.step(DifferentialSample.from_components(10.0 * bias))
        out = cell.step(DifferentialSample.from_components(0.0))
        # The clipped level plus the (uncancelled) injection residue.
        assert abs(out.differential) <= 2.0 * bias * 1.05
        assert cell.clip_event_fraction > 0.0

    def test_class_ab_does_not_clip(self, quiet_cell_config):
        cell = ClassABMemoryCell(quiet_cell_config)
        big = 10.0 * quiet_cell_config.quiescent_current
        cell.step(DifferentialSample.from_components(big))
        out = cell.step(DifferentialSample.from_components(0.0))
        assert abs(out.differential) > 0.9 * big

    def test_small_signals_pass(self, quiet_cell_config):
        cell = ClassAMemoryCell(quiet_cell_config)
        small = 0.25 * cell.bias_current
        cell.step(DifferentialSample.from_components(small))
        out = cell.step(DifferentialSample.from_components(0.0))
        assert out.differential == pytest.approx(-small, rel=0.05)
        assert cell.clip_event_fraction == 0.0

    def test_injection_worse_than_class_ab(self, quiet_cell_config):
        # Class A has no complementary cancellation: its injection
        # residue must exceed the class-AB cell's.
        assert (
            ClassAMemoryCell(quiet_cell_config).config.injection.residual_at_quiescent
            > ClassABMemoryCell(quiet_cell_config).config.injection.residual_at_quiescent
        )

    def test_reset(self, quiet_cell_config):
        cell = ClassAMemoryCell(quiet_cell_config)
        cell.step(DifferentialSample.from_components(1e-6))
        cell.reset()
        out = cell.step(DifferentialSample.from_components(0.0))
        assert out.differential == 0.0

    def test_run_interface(self, quiet_cell_config):
        cell = ClassAMemoryCell(quiet_cell_config)
        y = cell.run(np.array([1e-7, 2e-7, 3e-7]))
        assert y.shape == (3,)
