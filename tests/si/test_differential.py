"""Tests for the differential sample value object."""

import pytest

from repro.si.differential import DifferentialSample


class TestComponents:
    def test_differential(self):
        sample = DifferentialSample(pos=3.0, neg=1.0)
        assert sample.differential == pytest.approx(2.0)

    def test_common_mode(self):
        sample = DifferentialSample(pos=3.0, neg=1.0)
        assert sample.common_mode == pytest.approx(2.0)

    def test_from_components_round_trip(self):
        sample = DifferentialSample.from_components(2.0, 0.5)
        assert sample.differential == pytest.approx(2.0)
        assert sample.common_mode == pytest.approx(0.5)

    def test_from_components_default_cm_zero(self):
        sample = DifferentialSample.from_components(4.0)
        assert sample.pos == pytest.approx(2.0)
        assert sample.neg == pytest.approx(-2.0)


class TestArithmetic:
    def test_add(self):
        result = DifferentialSample(1.0, 2.0) + DifferentialSample(3.0, 4.0)
        assert result == DifferentialSample(4.0, 6.0)

    def test_sub(self):
        result = DifferentialSample(3.0, 4.0) - DifferentialSample(1.0, 2.0)
        assert result == DifferentialSample(2.0, 2.0)

    def test_neg(self):
        assert -DifferentialSample(1.0, -2.0) == DifferentialSample(-1.0, 2.0)

    def test_scaled(self):
        assert DifferentialSample(1.0, 2.0).scaled(3.0) == DifferentialSample(3.0, 6.0)

    def test_crossed_flips_differential(self):
        sample = DifferentialSample.from_components(2.0, 0.5)
        crossed = sample.crossed()
        assert crossed.differential == pytest.approx(-2.0)

    def test_crossed_preserves_common_mode(self):
        # The free -1 multiply of a fully differential circuit does not
        # touch the common mode -- only CMFF does that.
        sample = DifferentialSample.from_components(2.0, 0.5)
        assert sample.crossed().common_mode == pytest.approx(0.5)

    def test_double_cross_is_identity(self):
        sample = DifferentialSample(1.5, -0.25)
        assert sample.crossed().crossed() == sample


class TestValueSemantics:
    def test_immutable(self):
        sample = DifferentialSample(1.0, 2.0)
        with pytest.raises(AttributeError):
            sample.pos = 5.0

    def test_equality(self):
        assert DifferentialSample(1.0, 2.0) == DifferentialSample(1.0, 2.0)
        assert DifferentialSample(1.0, 2.0) != DifferentialSample(1.0, 2.5)

    def test_hashable(self):
        assert len({DifferentialSample(1.0, 2.0), DifferentialSample(1.0, 2.0)}) == 1

    def test_repr(self):
        assert "DifferentialSample" in repr(DifferentialSample(1.0, 2.0))

    def test_equality_with_other_type(self):
        assert DifferentialSample(1.0, 2.0) != "not a sample"
