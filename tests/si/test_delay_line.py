"""Tests for the two-cell delay line."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.si.delay_line import DelayLine
from repro.si.differential import DifferentialSample


class TestIdealDelayLine:
    def test_two_cells_noninverting(self, ideal_config):
        line = DelayLine(ideal_config, n_cells=2)
        assert not line.inverting

    def test_delay_of_two_steps(self, ideal_config):
        line = DelayLine(ideal_config, n_cells=2)
        x = np.array([1.0e-6, 2.0e-6, 3.0e-6, 4.0e-6, 5.0e-6])
        y = line.run(x)
        np.testing.assert_allclose(y[2:], x[:-2], rtol=1e-6)

    def test_single_cell_inverts(self, ideal_config):
        line = DelayLine(ideal_config, n_cells=1)
        assert line.inverting
        x = np.array([1.0e-6, 2.0e-6, 3.0e-6])
        y = line.run(x)
        np.testing.assert_allclose(y[1:], -x[:-1], rtol=1e-6)

    def test_delay_samples_property(self, ideal_config):
        assert DelayLine(ideal_config, n_cells=3).delay_samples == 3

    def test_step_interface(self, ideal_config):
        line = DelayLine(ideal_config, n_cells=2)
        line.step(DifferentialSample.from_components(1e-6))
        line.step(DifferentialSample.from_components(0.0))
        out = line.step(DifferentialSample.from_components(0.0))
        assert out.differential == pytest.approx(1e-6, rel=1e-6)

    def test_reset(self, ideal_config):
        line = DelayLine(ideal_config, n_cells=2)
        line.run(np.full(8, 5e-6))
        line.reset()
        y = line.run(np.zeros(4))
        np.testing.assert_allclose(y, 0.0, atol=1e-18)


class TestNoiseAccumulation:
    def test_two_cells_accumulate_sqrt2_noise(self, cell_config):
        # Cascading doubles the noise power: this is how the per-cell
        # floor is calibrated to the paper's 33 nA total.
        line = DelayLine(cell_config, n_cells=2)
        y = line.run(np.zeros(4096))
        measured = float(np.std(y[2:]))
        expected = np.sqrt(2.0) * cell_config.thermal_noise_rms
        assert measured == pytest.approx(expected, rel=0.15)

    def test_cells_draw_independent_noise(self, cell_config):
        line = DelayLine(cell_config, n_cells=2)
        a = line.cells[0].run(np.zeros(128))
        b = line.cells[1].run(np.zeros(128))
        assert not np.array_equal(a[1:], b[1:])

    def test_paper_total_noise(self, delay_config):
        # The calibrated delay line lands at the paper's 33 nA rms.
        line = DelayLine(delay_config, n_cells=2)
        y = line.run(np.zeros(8192))
        assert float(np.std(y[2:])) == pytest.approx(33e-9, rel=0.1)


class TestSlewTracking:
    def test_slew_fraction_zero_for_small_signals(self, delay_config):
        line = DelayLine(delay_config)
        line.run(np.full(64, 1e-7))
        assert line.slew_event_fraction == 0.0


class TestValidation:
    def test_rejects_zero_cells(self, ideal_config):
        with pytest.raises(ConfigurationError):
            DelayLine(ideal_config, n_cells=0)

    def test_n_cells_property(self, ideal_config):
        assert DelayLine(ideal_config, n_cells=4).n_cells == 4
