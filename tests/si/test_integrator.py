"""Tests for the SI integrator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.si.differential import DifferentialSample
from repro.si.integrator import SIIntegrator


class TestIdealTransfer:
    def test_delaying_accumulation(self, ideal_config):
        integ = SIIntegrator(gain=1.0, config=ideal_config)
        outputs = [integ.step_differential(1e-6) for _ in range(4)]
        # y[n] = sum of x[0..n-1]: 0, 1, 2, 3 microamps.
        np.testing.assert_allclose(
            outputs, [0.0, 1e-6, 2e-6, 3e-6], rtol=1e-6, atol=1e-15
        )

    def test_gain_scales_input(self, ideal_config):
        integ = SIIntegrator(gain=0.5, config=ideal_config)
        integ.step_differential(2e-6)
        assert integ.step_differential(0.0) == pytest.approx(1e-6, rel=1e-6)

    def test_transfer_function_z_domain(self, ideal_config):
        # Drive with an impulse: the output must be a delayed step
        # (impulse response of z^-1/(1-z^-1)).
        integ = SIIntegrator(gain=1.0, config=ideal_config)
        x = np.zeros(8)
        x[0] = 1e-6
        y = np.array([integ.step_differential(float(v)) for v in x])
        np.testing.assert_allclose(y[1:], 1e-6, rtol=1e-5)
        assert y[0] == 0.0

    def test_reset(self, ideal_config):
        integ = SIIntegrator(gain=1.0, config=ideal_config)
        integ.step_differential(5e-6)
        integ.reset()
        assert integ.step_differential(0.0) == 0.0

    def test_state_property(self, ideal_config):
        integ = SIIntegrator(gain=1.0, config=ideal_config)
        integ.step_differential(3e-6)
        assert integ.state.differential == pytest.approx(3e-6, rel=1e-6)


class TestLeak:
    def test_transmission_error_makes_integrator_leaky(self, quiet_cell_config):
        # The classic SI integrator defect: the conductance-ratio error
        # turns the pole into (1 - eps).  A DC input then converges to
        # a finite value ~ gain * x / eps instead of diverging.
        integ = SIIntegrator(gain=1.0, config=quiet_cell_config)
        last = 0.0
        for _ in range(8000):
            last = integ.step_differential(1e-8)
        eps = quiet_cell_config.transmission.effective_ratio
        # Converged value should be within an order of magnitude of the
        # small-signal prediction x/eps (the eps is signal-dependent).
        assert last < 1e-8 / eps * 10.0
        assert last > 1e-8 / eps / 10.0

    def test_ideal_integrator_does_not_leak(self, ideal_config):
        integ = SIIntegrator(gain=1.0, config=ideal_config)
        for _ in range(1000):
            last = integ.step_differential(1e-8)
        assert last == pytest.approx(999 * 1e-8, rel=1e-3)


class TestCommonModeControl:
    def test_cmff_removes_common_mode(self, ideal_config):
        integ = SIIntegrator(gain=1.0, config=ideal_config)
        for _ in range(100):
            integ.step(DifferentialSample.from_components(0.0, 1e-7))
        assert abs(integ.state.common_mode) < 1e-12

    def test_without_cmff_common_mode_integrates(self, ideal_config):
        # The ablation: no CM control means the common mode grows
        # without bound -- the reason the paper's modulators need CMFF.
        integ = SIIntegrator(gain=1.0, config=ideal_config, cmff=None)
        for _ in range(100):
            integ.step(DifferentialSample.from_components(0.0, 1e-7))
        assert abs(integ.state.common_mode) > 5e-6

    def test_cmff_preserves_differential(self, ideal_config):
        with_cmff = SIIntegrator(gain=1.0, config=ideal_config)
        without = SIIntegrator(gain=1.0, config=ideal_config, cmff=None)
        for _ in range(10):
            a = with_cmff.step_differential(1e-6)
            b = without.step_differential(1e-6)
        assert a == pytest.approx(b, rel=1e-9)


class TestNoise:
    def test_integrated_noise_grows(self, cell_config):
        # In-loop cell noise accumulates through the integrator: the
        # state's random walk must exceed the per-sample noise.
        integ = SIIntegrator(gain=1.0, config=cell_config)
        values = [integ.step_differential(0.0) for _ in range(2000)]
        assert float(np.std(values[100:])) > cell_config.thermal_noise_rms


class TestValidation:
    def test_rejects_zero_gain(self, ideal_config):
        with pytest.raises(ConfigurationError):
            SIIntegrator(gain=0.0, config=ideal_config)

    def test_seed_offset_gives_independent_noise(self, cell_config):
        a = SIIntegrator(gain=1.0, config=cell_config, seed_offset=1)
        b = SIIntegrator(gain=1.0, config=cell_config, seed_offset=2)
        va = [a.step_differential(0.0) for _ in range(64)]
        vb = [b.step_differential(0.0) for _ in range(64)]
        assert va[1:] != vb[1:]
