"""Tests for the CMFB baseline and its paper-listed drawbacks."""

import pytest

from repro.errors import ConfigurationError
from repro.si.cmfb import CommonModeFeedback
from repro.si.cmff import CommonModeFeedforward
from repro.si.differential import DifferentialSample


class TestLoopDynamics:
    def test_converges_on_constant_cm(self):
        cmfb = CommonModeFeedback(loop_gain=0.25, sense_nonlinearity=0.0)
        sample = DifferentialSample.from_components(0.0, 1e-6)
        out = sample
        for _ in range(100):
            out = cmfb.apply(sample)
        assert abs(out.common_mode) < 1e-8

    def test_first_sample_uncorrected(self):
        # The speed limitation: feedback cannot act on the sample that
        # creates the error.
        cmfb = CommonModeFeedback(loop_gain=0.25, sense_nonlinearity=0.0)
        out = cmfb.apply(DifferentialSample.from_components(0.0, 1e-6))
        assert out.common_mode == pytest.approx(1e-6)

    def test_latency_matches_loop_gain(self):
        assert CommonModeFeedback(loop_gain=0.1).latency_samples == pytest.approx(10.0)
        assert CommonModeFeedback(loop_gain=0.5).latency_samples == pytest.approx(2.0)

    def test_slower_loop_converges_slower(self):
        fast = CommonModeFeedback(loop_gain=0.5, sense_nonlinearity=0.0)
        slow = CommonModeFeedback(loop_gain=0.05, sense_nonlinearity=0.0)
        sample = DifferentialSample.from_components(0.0, 1e-6)
        for _ in range(5):
            out_fast = fast.apply(sample)
            out_slow = slow.apply(sample)
        assert abs(out_fast.common_mode) < abs(out_slow.common_mode)

    def test_reset(self):
        cmfb = CommonModeFeedback(sense_nonlinearity=0.0)
        cmfb.settle_to(DifferentialSample.from_components(0.0, 1e-6))
        cmfb.reset()
        out = cmfb.apply(DifferentialSample.from_components(0.0, 1e-6))
        assert out.common_mode == pytest.approx(1e-6)


class TestNonlinearity:
    def test_differential_swing_corrupts_sensed_cm(self):
        # The V-I/I-V nonlinearity: a pure differential signal shifts
        # the sensed common mode even though the true CM is zero.
        cmfb = CommonModeFeedback(reference_current=10e-6, sense_nonlinearity=1.0)
        sensed = cmfb._sense(DifferentialSample.from_components(8e-6, 0.0))
        assert abs(sensed) > 1e-8

    def test_corruption_is_even_order(self):
        cmfb = CommonModeFeedback(reference_current=10e-6, sense_nonlinearity=1.0)
        plus = cmfb._sense(DifferentialSample.from_components(8e-6, 0.0))
        minus = cmfb._sense(DifferentialSample.from_components(-8e-6, 0.0))
        assert plus == pytest.approx(minus, rel=1e-9)

    def test_corruption_scales_quadratically(self):
        cmfb = CommonModeFeedback(reference_current=100e-6, sense_nonlinearity=1.0)
        small = cmfb._sense(DifferentialSample.from_components(2e-6, 0.0))
        large = cmfb._sense(DifferentialSample.from_components(4e-6, 0.0))
        assert large == pytest.approx(4.0 * small, rel=0.1)

    def test_linear_sensor_option_is_clean(self):
        cmfb = CommonModeFeedback(sense_nonlinearity=0.0)
        sensed = cmfb._sense(DifferentialSample.from_components(8e-6, 0.0))
        assert sensed == pytest.approx(0.0, abs=1e-18)


class TestAgainstCmff:
    def test_cmff_is_faster(self):
        # Drawback 2: the CMFB loop needs several samples; CMFF is
        # instantaneous.
        cmfb = CommonModeFeedback(loop_gain=0.25, sense_nonlinearity=0.0)
        cmff = CommonModeFeedforward()
        sample = DifferentialSample.from_components(0.0, 1e-6)
        out_fb = cmfb.apply(sample)
        out_ff = cmff.apply(sample)
        assert abs(out_ff.common_mode) < abs(out_fb.common_mode)

    def test_cmff_is_linear_where_cmfb_is_not(self):
        cmfb = CommonModeFeedback(reference_current=10e-6, sense_nonlinearity=1.0)
        cmff = CommonModeFeedforward()
        probe = DifferentialSample.from_components(8e-6, 0.0)
        assert cmff.sensed_common_mode(probe) == pytest.approx(0.0, abs=1e-18)
        assert abs(cmfb._sense(probe)) > 0.0

    def test_cmfb_costs_more_headroom(self):
        # Drawback 3: "larger than necessary drain voltage for the
        # common-mode sense transistor".
        assert (
            CommonModeFeedback().headroom_saturation_voltages
            > CommonModeFeedforward().headroom_saturation_voltages
        )


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loop_gain": 0.0},
            {"loop_gain": 1.5},
            {"reference_current": 0.0},
            {"sense_nonlinearity": -0.5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            CommonModeFeedback(**kwargs)
