"""Tests for the SI biquad filter."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.si.biquad import SIBiquad, biquad_coefficients

FS = 5e6


def tone(amplitude, cycles, n):
    t = np.arange(n)
    return amplitude * np.sin(2.0 * np.pi * cycles * t / n)


def measured_gain(biquad, cycles, n=1 << 13, amplitude=1e-6):
    biquad.reset()
    bp, _ = biquad.run(tone(amplitude, cycles, n))
    steady = bp[n // 2 :]
    return float(np.sqrt(2.0) * np.std(steady)) / amplitude


class TestDesign:
    def test_coefficients(self):
        k1, k2, q = biquad_coefficients(100e3, 5.0, FS)
        omega_t = 2.0 * np.pi * 100e3 / FS
        assert k1 == pytest.approx(omega_t)
        assert k1 == k2
        # Damping pre-compensated for the loop-delay contribution.
        assert q == pytest.approx(0.2 + omega_t)

    def test_design_properties(self, ideal_config):
        biquad = SIBiquad.design(100e3, 5.0, FS, config=ideal_config)
        assert biquad.center_frequency_normalized == pytest.approx(
            100e3 / FS, rel=0.01
        )
        assert biquad.quality_factor == pytest.approx(5.0)

    def test_infinite_q_with_zero_damping(self, ideal_config):
        biquad = SIBiquad(k1=0.1, k2=0.1, q=0.0, config=ideal_config)
        assert biquad.quality_factor == np.inf

    @pytest.mark.parametrize(
        "f0,q,fs",
        [(0.0, 5.0, FS), (100e3, 0.0, FS), (100e3, 5.0, 0.0), (1e6, 5.0, FS)],
    )
    def test_design_validation(self, f0, q, fs):
        with pytest.raises(ConfigurationError):
            biquad_coefficients(f0, q, fs)

    def test_constructor_validation(self, ideal_config):
        with pytest.raises(ConfigurationError):
            SIBiquad(k1=0.0, k2=0.1, q=0.1, config=ideal_config)
        with pytest.raises(ConfigurationError):
            SIBiquad(k1=0.1, k2=0.1, q=-0.1, config=ideal_config)


class TestResponse:
    def test_bandpass_peaks_at_center(self, ideal_config):
        n = 1 << 13
        biquad = SIBiquad.design(100e3, 5.0, FS, config=ideal_config)
        center_cycles = round(100e3 * n / FS)
        below = measured_gain(biquad, center_cycles // 2, n)
        at_center = measured_gain(biquad, center_cycles, n)
        above = measured_gain(biquad, center_cycles * 2, n)
        assert at_center > 3.0 * below
        assert at_center > 3.0 * above

    def test_peak_gain_is_q(self, ideal_config):
        # For the two-integrator loop the band-pass peak gain equals Q.
        n = 1 << 13
        biquad = SIBiquad.design(100e3, 5.0, FS, config=ideal_config)
        center_cycles = round(100e3 * n / FS)
        assert measured_gain(biquad, center_cycles, n) == pytest.approx(5.0, rel=0.15)

    def test_matches_analytic_response(self, ideal_config):
        n = 1 << 13
        biquad = SIBiquad.design(100e3, 5.0, FS, config=ideal_config)
        for cycles in (82, 164, 328):
            measured = measured_gain(biquad, cycles, n)
            analytic = float(
                biquad.frequency_response(np.array([cycles * FS / n]), FS)[0]
            )
            assert measured == pytest.approx(analytic, rel=0.1)

    def test_lowpass_output_passes_dc(self, ideal_config):
        biquad = SIBiquad.design(100e3, 1.0, FS, config=ideal_config)
        last_lp = 0.0
        for _ in range(3000):
            _, last_lp = biquad.step(1e-6)
        assert last_lp == pytest.approx(1e-6, rel=0.05)

    def test_cell_leak_bounds_q(self, quiet_cell_config, ideal_config):
        # The SI integrator leak damps the resonator: with real cells
        # the measured peak gain falls below the designed Q when Q is
        # large -- the known SI filter limitation.
        n = 1 << 13
        design_q = 50.0
        center_cycles = round(100e3 * n / FS)
        ideal_biquad = SIBiquad.design(100e3, design_q, FS, config=ideal_config)
        lossy_biquad = SIBiquad.design(100e3, design_q, FS, config=quiet_cell_config)
        gain_ideal = measured_gain(ideal_biquad, center_cycles, n)
        gain_lossy = measured_gain(lossy_biquad, center_cycles, n)
        assert gain_lossy < gain_ideal

    def test_run_rejects_2d(self, ideal_config):
        biquad = SIBiquad.design(100e3, 5.0, FS, config=ideal_config)
        with pytest.raises(ConfigurationError):
            biquad.run(np.zeros((2, 2)))
