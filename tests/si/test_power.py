"""Tests for the power model and the class-AB efficiency claim."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.si.power import ClassKind, PowerModel


@pytest.fixture
def model():
    return PowerModel(
        supply_voltage=3.3,
        quiescent_current=2e-6,
        gga_bias_current=20e-6,
    )


class TestClassComparison:
    def test_class_ab_wins_at_any_positive_modulation(self, model):
        # The paper's power claim: class AB allows signal > bias.
        for m_i in (0.5, 1.0, 2.0, 4.0, 8.0):
            assert model.power_ratio_a_over_ab(m_i) > 1.0

    def test_advantage_grows_with_modulation(self, model):
        assert model.power_ratio_a_over_ab(8.0) > model.power_ratio_a_over_ab(1.0)

    def test_equal_at_zero_signal_memory_only(self):
        # With no GGAs, at zero signal both classes idle at the same
        # quiescent draw (class A branch = I_Q + complement = 2 I_Q,
        # class AB pair = 2 I_Q).
        model = PowerModel(
            supply_voltage=3.3,
            quiescent_current=2e-6,
            gga_bias_current=0.0,
            n_ggas=0,
        )
        a = model.cell_power(ClassKind.CLASS_A, 0.0)
        ab = model.cell_power(ClassKind.CLASS_AB, 0.0)
        assert a == pytest.approx(ab, rel=1e-9)

    def test_class_a_power_linear_in_modulation(self, model):
        p1 = model.cell_supply_current(ClassKind.CLASS_A, 1.0)
        p3 = model.cell_supply_current(ClassKind.CLASS_A, 3.0)
        gga = model.n_ggas * model.gga_bias_current
        assert (p3 - gga - (p1 - gga)) == pytest.approx(
            2.0 * model.n_memory_pairs * 2e-6 * 2.0
        )

    def test_class_ab_sublinear_in_modulation(self, model):
        # The sine-averaged class-AB draw grows like I_pk/pi, i.e. much
        # slower than class A's I_pk.
        gga = model.n_ggas * model.gga_bias_current
        ab4 = model.cell_supply_current(ClassKind.CLASS_AB, 4.0) - gga
        a4 = model.cell_supply_current(ClassKind.CLASS_A, 4.0) - gga
        assert ab4 < 0.5 * a4


class TestAveragedDraw:
    def test_zero_signal_is_quiescent(self, model):
        gga = model.n_ggas * model.gga_bias_current
        draw = model.cell_supply_current(ClassKind.CLASS_AB, 0.0) - gga
        assert draw == pytest.approx(model.n_memory_pairs * 2.0 * 2e-6, rel=1e-6)

    def test_large_signal_asymptote(self):
        # For m_i >> 1 the pair's average draw approaches
        # 2 * I_pk/2 * mean|sin| = I_pk * 2/pi.
        model = PowerModel(
            supply_voltage=3.3,
            quiescent_current=1e-6,
            gga_bias_current=0.0,
            n_ggas=0,
            n_memory_pairs=1,
        )
        m_i = 100.0
        peak = m_i * 1e-6
        draw = model.cell_supply_current(ClassKind.CLASS_AB, m_i)
        assert draw == pytest.approx(peak * 2.0 / math.pi, rel=0.02)


class TestSystemPower:
    def test_extra_blocks_add(self, model):
        base = model.system_power(n_cells=2)
        model.add_block("quantizer", 100e-6)
        assert model.system_power(n_cells=2) == pytest.approx(base + 3.3 * 100e-6)

    def test_power_scales_with_cells(self, model):
        assert model.system_power(n_cells=4) == pytest.approx(
            2.0 * model.system_power(n_cells=2)
        )

    def test_milliwatt_scale(self, model):
        # The chip blocks land in the sub-milliwatt to low-milliwatt
        # range, like Tables 1-2 (0.7 mW and 3.2 mW).
        power = model.system_power(n_cells=2, modulation_index=4.0)
        assert 1e-4 < power < 1e-2


class TestValidation:
    def test_rejects_negative_modulation(self, model):
        with pytest.raises(ConfigurationError):
            model.cell_supply_current(ClassKind.CLASS_AB, -1.0)

    def test_rejects_zero_cells(self, model):
        with pytest.raises(ConfigurationError):
            model.system_power(n_cells=0)

    def test_rejects_negative_block(self, model):
        with pytest.raises(ConfigurationError):
            model.add_block("bad", -1e-6)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"supply_voltage": 0.0},
            {"quiescent_current": 0.0},
            {"gga_bias_current": -1e-6},
            {"n_memory_pairs": 0},
        ],
    )
    def test_constructor_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            PowerModel(**kwargs)
