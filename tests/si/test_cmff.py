"""Tests for the common-mode feedforward block (Fig. 2)."""

import pytest

from repro.devices.current_mirror import CurrentMirror
from repro.si.cmff import CommonModeFeedforward
from repro.si.differential import DifferentialSample


class TestIdealCmff:
    def test_removes_common_mode_exactly(self):
        cmff = CommonModeFeedforward()
        sample = DifferentialSample.from_components(2e-6, 1.5e-6)
        out = cmff.apply(sample)
        assert out.common_mode == pytest.approx(0.0, abs=1e-18)

    def test_preserves_differential_exactly(self):
        cmff = CommonModeFeedforward()
        sample = DifferentialSample.from_components(2e-6, 1.5e-6)
        out = cmff.apply(sample)
        assert out.differential == pytest.approx(2e-6)

    def test_sensed_value_is_cm(self):
        # Fig. 2(b): half-sized mirrors sum to (Id + Id-)/2 = I_cm.
        cmff = CommonModeFeedforward()
        sample = DifferentialSample.from_components(4e-6, 0.7e-6)
        assert cmff.sensed_common_mode(sample) == pytest.approx(0.7e-6)

    def test_zero_latency(self):
        # Feedforward corrects within the same sample -- no loop.
        assert CommonModeFeedforward().latency_samples == 0

    def test_pure_differential_untouched(self):
        cmff = CommonModeFeedforward()
        sample = DifferentialSample.from_components(3e-6, 0.0)
        out = cmff.apply(sample)
        assert out == sample

    def test_is_linear(self):
        cmff = CommonModeFeedforward()
        a = DifferentialSample(2e-6, 1e-6)
        b = DifferentialSample(0.5e-6, -0.2e-6)
        combined = cmff.apply(a + b)
        separate = cmff.apply(a) + cmff.apply(b)
        assert combined.pos == pytest.approx(separate.pos)
        assert combined.neg == pytest.approx(separate.neg)


class TestMirrorMismatch:
    def test_sense_mismatch_leaves_residual_cm(self):
        # A common gain error of the sense pair mis-measures the CM and
        # leaves a proportional residue.  (Equal-and-opposite errors
        # would cancel for a pure-CM input -- only the common part of
        # the sense error degrades rejection.)
        cmff = CommonModeFeedforward(
            sense_pos=CurrentMirror(nominal_gain=0.5, gain_error=0.01),
            sense_neg=CurrentMirror(nominal_gain=0.5, gain_error=0.01),
        )
        rejection = cmff.common_mode_rejection()
        assert abs(rejection) == pytest.approx(0.01, rel=0.05)

    def test_subtract_mismatch_leaks_to_differential(self):
        cmff = CommonModeFeedforward(
            subtract_pos=CurrentMirror(gain_error=0.02),
            subtract_neg=CurrentMirror(gain_error=-0.02),
        )
        leakage = cmff.differential_leakage()
        assert abs(leakage) == pytest.approx(0.04, rel=0.05)

    def test_matched_mirrors_no_leakage(self):
        cmff = CommonModeFeedforward()
        assert cmff.differential_leakage() == pytest.approx(0.0, abs=1e-15)
        assert cmff.common_mode_rejection() == pytest.approx(0.0, abs=1e-15)

    def test_rejection_scales_with_mismatch(self):
        small = CommonModeFeedforward(
            sense_pos=CurrentMirror(nominal_gain=0.5, gain_error=0.005),
            sense_neg=CurrentMirror(nominal_gain=0.5, gain_error=0.005),
        )
        large = CommonModeFeedforward(
            sense_pos=CurrentMirror(nominal_gain=0.5, gain_error=0.02),
            sense_neg=CurrentMirror(nominal_gain=0.5, gain_error=0.02),
        )
        assert abs(large.common_mode_rejection()) > abs(small.common_mode_rejection())


class TestHeadroom:
    def test_cmff_headroom_is_one_vdsat(self):
        # CMFF only stacks a mirror: one saturation voltage.
        assert CommonModeFeedforward().headroom_saturation_voltages == pytest.approx(1.0)
