"""Tests for the bilinear (double-sampling) SI integrator [3]."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.si.bilinear import BilinearSIIntegrator, bilinear_frequency_response

FS = 5e6


class TestDifferenceEquation:
    def test_trapezoidal_rule(self, ideal_config):
        integ = BilinearSIIntegrator(gain=1.0, config=ideal_config)
        # x = [1, 1, 0] uA: y = [0.5, 1.5, 2.0] uA (trapezoids).
        outputs = [integ.step_differential(v) for v in (1e-6, 1e-6, 0.0)]
        np.testing.assert_allclose(
            outputs, [0.5e-6, 1.5e-6, 2.0e-6], rtol=1e-6
        )

    def test_dc_accumulation_rate_matches_forward_euler(self, ideal_config):
        # For DC both rules integrate at the same rate (after start-up).
        from repro.si.integrator import SIIntegrator

        bilinear = BilinearSIIntegrator(gain=1.0, config=ideal_config)
        euler = SIIntegrator(gain=1.0, config=ideal_config)
        for _ in range(100):
            y_bilinear = bilinear.step_differential(1e-8)
            y_euler = euler.step_differential(1e-8)
        assert y_bilinear == pytest.approx(y_euler, rel=0.02)

    def test_reset(self, ideal_config):
        integ = BilinearSIIntegrator(gain=1.0, config=ideal_config)
        integ.step_differential(1e-6)
        integ.reset()
        assert integ.step_differential(0.0) == 0.0

    def test_rejects_zero_gain(self, ideal_config):
        with pytest.raises(ConfigurationError):
            BilinearSIIntegrator(gain=0.0, config=ideal_config)

    def test_run_rejects_2d(self, ideal_config):
        with pytest.raises(ConfigurationError):
            BilinearSIIntegrator(gain=1.0, config=ideal_config).run(
                np.zeros((2, 2))
            )


class TestFrequencyResponse:
    def test_analytic_response_is_purely_imaginary(self):
        response = bilinear_frequency_response(
            1.0, np.array([1e3, 100e3, 1e6]), FS
        )
        np.testing.assert_allclose(response.real, 0.0, atol=1e-12)

    def test_matches_tan_law(self):
        f = 100e3
        response = bilinear_frequency_response(2.0, np.array([f]), FS)
        expected = 2.0 / (2.0 * np.tan(np.pi * f / FS))
        assert abs(response[0]) == pytest.approx(expected)

    def test_simulated_gain_matches_analytic(self, ideal_config):
        n = 1 << 12
        cycles = 37
        f = cycles * FS / n
        integ = BilinearSIIntegrator(gain=0.05, config=ideal_config)
        t = np.arange(n)
        x = 1e-6 * np.sin(2.0 * np.pi * cycles * t / n)
        y = integ.run(x)
        measured = float(np.sqrt(2.0) * np.std(y[n // 2 :])) / 1e-6
        analytic = abs(
            bilinear_frequency_response(0.05, np.array([f]), FS)[0]
        )
        assert measured == pytest.approx(analytic, rel=0.05)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            bilinear_frequency_response(1.0, np.array([1e3]), 0.0)


def measured_phase(output: np.ndarray, reference: np.ndarray, cycles: int) -> float:
    """Return the phase of ``output`` relative to ``reference`` at a bin."""
    spectrum_out = np.fft.rfft(output)
    spectrum_ref = np.fft.rfft(reference)
    return float(np.angle(spectrum_out[cycles] / spectrum_ref[cycles]))


class TestPhaseAdvantage:
    def test_bilinear_phase_is_exactly_minus_90(self, ideal_config):
        # The payoff of the double-sampling bilinear technique [3]: the
        # integrator's phase is exactly -90 degrees at every frequency
        # (its response is purely imaginary), where the delaying
        # forward-Euler integrator lags an extra half sample plus a full
        # sample of delay -- the phase error that forces the biquad's
        # damping compensation.
        from repro.si.integrator import SIIntegrator

        n = 1 << 12
        cycles = 200  # omega*T = 2*pi*200/4096 = 0.307 rad
        t = np.arange(n)
        x = 1e-6 * np.sin(2.0 * np.pi * cycles * t / n)

        bilinear = BilinearSIIntegrator(gain=0.1, config=ideal_config)
        y_bilinear = bilinear.run(x)
        euler = SIIntegrator(gain=0.1, config=ideal_config)
        y_euler = np.array([euler.step_differential(float(v)) for v in x])

        # Measure over the second half of the record (coherent: the
        # even cycle count means cycles/2 whole cycles fit in n/2).
        phase_bilinear = measured_phase(y_bilinear[n // 2 :], x[n // 2 :], cycles // 2)
        phase_euler = measured_phase(y_euler[n // 2 :], x[n // 2 :], cycles // 2)

        omega_t = 2.0 * np.pi * cycles / n
        error_bilinear = abs(phase_bilinear + np.pi / 2.0)
        # Delaying Euler: z^-1/(1-z^-1) = 1/(z-1) lags -90 deg by an
        # extra half sample, omega*T/2.
        expected_euler_lag = 0.5 * omega_t
        error_euler = abs(phase_euler + np.pi / 2.0)
        assert error_bilinear < 0.01
        assert error_euler == pytest.approx(expected_euler_lag, abs=0.02)
        assert error_euler > 100.0 * error_bilinear
