"""Tests for the static error models (transmission, charge injection)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.si.errors_model import ChargeInjectionResidue, TransmissionError


class TestTransmissionError:
    def test_gga_divides_error(self):
        # The central claim of the class-AB cell: the GGA's voltage gain
        # divides the conductance-ratio error.
        plain = TransmissionError(base_ratio=0.01, gga_gain=1.0)
        boosted = TransmissionError(base_ratio=0.01, gga_gain=50.0)
        assert boosted.effective_ratio == pytest.approx(plain.effective_ratio / 50.0)

    def test_epsilon_at_quiescent(self):
        model = TransmissionError(
            base_ratio=0.01, gga_gain=50.0, quiescent_current=2e-6
        )
        assert model.epsilon(2e-6) == pytest.approx(0.01 / 50.0)

    def test_epsilon_falls_with_device_current(self):
        # g_m grows as sqrt(i): a strongly conducting device has lower
        # transmission error.
        model = TransmissionError(quiescent_current=2e-6)
        assert model.epsilon(8e-6) == pytest.approx(model.epsilon(2e-6) / 2.0)

    def test_epsilon_clamped_near_cutoff(self):
        model = TransmissionError(quiescent_current=2e-6)
        assert math.isfinite(model.epsilon(0.0))
        assert model.epsilon(0.0) == model.epsilon(1e-12)

    def test_apply_reduces_magnitude(self):
        model = TransmissionError(base_ratio=0.1, gga_gain=1.0)
        assert 0.0 < model.apply(1e-6, 2e-6) < 1e-6

    def test_apply_preserves_sign(self):
        model = TransmissionError(base_ratio=0.1, gga_gain=1.0)
        assert model.apply(-1e-6, 2e-6) < 0.0

    def test_zero_base_is_exact(self):
        model = TransmissionError(base_ratio=0.0)
        assert model.apply(1e-6, 2e-6) == pytest.approx(1e-6)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_ratio": 1.0},
            {"base_ratio": -0.1},
            {"gga_gain": 0.5},
            {"quiescent_current": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            TransmissionError(**kwargs)


class TestChargeInjectionResidue:
    def test_complementary_cancellation_scales_residue(self):
        # "The class AB configuration itself reduces the charge
        # injection error if we use an n-type transistor as the switch
        # for the n-type memory transistor and a p-type ... [16]"
        raw = ChargeInjectionResidue(
            full_injection_current=100e-9, complementary_cancellation=0.0
        )
        cancelled = ChargeInjectionResidue(
            full_injection_current=100e-9, complementary_cancellation=0.9
        )
        assert cancelled.residual_at_quiescent == pytest.approx(
            0.1 * raw.residual_at_quiescent
        )

    def test_perfect_cancellation_is_silent(self):
        model = ChargeInjectionResidue(complementary_cancellation=1.0)
        assert model.error_current(5e-6) == 0.0

    def test_error_grows_with_device_current(self):
        model = ChargeInjectionResidue(quiescent_current=2e-6)
        assert model.error_current(8e-6) == pytest.approx(
            2.0 * model.error_current(2e-6)
        )

    def test_error_at_quiescent(self):
        model = ChargeInjectionResidue(
            full_injection_current=50e-9,
            complementary_cancellation=0.9,
            quiescent_current=2e-6,
        )
        assert model.error_current(2e-6) == pytest.approx(5e-9)

    def test_finite_near_cutoff(self):
        model = ChargeInjectionResidue()
        assert math.isfinite(model.error_current(0.0))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"full_injection_current": -1e-9},
            {"complementary_cancellation": 1.5},
            {"complementary_cancellation": -0.1},
            {"quiescent_current": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ChargeInjectionResidue(**kwargs)
