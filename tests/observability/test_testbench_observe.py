"""TestBench ``observe=``: measurement accounting into a registry."""

from repro.observability.instruments import InstrumentRegistry
from repro.systems.testbench import TestBench
from repro.telemetry.session import TelemetrySession


def _bench(**kwargs) -> TestBench:
    return TestBench(
        sample_rate=1e6, n_samples=1 << 12, settle_samples=64, **kwargs
    )


class TestObserve:
    def test_measure_accounts_count_and_latency(self):
        registry = InstrumentRegistry()
        bench = _bench(observe=registry)
        bench.measure(lambda x: x, amplitude=1e-6, frequency=5e3)
        counter = registry.counter("repro.bench.measurements")
        assert counter.value(device="function") == 1.0
        histogram = registry.get("repro.bench.measure_seconds")
        assert histogram.count(device="function") == 1

    def test_each_measurement_accounts_once(self):
        registry = InstrumentRegistry()
        bench = _bench(observe=registry)
        for _ in range(3):
            bench.measure(lambda x: x, amplitude=1e-6, frequency=5e3)
        assert registry.counter("repro.bench.measurements").total() == 3.0

    def test_traced_path_accounts_too(self):
        registry = InstrumentRegistry()
        bench = _bench(observe=registry, telemetry=TelemetrySession("bench"))
        bench.measure(lambda x: x, amplitude=1e-6, frequency=5e3)
        assert registry.counter("repro.bench.measurements").total() == 1.0

    def test_default_records_nothing(self):
        bench = _bench()
        bench.measure(lambda x: x, amplitude=1e-6, frequency=5e3)
        assert bench.observe is None
