"""Cross-process propagation: spans and counters survive real workers."""

import os

import pytest

from repro.config import (
    MODULATOR_CLOCK,
    MODULATOR_FULL_SCALE,
    SIGNAL_BANDWIDTH,
)
from repro.observability.instruments import InstrumentRegistry, use_registry
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor
from repro.runtime.sweeps import SweepSpec, run_sweep
from repro.systems.stimulus import coherent_frequency
from repro.telemetry.session import TelemetrySession

N_SAMPLES = 1 << 13
LEVELS = (-40.0, -20.0, -10.0)


def _spec(**overrides) -> SweepSpec:
    base = dict(
        design="modulator2",
        levels_db=LEVELS,
        full_scale=MODULATOR_FULL_SCALE,
        signal_frequency=coherent_frequency(2e3, MODULATOR_CLOCK, N_SAMPLES),
        sample_rate=MODULATOR_CLOCK,
        n_samples=N_SAMPLES,
        bandwidth=SIGNAL_BANDWIDTH,
        settle_samples=64,
    )
    base.update(overrides)
    return SweepSpec(**base)


@pytest.fixture
def two_cores(monkeypatch):
    monkeypatch.setattr("repro.runtime.executor.os.cpu_count", lambda: 2)


class TestSpanPropagation:
    def test_forked_shard_spans_graft_with_worker_pids(self, two_cores):
        registry = InstrumentRegistry()
        session = TelemetrySession("propagation")
        with use_registry(registry):
            run_sweep(
                _spec(),
                executor=SweepExecutor(jobs=2, chunk_size=2),
                telemetry=session,
            )
        (sweep,) = [s for s in session.roots if s.name == "sweep"]
        shards = [c for c in sweep.children if c.name.startswith("shard:")]
        assert [s.name for s in shards] == ["shard:0", "shard:1"]
        for shard in shards:
            # The span was timed in the worker process, not here.
            assert shard.attrs["pid"] != os.getpid()
            assert shard.duration_s is not None and shard.duration_s > 0.0
            assert "queue_wait_ms" in shard.attrs
        assert registry.counter("repro.executor.shards").total() == 2.0

    def test_inline_and_forked_results_byte_identical(self, two_cores):
        spec = _spec()
        with use_registry(InstrumentRegistry()):
            inline = run_sweep(spec, executor=SweepExecutor(jobs=1))
            forked = run_sweep(
                spec, executor=SweepExecutor(jobs=2, chunk_size=2)
            )
        assert forked.metrics == inline.metrics
        assert forked.sndr_db.tobytes() == inline.sndr_db.tobytes()
        assert forked.snr_db.tobytes() == inline.snr_db.tobytes()
        assert forked.thd_db.tobytes() == inline.thd_db.tobytes()


class TestCounterPropagation:
    def test_cache_counters_sum_correctly_across_processes(
        self, tmp_path, two_cores
    ):
        spec = _spec()
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(jobs=2, chunk_size=2)
        registry = InstrumentRegistry()
        with use_registry(registry):
            run_sweep(spec, executor=executor, cache=cache)
        misses = registry.counter("repro.cache.misses")
        hits = registry.counter("repro.cache.hits")
        assert misses.total() == 1.0 and hits.total() == 0.0
        assert registry.counter("repro.cache.bytes_stored").total() > 0.0
        with use_registry(registry):
            run_sweep(spec, executor=executor, cache=cache)
        assert hits.total() == 1.0 and misses.total() == 1.0
