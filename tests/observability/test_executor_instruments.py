"""Executor telemetry: shard spans, timeout/retry counters and events."""

import time

import pytest

from repro.errors import ConfigurationError
from repro.observability.instruments import InstrumentRegistry, use_registry
from repro.runtime.executor import SweepExecutor, SweepTimeoutError
from repro.telemetry.events import Severity


def _echo(items, context):
    """Module-level worker (picklable) echoing its chunk."""
    return list(items)


def _sleepy(items, context):  # pragma: no cover - runs in a worker process
    time.sleep(0.5)
    return list(items)


@pytest.fixture
def two_cores(monkeypatch):
    """Pretend the host has two cores so the pool path actually runs."""
    monkeypatch.setattr("repro.runtime.executor.os.cpu_count", lambda: 2)


class TestInlineInstrumentation:
    def test_map_instrumented_ships_shard_telemetry(self):
        executor = SweepExecutor(jobs=1, chunk_size=2)
        results, telemetries = executor.map_instrumented(_echo, [1, 2, 3])
        assert results == [[1, 2], [3]]
        assert [t.spans[0]["name"] for t in telemetries] == [
            "shard:0",
            "shard:1",
        ]
        span = telemetries[0].spans[0]
        assert span["duration_s"] > 0.0
        assert span["attrs"]["lane_offset"] == 0
        assert span["attrs"]["n_lanes"] == 2
        assert "queue_wait_ms" in span["attrs"]
        instruments = telemetries[0].instruments["instruments"]
        assert instruments["repro.executor.shards"]["series"][0]["value"] == 1.0
        assert "repro.executor.queue_wait_seconds" in instruments
        assert "repro.executor.shard_seconds" in instruments

    def test_fresh_worker_registry_never_leaks_parent_counts(self):
        parent = InstrumentRegistry()
        parent.counter("repro.executor.shards").inc(100.0)
        with use_registry(parent):
            _, telemetries = SweepExecutor(jobs=1).map_instrumented(_echo, [1])
        instruments = telemetries[0].instruments["instruments"]
        assert instruments["repro.executor.shards"]["series"][0]["value"] == 1.0

    def test_map_has_no_telemetry_overhead_path(self):
        registry = InstrumentRegistry()
        with use_registry(registry):
            assert SweepExecutor(jobs=1).map(_echo, [1, 2]) == [[1, 2]]
        assert registry.instruments() == []

    def test_rejects_negative_retries(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor(jobs=1, retries=-1)


class TestTimeouts:
    def test_forced_timeout_increments_exactly_one_labeled_counter(
        self, two_cores
    ):
        registry = InstrumentRegistry()
        executor = SweepExecutor(jobs=2, chunk_size=1, timeout_s=0.05)
        with use_registry(registry):
            with pytest.raises(SweepTimeoutError):
                executor.map(_sleepy, [1, 2])
        counter = registry.counter("repro.executor.timeouts")
        assert counter.total() == 1.0
        assert counter.value(shard="0") == 1.0
        events = [e for e in executor.events if e.rule == "EXEC001"]
        assert len(events) == 1
        assert events[0].severity is Severity.ERROR
        assert events[0].source == "shard:0"

    def test_retry_budget_counts_each_resubmission(self, two_cores):
        registry = InstrumentRegistry()
        executor = SweepExecutor(
            jobs=2, chunk_size=1, timeout_s=0.05, retries=1
        )
        with use_registry(registry):
            with pytest.raises(SweepTimeoutError):
                executor.map(_sleepy, [1, 2])
        assert registry.counter("repro.executor.retries").value(shard="0") == 1.0
        assert registry.counter("repro.executor.timeouts").value(shard="0") == 1.0
        assert [e.rule for e in executor.events] == ["EXEC002", "EXEC001"]
        assert executor.events[0].severity is Severity.WARNING

    def test_events_reset_per_call(self, two_cores):
        executor = SweepExecutor(jobs=2, chunk_size=1, timeout_s=0.05)
        with use_registry(InstrumentRegistry()):
            with pytest.raises(SweepTimeoutError):
                executor.map(_sleepy, [1, 2])
            assert executor.events
            executor.map(_echo, [1, 2])
        assert executor.events == []
