"""The run ledger: append-only JSONL, content addressing, tolerance."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.observability.ledger import (
    DEFAULT_LEDGER_DIRNAME,
    LEDGER_ENV_DIR,
    LEDGER_SCHEMA,
    LedgerEntry,
    RunLedger,
    entry_id_for,
)

PROV = {
    "git_sha": "deadbeef",
    "git_dirty": False,
    "timestamp": "2026-08-08T00:00:00+00:00",
    "hostname": "rig",
    "cpu_count": 4,
}


class TestContentAddress:
    def test_same_content_same_id(self):
        a = entry_id_for("report", "mod2", {"x": 1, "y": [2.0]})
        b = entry_id_for("report", "mod2", {"y": [2.0], "x": 1})
        assert a == b
        assert a.startswith("sha256:")

    def test_kind_design_and_payload_all_distinguish(self):
        base = entry_id_for("report", "mod2", {"x": 1})
        assert entry_id_for("sweep", "mod2", {"x": 1}) != base
        assert entry_id_for("report", "mod1", {"x": 1}) != base
        assert entry_id_for("report", "mod2", {"x": 2}) != base

    def test_provenance_does_not_change_the_id(self, tmp_path):
        ledger = RunLedger(tmp_path)
        first = ledger.append("report", {"x": 1}, design="d", provenance=PROV)
        later = dict(PROV, timestamp="2026-08-09T00:00:00+00:00")
        second = ledger.append("report", {"x": 1}, design="d", provenance=later)
        assert first is not None
        assert second is None  # deduplicated despite new provenance


class TestAppend:
    def test_append_and_read_back(self, tmp_path):
        ledger = RunLedger(tmp_path)
        entry = ledger.append(
            "sweep", {"dynamic_range_db": 63.0}, design="mod2", provenance=PROV
        )
        assert entry is not None
        loaded = list(RunLedger(tmp_path).entries())
        assert len(loaded) == 1
        assert loaded[0].entry_id == entry.entry_id
        assert loaded[0].kind == "sweep"
        assert loaded[0].design == "mod2"
        assert loaded[0].payload == {"dynamic_range_db": 63.0}
        assert loaded[0].git_sha == "deadbeef"

    def test_append_is_one_line_per_entry(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append("sweep", {"v": 1}, design="d", provenance=PROV)
        ledger.append("sweep", {"v": 2}, design="d", provenance=PROV)
        lines = ledger.path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert json.loads(line)["schema"] == LEDGER_SCHEMA

    def test_duplicate_content_not_appended(self, tmp_path):
        ledger = RunLedger(tmp_path)
        assert ledger.append("bench", {"wall_s": 1.0}, provenance=PROV)
        assert ledger.append("bench", {"wall_s": 1.0}, provenance=PROV) is None
        assert len(ledger) == 1

    def test_default_provenance_is_collected(self, tmp_path):
        entry = RunLedger(tmp_path).append("report", {"x": 1}, design="d")
        assert entry is not None
        assert "timestamp" in entry.provenance
        assert "hostname" in entry.provenance
        assert "cpu_count" in entry.provenance

    def test_non_jsonable_payload_rejected(self, tmp_path):
        ledger = RunLedger(tmp_path)
        with pytest.raises(ObservabilityError):
            ledger.append("report", {"x": object()}, provenance=PROV)
        assert not ledger.path.exists()

    def test_reading_never_creates_the_directory(self, tmp_path):
        target = tmp_path / "nested" / "ledger"
        ledger = RunLedger(target)
        assert list(ledger.entries()) == []
        assert not target.exists()


class TestResolution:
    def test_env_var_overrides_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv(LEDGER_ENV_DIR, str(tmp_path / "elsewhere"))
        assert RunLedger().directory == tmp_path / "elsewhere"

    def test_default_directory_without_env(self, monkeypatch):
        monkeypatch.delenv(LEDGER_ENV_DIR, raising=False)
        assert str(RunLedger().directory) == DEFAULT_LEDGER_DIRNAME

    def test_explicit_directory_wins_over_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(LEDGER_ENV_DIR, str(tmp_path / "env"))
        assert RunLedger(tmp_path / "arg").directory == tmp_path / "arg"


class TestTolerance:
    def test_torn_trailing_line_is_skipped(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append("sweep", {"v": 1}, design="d", provenance=PROV)
        with ledger.path.open("a") as handle:
            handle.write('{"schema": "repro.observability/ledger-entry/v1", "ki')
        assert len(list(RunLedger(tmp_path).entries())) == 1

    def test_foreign_lines_are_skipped(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.path.parent.mkdir(parents=True, exist_ok=True)
        ledger.path.write_text('{"schema": "other"}\n[1, 2]\n\n')
        ledger.append("sweep", {"v": 1}, design="d", provenance=PROV)
        entries = list(RunLedger(tmp_path).entries())
        assert len(entries) == 1

    def test_filters_by_design_and_kind(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append("sweep", {"v": 1}, design="a", provenance=PROV)
        ledger.append("report", {"v": 2}, design="a", provenance=PROV)
        ledger.append("sweep", {"v": 3}, design="b", provenance=PROV)
        assert len(list(ledger.entries(design="a"))) == 2
        assert len(list(ledger.entries(kind="sweep"))) == 2
        assert len(list(ledger.entries(design="a", kind="sweep"))) == 1
        assert ledger.designs() == ["a", "b"]


class TestEntryRoundTrip:
    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ObservabilityError):
            LedgerEntry.from_dict({"schema": "nope"})

    def test_from_dict_rejects_missing_payload(self):
        with pytest.raises(ObservabilityError):
            LedgerEntry.from_dict({"schema": LEDGER_SCHEMA, "kind": "report"})

    def test_from_dict_recomputes_missing_id(self):
        data = {
            "schema": LEDGER_SCHEMA,
            "kind": "report",
            "design": "d",
            "payload": {"x": 1},
            "provenance": dict(PROV),
        }
        entry = LedgerEntry.from_dict(data)
        assert entry.entry_id == entry_id_for("report", "d", {"x": 1})

    def test_as_dict_roundtrips(self):
        entry = LedgerEntry(
            entry_id=entry_id_for("bench", None, {"wall_s": 0.5}),
            kind="bench",
            design=None,
            payload={"wall_s": 0.5},
            provenance=dict(PROV),
        )
        again = LedgerEntry.from_dict(entry.as_dict())
        assert again == entry
