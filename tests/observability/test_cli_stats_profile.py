"""CLI surface: ``repro stats``, ``repro stats --diff``, ``repro profile``."""

import json

import pytest

from repro.cli import main
from repro.observability.instruments import InstrumentRegistry

FAST_ARGS = ["--samples", "4096", "--levels", "-20", "-6"]


def _stats(tmp_path, name, **counters):
    registry = InstrumentRegistry()
    for counter, value in counters.items():
        registry.counter(counter.replace("__", ".")).inc(value)
    path = tmp_path / f"{name}.json"
    path.write_text(json.dumps(registry.snapshot()))
    return str(path)


class TestStats:
    def test_run_prints_counters_and_writes_document(self, capsys, tmp_path):
        json_path = tmp_path / "stats.json"
        args = [
            "stats",
            "modulator2",
            *FAST_ARGS,
            "--cache-dir",
            str(tmp_path / "cache"),
            "--json",
            str(json_path),
        ]
        assert main(args) == 0
        output = capsys.readouterr().out
        assert "instruments: modulator2" in output
        assert "repro.cache.misses" in output
        assert "repro.executor.shards" in output
        document = json.loads(json_path.read_text())
        assert document["design"] == "modulator2"
        assert document["config"]["levels_db"] == [-20.0, -6.0]
        names = document["snapshot"]["instruments"]
        assert "repro.cache.misses" in names

    def test_no_cache_run_has_no_cache_counters(self, capsys):
        assert main(["stats", "modulator2", *FAST_ARGS, "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "repro.cache.misses" not in output
        assert "repro.executor.shards" in output

    def test_prometheus_exposition(self, capsys):
        args = ["stats", "mod2", *FAST_ARGS, "--no-cache", "--prom"]
        assert main(args) == 0
        output = capsys.readouterr().out
        assert "# TYPE repro_executor_shards counter" in output

    def test_design_required_without_diff(self, capsys):
        assert main(["stats"]) == 2
        assert "design is required" in capsys.readouterr().err

    def test_unknown_design_is_a_usage_error(self, capsys):
        assert main(["stats", "frobnicator", "--no-cache"]) == 2
        assert "error" in capsys.readouterr().err


class TestStatsDiff:
    def test_identical_snapshots_pass(self, capsys, tmp_path):
        a = _stats(tmp_path, "a", repro__cache__hits=3.0)
        assert main(["stats", "--diff", a, a]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_gated_counter_increase_fails(self, capsys, tmp_path):
        current = _stats(tmp_path, "current", repro__executor__timeouts=1.0)
        baseline = _stats(tmp_path, "baseline")
        assert main(["stats", "--diff", current, baseline]) == 1
        assert "REGRESS" in capsys.readouterr().out

    def test_warn_gate_needs_strict(self, capsys, tmp_path):
        current = _stats(tmp_path, "current", repro__single__fallbacks=1.0)
        baseline = _stats(tmp_path, "baseline", repro__single__fallbacks=0.0)
        assert main(["stats", "--diff", current, baseline]) == 0
        capsys.readouterr()
        assert main(["stats", "--diff", current, baseline, "--strict"]) == 1

    def test_missing_document_is_a_usage_error(self, capsys, tmp_path):
        a = _stats(tmp_path, "a")
        assert main(["stats", "--diff", str(tmp_path / "nope.json"), a]) == 2
        assert "error" in capsys.readouterr().err


class TestProfile:
    @pytest.fixture
    def spec_path(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "design": "modulator2",
                    "levels_db": [-20.0, -6.0],
                    "full_scale": 0.5,
                    "signal_frequency": 2000.0,
                    "sample_rate": 1.0e6,
                    "n_samples": 8192,
                    "bandwidth": 10000.0,
                    "settle_samples": 64,
                }
            )
        )
        return str(path)

    def test_sweep_spec_profile(self, capsys, spec_path, tmp_path):
        json_path = tmp_path / "profile.json"
        args = [
            "profile",
            spec_path,
            "--no-cache",
            "--json",
            str(json_path),
        ]
        assert main(args) == 0
        output = capsys.readouterr().out
        assert "span tree" in output
        assert "shard:0" in output
        assert "self [ms]" in output or "self" in output
        document = json.loads(json_path.read_text())
        assert document["schema"] == "repro.observability/profile/v1"
        assert document["target"] == spec_path
        names = [row["name"] for row in document["rows"]]
        assert "sweep" in names and "shard:0" in names
        assert "sweep;shard:0" in document["collapsed_stacks"]
        assert document["spans"][0]["name"] == "sweep"

    def test_missing_spec_is_a_usage_error(self, capsys, tmp_path):
        assert main(["profile", str(tmp_path / "absent.json")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_unknown_design_is_a_usage_error(self, capsys):
        assert main(["profile", "frobnicator", "--fast"]) == 2
        assert "error" in capsys.readouterr().err
