"""Span serialization: round trips, malformed records, grafting."""

import pytest

from repro.errors import ObservabilityError
from repro.observability.spanio import (
    WorkerTelemetry,
    graft_spans,
    span_from_dict,
    span_to_dict,
)
from repro.telemetry.spans import Span


def _tree() -> Span:
    root = Span("shard:0", samples=1024, pid=1234, engine="batch")
    root.start()
    root.record("phase", samples=512, phase="PHI1")
    root.finish()
    return root


class TestRoundTrip:
    def test_dict_roundtrip_preserves_structure(self):
        root = _tree()
        rebuilt = span_from_dict(span_to_dict(root))
        assert rebuilt.name == "shard:0"
        assert rebuilt.samples == 1024
        assert rebuilt.duration_s == root.duration_s
        assert rebuilt.attrs == {"pid": 1234, "engine": "batch"}
        assert [c.name for c in rebuilt.children] == ["phase"]
        assert rebuilt.children[0].attrs == {"phase": "PHI1"}

    def test_rebuilt_span_is_finished_structural(self):
        rebuilt = span_from_dict(span_to_dict(_tree()))
        assert not rebuilt.running
        # The duration is fixed to the worker's measurement; the span
        # can never be re-timed in the parent.
        from repro.errors import TelemetryError

        with pytest.raises(TelemetryError):
            rebuilt.finish()

    def test_untimed_span_roundtrips_none_duration(self):
        rebuilt = span_from_dict(span_to_dict(Span("structural")))
        assert rebuilt.duration_s is None
        assert rebuilt.samples is None

    def test_non_jsonable_attrs_become_strings(self):
        span = Span("x", where=object())
        encoded = span_to_dict(span)
        assert isinstance(encoded["attrs"]["where"], str)


class TestMalformed:
    def test_missing_name_rejected(self):
        with pytest.raises(ObservabilityError):
            span_from_dict({"samples": 1})

    def test_non_string_name_rejected(self):
        with pytest.raises(ObservabilityError):
            span_from_dict({"name": 7})

    def test_non_integer_samples_rejected(self):
        with pytest.raises(ObservabilityError):
            span_from_dict({"name": "x", "samples": "many"})

    def test_non_numeric_duration_rejected(self):
        with pytest.raises(ObservabilityError):
            span_from_dict({"name": "x", "duration_s": "fast"})

    def test_non_object_child_rejected(self):
        with pytest.raises(ObservabilityError):
            span_from_dict({"name": "x", "children": ["oops"]})


class TestGraft:
    def test_graft_attaches_under_parent_and_returns_roots(self):
        parent = Span("sweep")
        records = [span_to_dict(_tree()), span_to_dict(Span("shard:1"))]
        grafted = graft_spans(parent, records)
        assert [s.name for s in grafted] == ["shard:0", "shard:1"]
        assert parent.children == grafted

    def test_worker_telemetry_shape(self):
        telemetry = WorkerTelemetry(
            spans=(span_to_dict(_tree()),),
            instruments={"schema": "x", "instruments": {}},
        )
        assert telemetry.spans[0]["name"] == "shard:0"

    def test_worker_telemetry_events_default_empty(self):
        # Payloads pickled by older workers carry no events field; the
        # default keeps them loadable.
        telemetry = WorkerTelemetry(spans=(), instruments={})
        assert telemetry.events == ()


class TestGraftEdgeCases:
    def test_duplicate_shard_names_all_attach(self):
        # A retried chunk can ship two subtrees with the same shard
        # name; both must survive (grafting never dedupes by name).
        parent = Span("sweep")
        records = [span_to_dict(_tree()), span_to_dict(_tree())]
        grafted = graft_spans(parent, records)
        assert [s.name for s in grafted] == ["shard:0", "shard:0"]
        assert len(parent.children) == 2
        assert parent.children[0] is not parent.children[1]

    def test_out_of_order_arrival_preserves_arrival_order(self):
        # Workers finish in any order; the graft keeps arrival order
        # (the caller zips shards/telemetries in chunk order anyway).
        parent = Span("sweep")
        late = span_to_dict(Span("shard:2"))
        early = span_to_dict(Span("shard:0"))
        graft_spans(parent, [late])
        graft_spans(parent, [early])
        assert [c.name for c in parent.children] == ["shard:2", "shard:0"]

    def test_graft_onto_finished_parent(self):
        # Absorbing telemetry after the parent span closed (e.g. a
        # straggler worker) still attaches, and does not re-time or
        # corrupt the finished parent.
        parent = Span("sweep")
        parent.start()
        parent.finish()
        duration = parent.duration_s
        grafted = graft_spans(parent, [span_to_dict(_tree())])
        assert parent.duration_s == duration
        assert not parent.running
        assert parent.children == grafted
        from repro.telemetry.spans import render_span_tree

        tree = render_span_tree([parent])
        assert "shard:0" in tree
