"""Prometheus text exposition: escaping, metadata lines, histograms."""

from repro.observability.instruments import InstrumentRegistry


def _lines(registry):
    text = registry.to_prometheus_text()
    assert text == "" or text.endswith("\n")
    return text.splitlines()


class TestMetadata:
    def test_help_and_type_lines(self):
        registry = InstrumentRegistry()
        registry.counter("repro.cache.hits", help="cache lookups that hit").inc()
        lines = _lines(registry)
        assert "# HELP repro_cache_hits cache lookups that hit" in lines
        assert "# TYPE repro_cache_hits counter" in lines
        assert lines.index(
            "# HELP repro_cache_hits cache lookups that hit"
        ) < lines.index("# TYPE repro_cache_hits counter")

    def test_no_help_line_without_help(self):
        registry = InstrumentRegistry()
        registry.counter("repro.cache.hits").inc()
        lines = _lines(registry)
        assert not any(line.startswith("# HELP") for line in lines)
        assert "# TYPE repro_cache_hits counter" in lines

    def test_dotted_names_become_underscores(self):
        registry = InstrumentRegistry()
        registry.gauge("repro.executor.effective_jobs").set(4)
        assert "repro_executor_effective_jobs 4" in _lines(registry)

    def test_empty_registry_is_empty_text(self):
        assert InstrumentRegistry().to_prometheus_text() == ""


class TestLabelEscaping:
    def test_backslash_quote_and_newline_escaped(self):
        registry = InstrumentRegistry()
        registry.counter("repro.cache.hits").inc(
            1, kind='we"ird\\path\nline'
        )
        [sample] = [
            line for line in _lines(registry) if not line.startswith("#")
        ]
        assert sample == (
            'repro_cache_hits{kind="we\\"ird\\\\path\\nline"} 1'
        )

    def test_plain_labels_untouched(self):
        registry = InstrumentRegistry()
        registry.counter("repro.cache.hits").inc(2, kind="amplitude-sweep")
        assert 'repro_cache_hits{kind="amplitude-sweep"} 2' in _lines(registry)

    def test_labels_sorted_deterministically(self):
        registry = InstrumentRegistry()
        registry.counter("repro.cache.hits").inc(1, zeta="z", alpha="a")
        [sample] = [
            line for line in _lines(registry) if not line.startswith("#")
        ]
        assert sample.index('alpha="a"') < sample.index('zeta="z"')


class TestHistogramExposition:
    def _histogram_lines(self, observations, buckets=(0.1, 1.0, 10.0)):
        registry = InstrumentRegistry()
        histogram = registry.histogram("repro.shard.seconds", buckets=buckets)
        for value in observations:
            histogram.observe(value)
        return [
            line for line in _lines(registry) if not line.startswith("#")
        ]

    def test_buckets_are_cumulative_with_le_labels(self):
        lines = self._histogram_lines([0.05, 0.5, 0.5, 5.0])
        assert 'repro_shard_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_shard_seconds_bucket{le="1"} 3' in lines
        assert 'repro_shard_seconds_bucket{le="10"} 4' in lines

    def test_inf_bucket_counts_everything(self):
        # 100.0 overflows every finite bound; only +Inf catches it.
        lines = self._histogram_lines([0.05, 100.0])
        assert 'repro_shard_seconds_bucket{le="10"} 1' in lines
        assert 'repro_shard_seconds_bucket{le="+Inf"} 2' in lines

    def test_sum_and_count_consistent_with_observations(self):
        observations = [0.05, 0.5, 0.5, 5.0, 100.0]
        lines = self._histogram_lines(observations)
        assert f"repro_shard_seconds_sum {sum(observations):g}" in lines
        assert f"repro_shard_seconds_count {len(observations)}" in lines
        # +Inf bucket and _count must agree -- the exposition contract
        # scrapers rely on.
        [inf_line] = [line for line in lines if '+Inf' in line]
        assert inf_line.endswith(f" {len(observations)}")

    def test_type_line_says_histogram(self):
        registry = InstrumentRegistry()
        registry.histogram("repro.shard.seconds", buckets=(1.0,)).observe(0.5)
        assert "# TYPE repro_shard_seconds histogram" in _lines(registry)

    def test_labeled_series_expose_independently(self):
        registry = InstrumentRegistry()
        histogram = registry.histogram("repro.shard.seconds", buckets=(1.0,))
        histogram.observe(0.5, engine="batch")
        histogram.observe(0.5, engine="scalar")
        lines = _lines(registry)
        assert (
            'repro_shard_seconds_bucket{engine="batch",le="1"} 1' in lines
        )
        assert (
            'repro_shard_seconds_bucket{engine="scalar",le="1"} 1' in lines
        )
        assert 'repro_shard_seconds_count{engine="batch"} 1' in lines
