"""Live event streaming: ordering guarantees, merge, bounded overhead."""

import io
import json

import pytest

from repro.errors import ObservabilityError
from repro.observability.live import (
    EVENT_SCHEMA,
    EventRecorder,
    EventStream,
    open_event_stream,
)


def _events(buffer):
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


class TestEventStream:
    def test_header_and_sequencing(self):
        buffer = io.StringIO()
        stream = EventStream([buffer], source="mod2")
        stream.emit("span_start", "measure", pid=1)
        stream.emit("span_finish", "measure", pid=1, duration_s=0.5)
        stream.finish()
        records = _events(buffer)
        assert records[0]["event"] == "stream_start"
        assert records[0]["schema"] == EVENT_SCHEMA
        assert records[-1]["event"] == "stream_finish"
        assert [r["seq"] for r in records] == list(range(len(records)))

    def test_timestamps_never_decrease(self):
        import time

        now = time.time()
        buffer = io.StringIO()
        stream = EventStream([buffer], source="x")
        stream.emit("a", "n", t=now + 100.0)
        stream.emit("b", "n", t=now + 50.0)  # worker clock skew: clamped up
        stream.emit("c", "n", t=now + 150.0)
        records = _events(buffer)
        times = [r["t"] for r in records]
        assert times == sorted(times)
        assert records[2]["t"] == now + 100.0  # clamped to its predecessor
        assert records[3]["t"] == now + 150.0

    def test_each_event_is_one_flushed_json_line(self):
        buffer = io.StringIO()
        stream = EventStream([buffer], source="x")
        stream.emit("a", "n", note="line\nbreak")
        for line in buffer.getvalue().splitlines():
            assert json.loads(line)

    def test_non_jsonable_fields_coerced(self):
        buffer = io.StringIO()
        stream = EventStream([buffer], source="x")
        record = stream.emit("a", "n", what=object())
        assert isinstance(record["what"], str)

    def test_writes_to_every_handle(self):
        one, two = io.StringIO(), io.StringIO()
        stream = EventStream([one, two], source="x")
        stream.emit("a", "n")
        assert one.getvalue() == two.getvalue()

    def test_needs_a_handle(self):
        with pytest.raises(ObservabilityError):
            EventStream([])

    def test_empty_event_type_rejected(self):
        stream = EventStream([io.StringIO()], source="x")
        with pytest.raises(ObservabilityError):
            stream.emit("", "n")


class TestMerge:
    def test_worker_events_sorted_by_wall_clock(self):
        buffer = io.StringIO()
        stream = EventStream([buffer], source="sweep")
        # Two workers' buffers, interleaved in time, arriving in
        # arbitrary (chunk) order -- the merge must produce one
        # wall-clock-ordered timeline.
        worker_b = EventRecorder()
        worker_b.emit("span_start", "shard:1", t=10.5, pid=2)
        worker_b.emit("span_finish", "shard:1", t=12.0, pid=2)
        worker_a = EventRecorder()
        worker_a.emit("span_start", "shard:0", t=10.0, pid=1)
        worker_a.emit("span_finish", "shard:0", t=11.0, pid=1)
        stream.emit_merged([*worker_b.events, *worker_a.events])
        names = [
            (r["event"], r["name"]) for r in _events(buffer) if "pid" in r
        ]
        assert names == [
            ("span_start", "shard:0"),
            ("span_start", "shard:1"),
            ("span_finish", "shard:0"),
            ("span_finish", "shard:1"),
        ]

    def test_merged_events_get_fresh_seq(self):
        buffer = io.StringIO()
        stream = EventStream([buffer], source="x")
        recorder = EventRecorder()
        recorder.emit("a", "n", t=1.0)
        recorder.emit("b", "n", t=2.0)
        stream.emit_merged(recorder.events)
        assert [r["seq"] for r in _events(buffer)] == [0, 1, 2]

    def test_recorder_buffers_without_seq(self):
        recorder = EventRecorder()
        record = recorder.emit("span_start", "shard:0", pid=7)
        assert "seq" not in record
        assert recorder.events == [record]

    def test_recorder_emit_merged_absorbs(self):
        outer, inner = EventRecorder(), EventRecorder()
        inner.emit("a", "n", t=1.0)
        outer.emit_merged(inner.events)
        assert len(outer.events) == 1


class TestOpenEventStream:
    def test_none_when_nothing_requested(self):
        assert open_event_stream(None, follow=False) is None

    def test_path_writes_file_and_closes(self, tmp_path):
        target = tmp_path / "events.jsonl"
        with open_event_stream(target, source="mod2") as stream:
            stream.emit("span_start", "measure")
        records = [json.loads(l) for l in target.read_text().splitlines()]
        assert records[0]["event"] == "stream_start"
        assert records[-1]["event"] == "stream_finish"

    def test_dash_means_stdout(self, capsys):
        stream = open_event_stream("-", source="mod2")
        stream.emit("a", "n")
        stream.close()
        out = capsys.readouterr().out
        assert '"stream_start"' in out

    def test_follow_means_stderr(self, capsys):
        stream = open_event_stream(None, follow=True, source="mod2")
        stream.emit("a", "n")
        stream.close()
        err = capsys.readouterr().err
        assert '"stream_start"' in err


class TestSessionIntegration:
    def test_session_spans_emit_live_events(self):
        from repro.telemetry.session import TelemetrySession

        buffer = io.StringIO()
        stream = EventStream([buffer], source="mod2")
        session = TelemetrySession("mod2", stream=stream)
        with session.span("measure", samples=64):
            with session.span("device"):
                pass
        kinds = [(r["event"], r["name"]) for r in _events(buffer)[1:]]
        assert kinds == [
            ("span_start", "measure"),
            ("span_start", "device"),
            ("span_finish", "device"),
            ("span_finish", "measure"),
        ]

    def test_session_without_stream_emits_nothing(self):
        from repro.telemetry.session import TelemetrySession

        session = TelemetrySession("mod2")
        with session.span("measure"):
            pass
        assert session.stream is None


class TestSweepIntegration:
    @pytest.fixture()
    def spec(self):
        from repro.runtime.sweeps import sweep_spec_for_design

        return sweep_spec_for_design(
            "mod2", n_samples=4096, levels_db=(-40.0, -20.0, -10.0)
        )

    def test_sharded_sweep_merges_one_ordered_timeline(self, spec):
        from repro.runtime import SweepExecutor
        from repro.runtime.sweeps import run_sweep
        from repro.telemetry.session import TelemetrySession

        buffer = io.StringIO()
        stream = EventStream([buffer], source=spec.design)
        session = TelemetrySession(spec.design, stream=stream)
        run_sweep(
            spec,
            executor=SweepExecutor(jobs=2, chunk_size=1),
            cache=None,
            telemetry=session,
        )
        stream.finish()
        records = _events(buffer)
        assert [r["seq"] for r in records] == list(range(len(records)))
        times = [r["t"] for r in records]
        assert times == sorted(times)
        starts = [r["name"] for r in records if r["event"] == "span_start"]
        assert starts.count("shard:0") == 1
        assert starts.count("shard:1") == 1
        assert starts.count("shard:2") == 1
        deltas = [r for r in records if r["event"] == "instruments"]
        assert len(deltas) == 3
        assert all("repro_executor_shards" in r for r in deltas)

    def test_event_count_bounded_by_shards_not_samples(self, spec):
        # The <5% overhead promise rests on this: events fire per span
        # and per shard, never per simulated sample.
        from repro.runtime import SweepExecutor
        from repro.runtime.sweeps import run_sweep
        from repro.telemetry.session import TelemetrySession

        buffer = io.StringIO()
        stream = EventStream([buffer], source=spec.design)
        session = TelemetrySession(spec.design, stream=stream)
        run_sweep(
            spec, executor=SweepExecutor(jobs=1), cache=None, telemetry=session
        )
        n_events = len(_events(buffer))
        n_samples = len(spec.levels_db) * spec.n_samples
        assert n_events <= 16
        assert n_events < n_samples / 100
