"""Stats documents and the snapshot diff gate."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.metrics.compare import DiffStatus
from repro.observability.instruments import InstrumentRegistry
from repro.observability.stats import (
    GATED_COUNTERS,
    STATS_SCHEMA,
    diff_snapshots,
    load_stats_json,
    write_stats_json,
)


def _snapshot(**counters):
    registry = InstrumentRegistry()
    for name, entries in counters.items():
        for labels, value in entries:
            registry.counter(name.replace("__", ".")).inc(value, **labels)
    return registry.snapshot()


def _single(name, value, **labels):
    registry = InstrumentRegistry()
    registry.counter(name).inc(value, **labels)
    return registry.snapshot()


class TestVerdicts:
    def test_unchanged_is_pass(self):
        snapshot = _single("repro.cache.hits", 3.0, kind="sweep")
        report = diff_snapshots(snapshot, snapshot)
        (diff,) = report.diffs
        assert diff.status is DiffStatus.PASS
        assert report.exit_code() == 0

    def test_ungated_change_is_info(self):
        report = diff_snapshots(
            _single("repro.cache.hits", 5.0), _single("repro.cache.hits", 3.0)
        )
        (diff,) = report.diffs
        assert diff.status is DiffStatus.INFO
        assert report.exit_code(strict=True) == 0

    def test_gated_regress_counters_fail(self):
        for name in ("repro.executor.timeouts", "repro.cache.corruption"):
            report = diff_snapshots(_single(name, 2.0), _single(name, 1.0))
            (diff,) = report.diffs
            assert diff.status is DiffStatus.REGRESS
            assert report.exit_code() == 1
            assert "REGRESS" in report.summary()

    def test_gated_warn_counters_warn(self):
        for name in (
            "repro.executor.retries",
            "repro.single.fallbacks",
            "repro.batch.refusals",
        ):
            assert GATED_COUNTERS[name] is DiffStatus.WARN
            report = diff_snapshots(_single(name, 1.0), _single(name, 0.0))
            (diff,) = report.diffs
            assert diff.status is DiffStatus.WARN
            assert report.exit_code() == 0
            assert report.exit_code(strict=True) == 1

    def test_gated_counter_decreasing_is_info(self):
        report = diff_snapshots(
            _single("repro.executor.timeouts", 1.0),
            _single("repro.executor.timeouts", 2.0),
        )
        (diff,) = report.diffs
        assert diff.status is DiffStatus.INFO

    def test_new_series_warns_unless_gated(self):
        empty = InstrumentRegistry().snapshot()
        report = diff_snapshots(_single("repro.cache.hits", 1.0), empty)
        (diff,) = report.diffs
        assert diff.status is DiffStatus.WARN
        assert "NEW" in diff.note

    def test_new_gated_series_uses_gate_status(self):
        empty = InstrumentRegistry().snapshot()
        report = diff_snapshots(_single("repro.executor.timeouts", 1.0), empty)
        (diff,) = report.diffs
        assert diff.status is DiffStatus.REGRESS

    def test_missing_series_warns(self):
        empty = InstrumentRegistry().snapshot()
        report = diff_snapshots(empty, _single("repro.cache.hits", 1.0))
        (diff,) = report.diffs
        assert diff.status is DiffStatus.WARN
        assert "MISSING" in diff.note

    def test_histograms_compare_by_count(self):
        a = InstrumentRegistry()
        a.histogram("repro.test.latency", buckets=(1.0,)).observe(0.5)
        b = InstrumentRegistry()
        b.histogram("repro.test.latency", buckets=(1.0,)).observe(0.5)
        b.histogram("repro.test.latency", buckets=(1.0,)).observe(0.5)
        report = diff_snapshots(a.snapshot(), b.snapshot())
        (diff,) = report.diffs
        assert diff.current == 1.0 and diff.baseline == 2.0

    def test_render_table_includes_verdicts(self):
        report = diff_snapshots(
            _single("repro.executor.timeouts", 1.0),
            _single("repro.executor.timeouts", 0.0),
        )
        text = report.render_table()
        assert "repro.executor.timeouts" in text
        assert "REGRESS" in text

    def test_empty_comparison_renders_placeholder(self):
        empty = InstrumentRegistry().snapshot()
        assert "no instruments" in diff_snapshots(empty, empty).render_table()


class TestDocuments:
    def test_write_load_roundtrip(self, tmp_path):
        registry = InstrumentRegistry()
        registry.counter("repro.cache.hits").inc(kind="sweep")
        path = write_stats_json(
            tmp_path / "stats.json",
            registry.snapshot(),
            design="modulator2",
            config={"jobs": 2},
        )
        document = json.loads(path.read_text())
        assert document["schema"] == STATS_SCHEMA
        assert document["design"] == "modulator2"
        assert document["config"] == {"jobs": 2}
        assert "git_sha" in document["provenance"]
        assert load_stats_json(path) == registry.snapshot()

    def test_load_accepts_bare_snapshot(self, tmp_path):
        snapshot = _single("repro.cache.hits", 1.0)
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(snapshot))
        assert load_stats_json(path) == snapshot

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ObservabilityError):
            load_stats_json(tmp_path / "absent.json")

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps({"schema": "other/thing"}))
        with pytest.raises(ObservabilityError):
            load_stats_json(path)

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ObservabilityError):
            load_stats_json(path)

    def test_lazy_package_reexport(self):
        import repro.observability as observability

        assert observability.diff_snapshots is diff_snapshots
        with pytest.raises(AttributeError):
            observability.no_such_name
