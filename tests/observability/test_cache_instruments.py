"""ResultCache instrumentation: hit/miss/corruption counters, LRU budget."""

import os

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.observability.instruments import InstrumentRegistry, use_registry
from repro.runtime.cache import ResultCache


def _key(tag="a"):
    return {"kind": "test-sweep", "tag": tag}


def _arrays(n=64):
    return {"values": np.arange(n, dtype=float)}


@pytest.fixture
def registry():
    fresh = InstrumentRegistry()
    with use_registry(fresh):
        yield fresh


class TestLookupCounters:
    def test_miss_then_hit(self, tmp_path, registry):
        cache = ResultCache(tmp_path)
        assert cache.load(_key()) is None
        cache.store(_key(), _arrays())
        assert cache.load(_key()) is not None
        assert registry.counter("repro.cache.misses").value(kind="test-sweep") == 1.0
        assert registry.counter("repro.cache.hits").value(kind="test-sweep") == 1.0
        assert registry.counter("repro.cache.corruption").total() == 0.0
        histogram = registry.get("repro.cache.lookup_seconds")
        assert histogram.count(kind="test-sweep") == 2

    def test_corrupt_meta_counts_as_corruption(self, tmp_path, registry):
        cache = ResultCache(tmp_path)
        cache.store(_key(), _arrays())
        digest = cache.key_digest(_key())
        (tmp_path / f"{digest}.json").write_text("{not json")
        assert cache.load(_key()) is None
        assert registry.counter("repro.cache.misses").value(kind="test-sweep") == 1.0
        assert (
            registry.counter("repro.cache.corruption").value(kind="test-sweep")
            == 1.0
        )

    def test_corrupt_payload_counts_as_corruption(self, tmp_path, registry):
        cache = ResultCache(tmp_path)
        cache.store(_key(), _arrays())
        digest = cache.key_digest(_key())
        (tmp_path / f"{digest}.npz").write_bytes(b"\x00" * 16)
        assert cache.load(_key()) is None
        assert (
            registry.counter("repro.cache.corruption").value(kind="test-sweep")
            == 1.0
        )

    def test_cold_miss_is_not_corruption(self, tmp_path, registry):
        ResultCache(tmp_path).load(_key())
        assert registry.counter("repro.cache.corruption").total() == 0.0

    def test_instance_attributes_still_track(self, tmp_path, registry):
        cache = ResultCache(tmp_path)
        cache.load(_key())
        cache.store(_key(), _arrays())
        cache.load(_key())
        assert (cache.hits, cache.misses) == (1, 1)


class TestStoreAccounting:
    def test_bytes_stored_matches_disk(self, tmp_path, registry):
        cache = ResultCache(tmp_path)
        cache.store(_key(), _arrays())
        stored = registry.counter("repro.cache.bytes_stored").value(
            kind="test-sweep"
        )
        assert stored == cache.size_bytes() > 0


class TestEviction:
    def test_rejects_bad_max_bytes(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultCache(tmp_path, max_bytes=0)

    def test_oldest_entry_evicted_first(self, tmp_path, registry):
        unbounded = ResultCache(tmp_path)
        unbounded.store(_key("old"), _arrays())
        unbounded.store(_key("mid"), _arrays())
        # Pin distinct payload mtimes so LRU order is deterministic.
        for tag, age in (("old", 200), ("mid", 100)):
            path = tmp_path / f"{unbounded.key_digest(_key(tag))}.npz"
            stamp = path.stat().st_mtime - age
            os.utime(path, (stamp, stamp))
        budget = unbounded.size_bytes() + 1  # room for ~two entries, not three
        cache = ResultCache(tmp_path, max_bytes=budget)
        cache.store(_key("new"), _arrays())
        assert cache.evictions == 1
        assert registry.counter("repro.cache.evictions").total() == 1.0
        assert cache.load(_key("old")) is None
        assert cache.load(_key("mid")) is not None
        assert cache.load(_key("new")) is not None

    def test_no_eviction_under_budget(self, tmp_path, registry):
        cache = ResultCache(tmp_path, max_bytes=1 << 20)
        cache.store(_key("a"), _arrays())
        cache.store(_key("b"), _arrays())
        assert cache.evictions == 0
        assert registry.counter("repro.cache.evictions").total() == 0.0
