"""Instrument registry: kinds, labels, snapshot/merge/delta, exposition."""

import pytest

from repro.errors import ObservabilityError
from repro.observability.instruments import (
    InstrumentRegistry,
    get_registry,
    reset_registry,
    set_registry,
    snapshot_delta,
    use_registry,
)


class TestCounters:
    def test_inc_and_total(self):
        registry = InstrumentRegistry()
        counter = registry.counter("repro.test.hits")
        counter.inc()
        counter.inc(2.0)
        assert counter.total() == 3.0

    def test_labeled_series_accumulate_independently(self):
        counter = InstrumentRegistry().counter("repro.test.hits")
        counter.inc(kind="a")
        counter.inc(kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 2.0
        assert counter.value(kind="b") == 1.0
        assert counter.value(kind="never") == 0.0
        assert counter.total() == 3.0

    def test_negative_increment_rejected(self):
        counter = InstrumentRegistry().counter("repro.test.hits")
        with pytest.raises(ObservabilityError):
            counter.inc(-1.0)

    def test_get_or_create_returns_same_object(self):
        registry = InstrumentRegistry()
        assert registry.counter("repro.test.hits") is registry.counter(
            "repro.test.hits"
        )

    def test_kind_conflict_rejected(self):
        registry = InstrumentRegistry()
        registry.counter("repro.test.x")
        with pytest.raises(ObservabilityError):
            registry.gauge("repro.test.x")
        with pytest.raises(ObservabilityError):
            registry.histogram("repro.test.x")

    def test_invalid_names_rejected(self):
        registry = InstrumentRegistry()
        for bad in ("", "Repro.cache", "repro..hits", "repro.hits!", "9x"):
            with pytest.raises(ObservabilityError):
                registry.counter(bad)

    def test_registry_total_needs_a_counter(self):
        registry = InstrumentRegistry()
        registry.gauge("repro.test.g").set(1.0)
        assert registry.total("repro.test.absent") == 0.0
        with pytest.raises(ObservabilityError):
            registry.total("repro.test.g")


class TestGauges:
    def test_last_value_wins(self):
        gauge = InstrumentRegistry().gauge("repro.test.size")
        gauge.set(5.0)
        gauge.set(3.0)
        assert gauge.value() == 3.0

    def test_unset_series_is_none(self):
        assert InstrumentRegistry().gauge("repro.test.size").value(k="v") is None


class TestHistograms:
    def test_buckets_and_overflow(self):
        histogram = InstrumentRegistry().histogram(
            "repro.test.latency", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(10.0)
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(10.55)
        ((_, series),) = histogram.series()
        assert series.bucket_counts == [1, 1, 1]

    def test_bucket_conflict_rejected(self):
        registry = InstrumentRegistry()
        registry.histogram("repro.test.latency", buckets=(0.1, 1.0))
        with pytest.raises(ObservabilityError):
            registry.histogram("repro.test.latency", buckets=(0.2, 1.0))

    def test_non_increasing_buckets_rejected(self):
        with pytest.raises(ObservabilityError):
            InstrumentRegistry().histogram("repro.test.bad", buckets=(1.0, 1.0))
        with pytest.raises(ObservabilityError):
            InstrumentRegistry().histogram("repro.test.bad", buckets=())


class TestSnapshotMerge:
    def _populated(self):
        registry = InstrumentRegistry()
        registry.counter("repro.test.hits").inc(2.0, kind="sweep")
        registry.gauge("repro.test.size").set(7.0)
        registry.histogram("repro.test.latency", buckets=(0.1, 1.0)).observe(0.5)
        return registry

    def test_merge_adds_counters_and_histograms(self):
        a = self._populated()
        b = InstrumentRegistry()
        b.merge(a.snapshot())
        b.merge(a.snapshot())
        assert b.counter("repro.test.hits").value(kind="sweep") == 4.0
        assert b.histogram("repro.test.latency", buckets=(0.1, 1.0)).count() == 2
        # Gauges take the incoming value instead of summing.
        assert b.gauge("repro.test.size").value() == 7.0

    def test_merge_roundtrip_preserves_snapshot(self):
        a = self._populated()
        b = InstrumentRegistry()
        b.merge(a.snapshot())
        assert b.snapshot() == a.snapshot()

    def test_merge_rejects_malformed_documents(self):
        registry = InstrumentRegistry()
        with pytest.raises(ObservabilityError):
            registry.merge({"schema": "nope", "instruments": {}})
        with pytest.raises(ObservabilityError):
            registry.merge(
                {
                    "schema": "repro.observability/instrument-snapshot/v1",
                    "instruments": {"repro.test.x": {"kind": "sundial"}},
                }
            )

    def test_merge_rejects_bucket_count_mismatch(self):
        source = InstrumentRegistry()
        source.histogram("repro.test.latency", buckets=(0.1, 1.0)).observe(0.5)
        snapshot = source.snapshot()
        entry = snapshot["instruments"]["repro.test.latency"]
        entry["series"][0]["bucket_counts"] = [1]
        with pytest.raises(ObservabilityError):
            InstrumentRegistry().merge(snapshot)


class TestSnapshotDelta:
    def test_counter_delta_drops_unchanged_series(self):
        registry = InstrumentRegistry()
        registry.counter("repro.test.hits").inc(kind="a")
        registry.counter("repro.test.misses").inc(kind="b")
        before = registry.snapshot()
        registry.counter("repro.test.hits").inc(2.0, kind="a")
        delta = snapshot_delta(before, registry.snapshot())
        instruments = delta["instruments"]
        assert list(instruments) == ["repro.test.hits"]
        assert instruments["repro.test.hits"]["series"] == [
            {"labels": {"kind": "a"}, "value": 2.0}
        ]

    def test_histogram_delta_subtracts_counts(self):
        registry = InstrumentRegistry()
        histogram = registry.histogram("repro.test.latency", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        before = registry.snapshot()
        histogram.observe(0.5)
        delta = snapshot_delta(before, registry.snapshot())
        series = delta["instruments"]["repro.test.latency"]["series"][0]
        assert series["count"] == 1
        assert series["bucket_counts"] == [0, 1, 0]

    def test_registry_swap_clamps_at_after_values(self):
        before = InstrumentRegistry()
        before.counter("repro.test.hits").inc(10.0)
        after = InstrumentRegistry()
        after.counter("repro.test.hits").inc(3.0)
        delta = snapshot_delta(before.snapshot(), after.snapshot())
        # Counter went "down" (fresh registry): clamped, zero, dropped.
        assert delta["instruments"] == {}

    def test_empty_delta_for_identical_snapshots(self):
        registry = InstrumentRegistry()
        registry.counter("repro.test.hits").inc()
        snapshot = registry.snapshot()
        assert snapshot_delta(snapshot, snapshot)["instruments"] == {}


class TestExposition:
    def test_render_table_lists_every_series(self):
        registry = InstrumentRegistry()
        registry.counter("repro.test.hits").inc(kind="sweep")
        registry.histogram("repro.test.latency", buckets=(0.1, 1.0)).observe(0.5)
        text = registry.render_table()
        assert "repro.test.hits" in text
        assert "kind=sweep" in text
        assert "n=1" in text

    def test_render_table_empty(self):
        assert "no instruments recorded" in InstrumentRegistry().render_table()

    def test_prometheus_text(self):
        registry = InstrumentRegistry()
        registry.counter("repro.cache.hits", help="cache hits").inc(kind="a")
        registry.histogram("repro.test.latency", buckets=(0.1, 1.0)).observe(0.5)
        text = registry.to_prometheus_text()
        assert "# HELP repro_cache_hits cache hits" in text
        assert "# TYPE repro_cache_hits counter" in text
        assert 'repro_cache_hits{kind="a"} 1' in text
        assert 'repro_test_latency_bucket{le="0.1"} 0' in text
        assert 'repro_test_latency_bucket{le="+Inf"} 1' in text
        assert "repro_test_latency_count 1" in text

    def test_prometheus_escapes_label_values(self):
        registry = InstrumentRegistry()
        registry.counter("repro.test.hits").inc(kind='a"b\nc')
        assert '{kind="a\\"b\\nc"}' in registry.to_prometheus_text()


class TestProcessWideDefault:
    def test_use_registry_swaps_and_restores(self):
        original = get_registry()
        mine = InstrumentRegistry()
        with use_registry(mine):
            assert get_registry() is mine
        assert get_registry() is original

    def test_set_registry_returns_previous(self):
        original = get_registry()
        mine = InstrumentRegistry()
        try:
            assert set_registry(mine) is original
            assert get_registry() is mine
        finally:
            set_registry(original)

    def test_reset_registry_installs_fresh(self):
        original = get_registry()
        try:
            fresh = reset_registry()
            assert get_registry() is fresh
            assert fresh is not original
        finally:
            set_registry(original)
