"""Profile aggregation: self-time math, clamping, collapsed stacks."""

import pytest

from repro.observability.profile import (
    aggregate_profile,
    collapsed_stacks,
    render_profile_table,
)
from repro.telemetry.spans import Span


def _span(name, duration, *children, samples=None):
    span = Span(name, samples=samples)
    span.duration_s = duration
    span.children.extend(children)
    return span


class TestAggregate:
    def test_self_time_excludes_timed_children(self):
        tree = _span("root", 1.0, _span("child", 0.3), _span("child", 0.2))
        rows = {row.name: row for row in aggregate_profile([tree])}
        assert rows["root"].self_s == pytest.approx(0.5)
        assert rows["root"].total_s == pytest.approx(1.0)
        assert rows["child"].count == 2
        assert rows["child"].total_s == pytest.approx(0.5)
        assert rows["child"].self_s == pytest.approx(0.5)

    def test_untimed_children_do_not_reduce_self_time(self):
        tree = _span("root", 1.0, Span("structural"))
        rows = {row.name: row for row in aggregate_profile([tree])}
        assert rows["root"].self_s == pytest.approx(1.0)
        assert rows["structural"].self_s == 0.0
        assert rows["structural"].total_s == 0.0

    def test_clock_skew_clamped_at_zero(self):
        tree = _span("root", 0.1, _span("child", 0.3))
        rows = {row.name: row for row in aggregate_profile([tree])}
        assert rows["root"].self_s == 0.0

    def test_samples_sum_per_name(self):
        forest = [
            _span("shard", 0.2, samples=100),
            _span("shard", 0.3, samples=50),
            _span("quiet", 0.1),
        ]
        rows = {row.name: row for row in aggregate_profile(forest)}
        assert rows["shard"].samples == 150
        assert rows["quiet"].samples is None

    def test_rows_sorted_by_self_time_descending_then_name(self):
        forest = [_span("b", 0.2), _span("a", 0.2), _span("big", 0.9)]
        assert [row.name for row in aggregate_profile(forest)] == [
            "big",
            "a",
            "b",
        ]

    def test_as_dict_is_json_ready(self):
        (row,) = aggregate_profile([_span("x", 0.5, samples=10)])
        assert row.as_dict() == {
            "name": "x",
            "count": 1,
            "total_s": 0.5,
            "self_s": 0.5,
            "samples": 10,
        }


class TestRenderTable:
    def test_shares_sum_to_hundred(self):
        text = render_profile_table(
            aggregate_profile([_span("root", 1.0, _span("child", 0.5))])
        )
        assert "50.0%" in text
        assert "root" in text and "child" in text

    def test_empty_forest(self):
        assert "no spans recorded" in render_profile_table(aggregate_profile([]))


class TestCollapsedStacks:
    def test_format_and_sorting(self):
        tree = _span(
            "sweep", 0.002, _span("shard:1", 0.0005), _span("shard:0", 0.0005)
        )
        text = collapsed_stacks([tree])
        assert text == (
            "sweep 1000\n"
            "sweep;shard:0 500\n"
            "sweep;shard:1 500\n"
        )

    def test_untimed_frames_nest_but_carry_no_value(self):
        root = Span("structural")
        root.children.append(_span("leaf", 0.001))
        assert collapsed_stacks([root]) == "structural;leaf 1000\n"

    def test_zero_self_time_stacks_dropped(self):
        tree = _span("root", 0.001, _span("child", 0.001))
        assert collapsed_stacks([tree]) == "root;child 1000\n"

    def test_empty_forest_is_empty_string(self):
        assert collapsed_stacks([]) == ""
