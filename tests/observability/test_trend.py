"""Cross-run trend analytics: series extraction, drift gating, rendering."""

import json

from repro.metrics.compare import DiffStatus
from repro.metrics.records import Direction
from repro.observability.ledger import RunLedger
from repro.observability.trend import (
    MetricSeries,
    TREND_SCHEMA,
    analyze_ledger,
    analyze_series,
    collect_series,
    render_history,
    sparkline,
)

PROV = {
    "git_sha": "cafe0001",
    "git_dirty": False,
    "timestamp": "2026-08-08T00:00:00+00:00",
    "hostname": "rig",
}


def _sweep_ledger(tmp_path, values):
    ledger = RunLedger(tmp_path)
    for index, value in enumerate(values):
        ledger.append(
            "sweep",
            {"dynamic_range_db": value, "run": index},
            design="mod2",
            provenance=dict(PROV, timestamp=f"2026-08-{index + 1:02d}T00:00:00+00:00"),
        )
    return ledger


def _series(values, direction=Direction.HIGHER):
    n = len(values)
    return MetricSeries(
        key="mod2:metric",
        design="mod2",
        unit="dB",
        direction=direction,
        values=tuple(values),
        timestamps=tuple(f"t{i}" for i in range(n)),
        shas=tuple("sha" for _ in range(n)),
    )


class TestCollectSeries:
    def test_report_entries_become_gated_metric_series(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for value in (57.0, 57.2):
            ledger.append(
                "report",
                {
                    "metrics": [
                        {
                            "name": "snr_db",
                            "value": value,
                            "unit": "dB",
                            "direction": "higher",
                            "gate": True,
                        },
                        {
                            "name": "ungated",
                            "value": 1.0,
                            "gate": False,
                        },
                    ]
                },
                design="mod2",
                provenance=PROV,
            )
        series = collect_series(ledger)
        assert [s.key for s in series] == ["mod2:snr_db"]
        assert series[0].values == (57.0, 57.2)
        assert series[0].direction is Direction.HIGHER

    def test_bench_entries_become_wall_time_series(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for wall in (1.0, 1.1):
            ledger.append(
                "bench",
                {"benchmark": "test_fig7", "wall_s": wall},
                provenance=PROV,
            )
        series = collect_series(ledger)
        assert [s.key for s in series] == ["bench:test_fig7.wall_s"]
        assert series[0].direction is Direction.LOWER
        # Bench series belong to no design: a design filter drops them.
        assert collect_series(ledger, design="mod2") == []

    def test_sweep_entries_use_dynamic_range(self, tmp_path):
        ledger = _sweep_ledger(tmp_path, [60.0, 60.5])
        series = collect_series(ledger, design="mod2")
        assert [s.key for s in series] == ["mod2:sweep.dynamic_range_db"]
        assert series[0].unit == "dB"


class TestAnalyzeSeries:
    def test_short_history_is_info(self):
        finding = analyze_series(_series([1.0, 2.0, 3.0, 4.0]))
        assert finding.status is DiffStatus.INFO

    def test_stable_series_passes(self):
        finding = analyze_series(_series([57.0, 57.1, 56.9, 57.0, 57.05, 57.0]))
        assert finding.status is DiffStatus.PASS

    def test_sustained_drop_regresses_higher_is_better(self):
        # 8 stable runs, then a sustained 5 dB collapse over the last 3:
        # far beyond 4x the 1%-of-median scale floor.
        values = [57.0 + 0.02 * i for i in range(8)] + [52.0, 51.5, 51.0]
        finding = analyze_series(_series(values))
        assert finding.status is DiffStatus.REGRESS
        assert finding.drift is not None and finding.drift < 0

    def test_single_bad_run_only_warns(self):
        values = [57.0 + 0.02 * i for i in range(8)] + [52.0]
        finding = analyze_series(_series(values))
        assert finding.status is DiffStatus.WARN

    def test_improvement_is_not_drift_higher_is_better(self):
        values = [57.0] * 8 + [63.0, 63.5, 64.0]
        finding = analyze_series(_series(values))
        assert finding.status is DiffStatus.PASS

    def test_sustained_rise_regresses_lower_is_better(self):
        values = [1.0] * 8 + [2.0, 2.1, 2.2]
        finding = analyze_series(_series(values, direction=Direction.LOWER))
        assert finding.status is DiffStatus.REGRESS

    def test_target_direction_flags_both_sides(self):
        up = [0.0] * 8 + [1.0, 1.0, 1.0]
        down = [0.0] * 8 + [-1.0, -1.0, -1.0]
        for values in (up, down):
            finding = analyze_series(_series(values, direction=Direction.TARGET))
            assert finding.status is DiffStatus.REGRESS

    def test_window_bounds_the_reference(self):
        # Ancient bad history outside the window must not dilute the
        # reference: only the last `window` pre-tail runs count.
        values = [10.0] * 50 + [57.0] * 10 + [57.0, 57.0, 57.0]
        finding = analyze_series(_series(values), window=10)
        assert finding.status is DiffStatus.PASS
        assert finding.reference == 57.0


class TestAnalyzeLedger:
    def test_synthetic_three_run_drift_exits_nonzero(self, tmp_path):
        values = [57.0 + 0.01 * i for i in range(8)] + [50.0, 49.5, 49.0]
        report = analyze_ledger(_sweep_ledger(tmp_path, values))
        assert [f.status for f in report.findings] == [DiffStatus.REGRESS]
        assert report.exit_code(strict=False) == 1
        assert report.exit_code(strict=True) == 1
        assert "REGRESS" in report.summary()

    def test_stable_ledger_exits_zero(self, tmp_path):
        values = [57.0 + 0.01 * (i % 3) for i in range(10)]
        report = analyze_ledger(_sweep_ledger(tmp_path, values))
        assert report.exit_code(strict=True) == 0
        assert "PASS" in report.summary()

    def test_warning_needs_strict_to_gate(self, tmp_path):
        values = [57.0 + 0.01 * i for i in range(9)] + [50.0]
        report = analyze_ledger(_sweep_ledger(tmp_path, values))
        assert [f.status for f in report.findings] == [DiffStatus.WARN]
        assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1

    def test_empty_ledger_renders_and_passes(self, tmp_path):
        report = analyze_ledger(RunLedger(tmp_path))
        assert report.exit_code(strict=True) == 0
        assert "ledger is empty" in report.render_table()

    def test_report_table_orders_worst_first(self, tmp_path):
        ledger = _sweep_ledger(tmp_path, [57.0] * 8 + [50.0, 49.5, 49.0])
        # A stable bench series alongside the regressing sweep series;
        # identical records dedupe, so vary a run index.
        for index in range(8):
            ledger.append(
                "bench",
                {"benchmark": "b", "wall_s": 1.0, "run": index},
                provenance=PROV,
            )
        report = analyze_ledger(ledger)
        table = report.render_table()
        first_data_row = [
            line for line in table.splitlines() if "mod2" in line or "bench" in line
        ][0]
        assert "mod2:sweep.dynamic_range_db" in first_data_row

    def test_json_document(self, tmp_path):
        report = analyze_ledger(_sweep_ledger(tmp_path, [57.0] * 6))
        target = report.write_json(tmp_path / "trend.json")
        document = json.loads(target.read_text())
        assert document["schema"] == TREND_SCHEMA
        assert document["window"] == report.window
        assert len(document["findings"]) == 1
        assert document["findings"][0]["status"] == "PASS"


class TestRendering:
    def test_sparkline_shape(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_sparkline_flat_and_empty(self):
        assert sparkline([]) == "-"
        flat = sparkline([5.0, 5.0, 5.0])
        assert len(set(flat)) == 1

    def test_sparkline_truncates_to_width(self):
        assert len(sparkline(list(range(100)), width=16)) == 16

    def test_render_history_shows_metrics_and_entries(self, tmp_path):
        ledger = _sweep_ledger(tmp_path, [60.0, 61.0, 62.0])
        text = render_history(ledger, "mod2")
        assert "history: mod2" in text
        assert "sweep.dynamic_range_db" in text
        assert "cafe0001" in text
        assert "rig" in text

    def test_render_history_empty_design(self, tmp_path):
        text = render_history(RunLedger(tmp_path), "nothing")
        assert "no ledger history" in text
        assert "no entries" in text
