"""CLI surface: run-ledger appends, ``repro history``, ``repro trend``."""

import json

from repro.cli import main
from repro.observability.ledger import RunLedger

FAST_SWEEP = ["--samples", "4096", "--levels", "-20", "-6", "--no-cache"]


def _ledger_dir(tmp_path):
    return str(tmp_path / "ledger")


def _seed_drifting_ledger(directory, values):
    ledger = RunLedger(directory)
    for index, value in enumerate(values):
        ledger.append(
            "sweep",
            {"dynamic_range_db": value, "run": index},
            design="modulator2",
            provenance={
                "git_sha": f"sha{index:04d}",
                "timestamp": f"2026-08-{index + 1:02d}T00:00:00+00:00",
            },
        )
    return ledger


class TestSweepLedger:
    def test_sweep_appends_one_entry(self, capsys, tmp_path):
        directory = _ledger_dir(tmp_path)
        args = ["sweep", "mod2", *FAST_SWEEP, "--ledger-dir", directory]
        assert main(args) == 0
        assert "appended to" in capsys.readouterr().out
        entries = list(RunLedger(directory).entries())
        assert len(entries) == 1
        assert entries[0].kind == "sweep"
        assert entries[0].design == "modulator2"
        assert "sndr_db" in entries[0].payload
        assert "timestamp" in entries[0].provenance
        assert "hostname" in entries[0].provenance

    def test_identical_rerun_dedupes(self, capsys, tmp_path):
        directory = _ledger_dir(tmp_path)
        args = ["sweep", "mod2", *FAST_SWEEP, "--ledger-dir", directory]
        assert main(args) == 0
        assert main(args) == 0
        assert "already in" in capsys.readouterr().out
        assert len(list(RunLedger(directory).entries())) == 1

    def test_no_ledger_skips_the_append(self, capsys, tmp_path):
        directory = _ledger_dir(tmp_path)
        args = [
            "sweep", "mod2", *FAST_SWEEP, "--no-ledger",
            "--ledger-dir", directory,
        ]
        assert main(args) == 0
        assert "ledger" not in capsys.readouterr().out
        assert list(RunLedger(directory).entries()) == []

    def test_env_var_directs_the_append(self, monkeypatch, tmp_path):
        directory = _ledger_dir(tmp_path)
        monkeypatch.setenv("REPRO_LEDGER_DIR", directory)
        assert main(["sweep", "mod2", *FAST_SWEEP]) == 0
        assert len(list(RunLedger(directory).entries())) == 1


class TestSweepEvents:
    def test_events_file_holds_ordered_timeline(self, tmp_path):
        directory = _ledger_dir(tmp_path)
        target = tmp_path / "events.jsonl"
        args = [
            "sweep", "mod2", *FAST_SWEEP,
            "--ledger-dir", directory, "--events", str(target),
        ]
        assert main(args) == 0
        records = [json.loads(l) for l in target.read_text().splitlines()]
        assert records[0]["event"] == "stream_start"
        assert records[-1]["event"] == "stream_finish"
        assert [r["seq"] for r in records] == list(range(len(records)))
        times = [r["t"] for r in records]
        assert times == sorted(times)
        assert any(r["event"] == "span_start" and r["name"] == "sweep"
                   for r in records)
        assert any(r["name"].startswith("shard:") for r in records)

    def test_follow_streams_to_stderr(self, capsys, tmp_path):
        args = [
            "sweep", "mod2", *FAST_SWEEP,
            "--ledger-dir", _ledger_dir(tmp_path), "--follow",
        ]
        assert main(args) == 0
        err = capsys.readouterr().err
        assert '"stream_start"' in err
        assert '"span_finish"' in err


class TestHistory:
    def test_history_renders_recorded_runs(self, capsys, tmp_path):
        directory = _ledger_dir(tmp_path)
        _seed_drifting_ledger(directory, [60.0, 61.0, 62.0])
        assert main(["history", "modulator2", "--ledger-dir", directory]) == 0
        output = capsys.readouterr().out
        assert "history: modulator2" in output
        assert "sweep.dynamic_range_db" in output

    def test_history_unknown_design_lists_known(self, capsys, tmp_path):
        directory = _ledger_dir(tmp_path)
        _seed_drifting_ledger(directory, [60.0])
        assert main(["history", "nonesuch", "--ledger-dir", directory]) == 0
        output = capsys.readouterr().out
        assert "no ledger history" in output
        assert "designs with history: modulator2" in output


class TestTrend:
    def test_synthetic_drift_fails_the_gate(self, capsys, tmp_path):
        directory = _ledger_dir(tmp_path)
        values = [57.0 + 0.01 * i for i in range(8)] + [50.0, 49.5, 49.0]
        _seed_drifting_ledger(directory, values)
        assert main(["trend", "--strict", "--ledger-dir", directory]) == 1
        output = capsys.readouterr().out
        assert "REGRESS" in output
        assert "sustained drift" in output

    def test_stable_ledger_passes_strict(self, capsys, tmp_path):
        directory = _ledger_dir(tmp_path)
        _seed_drifting_ledger(directory, [57.0 + 0.001 * i for i in range(10)])
        assert main(["trend", "--strict", "--ledger-dir", directory]) == 0
        assert "trend PASS" in capsys.readouterr().out

    def test_trend_writes_json_document(self, tmp_path):
        directory = _ledger_dir(tmp_path)
        _seed_drifting_ledger(directory, [57.0, 57.1])
        target = tmp_path / "trend.json"
        args = ["trend", "--ledger-dir", directory, "--json", str(target)]
        assert main(args) == 0
        document = json.loads(target.read_text())
        assert document["findings"][0]["status"] == "INFO"

    def test_design_filter_and_knobs(self, capsys, tmp_path):
        directory = _ledger_dir(tmp_path)
        values = [57.0] * 6 + [50.0, 50.0]
        _seed_drifting_ledger(directory, values)
        args = [
            "trend", "modulator2", "--ledger-dir", directory,
            "--window", "5", "--sustain", "2", "--threshold", "3.0",
        ]
        assert main(args) == 1
        assert "REGRESS" in capsys.readouterr().out

    def test_empty_ledger_passes(self, capsys, tmp_path):
        assert main(["trend", "--ledger-dir", _ledger_dir(tmp_path)]) == 0
        assert "ledger is empty" in capsys.readouterr().out


class TestReportLedger:
    def test_report_appends_manifest_entry(self, capsys, tmp_path):
        directory = _ledger_dir(tmp_path)
        args = [
            "report", "delay-line", "--samples", "8192",
            "--no-cache", "--ledger-dir", directory,
        ]
        assert main(args) == 0
        entries = list(RunLedger(directory).entries())
        assert len(entries) == 1
        assert entries[0].kind == "report"
        assert entries[0].design == "delay-line"
        # The manifest's provenance block moved onto the entry; the
        # payload holds the metric records trend analysis reads.
        assert "provenance" not in entries[0].payload
        assert isinstance(entries[0].payload.get("metrics"), list)
        assert entries[0].provenance.get("git_sha")


class TestBenchGateLedger:
    def _write_gate_inputs(self, tmp_path):
        telemetry = tmp_path / "telemetry.json"
        telemetry.write_text(json.dumps({
            "records": [{"benchmark": "test_bench", "wall_s": 1.0}],
        }))
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "schema": "repro.metrics/bench-baseline/v1",
            "tolerance": 0.25,
            "benchmarks": {"test_bench": {"wall_s": 10.0}},
        }))
        return str(telemetry), str(baseline)

    def test_bench_gate_appends_verdict(self, capsys, tmp_path):
        directory = _ledger_dir(tmp_path)
        telemetry, baseline = self._write_gate_inputs(tmp_path)
        args = [
            "bench-gate", "--telemetry", telemetry, "--baseline", baseline,
            "--ledger-dir", directory,
        ]
        assert main(args) == 0
        entries = list(RunLedger(directory).entries())
        assert len(entries) == 1
        assert entries[0].kind == "bench-gate"
        assert entries[0].design is None
        assert entries[0].payload["ok"] is True
        rows = entries[0].payload["rows"]
        assert rows[0]["benchmark"] == "test_bench"

    def test_no_ledger_skips(self, tmp_path):
        directory = _ledger_dir(tmp_path)
        telemetry, baseline = self._write_gate_inputs(tmp_path)
        args = [
            "bench-gate", "--telemetry", telemetry, "--baseline", baseline,
            "--no-ledger", "--ledger-dir", directory,
        ]
        assert main(args) == 0
        assert list(RunLedger(directory).entries()) == []
