"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file exists only
so that ``pip install -e . --no-use-pep517`` (the legacy editable path,
which does not require ``wheel``) works in offline environments.
"""

from setuptools import setup

setup()
