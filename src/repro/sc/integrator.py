"""Behavioural switched-capacitor integrator.

An SC integrator transfers charge ``C_s * V_in`` onto an integration
capacitor each period; its dominant noise is the kT/C charge sampled
on the switched capacitor (two switch events per period).  Compared to
the SI cell, the storage element is a *linear double-poly capacitor*
of picofarad scale, so the sampled noise is an order of magnitude
below the SI cell's -- the quantitative content of the paper's closing
SI-vs-SC comparison.

Signals are kept in the same current-like units as the SI models (the
comparison benches drive both with identical stimuli); the
``capacitance`` parameter only sets the noise level and the gain error,
exactly the two things the paper's argument turns on.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import ROOM_TEMPERATURE, kt
from repro.errors import ConfigurationError

__all__ = ["kt_over_c_noise_rms", "ScIntegrator"]


def kt_over_c_noise_rms(
    capacitance: float,
    reference_transconductance: float = 100e-6,
    n_switch_events: int = 2,
    temperature: float = ROOM_TEMPERATURE,
) -> float:
    """Return the per-sample kT/C noise in the benches' current units.

    The sampled charge noise ``sqrt(kTC)`` on a capacitor corresponds
    to a voltage noise ``sqrt(kT/C)``; referring it through a
    transconductance comparable to the SI cell's (so SC and SI numbers
    live on the same axis) gives

        i_n = g_m_ref * sqrt(n_events * k T / C)

    For C = 2.5 pF this is ~3 nA against the SI cell's ~33 nA at
    25 fF -- the paper's "usually much smaller" in one number.

    Raises
    ------
    ConfigurationError
        If ``capacitance`` or the reference is not positive.
    """
    if capacitance <= 0.0:
        raise ConfigurationError(
            f"capacitance must be positive, got {capacitance!r}"
        )
    if reference_transconductance <= 0.0:
        raise ConfigurationError(
            "reference_transconductance must be positive, "
            f"got {reference_transconductance!r}"
        )
    if n_switch_events < 1:
        raise ConfigurationError(
            f"n_switch_events must be >= 1, got {n_switch_events!r}"
        )
    voltage_noise = math.sqrt(n_switch_events * kt(temperature) / capacitance)
    return reference_transconductance * voltage_noise


class ScIntegrator:
    """Delaying SC integrator: ``y[n+1] = y[n] + gain * x[n]`` plus kT/C noise.

    Parameters
    ----------
    gain:
        Input scaling (capacitor ratio ``C_s / C_i``).
    capacitance:
        Sampling-capacitor value in farads; sets the kT/C noise.
    capacitor_ratio_error:
        Relative error of the C_s/C_i ratio (double-poly capacitors
        match to ~0.1 %, far better than SI conductance ratios).
    opamp_gain:
        Finite op-amp DC gain; produces the SC integrator's (small)
        leak ``1 - 1/A``.
    seed:
        Noise seed.
    """

    def __init__(
        self,
        gain: float,
        capacitance: float = 2.5e-12,
        capacitor_ratio_error: float = 0.001,
        opamp_gain: float = 1000.0,
        seed: int | None = None,
    ) -> None:
        if gain == 0.0:
            raise ConfigurationError("gain must be non-zero")
        if capacitance <= 0.0:
            raise ConfigurationError(
                f"capacitance must be positive, got {capacitance!r}"
            )
        if opamp_gain < 1.0:
            raise ConfigurationError(
                f"opamp_gain must be >= 1, got {opamp_gain!r}"
            )
        self.gain = gain * (1.0 + capacitor_ratio_error)
        self.capacitance = capacitance
        self.leak = 1.0 - 1.0 / opamp_gain
        self.noise_rms = kt_over_c_noise_rms(capacitance)
        self._rng = np.random.default_rng(seed)
        self._state = 0.0

    @property
    def state(self) -> float:
        """Return the integrator state."""
        return self._state

    def reset(self) -> None:
        """Zero the state."""
        self._state = 0.0

    def step(self, value: float) -> float:
        """Advance one period; return the delayed output."""
        output = self._state
        noise = float(self._rng.normal(0.0, self.noise_rms)) if self.noise_rms else 0.0
        self._state = self.leak * (self._state + self.gain * value) + noise
        return output
