"""The SI-versus-SC trade-off, quantified.

Evaluates the paper's closing claim across the capacitance axis: an SC
design's dynamic range grows with its (double-poly, area-hungry)
storage capacitors, while the SI design is stuck with the memory
transistor's small C_gs but needs only the digital single-poly
process.  "The SI technique is an inexpensive alternative to the SC
technique for medium accuracy applications."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sc.integrator import kt_over_c_noise_rms
from repro.deltasigma.predictions import thermal_limited_dynamic_range_db

__all__ = ["TradeoffPoint", "ScSiTradeoff"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One technology point in the SI-vs-SC comparison.

    Attributes
    ----------
    label:
        Technology description.
    storage_capacitance:
        Storage capacitance in farads.
    noise_rms:
        Wideband sampled-noise rms in the shared current units.
    dynamic_range_db:
        Thermal-limited DR at the paper's operating point.
    needs_double_poly:
        Whether the storage element requires a double-poly process.
    """

    label: str
    storage_capacitance: float
    noise_rms: float
    dynamic_range_db: float
    needs_double_poly: bool

    @property
    def dynamic_range_bits(self) -> float:
        """Return the DR in effective bits."""
        return (self.dynamic_range_db - 1.76) / 6.02


class ScSiTradeoff:
    """Builder of the SI-vs-SC comparison table.

    Parameters
    ----------
    full_scale:
        Signal full scale in amperes (6 uA, the paper's 0 dB level).
    oversampling_ratio:
        OSR (128 in the paper).
    si_noise_rms:
        The SI design's wideband noise (33 nA in the paper).
    """

    def __init__(
        self,
        full_scale: float = 6e-6,
        oversampling_ratio: float = 128.0,
        si_noise_rms: float = 33e-9,
    ) -> None:
        if full_scale <= 0.0:
            raise ConfigurationError(
                f"full_scale must be positive, got {full_scale!r}"
            )
        if si_noise_rms <= 0.0:
            raise ConfigurationError(
                f"si_noise_rms must be positive, got {si_noise_rms!r}"
            )
        self.full_scale = full_scale
        self.oversampling_ratio = oversampling_ratio
        self.si_noise_rms = si_noise_rms

    def si_point(self, cgs: float = 25e-15) -> TradeoffPoint:
        """Return the SI technology point (single-poly, small C_gs)."""
        return TradeoffPoint(
            label="SI (single-poly digital CMOS)",
            storage_capacitance=cgs,
            noise_rms=self.si_noise_rms,
            dynamic_range_db=thermal_limited_dynamic_range_db(
                self.full_scale, self.si_noise_rms, self.oversampling_ratio
            ),
            needs_double_poly=False,
        )

    def sc_point(self, capacitance: float) -> TradeoffPoint:
        """Return an SC technology point at a given capacitor size.

        Raises
        ------
        ConfigurationError
            If ``capacitance`` is not positive.
        """
        noise = kt_over_c_noise_rms(capacitance)
        return TradeoffPoint(
            label=f"SC ({capacitance * 1e12:.1f} pF, double-poly)",
            storage_capacitance=capacitance,
            noise_rms=noise,
            dynamic_range_db=thermal_limited_dynamic_range_db(
                self.full_scale, noise, self.oversampling_ratio
            ),
            needs_double_poly=True,
        )

    def sweep(self, capacitances: list[float]) -> list[TradeoffPoint]:
        """Return the SI point followed by SC points across capacitances."""
        points = [self.si_point()]
        points.extend(self.sc_point(c) for c in capacitances)
        return points

    def sc_advantage_db(self, capacitance: float) -> float:
        """Return how many dB of DR the SC design gains over the SI one."""
        return (
            self.sc_point(capacitance).dynamic_range_db
            - self.si_point().dynamic_range_db
        )
