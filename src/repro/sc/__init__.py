"""Switched-capacitor (SC) comparison models.

The paper's closing argument positions SI against SC:

    "The thermal noise in SC circuits is usually much smaller due to
    the larger storage capacitance.  SC circuits can usually deliver
    higher dynamic range than SI circuits.  But SC circuits need
    double-poly CMOS process that make them not completely compatible
    with the digital (single-poly) CMOS process.  The SI technique is
    an inexpensive alternative to the SC technique for medium accuracy
    applications."

This subpackage provides a behavioural SC integrator and second-order
SC modulator with kT/C-limited noise so the trade-off can be swept
quantitatively: dynamic range versus storage capacitance (i.e. chip
area and the double-poly process requirement).
"""

from repro.sc.integrator import ScIntegrator, kt_over_c_noise_rms
from repro.sc.modulator import ScModulator2
from repro.sc.tradeoff import ScSiTradeoff, TradeoffPoint

__all__ = [
    "ScIntegrator",
    "kt_over_c_noise_rms",
    "ScModulator2",
    "ScSiTradeoff",
    "TradeoffPoint",
]
