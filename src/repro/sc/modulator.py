"""Second-order switched-capacitor delta-sigma modulator.

The SC counterpart of :class:`~repro.deltasigma.modulator2.SIModulator2`
with the same loop coefficients (Eq. 3) but SC integrators: kT/C noise
set by picofarad capacitors instead of the SI cell's femtofarad gate
capacitance.  Used by the SI-vs-SC trade-off bench to quantify the
paper's closing comparison.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.sc.integrator import ScIntegrator
from repro.deltasigma.dac import FeedbackDac
from repro.deltasigma.quantizer import CurrentQuantizer

__all__ = ["ScModulator2"]


class ScModulator2:
    """Second-order SC modulator with kT/C-limited noise.

    Parameters
    ----------
    full_scale:
        Feedback reference level (kept in the benches' current units so
        SI and SC results share an axis).
    capacitance:
        Sampling-capacitor value of both integrators, in farads.
    a1, a2, b2:
        Loop coefficients (Eq. 3 condition ``b2 = 2 a1 a2``).
    seed:
        Noise seed.
    """

    def __init__(
        self,
        full_scale: float = 6e-6,
        capacitance: float = 2.5e-12,
        a1: float = 0.5,
        a2: float = 1.0,
        b2: float = 1.0,
        seed: int | None = 7,
    ) -> None:
        if full_scale <= 0.0:
            raise ConfigurationError(
                f"full_scale must be positive, got {full_scale!r}"
            )
        self.full_scale = full_scale
        self.capacitance = capacitance
        self.a1 = a1
        self.a2 = a2
        self.b2 = b2
        self.quantizer = CurrentQuantizer()
        self.dac = FeedbackDac(full_scale=full_scale)
        seed1 = None if seed is None else seed + 11
        seed2 = None if seed is None else seed + 22
        self._int1 = ScIntegrator(gain=1.0, capacitance=capacitance, seed=seed1)
        self._int2 = ScIntegrator(gain=1.0, capacitance=capacitance, seed=seed2)

    @property
    def realizes_eq3(self) -> bool:
        """Return True if the bit stream realises Eq. (3)."""
        return abs(self.b2 - 2.0 * self.a1 * self.a2) < 1e-12

    def reset(self) -> None:
        """Zero the loop state."""
        self._int1.reset()
        self._int2.reset()
        self.quantizer.reset()

    def run(self, stimulus: np.ndarray) -> np.ndarray:
        """Run the modulator over an input array."""
        data = np.asarray(stimulus, dtype=float)
        if data.ndim != 1:
            raise ConfigurationError(
                f"stimulus must be 1-D, got shape {data.shape}"
            )
        n_samples = data.shape[0]
        output = np.empty(n_samples)
        int1 = self._int1
        int2 = self._int2
        quantizer = self.quantizer
        dac = self.dac
        a1 = self.a1
        a2 = self.a2
        b2 = self.b2
        for n in range(n_samples):
            w1 = int1.state
            w2 = int2.state
            decision = quantizer.decide(w2)
            feedback = dac.convert(decision)
            int1.step(a1 * (float(data[n]) - feedback))
            int2.step(a2 * w1 - b2 * feedback)
            output[n] = decision * self.full_scale
        return output

    def __call__(self, stimulus: np.ndarray) -> np.ndarray:
        """Run with a fresh state: the device-under-test interface."""
        self.reset()
        return self.run(stimulus)
