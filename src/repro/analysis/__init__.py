"""Spectral analysis and converter metrology.

Everything the paper measures -- THD, SNR, SNDR, dynamic range -- comes
out of one pipeline: a 64K-point FFT with a Blackman window followed by
tone/harmonic/noise binning.  This subpackage reimplements that
pipeline so the benches measure the simulated circuits exactly the way
the authors measured the chip.
"""

from repro.analysis.windows import Window, WindowKind, make_window
from repro.analysis.spectrum import Spectrum, compute_spectrum
from repro.analysis.metrics import (
    ToneMetrics,
    measure_tone,
    snr_db,
    thd_db,
    sndr_db,
)
from repro.analysis.sweeps import AmplitudeSweepResult, run_amplitude_sweep
from repro.analysis.fitting import dynamic_range_from_sweep, linear_fit_through_noise
from repro.analysis.linearity import LinearityResult, code_density_test

__all__ = [
    "Window",
    "WindowKind",
    "make_window",
    "Spectrum",
    "compute_spectrum",
    "ToneMetrics",
    "measure_tone",
    "snr_db",
    "thd_db",
    "sndr_db",
    "AmplitudeSweepResult",
    "run_amplitude_sweep",
    "dynamic_range_from_sweep",
    "linear_fit_through_noise",
    "LinearityResult",
    "code_density_test",
]
