"""Static-linearity metrology: INL/DNL from a code-density test.

The paper characterises its converters dynamically (spectra, SNDR,
dynamic range); a downstream ADC user also wants the static linearity.
This module implements the standard sine-wave histogram (code-density)
test: drive the converter with a full-scale-ish sine, histogram the
output codes, invert the arcsine density, and read DNL/INL per code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError

__all__ = ["LinearityResult", "code_density_test"]


@dataclass(frozen=True)
class LinearityResult:
    """Result of a code-density linearity test.

    Attributes
    ----------
    dnl:
        Differential nonlinearity per code, in LSB.
    inl:
        Integral nonlinearity per code, in LSB.
    n_codes:
        Number of analysed codes.
    """

    dnl: np.ndarray
    inl: np.ndarray
    n_codes: int

    @property
    def peak_dnl(self) -> float:
        """Return the largest |DNL| in LSB."""
        return float(np.max(np.abs(self.dnl)))

    @property
    def peak_inl(self) -> float:
        """Return the largest |INL| in LSB."""
        return float(np.max(np.abs(self.inl)))


def code_density_test(
    samples: np.ndarray,
    n_bits: int,
    full_scale: float = 1.0,
    clip_codes: int = 2,
) -> LinearityResult:
    """Run a sine-wave histogram linearity test.

    Parameters
    ----------
    samples:
        Converter output samples (continuous values are quantised to
        ``n_bits`` uniform codes over ``[-full_scale, +full_scale]``).
    n_bits:
        Resolution of the analysis grid.
    full_scale:
        Converter full scale in the samples' units.
    clip_codes:
        Number of codes dropped at each extreme, where the arcsine
        density diverges.

    Raises
    ------
    AnalysisError
        If the record is too short to populate the histogram or the
        parameters are invalid.
    """
    data = np.asarray(samples, dtype=float)
    if data.ndim != 1:
        raise AnalysisError(f"samples must be 1-D, got shape {data.shape}")
    if not 2 <= n_bits <= 16:
        raise AnalysisError(f"n_bits must be in [2, 16], got {n_bits!r}")
    if full_scale <= 0.0:
        raise AnalysisError(f"full_scale must be positive, got {full_scale!r}")
    n_codes = 1 << n_bits
    if data.shape[0] < 32 * n_codes:
        raise AnalysisError(
            f"need at least {32 * n_codes} samples for {n_bits}-bit analysis, "
            f"got {data.shape[0]}"
        )
    if clip_codes < 1 or 2 * clip_codes >= n_codes - 4:
        raise AnalysisError(f"clip_codes {clip_codes!r} invalid for {n_codes} codes")

    # Quantise to the analysis grid.
    scaled = np.clip((data / full_scale + 1.0) / 2.0, 0.0, 1.0 - 1e-12)
    codes = (scaled * n_codes).astype(int)
    histogram = np.bincount(codes, minlength=n_codes).astype(float)

    # The ideal sine-histogram density: p(k) proportional to
    # asin-difference across each code bin.
    edges = np.linspace(-1.0, 1.0, n_codes + 1)
    # The test tone's amplitude is estimated from the data so the ideal
    # density matches the actual drive level.
    amplitude = float(np.max(np.abs(data)) / full_scale)
    amplitude = min(max(amplitude, 1e-6), 1.0)
    clipped_edges = np.clip(edges / amplitude, -1.0, 1.0)
    ideal = np.diff(np.arcsin(clipped_edges))

    # Analyse only codes the tone actually exercises: inside the
    # amplitude span, shrunk by clip_codes where the density diverges.
    exercised = np.flatnonzero(ideal > 0.0)
    if exercised.shape[0] <= 2 * clip_codes + 4:
        raise AnalysisError(
            "test tone exercises too few codes; increase the amplitude "
            "or reduce n_bits"
        )
    low = int(exercised[0]) + clip_codes
    high = int(exercised[-1]) - clip_codes
    analysed = slice(low, high + 1)

    ideal_counts = ideal[analysed]
    actual_counts = histogram[analysed]
    # Normalise both to unit total so the comparison is density-based.
    ideal_counts = ideal_counts / np.sum(ideal_counts)
    total = np.sum(actual_counts)
    if total <= 0.0:
        raise AnalysisError("histogram is empty over the analysed range")
    actual_counts = actual_counts / total

    dnl = actual_counts / ideal_counts - 1.0
    inl = np.cumsum(dnl)
    inl -= np.linspace(inl[0], inl[-1], inl.shape[0])  # endpoint-fit line
    return LinearityResult(dnl=dnl, inl=inl, n_codes=int(dnl.shape[0]))
