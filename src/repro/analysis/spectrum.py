"""Windowed periodogram computation.

Reproduces the paper's measurement front end: take N samples (64K for
the modulator plots), apply a Blackman window, FFT, and work with the
one-sided power spectrum.  The :class:`Spectrum` object keeps the
window constants attached so downstream metrics can undo the window's
amplitude and bandwidth effects correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.analysis.windows import Window, WindowKind, make_window

__all__ = ["Spectrum", "compute_spectrum"]


@dataclass(frozen=True)
class Spectrum:
    """One-sided windowed power spectrum of a real signal.

    Attributes
    ----------
    frequencies:
        Bin centre frequencies in hertz (length N//2 + 1).
    power:
        One-sided power per bin, normalised so that a full-scale
        coherent tone of amplitude A reports total (integrated over its
        main lobe) power ``A^2 / 2``.
    sample_rate:
        Sampling frequency in hertz.
    window:
        The window used, with its constants.
    """

    frequencies: np.ndarray
    power: np.ndarray
    sample_rate: float
    window: Window

    @property
    def n_bins(self) -> int:
        """Return the number of one-sided bins."""
        return int(self.power.shape[0])

    @property
    def bin_width(self) -> float:
        """Return the frequency spacing between bins in hertz."""
        return self.sample_rate / (2.0 * (self.n_bins - 1))

    def bin_of(self, frequency: float) -> int:
        """Return the index of the bin nearest to ``frequency``.

        Raises
        ------
        AnalysisError
            If the frequency is outside [0, fs/2].
        """
        if not 0.0 <= frequency <= self.sample_rate / 2.0:
            raise AnalysisError(
                f"frequency {frequency!r} outside [0, {self.sample_rate / 2.0}]"
            )
        return int(round(frequency / self.bin_width))

    def band_power(self, f_low: float, f_high: float) -> float:
        """Return the integrated power between two frequencies.

        The per-bin powers are already ENBW-corrected, so a straight bin
        sum is correct for both spread tones and noise bands.

        Raises
        ------
        AnalysisError
            If the band is empty or out of range.
        """
        if f_high <= f_low:
            raise AnalysisError(
                f"band [{f_low!r}, {f_high!r}] is empty or inverted"
            )
        low = self.bin_of(f_low)
        high = self.bin_of(f_high)
        return float(np.sum(self.power[low : high + 1]))

    def power_db(self, reference_power: float = 1.0) -> np.ndarray:
        """Return the per-bin power in dB relative to ``reference_power``.

        Bins with zero power map to -400 dB rather than -inf so plots
        and text dumps stay finite.

        Raises
        ------
        AnalysisError
            If ``reference_power`` is not positive.
        """
        if reference_power <= 0.0:
            raise AnalysisError(
                f"reference_power must be positive, got {reference_power!r}"
            )
        floor = 1e-40 * reference_power
        clipped = np.maximum(self.power, floor)
        return 10.0 * np.log10(clipped / reference_power)


def compute_spectrum(
    signal: np.ndarray,
    sample_rate: float,
    window_kind: WindowKind = WindowKind.BLACKMAN,
    remove_dc: bool = True,
) -> Spectrum:
    """Compute the one-sided windowed power spectrum of a real signal.

    Parameters
    ----------
    signal:
        One-dimensional real sample array.
    sample_rate:
        Sampling frequency in hertz.  Must be positive.
    window_kind:
        Window shape; Blackman by default, matching the paper.
    remove_dc:
        Subtract the mean before windowing (the spectrum analyser view
        of an AC-coupled measurement).

    Raises
    ------
    AnalysisError
        If the signal is not 1-D, too short, or the rate invalid.
    """
    samples = np.asarray(signal, dtype=float)
    if samples.ndim != 1:
        raise AnalysisError(f"signal must be 1-D, got shape {samples.shape}")
    if samples.shape[0] < 16:
        raise AnalysisError(
            f"signal must have at least 16 samples, got {samples.shape[0]}"
        )
    if sample_rate <= 0.0:
        raise AnalysisError(f"sample_rate must be positive, got {sample_rate!r}")

    n = samples.shape[0]
    window = make_window(window_kind, n)
    data = samples - np.mean(samples) if remove_dc else samples
    spectrum = np.fft.rfft(data * window.samples)

    # Normalisation convention: integrated (bin-summed) power is exact
    # for every kind of content.  Dividing the amplitude by
    # N * coherent_gain and the power by the ENBW makes the main-lobe
    # sum of a tone of amplitude A equal A^2/2 (Parseval over the
    # window's DFT samples) and the band sum of white noise of variance
    # sigma^2 equal sigma^2 over the full Nyquist band.
    scale = n * window.coherent_gain
    amplitude = np.abs(spectrum) / scale
    power = amplitude**2
    power[1:-1] *= 2.0
    power /= window.enbw_bins

    frequencies = np.fft.rfftfreq(n, d=1.0 / sample_rate)
    return Spectrum(
        frequencies=frequencies,
        power=power,
        sample_rate=sample_rate,
        window=window,
    )
