"""Amplitude sweeps: the workload behind Fig. 7 and the dynamic-range rows.

The paper's Fig. 7 sweeps the input current from deep below full scale
up to 0 dB (6 uA) and plots "Signal/(Noise+THD)" for both modulators;
the dynamic range in Table 2 is read off that sweep.  This module runs
the same experiment against any device-under-test callable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.analysis.metrics import ToneMetrics, measure_tone
from repro.analysis.spectrum import compute_spectrum
from repro.analysis.windows import WindowKind

__all__ = ["AmplitudeSweepResult", "run_amplitude_sweep"]

#: A device under test: maps a stimulus array to an output array.
DeviceUnderTest = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class AmplitudeSweepResult:
    """Outcome of an amplitude sweep on one device.

    Attributes
    ----------
    levels_db:
        Input levels relative to full scale, in dB.
    sndr_db:
        Measured SNDR at each level.
    snr_db:
        Measured SNR (harmonics excluded) at each level.
    thd_db:
        Measured THD at each level.
    metrics:
        The full per-level tone metrics.
    """

    levels_db: np.ndarray
    sndr_db: np.ndarray
    snr_db: np.ndarray
    thd_db: np.ndarray
    metrics: tuple[ToneMetrics, ...]

    @property
    def peak_sndr_db(self) -> float:
        """Return the best SNDR across the sweep."""
        return float(np.max(self.sndr_db))

    @property
    def peak_level_db(self) -> float:
        """Return the input level at which SNDR peaks."""
        return float(self.levels_db[int(np.argmax(self.sndr_db))])


def run_amplitude_sweep(
    device: DeviceUnderTest,
    levels_db: Sequence[float],
    full_scale: float,
    signal_frequency: float,
    sample_rate: float,
    n_samples: int,
    bandwidth: float,
    window_kind: WindowKind = WindowKind.BLACKMAN,
    settle_samples: int = 0,
) -> AmplitudeSweepResult:
    """Sweep the input amplitude of a device and measure SNDR at each level.

    Parameters
    ----------
    device:
        Callable mapping the stimulus array to the output array.  Must
        be stateless across calls or reset itself per call.
    levels_db:
        Input levels in dB relative to ``full_scale`` (e.g. -70..0).
    full_scale:
        0 dB reference amplitude in amperes (6 uA in the paper).
    signal_frequency:
        Test-tone frequency in hertz (2 kHz in the paper).
    sample_rate:
        Clock frequency in hertz (2.45 MHz in the paper).
    n_samples:
        Number of output samples analysed per level (64K in the paper).
    bandwidth:
        Analysis bandwidth in hertz (10 kHz in the paper).
    window_kind:
        FFT window; Blackman by default.
    settle_samples:
        Extra leading samples generated and discarded before analysis,
        to let the loop reach steady state.

    Raises
    ------
    AnalysisError
        If the sweep is empty or parameters are inconsistent.
    """
    if len(levels_db) == 0:
        raise AnalysisError("levels_db must contain at least one level")
    if full_scale <= 0.0:
        raise AnalysisError(f"full_scale must be positive, got {full_scale!r}")
    if n_samples < 16:
        raise AnalysisError(f"n_samples must be >= 16, got {n_samples!r}")
    if settle_samples < 0:
        raise AnalysisError(
            f"settle_samples must be non-negative, got {settle_samples!r}"
        )

    total = n_samples + settle_samples
    t = np.arange(total) / sample_rate
    levels = np.asarray(list(levels_db), dtype=float)

    all_metrics: list[ToneMetrics] = []
    for level_db in levels:
        amplitude = full_scale * 10.0 ** (level_db / 20.0)
        stimulus = amplitude * np.sin(2.0 * np.pi * signal_frequency * t)
        output = np.asarray(device(stimulus), dtype=float)
        if output.shape[0] != total:
            raise AnalysisError(
                f"device returned {output.shape[0]} samples, expected {total}"
            )
        spectrum = compute_spectrum(
            output[settle_samples:], sample_rate, window_kind=window_kind
        )
        all_metrics.append(
            measure_tone(
                spectrum,
                fundamental_frequency=signal_frequency,
                bandwidth=bandwidth,
            )
        )

    return AmplitudeSweepResult(
        levels_db=levels,
        sndr_db=np.array([m.sndr_db for m in all_metrics]),
        snr_db=np.array([m.snr_db for m in all_metrics]),
        thd_db=np.array([m.thd_db for m in all_metrics]),
        metrics=tuple(all_metrics),
    )
