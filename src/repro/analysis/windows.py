"""FFT window functions with their metrological properties.

The paper performs "a 64K-point FFT using a blackman window" for every
spectral measurement, so the Blackman window is the reference window of
this reproduction.  Correct SNR/THD extraction from a windowed
periodogram requires two window constants:

* the *coherent gain* (mean of the window), which scales tone
  amplitudes, and
* the *equivalent noise bandwidth* (ENBW, in bins), which scales noise
  power integrated across bins.

Both are computed numerically from the window samples, so any window
added later is automatically handled correctly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError

__all__ = ["WindowKind", "Window", "make_window"]


class WindowKind(enum.Enum):
    """Supported window shapes."""

    RECTANGULAR = "rectangular"
    HANN = "hann"
    BLACKMAN = "blackman"


@dataclass(frozen=True)
class Window:
    """A concrete window: samples plus derived constants.

    Attributes
    ----------
    kind:
        Which shape this window is.
    samples:
        The window samples (length N).
    """

    kind: WindowKind
    samples: np.ndarray

    @property
    def length(self) -> int:
        """Return the window length in samples."""
        return int(self.samples.shape[0])

    @property
    def coherent_gain(self) -> float:
        """Return the coherent (amplitude) gain: the mean of the window."""
        return float(np.mean(self.samples))

    @property
    def enbw_bins(self) -> float:
        """Return the equivalent noise bandwidth in FFT bins.

        ``N * sum(w^2) / sum(w)^2``; 1.0 for rectangular, about 1.73 for
        Blackman.
        """
        total = float(np.sum(self.samples))
        if total == 0.0:
            raise AnalysisError("window has zero sum; ENBW undefined")
        return self.length * float(np.sum(self.samples**2)) / total**2

    @property
    def main_lobe_bins(self) -> int:
        """Return the half-width of the main lobe in bins.

        Used when integrating a tone's power: a Blackman window spreads
        a coherent tone over +/-3 bins; Hann +/-2; rectangular (with
        coherent sampling) occupies a single bin but we keep one guard
        bin for numerical safety.
        """
        if self.kind is WindowKind.BLACKMAN:
            return 3
        if self.kind is WindowKind.HANN:
            return 2
        return 1


def make_window(kind: WindowKind, length: int) -> Window:
    """Construct a window of the given kind and length.

    Parameters
    ----------
    kind:
        Window shape.
    length:
        Number of samples; must be at least 8 for the lobe bookkeeping
        to make sense.

    Raises
    ------
    AnalysisError
        If ``length`` is too small.
    """
    if length < 8:
        raise AnalysisError(f"window length must be >= 8, got {length!r}")
    if kind is WindowKind.RECTANGULAR:
        samples = np.ones(length)
    elif kind is WindowKind.HANN:
        samples = np.hanning(length)
    elif kind is WindowKind.BLACKMAN:
        samples = np.blackman(length)
    else:  # pragma: no cover - exhaustive enum
        raise AnalysisError(f"unsupported window kind {kind!r}")
    return Window(kind=kind, samples=samples)
