"""Tone metrology: SNR, THD and SNDR extraction from a spectrum.

Implements the measurement the paper performs on the chip output: find
the fundamental, integrate its main lobe, integrate the harmonics
(folded around Nyquist where necessary), and count everything else in
the signal band as noise.

Conventions (matching the paper):

* THD is reported in dB *below* the carrier (negative numbers; the
  paper's delay line gives "THD ... less than -50 dB").
* SNR excludes harmonics; SNDR (the paper's "Signal/(Noise+THD)")
  includes them.
* The noise/harmonic integration is restricted to a caller-specified
  signal bandwidth (10 kHz for the modulators, 2.5 MHz for the delay
  line).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.analysis.spectrum import Spectrum

__all__ = ["ToneMetrics", "measure_tone", "snr_db", "thd_db", "sndr_db"]


@dataclass(frozen=True)
class ToneMetrics:
    """Result of a single-tone measurement.

    Attributes
    ----------
    fundamental_frequency:
        Located fundamental frequency in hertz.
    signal_power:
        Integrated fundamental power.
    harmonic_power:
        Integrated power of harmonics 2..n_harmonics inside the band.
    noise_power:
        Integrated in-band power excluding DC, fundamental, harmonics.
    bandwidth:
        Upper edge of the analysis band in hertz.
    """

    fundamental_frequency: float
    signal_power: float
    harmonic_power: float
    noise_power: float
    bandwidth: float

    @property
    def snr_db(self) -> float:
        """Return the signal-to-noise ratio in dB (harmonics excluded)."""
        return _safe_ratio_db(self.signal_power, self.noise_power)

    @property
    def thd_db(self) -> float:
        """Return total harmonic distortion in dB relative to the carrier.

        Negative values mean the harmonics are below the carrier, the
        convention in which the paper reports "-50 dB".
        """
        return _safe_ratio_db(self.harmonic_power, self.signal_power)

    @property
    def sndr_db(self) -> float:
        """Return signal over (noise + distortion) in dB.

        This is the paper's Fig. 7 y-axis, "Signal/(Noise+THD)".
        """
        return _safe_ratio_db(self.signal_power, self.noise_power + self.harmonic_power)

    @property
    def signal_amplitude(self) -> float:
        """Return the estimated peak amplitude of the fundamental."""
        return math.sqrt(2.0 * self.signal_power)


def _safe_ratio_db(numerator: float, denominator: float) -> float:
    """Return ``10 log10(num/den)`` clamped to +/-200 dB for degenerate inputs."""
    if numerator <= 0.0:
        return -200.0
    if denominator <= 0.0:
        return 200.0
    value = 10.0 * math.log10(numerator / denominator)
    return max(-200.0, min(200.0, value))


def _fold_frequency(frequency: float, sample_rate: float) -> float:
    """Fold a frequency into the first Nyquist zone [0, fs/2]."""
    nyquist = sample_rate / 2.0
    folded = frequency % sample_rate
    if folded > nyquist:
        folded = sample_rate - folded
    return folded


def _lobe_power(spectrum: Spectrum, centre_bin: int, half_width: int) -> float:
    """Return integrated power in ``centre_bin`` +/- ``half_width`` bins."""
    low = max(0, centre_bin - half_width)
    high = min(spectrum.n_bins - 1, centre_bin + half_width)
    return float(np.sum(spectrum.power[low : high + 1]))


def measure_tone(
    spectrum: Spectrum,
    fundamental_frequency: float | None = None,
    bandwidth: float | None = None,
    n_harmonics: int = 6,
    search_above: float = 0.0,
) -> ToneMetrics:
    """Measure a single-tone test signal in a spectrum.

    Parameters
    ----------
    spectrum:
        The windowed spectrum to analyse.
    fundamental_frequency:
        Expected fundamental in hertz.  When ``None``, the largest
        in-band bin (above ``search_above``) is taken as the
        fundamental, which is how a spectrum analyser marker works.
    bandwidth:
        Analysis band upper edge in hertz; defaults to Nyquist.
    n_harmonics:
        Number of harmonics (including folding) counted as distortion;
        the default 6 covers every component visible in the paper's
        plots.
    search_above:
        Lower edge of the fundamental search region, in hertz; used to
        skip low-frequency interferers when auto-locating the tone.

    Raises
    ------
    AnalysisError
        If the band is invalid or no fundamental can be located.
    """
    nyquist = spectrum.sample_rate / 2.0
    band = nyquist if bandwidth is None else bandwidth
    if not 0.0 < band <= nyquist:
        raise AnalysisError(
            f"bandwidth must be in (0, {nyquist}], got {bandwidth!r}"
        )
    if n_harmonics < 1:
        raise AnalysisError(f"n_harmonics must be >= 1, got {n_harmonics!r}")

    lobe = spectrum.window.main_lobe_bins
    band_bin = spectrum.bin_of(band)

    if fundamental_frequency is None:
        search_low = max(spectrum.bin_of(search_above), lobe + 1)
        if search_low >= band_bin:
            raise AnalysisError("fundamental search region is empty")
        region = spectrum.power[search_low : band_bin + 1]
        fundamental_bin = search_low + int(np.argmax(region))
    else:
        if not 0.0 < fundamental_frequency <= nyquist:
            raise AnalysisError(
                f"fundamental_frequency must be in (0, {nyquist}], "
                f"got {fundamental_frequency!r}"
            )
        fundamental_bin = spectrum.bin_of(fundamental_frequency)
        # Refine to the local maximum so a slightly off-grid request
        # still locks onto the tone.
        low = max(1, fundamental_bin - lobe)
        high = min(spectrum.n_bins - 1, fundamental_bin + lobe)
        local = spectrum.power[low : high + 1]
        fundamental_bin = low + int(np.argmax(local))

    f0 = fundamental_bin * spectrum.bin_width
    if fundamental_bin <= lobe:
        raise AnalysisError(
            "fundamental is too close to DC for the window's main lobe"
        )

    signal_power = _lobe_power(spectrum, fundamental_bin, lobe)

    # Mark excluded bins: DC + window skirt, fundamental lobe, harmonic lobes.
    excluded = np.zeros(spectrum.n_bins, dtype=bool)
    excluded[: lobe + 1] = True
    excluded[
        max(0, fundamental_bin - lobe) : fundamental_bin + lobe + 1
    ] = True

    harmonic_power = 0.0
    for k in range(2, n_harmonics + 1):
        harmonic_freq = _fold_frequency(k * f0, spectrum.sample_rate)
        harmonic_bin = spectrum.bin_of(harmonic_freq)
        if harmonic_bin > band_bin + lobe:
            continue
        if excluded[harmonic_bin]:
            continue
        harmonic_power += _lobe_power(spectrum, harmonic_bin, lobe)
        excluded[
            max(0, harmonic_bin - lobe) : harmonic_bin + lobe + 1
        ] = True

    in_band = np.zeros(spectrum.n_bins, dtype=bool)
    in_band[: band_bin + 1] = True
    noise_bins = in_band & ~excluded
    noise_power = float(np.sum(spectrum.power[noise_bins]))

    return ToneMetrics(
        fundamental_frequency=f0,
        signal_power=signal_power,
        harmonic_power=harmonic_power,
        noise_power=noise_power,
        bandwidth=band,
    )


def snr_db(
    spectrum: Spectrum,
    fundamental_frequency: float | None = None,
    bandwidth: float | None = None,
) -> float:
    """Return the SNR in dB of a single-tone spectrum (harmonics excluded)."""
    return measure_tone(spectrum, fundamental_frequency, bandwidth).snr_db


def thd_db(
    spectrum: Spectrum,
    fundamental_frequency: float | None = None,
    bandwidth: float | None = None,
    n_harmonics: int = 6,
) -> float:
    """Return the THD in dB below the carrier of a single-tone spectrum."""
    return measure_tone(
        spectrum, fundamental_frequency, bandwidth, n_harmonics=n_harmonics
    ).thd_db


def sndr_db(
    spectrum: Spectrum,
    fundamental_frequency: float | None = None,
    bandwidth: float | None = None,
) -> float:
    """Return the SNDR ("Signal/(Noise+THD)") in dB of a single-tone spectrum."""
    return measure_tone(spectrum, fundamental_frequency, bandwidth).sndr_db
