"""Dynamic-range extraction from an amplitude sweep.

The converter dynamic range is defined as the input-level span between
full scale and the level at which SNDR crosses 0 dB.  In the
noise-limited regime SNDR rises 1 dB per dB of input, so the standard
extraction (the one behind the paper's "about 10.5 bits") fits the
linear low-level portion of the Fig. 7 curve and extrapolates it to
0 dB SNDR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.analysis.sweeps import AmplitudeSweepResult

__all__ = ["LinearFit", "linear_fit_through_noise", "dynamic_range_from_sweep"]


@dataclass(frozen=True)
class LinearFit:
    """A least-squares line ``y = slope * x + intercept``.

    Attributes
    ----------
    slope:
        dB of SNDR per dB of input level; ~1.0 when noise-limited.
    intercept:
        SNDR at 0 dB input if the linear region extended that far.
    """

    slope: float
    intercept: float

    def crossing(self, y_value: float) -> float:
        """Return the x at which the line reaches ``y_value``.

        Raises
        ------
        AnalysisError
            If the slope is zero.
        """
        if self.slope == 0.0:
            raise AnalysisError("cannot find crossing of a flat line")
        return (y_value - self.intercept) / self.slope


def linear_fit_through_noise(
    levels_db: np.ndarray,
    sndr_db: np.ndarray,
    max_level_db: float = -20.0,
    min_sndr_db: float = 3.0,
) -> LinearFit:
    """Fit the noise-limited (linear) region of an SNDR-vs-level curve.

    Parameters
    ----------
    levels_db:
        Input levels in dB relative to full scale.
    sndr_db:
        Measured SNDR at each level.
    max_level_db:
        Only levels at or below this are used, keeping the fit clear of
        the distortion/overload region near full scale.
    min_sndr_db:
        Points with SNDR below this are dropped: once the tone is buried
        in noise the measured SNDR saturates near 0 dB and would bias
        the fit.

    Raises
    ------
    AnalysisError
        If fewer than two points survive the selection.
    """
    levels = np.asarray(levels_db, dtype=float)
    sndr = np.asarray(sndr_db, dtype=float)
    if levels.shape != sndr.shape:
        raise AnalysisError(
            f"levels and sndr shapes differ: {levels.shape} vs {sndr.shape}"
        )
    mask = (levels <= max_level_db) & (sndr >= min_sndr_db)
    if int(np.count_nonzero(mask)) < 2:
        raise AnalysisError(
            "not enough points in the linear region to fit "
            f"(selected {int(np.count_nonzero(mask))})"
        )
    slope, intercept = np.polyfit(levels[mask], sndr[mask], 1)
    return LinearFit(slope=float(slope), intercept=float(intercept))


def dynamic_range_from_sweep(
    sweep: AmplitudeSweepResult,
    max_level_db: float = -20.0,
    min_sndr_db: float = 3.0,
) -> float:
    """Return the dynamic range in dB extracted from an amplitude sweep.

    DR is the span from 0 dB (full scale) down to the extrapolated input
    level at which SNDR = 0 dB: ``DR = -level(SNDR=0)``.

    Raises
    ------
    AnalysisError
        If the linear region cannot be fitted.
    """
    fit = linear_fit_through_noise(
        sweep.levels_db, sweep.sndr_db, max_level_db, min_sndr_db
    )
    return -fit.crossing(0.0)
