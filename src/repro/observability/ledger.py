"""The persistent run ledger: the repo's memory of its own runs.

Every comparison before this module existed was against a *single*
golden baseline -- the repo had no trajectory.  The ledger fixes that:
an append-only JSONL file under ``.repro/ledger/`` that ``repro
report``, ``repro sweep``, ``repro bench-gate`` and the benchmark
harness automatically append to, one entry per run, each carrying the
run's payload (manifest, sweep table, bench record or gate verdict)
plus full provenance (git SHA, dirty flag, hostname, CPU count,
versions, argv).

Entries are **content-addressed**: the ``entry_id`` is the SHA-256 of
the entry's canonical JSON (everything except the id itself), so the
same measurement appended twice is stored once, and an entry can be
cited unambiguously across machines.  The file is only ever appended
to -- one ``json.dumps`` line per entry, written atomically via a
single buffered write -- and a torn trailing line (crash mid-append)
is skipped on read rather than poisoning the history.

The cross-run analytics in :mod:`repro.observability.trend` consume
this file; ``repro history <design>`` renders it.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

from repro.errors import ObservabilityError

__all__ = [
    "LEDGER_SCHEMA",
    "LEDGER_ENV_DIR",
    "DEFAULT_LEDGER_DIRNAME",
    "LedgerEntry",
    "RunLedger",
    "entry_id_for",
]

#: Schema identifier of one ledger entry line.
LEDGER_SCHEMA = "repro.observability/ledger-entry/v1"

#: Environment variable overriding the default ledger directory.
LEDGER_ENV_DIR = "REPRO_LEDGER_DIR"

#: Default ledger directory, relative to the working directory.
DEFAULT_LEDGER_DIRNAME = os.path.join(".repro", "ledger")

#: Entry kinds the ledger currently stores.  The set is advisory --
#: unknown kinds load fine (future writers must not strand old readers).
KNOWN_KINDS = ("report", "sweep", "bench", "bench-gate")


def _canonical_json(payload: object) -> str:
    """Return the canonical (sorted, compact) JSON encoding."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def entry_id_for(
    kind: str, design: str | None, payload: Mapping[str, object]
) -> str:
    """Return the content address of an entry's identity-bearing parts.

    Provenance is deliberately *excluded* from the hash: the same
    measurement re-run at a later timestamp (or re-written with a
    richer provenance schema) is the same content.  What distinguishes
    runs in trend queries is the provenance stored *on* the entry, not
    the address.
    """
    identity = {"kind": kind, "design": design, "payload": dict(payload)}
    try:
        encoded = _canonical_json(identity).encode()
    except (TypeError, ValueError) as exc:
        raise ObservabilityError(
            f"ledger payload for kind {kind!r} is not JSON-serializable: {exc}"
        ) from exc
    return f"sha256:{hashlib.sha256(encoded).hexdigest()}"


@dataclass(frozen=True)
class LedgerEntry:
    """One immutable ledger line.

    Attributes
    ----------
    entry_id:
        Content address (``sha256:<hex>``) of kind+design+payload.
    kind:
        What produced the entry (``report``, ``sweep``, ``bench``,
        ``bench-gate``).
    design:
        Design label for design-scoped entries; None for e.g. a
        bench-gate verdict covering the whole suite.
    payload:
        The entry's document: a run manifest dict, a sweep table, a
        single benchmark telemetry record, or a gate verdict.
    provenance:
        The producing process's provenance block
        (:meth:`repro.metrics.provenance.Provenance.as_dict` output).
    """

    entry_id: str
    kind: str
    design: str | None
    payload: Mapping[str, object]
    provenance: Mapping[str, object]

    @property
    def timestamp(self) -> str:
        """Return the provenance timestamp (``"unknown"`` when absent)."""
        raw = self.provenance.get("timestamp")
        return raw if isinstance(raw, str) else "unknown"

    @property
    def git_sha(self) -> str:
        """Return the provenance git SHA (``"unknown"`` when absent)."""
        raw = self.provenance.get("git_sha")
        return raw if isinstance(raw, str) else "unknown"

    def as_dict(self) -> dict[str, object]:
        """Return the entry as its JSON line object."""
        return {
            "schema": LEDGER_SCHEMA,
            "entry_id": self.entry_id,
            "kind": self.kind,
            "design": self.design,
            "payload": dict(self.payload),
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "LedgerEntry":
        """Rebuild an entry from its JSON line.

        Raises
        ------
        ObservabilityError
            If the line is not a well-formed ledger entry.
        """
        schema = data.get("schema")
        if schema != LEDGER_SCHEMA:
            raise ObservabilityError(
                f"not a ledger entry: schema {schema!r}, "
                f"expected {LEDGER_SCHEMA!r}"
            )
        kind = data.get("kind")
        if not isinstance(kind, str) or not kind:
            raise ObservabilityError(
                f"ledger entry kind must be a non-empty string, got {kind!r}"
            )
        design = data.get("design")
        if design is not None and not isinstance(design, str):
            raise ObservabilityError(
                f"ledger entry design must be a string or null, got {design!r}"
            )
        payload = data.get("payload")
        if not isinstance(payload, dict):
            raise ObservabilityError("ledger entry has no payload object")
        provenance = data.get("provenance")
        entry_id = data.get("entry_id")
        return cls(
            entry_id=(
                entry_id
                if isinstance(entry_id, str) and entry_id
                else entry_id_for(kind, design, payload)
            ),
            kind=kind,
            design=design,
            payload=payload,
            provenance=provenance if isinstance(provenance, dict) else {},
        )


class RunLedger:
    """Append-only, content-addressed run history on disk.

    Parameters
    ----------
    directory:
        Ledger root.  Defaults to ``$REPRO_LEDGER_DIR`` when set, else
        ``.repro/ledger`` under the working directory.  Created on
        first append, not on construction -- instantiating a ledger to
        *read* never touches the filesystem.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        if directory is None:
            directory = os.environ.get(LEDGER_ENV_DIR) or DEFAULT_LEDGER_DIRNAME
        self.directory = Path(directory)
        self.path = self.directory / "ledger.jsonl"
        self._known_ids: set[str] | None = None

    # -- writing -------------------------------------------------------

    def append(
        self,
        kind: str,
        payload: Mapping[str, object],
        design: str | None = None,
        provenance: Mapping[str, object] | None = None,
    ) -> LedgerEntry | None:
        """Append one entry; return it, or None when deduplicated.

        The entry id is computed from the content; an id already in
        the ledger is *not* appended again (re-running ``repro
        bench-gate`` on an unchanged telemetry file adds nothing), so
        the history stays one line per distinct measurement.

        Raises
        ------
        ObservabilityError
            If the payload is not JSON-serializable.
        """
        if provenance is None:
            # Imported lazily: repro.metrics imports the runtime layer,
            # which imports repro.observability -- an eager import here
            # would be circular.
            from repro.metrics.provenance import collect_provenance

            provenance = collect_provenance().as_dict()
        entry = LedgerEntry(
            entry_id=entry_id_for(kind, design, payload),
            kind=kind,
            design=design,
            payload=dict(payload),
            provenance=dict(provenance),
        )
        try:
            line = json.dumps(entry.as_dict(), sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise ObservabilityError(
                f"ledger payload for kind {kind!r} is not JSON-serializable: {exc}"
            ) from exc
        if entry.entry_id in self._ids():
            return None
        self.directory.mkdir(parents=True, exist_ok=True)
        # One write call per line: POSIX O_APPEND keeps concurrent
        # appenders (parallel bench sessions) from interleaving bytes.
        with self.path.open("a") as handle:
            handle.write(line + "\n")
        self._ids().add(entry.entry_id)
        return entry

    # -- reading -------------------------------------------------------

    def _ids(self) -> set[str]:
        if self._known_ids is None:
            self._known_ids = {entry.entry_id for entry in self.entries()}
        return self._known_ids

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def entries(
        self, design: str | None = None, kind: str | None = None
    ) -> Iterator[LedgerEntry]:
        """Yield entries in append order, optionally filtered.

        Malformed lines (a torn tail from a crash mid-append, a hand
        edit) are skipped, never fatal: the ledger must stay readable
        after any single bad write.
        """
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return
        except OSError as exc:
            raise ObservabilityError(
                f"cannot read ledger {self.path}: {exc}"
            ) from exc
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(data, dict):
                continue
            try:
                entry = LedgerEntry.from_dict(data)
            except ObservabilityError:
                continue
            if design is not None and entry.design != design:
                continue
            if kind is not None and entry.kind != kind:
                continue
            yield entry

    def designs(self) -> list[str]:
        """Return every design with at least one entry, sorted."""
        return sorted(
            {entry.design for entry in self.entries() if entry.design is not None}
        )
