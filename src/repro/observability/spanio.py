"""Serializable span subtrees: telemetry across the process boundary.

:class:`~repro.telemetry.spans.Span` objects hold wall-clock state and
parent links, so they never travel through ``pickle`` to worker
processes.  What *does* travel is this module's plain-dict encoding:

* a worker finishes its spans, encodes them with :func:`span_to_dict`
  and ships them (plus its instrument snapshot) back inside a
  :class:`WorkerTelemetry` payload attached to the shard result;
* the parent rebuilds the subtree with :func:`span_from_dict` and
  grafts it under its own open span (:func:`graft_spans`), so
  ``render_span_tree`` shows one merged tree: the parent's sweep span
  with per-shard worker children carrying real worker-side wall time,
  queue wait and chunk sizes.

Rebuilt spans are *finished structural* spans: their ``duration_s`` is
fixed to the worker's measurement and they can never be re-started.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import ObservabilityError
from repro.telemetry.spans import Span

__all__ = [
    "WorkerTelemetry",
    "span_to_dict",
    "span_from_dict",
    "graft_spans",
]


def _jsonable(value: object) -> object:
    """Coerce an attribute value to something JSON/pickle friendly."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def span_to_dict(span: Span) -> dict[str, object]:
    """Encode a span subtree as a plain JSON-ready dictionary."""
    return {
        "name": span.name,
        "samples": span.samples,
        "duration_s": span.duration_s,
        "attrs": {key: _jsonable(value) for key, value in span.attrs.items()},
        "children": [span_to_dict(child) for child in span.children],
    }


def span_from_dict(data: Mapping[str, object]) -> Span:
    """Rebuild a span subtree from :func:`span_to_dict` output.

    Raises
    ------
    ObservabilityError
        If the record is not a well-formed span encoding.
    """
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise ObservabilityError(
            f"serialized span has no name (got {name!r})"
        )
    samples = data.get("samples")
    if samples is not None and not isinstance(samples, int):
        raise ObservabilityError(
            f"serialized span {name!r} has non-integer samples {samples!r}"
        )
    duration = data.get("duration_s")
    if duration is not None and not isinstance(duration, (int, float)):
        raise ObservabilityError(
            f"serialized span {name!r} has non-numeric duration {duration!r}"
        )
    attrs = data.get("attrs")
    span = Span(name, samples=samples)
    if isinstance(attrs, Mapping):
        span.attrs.update({str(key): value for key, value in attrs.items()})
    span.duration_s = float(duration) if duration is not None else None
    children = data.get("children")
    if isinstance(children, Iterable) and not isinstance(children, (str, bytes)):
        for child in children:
            if not isinstance(child, Mapping):
                raise ObservabilityError(
                    f"serialized span {name!r} has a non-object child"
                )
            span.children.append(span_from_dict(child))
    return span


def graft_spans(
    parent: Span, records: Iterable[Mapping[str, object]]
) -> list[Span]:
    """Rebuild serialized spans and attach them under ``parent``.

    Returns the grafted spans so the caller can annotate them (the
    sweep runner stamps each shard's engine and lane accounting on its
    grafted root).
    """
    grafted = [span_from_dict(record) for record in records]
    parent.children.extend(grafted)
    return grafted


@dataclass(frozen=True)
class WorkerTelemetry:
    """One worker call's telemetry, shipped back with its result.

    Attributes
    ----------
    spans:
        Serialized finished span subtrees (:func:`span_to_dict`), in
        creation order.  For an executor shard this is the single
        ``shard:<index>`` root covering the whole worker call.
    instruments:
        The worker's instrument-registry snapshot
        (:meth:`~repro.observability.instruments.InstrumentRegistry.snapshot`),
        merged into the parent registry on receipt.
    events:
        Live progress events the worker buffered
        (:class:`~repro.observability.live.EventRecorder` records:
        span start/finish plus one instrument-delta event per chunk),
        replayed into the parent's
        :class:`~repro.observability.live.EventStream` sorted by the
        worker's wall clock, so a ``--jobs N`` sweep tails one merged,
        monotonically-ordered timeline.
    """

    spans: tuple[dict[str, object], ...]
    instruments: dict[str, object]
    events: tuple[dict[str, object], ...] = ()
