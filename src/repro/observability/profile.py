"""Profile aggregation: collapse a span tree into self/total time.

A span tree answers "what happened, in order"; a profile answers
"where did the time go".  :func:`aggregate_profile` collapses any span
forest into per-name rows of call count, total (inclusive) time and
self (exclusive) time -- self time being a span's duration minus its
timed children's, clamped at zero for the rare clock-skew case.
Untimed structural spans contribute call counts and samples but no
time.

:func:`collapsed_stacks` renders the same forest in the collapsed
flamegraph format (``root;child;leaf <microseconds>``, one line per
unique stack, self time as the value) that flamegraph.pl, speedscope
and friends consume directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.telemetry.spans import Span

__all__ = [
    "ProfileRow",
    "aggregate_profile",
    "render_profile_table",
    "collapsed_stacks",
]


@dataclass(frozen=True)
class ProfileRow:
    """One span name's aggregated timing.

    Attributes
    ----------
    name:
        Span name (``measure``, ``device``, ``shard:0``...).
    count:
        How many spans carried this name.
    total_s:
        Inclusive wall time: the sum of these spans' durations.
    self_s:
        Exclusive wall time: duration minus timed children, summed.
    samples:
        Total samples the spans accounted, or None when none did.
    """

    name: str
    count: int
    total_s: float
    self_s: float
    samples: int | None

    def as_dict(self) -> dict[str, object]:
        """Return the row as a JSON-ready dictionary."""
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "samples": self.samples,
        }


def _self_time(span: Span) -> float:
    """Return a span's exclusive time (0 for untimed spans)."""
    if span.duration_s is None:
        return 0.0
    children = sum(
        child.duration_s
        for child in span.children
        if child.duration_s is not None
    )
    return max(0.0, span.duration_s - children)


def aggregate_profile(roots: Iterable[Span]) -> list[ProfileRow]:
    """Collapse a span forest into per-name profile rows.

    Rows are sorted by self time descending, then name, so the table
    reads top-down as "what to optimise next".
    """
    counts: dict[str, int] = {}
    totals: dict[str, float] = {}
    selves: dict[str, float] = {}
    samples: dict[str, int | None] = {}
    for root in roots:
        for _, span in root.walk():
            name = span.name
            counts[name] = counts.get(name, 0) + 1
            totals[name] = totals.get(name, 0.0) + (span.duration_s or 0.0)
            selves[name] = selves.get(name, 0.0) + _self_time(span)
            if span.samples is not None:
                prior = samples.get(name)
                samples[name] = (prior or 0) + span.samples
            else:
                samples.setdefault(name, None)
    rows = [
        ProfileRow(
            name=name,
            count=counts[name],
            total_s=totals[name],
            self_s=selves[name],
            samples=samples[name],
        )
        for name in counts
    ]
    rows.sort(key=lambda row: (-row.self_s, row.name))
    return rows


def render_profile_table(rows: Sequence[ProfileRow]) -> str:
    """Render profile rows as a paper-style text table."""
    from repro.reporting.tables import render_table

    grand_self = sum(row.self_s for row in rows)
    body = []
    for row in rows:
        share = 100.0 * row.self_s / grand_self if grand_self > 0.0 else 0.0
        body.append(
            (
                row.name,
                str(row.count),
                f"{row.total_s * 1e3:.1f}",
                f"{row.self_s * 1e3:.1f}",
                f"{share:.1f}%",
                str(row.samples) if row.samples is not None else "-",
            )
        )
    if not body:
        body = [("-", "-", "-", "-", "-", "no spans recorded")]
    return render_table(
        "profile (self time, descending)",
        ("span", "calls", "total [ms]", "self [ms]", "self %", "samples"),
        body,
    )


def collapsed_stacks(roots: Iterable[Span]) -> str:
    """Render a span forest as collapsed flamegraph stacks.

    One line per unique stack: semicolon-joined span names from the
    root, a space, then the stack's *self* time in integer
    microseconds.  Untimed structural spans still appear as frames
    (their children's time nests under them); stacks whose rounded
    self time is zero are dropped.  Lines are sorted for determinism.
    """
    stacks: dict[str, int] = {}

    def visit(span: Span, prefix: str) -> None:
        frame = f"{prefix};{span.name}" if prefix else span.name
        value = int(round(_self_time(span) * 1e6))
        if value > 0:
            stacks[frame] = stacks.get(frame, 0) + value
        for child in span.children:
            visit(child, frame)

    for root in roots:
        visit(root, "")
    return "\n".join(
        f"{frame} {value}" for frame, value in sorted(stacks.items())
    ) + ("\n" if stacks else "")
