"""Cross-process runtime observability.

The legibility layer over :mod:`repro.runtime` and
:mod:`repro.telemetry` (stdlib + numpy only):

* :mod:`repro.observability.instruments` -- the process-wide registry
  of named counters, gauges and fixed-bucket histograms with labeled
  series, snapshot/merge semantics and JSON / Prometheus-style text
  exposition;
* :mod:`repro.observability.spanio` -- serializable span subtrees and
  the :class:`WorkerTelemetry` payload sharded workers ship back, so
  the parent's ``render_span_tree`` shows one merged tree;
* :mod:`repro.observability.profile` -- collapse any span forest into
  a self/total-time table and collapsed-stack flamegraph text;
* :mod:`repro.observability.stats` -- provenance-stamped snapshot
  documents and the ``repro stats --diff`` verdict gate;
* :mod:`repro.observability.ledger` -- the append-only, content-
  addressed JSONL run ledger every report/sweep/bench run appends to;
* :mod:`repro.observability.trend` -- rolling median/MAD drift
  detection over the ledger, behind ``repro history`` / ``repro trend``;
* :mod:`repro.observability.live` -- bounded-overhead live event
  streaming (span/instrument JSONL), across process boundaries.

See ``docs/OBSERVABILITY.md`` for the instrument naming convention and
the cross-process propagation contract.
"""

from repro.observability.instruments import (
    DEFAULT_BUCKETS,
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    InstrumentRegistry,
    get_registry,
    render_prometheus,
    reset_registry,
    set_registry,
    snapshot_delta,
    use_registry,
)
from repro.observability.profile import (
    ProfileRow,
    aggregate_profile,
    collapsed_stacks,
    render_profile_table,
)
from repro.observability.ledger import (
    LEDGER_SCHEMA,
    LedgerEntry,
    RunLedger,
    entry_id_for,
)
from repro.observability.live import (
    EVENT_SCHEMA,
    EventBuffer,
    EventRecorder,
    EventSink,
    EventStream,
    open_event_stream,
)
from repro.observability.spanio import (
    WorkerTelemetry,
    graft_spans,
    span_from_dict,
    span_to_dict,
)

#: Names re-exported lazily from :mod:`repro.observability.stats`.
#: That module shares the verdict ladder with ``repro.metrics.compare``,
#: and ``repro.metrics`` imports the runtime layer (which imports this
#: package) -- an eager import here would be circular.  Import from
#: ``repro.observability.stats`` directly for precise static types.
_STATS_EXPORTS = frozenset(
    {
        "GATED_COUNTERS",
        "PROFILE_SCHEMA",
        "STATS_SCHEMA",
        "InstrumentDiff",
        "StatsDiffReport",
        "diff_snapshots",
        "load_stats_json",
        "write_stats_json",
    }
)

#: Names re-exported lazily from :mod:`repro.observability.trend`,
#: which imports ``repro.metrics.compare`` for the same reason.
_TREND_EXPORTS = frozenset(
    {
        "TREND_SCHEMA",
        "MetricSeries",
        "TrendFinding",
        "TrendReport",
        "analyze_ledger",
        "analyze_series",
        "collect_series",
        "render_history",
        "sparkline",
    }
)


def __getattr__(name: str) -> object:
    if name in _STATS_EXPORTS:
        from repro.observability import stats

        return getattr(stats, name)
    if name in _TREND_EXPORTS:
        from repro.observability import trend

        return getattr(trend, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

__all__ = [
    "DEFAULT_BUCKETS",
    "EVENT_SCHEMA",
    "LEDGER_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "STATS_SCHEMA",
    "PROFILE_SCHEMA",
    "GATED_COUNTERS",
    "TREND_SCHEMA",
    "Counter",
    "EventBuffer",
    "EventRecorder",
    "EventSink",
    "EventStream",
    "Gauge",
    "Histogram",
    "InstrumentRegistry",
    "InstrumentDiff",
    "LedgerEntry",
    "MetricSeries",
    "RunLedger",
    "StatsDiffReport",
    "ProfileRow",
    "TrendFinding",
    "TrendReport",
    "WorkerTelemetry",
    "aggregate_profile",
    "analyze_ledger",
    "analyze_series",
    "collapsed_stacks",
    "collect_series",
    "diff_snapshots",
    "entry_id_for",
    "get_registry",
    "graft_spans",
    "load_stats_json",
    "open_event_stream",
    "render_history",
    "render_profile_table",
    "render_prometheus",
    "reset_registry",
    "set_registry",
    "snapshot_delta",
    "span_from_dict",
    "span_to_dict",
    "sparkline",
    "use_registry",
    "write_stats_json",
]
