"""Cross-process runtime observability.

The legibility layer over :mod:`repro.runtime` and
:mod:`repro.telemetry` (stdlib + numpy only):

* :mod:`repro.observability.instruments` -- the process-wide registry
  of named counters, gauges and fixed-bucket histograms with labeled
  series, snapshot/merge semantics and JSON / Prometheus-style text
  exposition;
* :mod:`repro.observability.spanio` -- serializable span subtrees and
  the :class:`WorkerTelemetry` payload sharded workers ship back, so
  the parent's ``render_span_tree`` shows one merged tree;
* :mod:`repro.observability.profile` -- collapse any span forest into
  a self/total-time table and collapsed-stack flamegraph text;
* :mod:`repro.observability.stats` -- provenance-stamped snapshot
  documents and the ``repro stats --diff`` verdict gate.

See ``docs/OBSERVABILITY.md`` for the instrument naming convention and
the cross-process propagation contract.
"""

from repro.observability.instruments import (
    DEFAULT_BUCKETS,
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    InstrumentRegistry,
    get_registry,
    reset_registry,
    set_registry,
    snapshot_delta,
    use_registry,
)
from repro.observability.profile import (
    ProfileRow,
    aggregate_profile,
    collapsed_stacks,
    render_profile_table,
)
from repro.observability.spanio import (
    WorkerTelemetry,
    graft_spans,
    span_from_dict,
    span_to_dict,
)

#: Names re-exported lazily from :mod:`repro.observability.stats`.
#: That module shares the verdict ladder with ``repro.metrics.compare``,
#: and ``repro.metrics`` imports the runtime layer (which imports this
#: package) -- an eager import here would be circular.  Import from
#: ``repro.observability.stats`` directly for precise static types.
_STATS_EXPORTS = frozenset(
    {
        "GATED_COUNTERS",
        "PROFILE_SCHEMA",
        "STATS_SCHEMA",
        "InstrumentDiff",
        "StatsDiffReport",
        "diff_snapshots",
        "load_stats_json",
        "write_stats_json",
    }
)


def __getattr__(name: str) -> object:
    if name in _STATS_EXPORTS:
        from repro.observability import stats

        return getattr(stats, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

__all__ = [
    "DEFAULT_BUCKETS",
    "SNAPSHOT_SCHEMA",
    "STATS_SCHEMA",
    "PROFILE_SCHEMA",
    "GATED_COUNTERS",
    "Counter",
    "Gauge",
    "Histogram",
    "InstrumentRegistry",
    "InstrumentDiff",
    "StatsDiffReport",
    "ProfileRow",
    "WorkerTelemetry",
    "aggregate_profile",
    "collapsed_stacks",
    "diff_snapshots",
    "get_registry",
    "graft_spans",
    "load_stats_json",
    "render_profile_table",
    "reset_registry",
    "set_registry",
    "snapshot_delta",
    "span_from_dict",
    "span_to_dict",
    "use_registry",
    "write_stats_json",
]
