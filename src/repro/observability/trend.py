"""Cross-run trend analytics over the persistent run ledger.

The single-baseline gate (``repro compare``) answers "did this run
regress against the golden numbers"; this module answers the question
the repo could not ask before the ledger existed: "is this metric
*drifting*".  It walks every series the ledger holds -- gated manifest
metrics per design, sweep dynamic ranges, benchmark wall times -- and
applies a robust rolling statistic:

* the **reference** is the rolling median of the series' history
  (excluding the most recent ``sustain`` runs, so the drift being
  tested never contaminates its own reference);
* the **scale** is the MAD (median absolute deviation, scaled to
  sigma), floored at a fraction of the median so a perfectly stable
  history does not turn numerical dust into findings;
* a run is **drifted** when it deviates from the reference by more
  than ``threshold`` scales *in the bad direction* (each metric's
  declared direction: SNDR falling is bad, wall time rising is bad).

The verdict reuses the :class:`~repro.metrics.compare.DiffStatus`
ladder: all of the last ``sustain`` runs drifted -> **REGRESS**
(sustained drift, the CI gate fires); only the newest run drifted ->
**WARN** (single-run noise -- watch it); otherwise **PASS**, with
series too short to judge reported as **INFO**.

``repro trend`` renders the verdicts (``--strict`` promotes warnings,
``--json`` emits the machine document) and ``repro history <design>``
shows the per-design trajectory with sparklines.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from repro.metrics.compare import DiffStatus
from repro.metrics.records import Direction
from repro.observability.ledger import LedgerEntry, RunLedger
from repro.reporting.tables import render_table

__all__ = [
    "TREND_SCHEMA",
    "DEFAULT_WINDOW",
    "DEFAULT_SUSTAIN",
    "DEFAULT_THRESHOLD",
    "MetricSeries",
    "TrendFinding",
    "TrendReport",
    "collect_series",
    "analyze_series",
    "analyze_ledger",
    "render_history",
    "sparkline",
]

#: Schema identifier of a ``repro trend --json`` document.
TREND_SCHEMA = "repro.observability/trend/v1"

#: Rolling-reference length: how many historical runs (before the
#: sustain tail) feed the median/MAD.
DEFAULT_WINDOW = 10

#: How many consecutive drifted runs make the drift "sustained".
DEFAULT_SUSTAIN = 3

#: Drift threshold in robust scales (MAD-sigmas).
DEFAULT_THRESHOLD = 4.0

#: MAD floor as a fraction of |median|: below this, run-to-run scatter
#: is treated as at least 1% of the level so exact-replay histories
#: (deterministic sims produce bit-identical values) don't flag on the
#: first real change of any size in the good direction... the bad
#: direction still needs to clear threshold * floor.
_RELATIVE_SCALE_FLOOR = 0.01

#: Absolute scale floor, guarding series whose median is ~0.
_ABSOLUTE_SCALE_FLOOR = 1e-12

#: Unicode sparkline glyphs, lowest to highest.
_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class MetricSeries:
    """One metric's trajectory through the ledger.

    Attributes
    ----------
    key:
        Stable series key (``modulator2:sndr_db``,
        ``bench:fig7_snr_sweep.wall_s``).
    design:
        Owning design, or None for suite-level series.
    unit:
        Display unit.
    direction:
        Which drift direction is bad.
    values:
        Values in append (run) order.
    timestamps:
        Provenance timestamps aligned with ``values``.
    shas:
        Provenance git SHAs aligned with ``values``.
    """

    key: str
    design: str | None
    unit: str
    direction: Direction
    values: tuple[float, ...]
    timestamps: tuple[str, ...]
    shas: tuple[str, ...]


@dataclass(frozen=True)
class TrendFinding:
    """One series' drift verdict.

    Attributes
    ----------
    series:
        The analyzed series.
    status:
        PASS / WARN / REGRESS / INFO verdict.
    reference:
        Rolling median the tail was judged against (None for INFO).
    scale:
        Robust scale used (MAD-sigma with floors; None for INFO).
    latest:
        Most recent value.
    drift:
        ``latest - reference`` (None for INFO).
    note:
        Human explanation.
    """

    series: MetricSeries
    status: DiffStatus
    reference: float | None
    scale: float | None
    latest: float | None
    drift: float | None
    note: str

    def as_dict(self) -> dict[str, object]:
        """Return the finding as a JSON-ready dictionary."""
        return {
            "key": self.series.key,
            "design": self.series.design,
            "unit": self.series.unit,
            "direction": self.series.direction.value,
            "n_runs": len(self.series.values),
            "values": list(self.series.values),
            "status": self.status.value,
            "reference": self.reference,
            "scale": self.scale,
            "latest": self.latest,
            "drift": self.drift,
            "note": self.note,
        }


def _numeric(value: object) -> float | None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _series_points(
    entries: Sequence[LedgerEntry],
) -> dict[str, list[tuple[float, str, str, str | None, str, Direction]]]:
    """Flatten ledger entries into per-key (value, ts, sha, ...) points."""
    points: dict[
        str, list[tuple[float, str, str, str | None, str, Direction]]
    ] = {}

    def add(
        key: str,
        value: float | None,
        entry: LedgerEntry,
        design: str | None,
        unit: str,
        direction: Direction,
    ) -> None:
        if value is None:
            return
        points.setdefault(key, []).append(
            (value, entry.timestamp, entry.git_sha, design, unit, direction)
        )

    for entry in entries:
        if entry.kind == "report":
            metrics = entry.payload.get("metrics")
            if not isinstance(metrics, list):
                continue
            for record in metrics:
                if not isinstance(record, dict) or not record.get("gate", True):
                    continue
                name = record.get("name")
                if not isinstance(name, str) or not name:
                    continue
                try:
                    direction = Direction.from_name(
                        str(record.get("direction", "target"))
                    )
                except Exception:
                    direction = Direction.TARGET
                add(
                    f"{entry.design}:{name}",
                    _numeric(record.get("value")),
                    entry,
                    entry.design,
                    str(record.get("unit", "")),
                    direction,
                )
        elif entry.kind == "sweep":
            add(
                f"{entry.design}:sweep.dynamic_range_db",
                _numeric(entry.payload.get("dynamic_range_db")),
                entry,
                entry.design,
                "dB",
                Direction.HIGHER,
            )
        elif entry.kind == "bench":
            name = entry.payload.get("benchmark")
            if not isinstance(name, str) or not name:
                continue
            add(
                f"bench:{name}.wall_s",
                _numeric(entry.payload.get("wall_s")),
                entry,
                None,
                "s",
                Direction.LOWER,
            )
    return points


def collect_series(
    ledger: RunLedger, design: str | None = None
) -> list[MetricSeries]:
    """Build every metric series the ledger holds, in key order.

    Parameters
    ----------
    ledger:
        The ledger to read.
    design:
        Restrict to one design's series (bench series, which belong to
        no design, are excluded by a design filter).
    """
    entries = list(ledger.entries())
    series: list[MetricSeries] = []
    for key, items in sorted(_series_points(entries).items()):
        owner = items[0][3]
        if design is not None and owner != design:
            continue
        series.append(
            MetricSeries(
                key=key,
                design=owner,
                unit=items[0][4],
                direction=items[0][5],
                values=tuple(item[0] for item in items),
                timestamps=tuple(item[1] for item in items),
                shas=tuple(item[2] for item in items),
            )
        )
    return series


def analyze_series(
    series: MetricSeries,
    window: int = DEFAULT_WINDOW,
    sustain: int = DEFAULT_SUSTAIN,
    threshold: float = DEFAULT_THRESHOLD,
) -> TrendFinding:
    """Judge one series for drift against its own rolling history.

    The reference median/MAD come from the runs *before* the sustain
    tail (bounded by ``window``), so a 3-run drift is judged against
    the stable history it departed from, not against itself.
    """
    values = series.values
    n = len(values)
    if n < sustain + 2:
        return TrendFinding(
            series=series,
            status=DiffStatus.INFO,
            reference=None,
            scale=None,
            latest=values[-1] if values else None,
            drift=None,
            note=f"insufficient history ({n} run(s), need {sustain + 2})",
        )
    reference_values = values[max(0, n - sustain - window) : n - sustain]
    reference = statistics.median(reference_values)
    mad = statistics.median(
        [abs(value - reference) for value in reference_values]
    )
    scale = max(
        1.4826 * mad,
        abs(reference) * _RELATIVE_SCALE_FLOOR,
        _ABSOLUTE_SCALE_FLOOR,
    )

    def is_bad(value: float) -> bool:
        deviation = (value - reference) / scale
        if series.direction is Direction.HIGHER:
            return deviation < -threshold
        if series.direction is Direction.LOWER:
            return deviation > threshold
        return abs(deviation) > threshold

    tail = values[n - sustain :]
    latest = values[-1]
    drift = latest - reference
    if all(is_bad(value) for value in tail):
        return TrendFinding(
            series=series,
            status=DiffStatus.REGRESS,
            reference=reference,
            scale=scale,
            latest=latest,
            drift=drift,
            note=(
                f"sustained drift: last {sustain} run(s) beyond "
                f"{threshold:g} scales ({scale:.3g} {series.unit}) "
                f"from the rolling median {reference:.4g} {series.unit}"
            ),
        )
    if is_bad(latest):
        return TrendFinding(
            series=series,
            status=DiffStatus.WARN,
            reference=reference,
            scale=scale,
            latest=latest,
            drift=drift,
            note=(
                f"latest run drifted {drift:+.3g} {series.unit} from the "
                f"rolling median; not yet sustained"
            ),
        )
    return TrendFinding(
        series=series,
        status=DiffStatus.PASS,
        reference=reference,
        scale=scale,
        latest=latest,
        drift=drift,
        note="within the rolling band",
    )


class TrendReport:
    """Every series' drift verdict over one ledger."""

    def __init__(
        self,
        findings: list[TrendFinding],
        window: int,
        sustain: int,
        threshold: float,
    ) -> None:
        self.findings = findings
        self.window = window
        self.sustain = sustain
        self.threshold = threshold

    @property
    def regressions(self) -> list[TrendFinding]:
        """Return the REGRESS-status findings."""
        return [f for f in self.findings if f.status is DiffStatus.REGRESS]

    @property
    def warnings(self) -> list[TrendFinding]:
        """Return the WARN-status findings."""
        return [f for f in self.findings if f.status is DiffStatus.WARN]

    def exit_code(self, strict: bool = False) -> int:
        """Return the process exit code (1 on sustained drift)."""
        if self.regressions:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def render_table(self) -> str:
        """Return the verdicts as a paper-style table, worst first."""
        severity = {
            DiffStatus.REGRESS: 0,
            DiffStatus.WARN: 1,
            DiffStatus.PASS: 2,
            DiffStatus.INFO: 3,
        }
        ordered = sorted(
            enumerate(self.findings),
            key=lambda item: (severity[item[1].status], item[0]),
        )
        rows = []
        for _, finding in ordered:
            rows.append(
                (
                    finding.series.key,
                    str(len(finding.series.values)),
                    sparkline(finding.series.values),
                    (
                        f"{finding.reference:.4g}"
                        if finding.reference is not None
                        else "-"
                    ),
                    f"{finding.latest:.4g}" if finding.latest is not None else "-",
                    (
                        f"{finding.drift:+.3g}"
                        if finding.drift is not None
                        else "-"
                    ),
                    finding.status.value,
                    finding.note,
                )
            )
        if not rows:
            rows = [("-", "-", "-", "-", "-", "-", "-", "ledger is empty")]
        return render_table(
            f"trend (window {self.window}, sustain {self.sustain}, "
            f"threshold {self.threshold:g} scales)",
            (
                "series",
                "runs",
                "history",
                "median",
                "latest",
                "drift",
                "status",
                "note",
            ),
            rows,
        )

    def summary(self) -> str:
        """Return a one-line verdict summary."""
        verdict = "REGRESS" if self.regressions else "PASS"
        return (
            f"trend {verdict}: {len(self.findings)} series, "
            f"{len(self.regressions)} sustained drift(s), "
            f"{len(self.warnings)} single-run warning(s)"
        )

    def as_dict(self) -> dict[str, object]:
        """Return the report as a JSON-ready trend document."""
        return {
            "schema": TREND_SCHEMA,
            "window": self.window,
            "sustain": self.sustain,
            "threshold": self.threshold,
            "findings": [finding.as_dict() for finding in self.findings],
        }

    def write_json(self, path: str | Path) -> Path:
        """Write the trend document as indented JSON; return the path."""
        target = Path(path)
        target.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return target


def analyze_ledger(
    ledger: RunLedger,
    design: str | None = None,
    window: int = DEFAULT_WINDOW,
    sustain: int = DEFAULT_SUSTAIN,
    threshold: float = DEFAULT_THRESHOLD,
) -> TrendReport:
    """Analyze every series in a ledger; return the trend report."""
    findings = [
        analyze_series(series, window=window, sustain=sustain, threshold=threshold)
        for series in collect_series(ledger, design=design)
    ]
    return TrendReport(findings, window=window, sustain=sustain, threshold=threshold)


def sparkline(values: Sequence[float], width: int = 16) -> str:
    """Render a numeric series as a fixed-width Unicode sparkline.

    The most recent ``width`` values are shown; a flat series renders
    as a mid-level bar so "no change" and "no data" look different.
    """
    shown = list(values)[-width:]
    if not shown:
        return "-"
    low, high = min(shown), max(shown)
    if high == low:
        return _SPARK_GLYPHS[3] * len(shown)
    span = high - low
    out = []
    for value in shown:
        index = int((value - low) / span * (len(_SPARK_GLYPHS) - 1))
        out.append(_SPARK_GLYPHS[index])
    return "".join(out)


def render_history(
    ledger: RunLedger, design: str, limit: int = 10
) -> str:
    """Render one design's ledger trajectory for ``repro history``.

    Two tables: the per-metric trajectory (sparkline, range, latest)
    and the most recent entries with their provenance, so a developer
    can see both *what moved* and *which commits moved it*.
    """
    series = collect_series(ledger, design=design)
    metric_rows = []
    for item in series:
        metric_rows.append(
            (
                item.key.split(":", 1)[1],
                str(len(item.values)),
                sparkline(item.values),
                f"{min(item.values):.4g}",
                f"{max(item.values):.4g}",
                f"{item.values[-1]:.4g} {item.unit}",
            )
        )
    if not metric_rows:
        metric_rows = [("-", "-", "-", "-", "-", "no ledger history")]
    metrics_table = render_table(
        f"history: {design}",
        ("metric", "runs", "history", "min", "max", "latest"),
        metric_rows,
    )

    entries = [e for e in ledger.entries(design=design)]
    entry_rows = []
    for entry in entries[-limit:]:
        dirty = entry.provenance.get("git_dirty")
        host = entry.provenance.get("hostname")
        entry_rows.append(
            (
                entry.timestamp,
                entry.kind,
                entry.git_sha[:12] + (" (dirty)" if dirty else ""),
                str(host) if isinstance(host, str) and host else "-",
                entry.entry_id[:19],
            )
        )
    if not entry_rows:
        entry_rows = [("-", "-", "-", "-", "no entries")]
    entries_table = render_table(
        f"entries: {design} (last {limit})",
        ("timestamp", "kind", "commit", "host", "entry"),
        entry_rows,
    )
    return metrics_table + "\n" + entries_table
