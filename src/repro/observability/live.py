"""Live progress streaming: span and instrument events as JSONL.

Long sweeps used to be silent until they finished.  This module tails
a run's progress as it happens: every span open/close (and each
sharded worker's instrument delta) becomes one small JSON line on a
file, file descriptor or stream, cheap enough to leave on in
production -- events fire per *span* and per *shard*, never per
sample, so a 64K-point report emits a few dozen lines while
simulating tens of thousands of samples per second.

Two pieces:

* :class:`EventStream` -- the parent-side sink.  It assigns a strictly
  increasing ``seq`` to every event, clamps wall-clock timestamps to
  be non-decreasing (worker clocks can disagree by microseconds), and
  writes one JSON object per line, flushing as it goes so ``tail -f``
  and the future service layer see events live.
* :class:`EventRecorder` -- the worker-side buffer.  Sharded workers
  cannot write to the parent's stream, so they record their events in
  memory and ship them back inside the
  :class:`~repro.observability.spanio.WorkerTelemetry` payload; the
  parent replays them (sorted by worker wall clock) into its own
  stream, producing one merged, monotonically-ordered timeline for a
  ``--jobs N`` sweep.

A :class:`~repro.telemetry.session.TelemetrySession` constructed with
``stream=`` emits ``span_start``/``span_finish`` events for every span
opened on it; ``repro report --events PATH`` and
``repro sweep --follow`` wire this up from the CLI.  Timestamps are
``time.time()`` based -- ``perf_counter`` is not comparable across
processes, while same-host wall clocks are.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path
from typing import IO, Iterable, Mapping, Protocol, Sequence

from repro.errors import ObservabilityError

__all__ = [
    "EVENT_SCHEMA",
    "EventBuffer",
    "EventSink",
    "EventStream",
    "TextSink",
    "EventRecorder",
    "open_event_stream",
]

#: Schema identifier stamped on the stream's header event.
EVENT_SCHEMA = "repro.observability/event-stream/v1"


class TextSink(Protocol):
    """A writable text handle (open file, stderr, :class:`EventBuffer`)."""

    def write(self, text: str) -> int:
        """Write text; return the number of characters written."""
        ...

    def flush(self) -> None:
        """Push buffered text through."""
        ...


class EventSink(Protocol):
    """Anything that accepts live events (stream or worker buffer)."""

    def emit(
        self, event: str, name: str, t: float | None = None, **fields: object
    ) -> dict[str, object]:
        """Record one event; return the record as emitted."""
        ...

    def emit_merged(
        self, records: Iterable[Mapping[str, object]]
    ) -> list[dict[str, object]]:
        """Absorb a batch of worker-recorded events."""
        ...


def _jsonable(value: object) -> object:
    """Coerce a field value to something JSON-serializable."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _build_record(
    event: str, name: str, t: float | None, fields: Mapping[str, object]
) -> dict[str, object]:
    if not event:
        raise ObservabilityError("event type must be non-empty")
    record: dict[str, object] = {
        "t": float(t) if t is not None else time.time(),
        "event": event,
        "name": name,
    }
    for key, value in fields.items():
        record[key] = _jsonable(value)
    return record


class EventRecorder:
    """Worker-side event buffer: collect now, replay in the parent.

    The recorder is deliberately dumb -- no seq numbers, no clamping --
    because ordering is the *parent's* job: worker events are merged
    into the parent's :class:`EventStream`, which assigns sequence
    numbers after sorting by wall clock.
    """

    def __init__(self) -> None:
        self.events: list[dict[str, object]] = []

    def emit(
        self, event: str, name: str, t: float | None = None, **fields: object
    ) -> dict[str, object]:
        """Buffer one event; return the record."""
        record = _build_record(event, name, t, fields)
        self.events.append(record)
        return record

    def emit_merged(
        self, records: Iterable[Mapping[str, object]]
    ) -> list[dict[str, object]]:
        """Buffer a batch of already-recorded events verbatim."""
        absorbed = [dict(record) for record in records]
        self.events.extend(absorbed)
        return absorbed


class EventBuffer:
    """A thread-safe, tailable in-memory line buffer.

    This is the sink the simulation service hangs each job's
    :class:`EventStream` on: the stream writes JSONL lines into the
    buffer from the worker thread, while any number of HTTP readers
    tail it concurrently -- :meth:`wait` blocks until new lines arrive
    or the buffer closes, so ``GET /jobs/<id>/events?follow=1``
    streams a live run without polling.

    The buffer implements the ``write``/``flush`` file-handle protocol
    :class:`EventStream` expects, collecting *complete* lines only (a
    partial write is held back until its newline lands), so readers
    never observe a torn JSON object.
    """

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._partial = ""
        self._closed = False
        self._cond = threading.Condition()

    # -- handle protocol (writer side) ---------------------------------

    def write(self, text: str) -> int:
        """Append text; complete lines become visible to readers.

        Raises
        ------
        ObservabilityError
            If the buffer was already closed.
        """
        with self._cond:
            if self._closed:
                raise ObservabilityError("EventBuffer is closed")
            self._partial += text
            *complete, self._partial = self._partial.split("\n")
            if complete:
                self._lines.extend(complete)
                self._cond.notify_all()
        return len(text)

    def flush(self) -> None:
        """No-op: lines are visible as soon as their newline lands."""

    def close(self) -> None:
        """Mark the buffer complete; wakes every blocked reader."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- reader side ---------------------------------------------------

    @property
    def closed(self) -> bool:
        """Return whether the writer finished the buffer."""
        return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._lines)

    def lines(self, start: int = 0) -> list[str]:
        """Return a snapshot of the buffered lines from ``start``."""
        with self._cond:
            return self._lines[start:]

    def wait(self, start: int = 0, timeout: float | None = None) -> list[str]:
        """Return lines from ``start``, blocking while none exist.

        Returns immediately when lines past ``start`` are already
        buffered or the buffer is closed; otherwise blocks up to
        ``timeout`` seconds (forever when None) for the next write.
        An empty list therefore means "no new lines yet" -- check
        :attr:`closed` to distinguish a quiet stream from a finished
        one.
        """
        with self._cond:
            if len(self._lines) <= start and not self._closed:
                self._cond.wait(timeout=timeout)
            return self._lines[start:]


class EventStream:
    """Append JSONL events to one or more open text handles.

    Parameters
    ----------
    handles:
        Open text handles to write to (a file, ``sys.stderr``, a
        pipe).  The stream never closes handles it was handed; use
        :func:`open_event_stream` for path management.
    source:
        Label stamped on the header event (the run's design name).

    Guarantees:

    * ``seq`` is strictly increasing across every event written;
    * ``t`` is non-decreasing: an event carrying an earlier wall-clock
      time than its predecessor (worker clock skew) is clamped up, so
      the tailed file is always a monotonically-ordered timeline;
    * each event is one line, flushed immediately -- a crash loses at
      most the event being written.
    """

    def __init__(
        self, handles: Sequence[TextSink], source: str = "run"
    ) -> None:
        if not handles:
            raise ObservabilityError("EventStream needs at least one handle")
        self._handles = tuple(handles)
        self._seq = 0
        self._last_t = 0.0
        self.source = source
        self.emit("stream_start", source, schema=EVENT_SCHEMA)

    @property
    def seq(self) -> int:
        """Return the number of events emitted so far."""
        return self._seq

    def emit(
        self, event: str, name: str, t: float | None = None, **fields: object
    ) -> dict[str, object]:
        """Write one event line to every handle; return the record."""
        record = _build_record(event, name, t, fields)
        return self._write(record)

    def emit_merged(
        self, records: Iterable[Mapping[str, object]]
    ) -> list[dict[str, object]]:
        """Replay worker-recorded events, sorted by their wall clock.

        This is the cross-process merge: each worker's
        :class:`EventRecorder` buffer arrives with the shard's
        :class:`~repro.observability.spanio.WorkerTelemetry`, and the
        parent emits all of them in one sorted pass so interleaved
        shards produce a single coherent timeline.
        """
        prepared: list[dict[str, object]] = []
        for record in records:
            raw_t = record.get("t")
            t = float(raw_t) if isinstance(raw_t, (int, float)) else time.time()
            event = str(record.get("event", ""))
            name = str(record.get("name", ""))
            fields = {
                key: value
                for key, value in record.items()
                if key not in ("t", "event", "name", "seq")
            }
            prepared.append(_build_record(event, name, t, fields))
        prepared.sort(key=lambda r: float(r["t"]))  # type: ignore[arg-type]
        return [self._write(record) for record in prepared]

    def _write(self, record: dict[str, object]) -> dict[str, object]:
        t = float(record["t"])  # type: ignore[arg-type]
        if t < self._last_t:
            t = self._last_t
            record["t"] = t
        self._last_t = t
        record["seq"] = self._seq
        self._seq += 1
        line = json.dumps(record, sort_keys=False)
        for handle in self._handles:
            handle.write(line + "\n")
            handle.flush()
        return record

    def finish(self) -> dict[str, object]:
        """Emit the closing ``stream_finish`` event."""
        return self.emit("stream_finish", self.source, n_events=self._seq)


class _OwnedEventStream(EventStream):
    """An :class:`EventStream` that closes the files it opened."""

    def __init__(
        self,
        handles: Sequence[TextSink],
        owned: Sequence[IO[str]],
        source: str,
    ) -> None:
        self._owned = tuple(owned)
        super().__init__(handles, source=source)

    def close(self) -> None:
        """Emit ``stream_finish`` and close owned files."""
        self.finish()
        for handle in self._owned:
            handle.close()

    def __enter__(self) -> "_OwnedEventStream":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def open_event_stream(
    path: str | Path | None = None,
    follow: bool = False,
    source: str = "run",
) -> _OwnedEventStream | None:
    """Open the event stream a CLI invocation asked for, if any.

    Parameters
    ----------
    path:
        ``--events PATH`` target; ``"-"`` means stdout.  The file is
        truncated (a stream is one run's timeline, not a ledger).
    follow:
        ``--follow``: also mirror events to stderr so a terminal user
        watches progress while ``--json``/table output stays clean on
        stdout.
    source:
        Label for the header event.

    Returns None when neither target was requested, so callers can use
    ``if stream is not None`` as the single enable check.
    """
    handles: list[IO[str]] = []
    owned: list[IO[str]] = []
    if path is not None:
        if str(path) == "-":
            handles.append(sys.stdout)
        else:
            handle = Path(path).open("w")
            handles.append(handle)
            owned.append(handle)
    if follow:
        handles.append(sys.stderr)
    if not handles:
        return None
    return _OwnedEventStream(handles, owned, source=source)
