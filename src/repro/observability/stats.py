"""Instrument snapshot documents and the ``repro stats --diff`` gate.

``repro stats <design> --json`` writes a provenance-stamped snapshot
document (:data:`STATS_SCHEMA`); this module loads two such documents
and diffs them series by series with the same verdict ladder the
manifest regression gate uses (:class:`~repro.metrics.compare.DiffStatus`):

* a **gated** counter increasing (``repro.executor.timeouts``,
  ``repro.cache.corruption`` -> REGRESS; retries, fast-path fallbacks,
  batch refusals -> WARN) fails or warns;
* a series present on only one side -> WARN (``NEW`` / ``MISSING``);
* any other change -> INFO (cache hit counts legitimately differ run
  to run); unchanged series -> PASS.

``repro stats --diff current.json baseline.json --strict`` promotes
warnings to failures, so instrument snapshots participate in the same
regression workflow as run manifests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.errors import ObservabilityError
from repro.metrics.compare import DiffStatus
from repro.observability.instruments import SNAPSHOT_SCHEMA
from repro.reporting.tables import render_table

__all__ = [
    "STATS_SCHEMA",
    "PROFILE_SCHEMA",
    "GATED_COUNTERS",
    "InstrumentDiff",
    "StatsDiffReport",
    "diff_snapshots",
    "write_stats_json",
    "load_stats_json",
]

#: Schema identifier of a ``repro stats --json`` document.
STATS_SCHEMA = "repro.observability/stats/v1"

#: Schema identifier of a ``repro profile --json`` document.
PROFILE_SCHEMA = "repro.observability/profile/v1"

#: Counters whose *increase* between baseline and current is a finding.
#: Everything else is informational -- cache hit counts legitimately
#: differ between a cold and a warm run.
GATED_COUNTERS: dict[str, DiffStatus] = {
    "repro.executor.timeouts": DiffStatus.REGRESS,
    "repro.cache.corruption": DiffStatus.REGRESS,
    "repro.executor.retries": DiffStatus.WARN,
    "repro.single.fallbacks": DiffStatus.WARN,
    "repro.batch.refusals": DiffStatus.WARN,
}


@dataclass(frozen=True)
class InstrumentDiff:
    """One instrument series' verdict.

    Attributes
    ----------
    name:
        Instrument name.
    labels:
        Rendered label set (``kind=amplitude-sweep`` or ``-``).
    current / baseline:
        The two sides' values (counter value or histogram count);
        None when the series is missing on that side.
    status:
        The verdict, shared with the manifest compare gate.
    note:
        Human explanation.
    """

    name: str
    labels: str
    current: float | None
    baseline: float | None
    status: DiffStatus
    note: str


class StatsDiffReport:
    """Every series' verdict for one snapshot comparison."""

    def __init__(self, diffs: list[InstrumentDiff]) -> None:
        self.diffs = diffs

    @property
    def regressions(self) -> list[InstrumentDiff]:
        """Return the REGRESS-status diffs."""
        return [d for d in self.diffs if d.status is DiffStatus.REGRESS]

    @property
    def warnings(self) -> list[InstrumentDiff]:
        """Return the WARN-status diffs."""
        return [d for d in self.diffs if d.status is DiffStatus.WARN]

    def render_table(self) -> str:
        """Return the comparison as a paper-style text table."""
        rows = []
        for diff in self.diffs:
            rows.append(
                (
                    diff.name,
                    diff.labels,
                    f"{diff.current:g}" if diff.current is not None else "-",
                    f"{diff.baseline:g}" if diff.baseline is not None else "-",
                    diff.status.value,
                    diff.note,
                )
            )
        if not rows:
            rows = [("-", "-", "-", "-", "-", "no instruments on either side")]
        return render_table(
            "instrument snapshot diff",
            ("instrument", "labels", "current", "baseline", "status", "note"),
            rows,
        )

    def summary(self) -> str:
        """Return a one-line verdict summary."""
        verdict = "REGRESS" if self.regressions else "PASS"
        return (
            f"stats diff {verdict}: {len(self.diffs)} series, "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.warnings)} warning(s)"
        )

    def exit_code(self, strict: bool = False) -> int:
        """Return the process exit code (1 on REGRESS, or WARN under strict)."""
        if self.regressions:
            return 1
        if strict and self.warnings:
            return 1
        return 0


def _series_values(
    snapshot: Mapping[str, object],
) -> dict[tuple[str, str], tuple[str, float]]:
    """Flatten a snapshot to ``(name, labels) -> (kind, value)``.

    Counters and gauges map to their value, histograms to their
    observation count (latency distributions shift run to run; the
    gateable quantity is how many events happened).
    """
    out: dict[tuple[str, str], tuple[str, float]] = {}
    instruments = snapshot.get("instruments")
    if not isinstance(instruments, dict):
        raise ObservabilityError("snapshot has no instruments mapping")
    for name in sorted(instruments):
        entry = instruments[name]
        if not isinstance(entry, dict):
            continue
        kind = str(entry.get("kind", ""))
        series = entry.get("series")
        if not isinstance(series, list):
            continue
        for item in series:
            if not isinstance(item, dict):
                continue
            labels = item.get("labels")
            rendered = (
                ",".join(
                    f"{k}={v}"
                    for k, v in sorted(
                        (str(k), str(v)) for k, v in labels.items()
                    )
                )
                if isinstance(labels, dict) and labels
                else "-"
            )
            raw = item.get("count") if kind == "histogram" else item.get("value")
            if isinstance(raw, (int, float)) and not isinstance(raw, bool):
                out[(str(name), rendered)] = (kind, float(raw))
    return out


def diff_snapshots(
    current: Mapping[str, object], baseline: Mapping[str, object]
) -> StatsDiffReport:
    """Diff two instrument snapshots, series by series.

    Raises
    ------
    ObservabilityError
        If either document is not a well-formed snapshot.
    """
    current_values = _series_values(current)
    baseline_values = _series_values(baseline)
    diffs: list[InstrumentDiff] = []
    for key in sorted(set(current_values) | set(baseline_values)):
        name, labels = key
        cur = current_values.get(key)
        base = baseline_values.get(key)
        gate = GATED_COUNTERS.get(name)
        if cur is None:
            assert base is not None
            diffs.append(
                InstrumentDiff(
                    name, labels, None, base[1], DiffStatus.WARN,
                    "MISSING: series absent from the current snapshot",
                )
            )
            continue
        if base is None:
            status = gate if gate is not None and cur[1] > 0 else DiffStatus.WARN
            diffs.append(
                InstrumentDiff(
                    name, labels, cur[1], None, status,
                    "NEW: series absent from the baseline snapshot",
                )
            )
            continue
        delta = cur[1] - base[1]
        if delta == 0.0:
            diffs.append(
                InstrumentDiff(
                    name, labels, cur[1], base[1], DiffStatus.PASS, "unchanged"
                )
            )
        elif gate is not None and delta > 0.0:
            diffs.append(
                InstrumentDiff(
                    name, labels, cur[1], base[1], gate,
                    f"gated counter increased by {delta:g}",
                )
            )
        else:
            diffs.append(
                InstrumentDiff(
                    name, labels, cur[1], base[1], DiffStatus.INFO,
                    f"changed by {delta:+g} (not gated)",
                )
            )
    return StatsDiffReport(diffs)


def write_stats_json(
    path: str | Path,
    snapshot: Mapping[str, object],
    design: str | None = None,
    config: Mapping[str, object] | None = None,
) -> Path:
    """Write a provenance-stamped stats document; return the path."""
    # Imported lazily: repro.metrics imports repro.telemetry at package
    # import time and this module is imported by low-level runtime code.
    from repro.metrics.provenance import collect_provenance

    document: dict[str, object] = {
        "schema": STATS_SCHEMA,
        "design": design,
        "config": dict(config or {}),
        "provenance": collect_provenance().as_dict(),
        "snapshot": dict(snapshot),
    }
    target = Path(path)
    target.write_text(json.dumps(document, indent=2) + "\n")
    return target


def load_stats_json(path: str | Path) -> dict[str, object]:
    """Load the snapshot from a stats document (or a bare snapshot).

    Raises
    ------
    ObservabilityError
        If the file is missing, not JSON, or neither a stats document
        nor a bare instrument snapshot.
    """
    target = Path(path)
    try:
        data = json.loads(target.read_text())
    except FileNotFoundError:
        raise ObservabilityError(f"stats document not found: {target}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise ObservabilityError(
            f"cannot read stats document {target}: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise ObservabilityError(f"stats document {target} is not a JSON object")
    if data.get("schema") == STATS_SCHEMA:
        snapshot = data.get("snapshot")
        if not isinstance(snapshot, dict):
            raise ObservabilityError(
                f"stats document {target} has no snapshot object"
            )
        return snapshot
    if data.get("schema") == SNAPSHOT_SCHEMA:
        return data
    raise ObservabilityError(
        f"{target} is neither a stats document ({STATS_SCHEMA}) nor an "
        f"instrument snapshot ({SNAPSHOT_SCHEMA})"
    )
