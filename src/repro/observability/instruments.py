"""Process-wide instrument registry: counters, gauges and histograms.

The runtime layer (cache, executor, batch engine, fast path) accounts
for itself through named instruments held in an
:class:`InstrumentRegistry`:

* a **counter** is a monotonically increasing sum (cache hits, shard
  timeouts, fast-path fallbacks);
* a **gauge** is a last-value sample (cache size, effective jobs);
* a **histogram** is a fixed-bucket distribution with a running sum
  and count (cache lookup latency, shard wall time, queue wait).

Every instrument carries *labeled series*: one value per distinct
label set, so ``repro.cache.hits{kind="amplitude-sweep"}`` and
``repro.cache.hits{kind="montecarlo"}`` accumulate independently while
:meth:`InstrumentRegistry.total` still answers "how many hits overall".

Names follow the dotted convention documented in
``docs/OBSERVABILITY.md`` (``repro.<subsystem>.<quantity>``, lowercase,
``[a-z0-9_]`` segments).  Registries serialize to a JSON **snapshot**
(:data:`SNAPSHOT_SCHEMA`) and merge snapshots additively, which is how
worker processes ship their counts back across the
``ProcessPoolExecutor`` boundary: each shard runs under a fresh
registry (:func:`use_registry`), snapshots it, and the parent merges
the snapshot into its own registry -- counters and histograms add,
gauges take the incoming value.

There is one process-wide default registry (:func:`get_registry`);
code that needs isolation (tests, ``repro stats``) swaps in its own
with :func:`use_registry`.
"""

from __future__ import annotations

import bisect
import json
import re
import threading
from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence, Union

from repro.errors import ObservabilityError

__all__ = [
    "SNAPSHOT_SCHEMA",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "Instrument",
    "InstrumentRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "reset_registry",
    "render_prometheus",
    "snapshot_delta",
]

#: Schema identifier of a serialized registry snapshot.
SNAPSHOT_SCHEMA = "repro.observability/instrument-snapshot/v1"

#: Default histogram buckets (seconds): sub-millisecond cache lookups
#: through multi-second shard runs, roughly logarithmic.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

#: Dotted instrument names: lowercase segments of ``[a-z0-9_]``.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")

#: Canonical in-memory series key: sorted ``(label, value)`` pairs.
LabelKey = tuple[tuple[str, str], ...]


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ObservabilityError(
            f"invalid instrument name {name!r}: expected dotted lowercase "
            "segments like 'repro.cache.hits'"
        )
    return name


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _labels_dict(key: LabelKey) -> dict[str, str]:
    return {k: v for k, v in key}


class Counter:
    """A labeled, monotonically increasing sum."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self._series: dict[LabelKey, float] = {}
        self._lock = threading.Lock()

    def inc(self, value: float = 1.0, **labels: object) -> None:
        """Add ``value`` (default 1) to the series selected by labels.

        Raises
        ------
        ObservabilityError
            If ``value`` is negative (counters only go up).
        """
        if value < 0.0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (got {value!r})"
            )
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(value)

    def value(self, **labels: object) -> float:
        """Return one series' value (0 when the series never fired)."""
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Return the sum over every labeled series."""
        with self._lock:
            return float(sum(self._series.values()))

    def series(self) -> list[tuple[LabelKey, float]]:
        """Return ``(labels, value)`` pairs in deterministic order."""
        with self._lock:
            return sorted(self._series.items())


class Gauge:
    """A labeled last-value sample."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self._series: dict[LabelKey, float] = {}
        self._lock = threading.Lock()

    def set(self, value: float, **labels: object) -> None:
        """Set the series selected by labels to ``value``."""
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def value(self, **labels: object) -> float | None:
        """Return one series' value, or None when never set."""
        return self._series.get(_label_key(labels))

    def series(self) -> list[tuple[LabelKey, float]]:
        """Return ``(labels, value)`` pairs in deterministic order."""
        with self._lock:
            return sorted(self._series.items())


class _HistogramSeries:
    """One label set's bucket counts, sum and count."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        #: One count per upper bound, plus a trailing overflow bucket.
        self.bucket_counts = [0] * (n_buckets + 1)
        self.sum = 0.0
        self.count = 0


class Histogram:
    """A labeled fixed-bucket distribution.

    Parameters
    ----------
    name:
        Dotted instrument name.
    buckets:
        Strictly increasing upper bounds; an implicit overflow bucket
        catches everything above the last bound.
    help:
        One-line description for expositions.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ObservabilityError(
                f"histogram {name!r} buckets must be non-empty and "
                f"strictly increasing, got {buckets!r}"
            )
        self.buckets = bounds
        self._series: dict[LabelKey, _HistogramSeries] = {}
        self._lock = threading.Lock()

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation into the series selected by labels."""
        key = _label_key(labels)
        index = bisect.bisect_left(self.buckets, float(value))
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            series.bucket_counts[index] += 1
            series.sum += float(value)
            series.count += 1

    def count(self, **labels: object) -> int:
        """Return one series' observation count (0 when absent)."""
        series = self._series.get(_label_key(labels))
        return series.count if series is not None else 0

    def sum(self, **labels: object) -> float:
        """Return one series' observation sum (0 when absent)."""
        series = self._series.get(_label_key(labels))
        return series.sum if series is not None else 0.0

    def total_count(self) -> int:
        """Return the observation count over every labeled series."""
        with self._lock:
            return sum(s.count for s in self._series.values())

    def series(self) -> list[tuple[LabelKey, _HistogramSeries]]:
        """Return ``(labels, series)`` pairs in deterministic order."""
        with self._lock:
            return sorted(self._series.items(), key=lambda item: item[0])


Instrument = Union[Counter, Gauge, Histogram]


class InstrumentRegistry:
    """A named collection of instruments with snapshot/merge semantics.

    Instruments are created on first use (``registry.counter(name)``)
    and are process-local Python objects -- cheap enough that the
    single-run fast path pays only a dict lookup and a float add per
    event, nothing per sample.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}
        self._lock = threading.Lock()

    # -- creation ------------------------------------------------------

    def _get_or_create(
        self, name: str, factory: "type[Counter] | type[Gauge]", help: str
    ) -> Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, factory):
                    raise ObservabilityError(
                        f"instrument {name!r} is a {existing.kind}, "
                        f"not a {factory.kind}"
                    )
                return existing
            created = factory(name, help=help)
            self._instruments[name] = created
            return created

    def counter(self, name: str, help: str = "") -> Counter:
        """Return the counter named ``name``, creating it on first use.

        Raises
        ------
        ObservabilityError
            If ``name`` already names a gauge or histogram.
        """
        instrument = self._get_or_create(name, Counter, help)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Return the gauge named ``name``, creating it on first use."""
        instrument = self._get_or_create(name, Gauge, help)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        """Return the histogram named ``name``, creating it on first use.

        Raises
        ------
        ObservabilityError
            If ``name`` names a non-histogram, or an existing histogram
            with different buckets.
        """
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ObservabilityError(
                        f"instrument {name!r} is a {existing.kind}, "
                        "not a histogram"
                    )
                if existing.buckets != tuple(float(b) for b in buckets):
                    raise ObservabilityError(
                        f"histogram {name!r} already registered with "
                        f"buckets {existing.buckets!r}"
                    )
                return existing
            created = Histogram(name, buckets=buckets, help=help)
            self._instruments[name] = created
            return created

    # -- access --------------------------------------------------------

    def get(self, name: str) -> Instrument | None:
        """Return the instrument named ``name``, or None."""
        return self._instruments.get(name)

    def instruments(self) -> list[Instrument]:
        """Return every instrument, sorted by name."""
        with self._lock:
            return [
                self._instruments[name] for name in sorted(self._instruments)
            ]

    def total(self, name: str) -> float:
        """Return a counter's sum over all its series (0 when absent).

        Raises
        ------
        ObservabilityError
            If ``name`` names a non-counter instrument.
        """
        instrument = self._instruments.get(name)
        if instrument is None:
            return 0.0
        if not isinstance(instrument, Counter):
            raise ObservabilityError(
                f"total() needs a counter; {name!r} is a {instrument.kind}"
            )
        return instrument.total()

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Return the registry as a JSON-ready snapshot document."""
        instruments: dict[str, object] = {}
        for instrument in self.instruments():
            entry: dict[str, object] = {
                "kind": instrument.kind,
                "help": instrument.help,
            }
            if isinstance(instrument, Histogram):
                entry["buckets"] = list(instrument.buckets)
                entry["series"] = [
                    {
                        "labels": _labels_dict(key),
                        "count": series.count,
                        "sum": series.sum,
                        "bucket_counts": list(series.bucket_counts),
                    }
                    for key, series in instrument.series()
                ]
            else:
                entry["series"] = [
                    {"labels": _labels_dict(key), "value": value}
                    for key, value in instrument.series()
                ]
            instruments[instrument.name] = entry
        return {"schema": SNAPSHOT_SCHEMA, "instruments": instruments}

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold a snapshot into this registry.

        Counters and histograms add; gauges take the incoming value.
        This is the cross-process aggregation path: a worker snapshots
        its private registry and the parent merges it.

        Raises
        ------
        ObservabilityError
            If the snapshot is malformed, or an instrument collides
            with a different kind or bucket layout.
        """
        for name, entry in _snapshot_instruments(snapshot):
            kind = entry.get("kind")
            series = entry.get("series")
            help_text = str(entry.get("help", ""))
            if not isinstance(series, list):
                raise ObservabilityError(
                    f"snapshot instrument {name!r} has no series list"
                )
            if kind == "counter":
                counter = self.counter(name, help=help_text)
                for item in series:
                    labels, value = _scalar_series_item(name, item)
                    counter.inc(value, **labels)
            elif kind == "gauge":
                gauge = self.gauge(name, help=help_text)
                for item in series:
                    labels, value = _scalar_series_item(name, item)
                    gauge.set(value, **labels)
            elif kind == "histogram":
                buckets = entry.get("buckets")
                if not isinstance(buckets, list):
                    raise ObservabilityError(
                        f"snapshot histogram {name!r} has no buckets"
                    )
                histogram = self.histogram(name, buckets=buckets, help=help_text)
                for item in series:
                    self._merge_histogram_series(histogram, name, item)
            else:
                raise ObservabilityError(
                    f"snapshot instrument {name!r} has unknown kind {kind!r}"
                )

    @staticmethod
    def _merge_histogram_series(
        histogram: Histogram, name: str, item: object
    ) -> None:
        if not isinstance(item, dict):
            raise ObservabilityError(
                f"snapshot histogram {name!r} series entry is not an object"
            )
        labels = item.get("labels")
        counts = item.get("bucket_counts")
        if not isinstance(labels, dict) or not isinstance(counts, list):
            raise ObservabilityError(
                f"snapshot histogram {name!r} series entry is malformed"
            )
        if len(counts) != len(histogram.buckets) + 1:
            raise ObservabilityError(
                f"snapshot histogram {name!r} has {len(counts)} bucket "
                f"counts, expected {len(histogram.buckets) + 1}"
            )
        key = _label_key(labels)
        with histogram._lock:
            series = histogram._series.get(key)
            if series is None:
                series = histogram._series[key] = _HistogramSeries(
                    len(histogram.buckets)
                )
            for index, count in enumerate(counts):
                series.bucket_counts[index] += int(count)
            series.sum += float(item.get("sum", 0.0))
            series.count += int(item.get("count", 0))

    # -- exposition ----------------------------------------------------

    def render_table(self, title: str = "instruments") -> str:
        """Return every series as a paper-style text table."""
        from repro.reporting.tables import render_table

        rows: list[tuple[str, str, str, str]] = []
        for instrument in self.instruments():
            if isinstance(instrument, Histogram):
                for key, series in instrument.series():
                    mean = series.sum / series.count if series.count else 0.0
                    rows.append(
                        (
                            instrument.name,
                            instrument.kind,
                            _format_labels(key),
                            f"n={series.count} mean={mean:.3g}s",
                        )
                    )
            else:
                for key, value in instrument.series():
                    rows.append(
                        (
                            instrument.name,
                            instrument.kind,
                            _format_labels(key),
                            f"{value:g}",
                        )
                    )
        if not rows:
            rows = [("-", "-", "-", "no instruments recorded")]
        return render_table(
            title, ("instrument", "kind", "labels", "value"), rows
        )

    def to_prometheus_text(self) -> str:
        """Return the registry in Prometheus text exposition format.

        Dotted names become underscore-joined metric names; histogram
        buckets are cumulative with the conventional ``le`` label.
        """
        lines: list[str] = []
        for instrument in self.instruments():
            metric = instrument.name.replace(".", "_")
            if instrument.help:
                lines.append(f"# HELP {metric} {instrument.help}")
            lines.append(f"# TYPE {metric} {instrument.kind}")
            if isinstance(instrument, Histogram):
                for key, series in instrument.series():
                    cumulative = 0
                    for bound, count in zip(
                        instrument.buckets, series.bucket_counts
                    ):
                        cumulative += count
                        labels = _prom_labels(key, le=f"{bound:g}")
                        lines.append(f"{metric}_bucket{labels} {cumulative}")
                    labels = _prom_labels(key, le="+Inf")
                    lines.append(f"{metric}_bucket{labels} {series.count}")
                    lines.append(
                        f"{metric}_sum{_prom_labels(key)} {series.sum:g}"
                    )
                    lines.append(
                        f"{metric}_count{_prom_labels(key)} {series.count}"
                    )
            else:
                for key, value in instrument.series():
                    lines.append(f"{metric}{_prom_labels(key)} {value:g}")
        return "\n".join(lines) + ("\n" if lines else "")


def render_prometheus(snapshot: Mapping[str, object]) -> str:
    """Render an instrument *snapshot* in Prometheus exposition format.

    The live-registry path (``GET /statsz``, ``repro stats --prom``)
    renders through :meth:`InstrumentRegistry.to_prometheus_text`
    directly; this helper covers the serialized side -- a snapshot
    document loaded from a stats JSON, a worker payload, or a merged
    delta -- by folding it into a fresh registry first.

    Raises
    ------
    ObservabilityError
        If the snapshot document is malformed.
    """
    registry = InstrumentRegistry()
    registry.merge(snapshot)
    return registry.to_prometheus_text()


def _snapshot_instruments(
    snapshot: Mapping[str, object],
) -> list[tuple[str, dict[str, object]]]:
    """Validate a snapshot's envelope and return its instrument items."""
    schema = snapshot.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise ObservabilityError(
            f"not an instrument snapshot: schema {schema!r}, "
            f"expected {SNAPSHOT_SCHEMA!r}"
        )
    instruments = snapshot.get("instruments")
    if not isinstance(instruments, dict):
        raise ObservabilityError("snapshot has no instruments mapping")
    out: list[tuple[str, dict[str, object]]] = []
    for name in sorted(instruments):
        entry = instruments[name]
        if not isinstance(entry, dict):
            raise ObservabilityError(
                f"snapshot instrument {name!r} is not an object"
            )
        out.append((str(name), entry))
    return out


def _scalar_series_item(name: str, item: object) -> tuple[dict[str, str], float]:
    if not isinstance(item, dict):
        raise ObservabilityError(
            f"snapshot instrument {name!r} series entry is not an object"
        )
    labels = item.get("labels")
    value = item.get("value")
    if not isinstance(labels, dict) or not isinstance(value, (int, float)):
        raise ObservabilityError(
            f"snapshot instrument {name!r} series entry is malformed"
        )
    return {str(k): str(v) for k, v in labels.items()}, float(value)


def _format_labels(key: LabelKey) -> str:
    if not key:
        return "-"
    return ",".join(f"{k}={v}" for k, v in key)


def _prom_labels(key: LabelKey, **extra: str) -> str:
    pairs = list(key) + sorted(extra.items())
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_prom_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


# -- snapshot arithmetic ----------------------------------------------


def snapshot_delta(
    before: Mapping[str, object], after: Mapping[str, object]
) -> dict[str, object]:
    """Return ``after - before`` as a snapshot document.

    Counters and histogram counts subtract series-wise (clamped at
    zero, so a registry swap between the snapshots degrades to the
    ``after`` values instead of going negative); gauges take the
    ``after`` value.  Series whose delta is all-zero are dropped, as
    are instruments left with no series -- the result is the compact
    "what did this run do" document the run manifest embeds.
    """
    before_map = dict(_snapshot_instruments(before))
    instruments: dict[str, object] = {}
    for name, entry in _snapshot_instruments(after):
        prior = before_map.get(name)
        kind = entry.get("kind")
        series = entry.get("series")
        if not isinstance(series, list):
            continue
        prior_series: dict[str, dict[str, object]] = {}
        if isinstance(prior, dict) and prior.get("kind") == kind:
            raw = prior.get("series")
            if isinstance(raw, list):
                for item in raw:
                    if isinstance(item, dict) and isinstance(
                        item.get("labels"), dict
                    ):
                        prior_series[_series_key(item)] = item
        kept: list[dict[str, object]] = []
        for item in series:
            if not isinstance(item, dict):
                continue
            old = prior_series.get(_series_key(item))
            delta = _series_delta(str(kind), item, old)
            if delta is not None:
                kept.append(delta)
        if kept:
            out: dict[str, object] = {
                "kind": entry.get("kind"),
                "help": entry.get("help", ""),
                "series": kept,
            }
            if "buckets" in entry:
                out["buckets"] = entry["buckets"]
            instruments[name] = out
    return {"schema": SNAPSHOT_SCHEMA, "instruments": instruments}


def _series_key(item: Mapping[str, object]) -> str:
    labels = item.get("labels")
    pairs = (
        sorted((str(k), str(v)) for k, v in labels.items())
        if isinstance(labels, dict)
        else []
    )
    return json.dumps(pairs)


def _series_delta(
    kind: str,
    item: Mapping[str, object],
    old: Mapping[str, object] | None,
) -> dict[str, object] | None:
    """Return one series' delta entry, or None when nothing changed."""
    labels = item.get("labels")
    labels = dict(labels) if isinstance(labels, dict) else {}
    if kind == "gauge":
        value = item.get("value")
        if not isinstance(value, (int, float)):
            return None
        return {"labels": labels, "value": float(value)}
    if kind == "counter":
        value = item.get("value")
        if not isinstance(value, (int, float)):
            return None
        prior_value = old.get("value", 0.0) if old is not None else 0.0
        if not isinstance(prior_value, (int, float)):
            prior_value = 0.0
        delta = max(0.0, float(value) - float(prior_value))
        if delta == 0.0:
            return None
        return {"labels": labels, "value": delta}
    if kind == "histogram":
        counts = item.get("bucket_counts")
        if not isinstance(counts, list):
            return None
        old_counts: list[object] = []
        old_sum = 0.0
        old_count = 0
        if old is not None:
            raw = old.get("bucket_counts")
            if isinstance(raw, list) and len(raw) == len(counts):
                old_counts = raw
            raw_sum = old.get("sum", 0.0)
            raw_count = old.get("count", 0)
            old_sum = float(raw_sum) if isinstance(raw_sum, (int, float)) else 0.0
            old_count = int(raw_count) if isinstance(raw_count, (int, float)) else 0
        delta_counts = [
            max(0, int(new) - int(prev))  # type: ignore[call-overload]
            for new, prev in zip(
                counts, old_counts if old_counts else [0] * len(counts)
            )
        ]
        raw_sum_new = item.get("sum", 0.0)
        raw_count_new = item.get("count", 0)
        sum_new = (
            float(raw_sum_new) if isinstance(raw_sum_new, (int, float)) else 0.0
        )
        count_new = (
            int(raw_count_new) if isinstance(raw_count_new, (int, float)) else 0
        )
        delta_count = max(0, count_new - old_count)
        if delta_count == 0:
            return None
        return {
            "labels": labels,
            "count": delta_count,
            "sum": max(0.0, sum_new - old_sum),
            "bucket_counts": delta_counts,
        }
    return None


# -- the process-wide default registry --------------------------------

_registry = InstrumentRegistry()


def get_registry() -> InstrumentRegistry:
    """Return the current process-wide registry."""
    return _registry


def set_registry(registry: InstrumentRegistry) -> InstrumentRegistry:
    """Install ``registry`` as process-wide; return the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


@contextmanager
def use_registry(registry: InstrumentRegistry) -> Iterator[InstrumentRegistry]:
    """Swap ``registry`` in as process-wide for the duration of the block.

    This is how sharded workers isolate their accounting: the shard
    wrapper runs the worker under a fresh registry, snapshots it, and
    the parent merges the snapshot -- no counts are inherited through
    ``fork`` and none are lost at process exit.
    """
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def reset_registry() -> InstrumentRegistry:
    """Install and return a fresh process-wide registry (test hook)."""
    fresh = InstrumentRegistry()
    set_registry(fresh)
    return fresh
