"""Figure-series dumps and ASCII plots for the paper's Figs. 5-7.

A bench regenerating a figure produces the numeric series (frequency /
power pairs for a spectrum, level / SNDR pairs for a sweep) and can
render a quick ASCII plot for the terminal -- enough to verify the
*shape* of each figure without a plotting dependency.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.analysis.spectrum import Spectrum

__all__ = ["spectrum_series", "sweep_series", "ascii_plot"]


def spectrum_series(
    spectrum: Spectrum,
    reference_power: float,
    max_points: int = 512,
) -> tuple[np.ndarray, np.ndarray]:
    """Return (frequency, dB) series for a spectrum figure.

    Long spectra are decimated by max-pooling so narrow tones survive
    the reduction (a spectrum analyser's peak-hold display does the
    same).

    Raises
    ------
    ConfigurationError
        If ``max_points`` is less than 2 or the reference not positive.
    """
    if max_points < 2:
        raise ConfigurationError(f"max_points must be >= 2, got {max_points!r}")
    if reference_power <= 0.0:
        raise ConfigurationError(
            f"reference_power must be positive, got {reference_power!r}"
        )
    power_db = spectrum.power_db(reference_power)
    freqs = spectrum.frequencies
    n = freqs.shape[0]
    if n <= max_points:
        return freqs.copy(), power_db.copy()
    stride = int(np.ceil(n / max_points))
    n_groups = int(np.ceil(n / stride))
    out_f = np.empty(n_groups)
    out_p = np.empty(n_groups)
    for g in range(n_groups):
        lo = g * stride
        hi = min(n, lo + stride)
        block = power_db[lo:hi]
        peak = int(np.argmax(block))
        out_f[g] = freqs[lo + peak]
        out_p[g] = block[peak]
    return out_f, out_p


def sweep_series(
    levels_db: np.ndarray, values_db: np.ndarray
) -> list[tuple[float, float]]:
    """Return a sweep as a list of (level, value) pairs for dumping.

    Raises
    ------
    ConfigurationError
        If the arrays' shapes differ.
    """
    levels = np.asarray(levels_db, dtype=float)
    values = np.asarray(values_db, dtype=float)
    if levels.shape != values.shape:
        raise ConfigurationError(
            f"shape mismatch: {levels.shape} vs {values.shape}"
        )
    return [(float(level), float(v)) for level, v in zip(levels, values)]


def ascii_plot(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 72,
    height: int = 20,
    title: str = "",
) -> str:
    """Render a crude ASCII scatter/line plot of a series.

    Raises
    ------
    ConfigurationError
        If the series is empty or shapes differ.
    """
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.shape != ys.shape or xs.size == 0:
        raise ConfigurationError(
            f"series must be equal-shaped and non-empty, got {xs.shape}, {ys.shape}"
        )
    if width < 8 or height < 4:
        raise ConfigurationError(
            f"plot must be at least 8x4 characters, got {width}x{height}"
        )

    x_min, x_max = float(np.min(xs)), float(np.max(xs))
    y_min, y_max = float(np.min(ys)), float(np.max(ys))
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(xs, ys):
        col = int((xi - x_min) / x_span * (width - 1))
        row = int((yi - y_min) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:>10.1f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:>10.1f} +" + "-" * width)
    lines.append(" " * 12 + f"{x_min:<.3g}" + " " * max(1, width - 16) + f"{x_max:>.3g}")
    return "\n".join(lines)
