"""Paper-vs-measured comparison records.

Every bench that reproduces a table or figure files its results into a
:class:`PaperComparison`, which renders the EXPERIMENTS.md-style
summary: experiment id, the paper's number, the reproduction's number,
and whether the shape criterion passed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.reporting.tables import render_table

__all__ = ["ComparisonRecord", "PaperComparison"]


@dataclass(frozen=True)
class ComparisonRecord:
    """One paper-vs-measured line item.

    Attributes
    ----------
    experiment:
        Experiment id ("Table 1", "Fig. 7", ...).
    quantity:
        What is being compared ("THD @ 8 uA", "DR (bits)", ...).
    paper_value:
        The paper's reported value, as a display string.
    measured_value:
        This reproduction's value, as a display string.
    shape_holds:
        Whether the qualitative criterion is met.
    """

    experiment: str
    quantity: str
    paper_value: str
    measured_value: str
    shape_holds: bool


@dataclass
class PaperComparison:
    """Accumulator of comparison records across a bench run."""

    records: list[ComparisonRecord] = field(default_factory=list)

    def add(
        self,
        experiment: str,
        quantity: str,
        paper_value: str,
        measured_value: str,
        shape_holds: bool,
    ) -> None:
        """File one comparison line.

        Raises
        ------
        ConfigurationError
            If experiment or quantity are empty.
        """
        if not experiment or not quantity:
            raise ConfigurationError(
                "experiment and quantity must be non-empty, got "
                f"{experiment!r} / {quantity!r}"
            )
        self.records.append(
            ComparisonRecord(
                experiment=experiment,
                quantity=quantity,
                paper_value=paper_value,
                measured_value=measured_value,
                shape_holds=shape_holds,
            )
        )

    @property
    def all_shapes_hold(self) -> bool:
        """Return True if every filed record met its shape criterion."""
        return all(record.shape_holds for record in self.records)

    def render(self, title: str = "Paper vs. reproduction") -> str:
        """Return the comparison as a formatted table."""
        rows = [
            (
                record.experiment,
                record.quantity,
                record.paper_value,
                record.measured_value,
                "yes" if record.shape_holds else "NO",
            )
            for record in self.records
        ]
        return render_table(
            title,
            ("experiment", "quantity", "paper", "measured", "shape holds"),
            rows,
        )
