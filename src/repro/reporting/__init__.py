"""Reporting: paper-style tables, figure series and comparison records."""

from repro.reporting.tables import render_table, Table
from repro.reporting.figures import spectrum_series, sweep_series, ascii_plot
from repro.reporting.records import PaperComparison, ComparisonRecord
from repro.reporting.export import (
    read_series_csv,
    write_comparison_json,
    write_series_csv,
)

__all__ = [
    "render_table",
    "Table",
    "spectrum_series",
    "sweep_series",
    "ascii_plot",
    "PaperComparison",
    "ComparisonRecord",
    "write_series_csv",
    "read_series_csv",
    "write_comparison_json",
]
