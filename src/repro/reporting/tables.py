"""ASCII table rendering in the style of the paper's Tables 1 and 2.

The benches print their results as two-or-three-column tables mirroring
the paper's layout so that paper-vs-measured comparison is a visual
diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigurationError

__all__ = ["Table", "render_table"]


@dataclass
class Table:
    """A simple column-aligned text table.

    Parameters
    ----------
    title:
        Table caption.
    columns:
        Column headers; the first column names the quantity.
    """

    title: str
    columns: Sequence[str]
    rows: list[Sequence[str]] = field(default_factory=list)

    def add_row(self, *cells: str) -> None:
        """Append one row.

        Raises
        ------
        ConfigurationError
            If the cell count does not match the column count.
        """
        if len(cells) != len(self.columns):
            raise ConfigurationError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append(tuple(str(cell) for cell in cells))

    def render(self) -> str:
        """Return the formatted table as a string."""
        return render_table(self.title, self.columns, self.rows)


def render_table(
    title: str, columns: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Render a column-aligned text table.

    Raises
    ------
    ConfigurationError
        If any row's cell count mismatches the columns.
    """
    header = [str(c) for c in columns]
    body = [[str(cell) for cell in row] for row in rows]
    for row in body:
        if len(row) != len(header):
            raise ConfigurationError(
                f"row {row!r} has {len(row)} cells, expected {len(header)}"
            )
    widths = [len(h) for h in header]
    for row in body:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [title, separator, format_row(header), separator]
    lines.extend(format_row(row) for row in body)
    lines.append(separator)
    return "\n".join(lines)
