"""Export helpers: CSV series and JSON records for external tooling.

The ASCII tables and plots serve the terminal; anyone regenerating the
paper's figures in a plotting package needs the raw series.  These
helpers write the spectrum/sweep series and the paper-vs-measured
records in standard formats.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
import numpy as np

from repro.errors import ConfigurationError
from repro.reporting.records import PaperComparison

__all__ = ["write_series_csv", "write_comparison_json", "read_series_csv"]


def write_series_csv(
    path: str | Path,
    columns: dict[str, np.ndarray],
) -> Path:
    """Write named, equal-length series as a CSV file.

    Parameters
    ----------
    path:
        Output file path.
    columns:
        Mapping from column name to a 1-D array; all arrays must share
        one length.

    Returns
    -------
    The resolved output path.

    Raises
    ------
    ConfigurationError
        If the mapping is empty or the lengths differ.
    """
    if not columns:
        raise ConfigurationError("columns must not be empty")
    arrays = {name: np.asarray(values).ravel() for name, values in columns.items()}
    lengths = {array.shape[0] for array in arrays.values()}
    if len(lengths) != 1:
        raise ConfigurationError(
            f"all columns must share one length, got {sorted(lengths)}"
        )
    target = Path(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        names = list(arrays)
        writer.writerow(names)
        for row in zip(*(arrays[name] for name in names)):
            writer.writerow([repr(float(value)) for value in row])
    return target


def read_series_csv(path: str | Path) -> dict[str, np.ndarray]:
    """Read back a CSV written by :func:`write_series_csv`.

    Raises
    ------
    ConfigurationError
        If the file is empty or malformed.
    """
    target = Path(path)
    with target.open() as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if len(rows) < 2:
        raise ConfigurationError(f"{target} has no data rows")
    header = rows[0]
    data = np.array([[float(cell) for cell in row] for row in rows[1:]])
    return {name: data[:, index] for index, name in enumerate(header)}


def write_comparison_json(
    path: str | Path,
    comparison: PaperComparison,
    metadata: dict[str, object] | None = None,
) -> Path:
    """Write a paper-vs-measured comparison as JSON.

    Parameters
    ----------
    path:
        Output file path.
    comparison:
        The filed records.
    metadata:
        Optional extra fields (operating point, seeds, ...).

    Returns
    -------
    The resolved output path.
    """
    # Imported lazily: repro.metrics imports repro.reporting helpers at
    # package-import time, so a module-level import would be circular.
    from repro.metrics.provenance import collect_provenance

    payload = {
        "provenance": collect_provenance().as_dict(),
        "records": [
            {
                "experiment": record.experiment,
                "quantity": record.quantity,
                "paper": record.paper_value,
                "measured": record.measured_value,
                "shape_holds": bool(record.shape_holds),
            }
            for record in comparison.records
        ],
        "all_shapes_hold": bool(comparison.all_shapes_hold),
    }
    if metadata:
        payload["metadata"] = metadata
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2))
    return target
