"""Shared findings plumbing for the repo's static checkers.

Two rule engines gate this repository: ``repro erc`` checks *device
graphs* (:mod:`repro.erc`) and ``repro lint`` checks the *source code*
itself (:mod:`repro.staticcheck`).  Both express results the same way
-- a flat list of findings, each carrying a stable rule code and a
severity -- and both must render and gate identically, so the severity
enum, the pass/fail verdict, the exit-code convention and the report
skeleton live here, in one module neither engine owns.

The gate convention, shared by both CLI verbs:

* exit ``0`` -- no ERROR-severity finding (warnings allowed);
* exit ``1`` -- at least one ERROR, or any WARNING under ``--strict``;
* exit ``2`` -- the checker itself could not run (bad arguments,
  unreadable baseline, ...); raised as exceptions, mapped in the CLI.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generic, Protocol, Sequence, TypeVar

from repro.errors import ConfigurationError

__all__ = [
    "Severity",
    "SeverityFinding",
    "Report",
    "gate_exit_code",
]


class Severity(enum.IntEnum):
    """Severity of a finding; ordered so comparisons work."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        """Return the severity named by a case-insensitive string.

        Raises
        ------
        ConfigurationError
            If the name is not a severity.
        """
        try:
            return cls[name.upper()]
        except KeyError:
            raise ConfigurationError(
                f"unknown severity {name!r}; expected one of "
                f"{[s.name.lower() for s in cls]}"
            ) from None


class SeverityFinding(Protocol):
    """Structural type every checker finding satisfies."""

    @property
    def rule(self) -> str: ...

    @property
    def severity(self) -> Severity: ...

    @property
    def message(self) -> str: ...


F = TypeVar("F", bound=SeverityFinding)


def gate_exit_code(
    errors: Sequence[object], warnings: Sequence[object], strict: bool = False
) -> int:
    """Return the shared CLI gate code for a findings partition."""
    if errors:
        return 1
    if strict and warnings:
        return 1
    return 0


class Report(Generic[F]):
    """Common skeleton of one checker pass over one subject.

    Subclasses set :attr:`label` (the word in front of the verdict,
    ``"ERC"`` or ``"LINT"``) and :attr:`noun` (what a finding is
    called in the summary line), and may re-expose :attr:`subject` and
    :attr:`findings` under domain names (``design``/``violations``).
    """

    #: Verdict prefix in :meth:`summary` (``"ERC"``, ``"LINT"``).
    label: str = "CHECK"
    #: What a finding is called in the summary line.
    noun: str = "finding"

    def __init__(self, subject: str, findings: Sequence[F]) -> None:
        self.subject = subject
        self.findings: tuple[F, ...] = tuple(findings)

    # -- partitions ----------------------------------------------------

    @property
    def errors(self) -> tuple[F, ...]:
        """Return the ERROR-severity findings."""
        return tuple(f for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[F, ...]:
        """Return the WARNING-severity findings."""
        return tuple(f for f in self.findings if f.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        """Return True when no ERROR-severity finding was found."""
        return not self.errors

    def filtered(self: "ReportT", min_severity: Severity) -> "ReportT":
        """Return a copy keeping only findings at or above a severity."""
        return type(self)(
            self.subject,
            tuple(f for f in self.findings if f.severity >= min_severity),
        )

    # -- rendering and gating ------------------------------------------

    def summary(self) -> str:
        """Return a one-line pass/fail summary."""
        verdict = "PASS" if self.ok else "FAIL"
        return (
            f"{self.label} {verdict}: {self.subject} -- "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.findings)} total"
        )

    def exit_code(self, strict: bool = False) -> int:
        """Return the shared CLI gate code (see module docstring)."""
        return gate_exit_code(self.errors, self.warnings, strict=strict)


#: Bound for :meth:`Report.filtered`'s self-type.
ReportT = TypeVar("ReportT", bound="Report[Any]")


def render_findings_table(
    title: str,
    columns: Sequence[str],
    findings: Sequence[F],
    row: Callable[[F], Sequence[str]],
    empty: str = "no findings",
) -> str:
    """Render findings as the paper-style table both checkers print."""
    from repro.reporting.tables import render_table

    rows = [tuple(row(f)) for f in findings]
    if not rows:
        rows = [tuple("-" for _ in columns[:-1]) + (empty,)]
    return render_table(title, tuple(columns), rows)
