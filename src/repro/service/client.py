"""A stdlib HTTP client for the simulation service.

``repro submit`` (and the tests) talk to ``repro serve`` through this
thin :mod:`urllib.request` wrapper.  Results are exposed as *bytes*
(:meth:`ServiceClient.result_bytes`): the service serializes each
job's single stored result object canonically, so two clients of a
deduplicated job can compare payloads with ``cmp`` -- the byte-identity
contract the CI smoke job asserts.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Iterator

from repro.errors import QueueFullError, ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Client for one service base URL (``http://127.0.0.1:8765``)."""

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- plumbing ------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        timeout_s: float | None = None,
    ) -> tuple[int, bytes]:
        """Issue one request; return ``(status, body)``.

        Raises
        ------
        QueueFullError
            On HTTP 429 (queue backpressure) -- callers can retry.
        ServiceError
            On any other non-2xx status or a connection failure; the
            server's JSON ``error`` message is surfaced when present.
        """
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request,
                timeout=timeout_s if timeout_s is not None else self.timeout_s,
            ) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as exc:
            payload = exc.read()
            message = self._error_message(payload, f"HTTP {exc.code}")
            if exc.code == 429:
                raise QueueFullError(message) from exc
            if exc.code == 202:  # pragma: no cover - 2xx never raises
                return exc.code, payload
            raise ServiceError(f"HTTP {exc.code}: {message}") from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            ) from exc

    @staticmethod
    def _error_message(payload: bytes, fallback: str) -> str:
        try:
            parsed = json.loads(payload)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return fallback
        if isinstance(parsed, dict) and isinstance(parsed.get("error"), str):
            return parsed["error"]
        return fallback

    @staticmethod
    def _json(payload: bytes) -> dict[str, Any]:
        parsed = json.loads(payload)
        if not isinstance(parsed, dict):
            raise ServiceError(
                f"service returned a non-object response: {parsed!r}"
            )
        return parsed

    # -- API -----------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Return the ``/healthz`` document."""
        return self._json(self._request("GET", "/healthz")[1])

    def stats(self) -> dict[str, Any]:
        """Return the raw instrument snapshot (``/statsz?format=json``)."""
        return self._json(self._request("GET", "/statsz?format=json")[1])

    def stats_text(self) -> str:
        """Return the Prometheus exposition text of ``/statsz``."""
        return self._request("GET", "/statsz")[1].decode("utf-8")

    def submit(self, request: dict[str, Any]) -> dict[str, Any]:
        """POST a request; return the job descriptor (with disposition)."""
        return self._json(self._request("POST", "/jobs", body=request)[1])

    def job(self, job_id: str) -> dict[str, Any]:
        """Return one job descriptor."""
        return self._json(self._request("GET", f"/jobs/{job_id}")[1])

    def jobs(self) -> list[dict[str, Any]]:
        """Return every job descriptor the service knows."""
        listing = self._json(self._request("GET", "/jobs")[1])
        jobs = listing.get("jobs", [])
        return jobs if isinstance(jobs, list) else []

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a queued job; raises :class:`ServiceError` otherwise."""
        return self._json(self._request("DELETE", f"/jobs/{job_id}")[1])

    def result_bytes(
        self, job_id: str, timeout_s: float = 300.0
    ) -> bytes:
        """Block until the job finishes; return its canonical result bytes.

        Long-polls ``/jobs/<id>/result?wait=`` in bounded slices until
        the job reaches a terminal state or ``timeout_s`` elapses.

        Raises
        ------
        ServiceError
            If the job failed, was cancelled, or the deadline passed.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                raise ServiceError(
                    f"timed out after {timeout_s:g}s waiting for job "
                    f"{job_id[:12]}"
                )
            slice_s = min(remaining, 30.0)
            status, payload = self._request(
                "GET",
                f"/jobs/{job_id}/result?wait={slice_s:g}",
                timeout_s=slice_s + self.timeout_s,
            )
            if status == 200:
                return payload
            # 202: still queued/running -- poll again until the deadline.

    def result(self, job_id: str, timeout_s: float = 300.0) -> dict[str, Any]:
        """Like :meth:`result_bytes` but parsed into a dict."""
        return self._json(self.result_bytes(job_id, timeout_s=timeout_s))

    def events(self, job_id: str, follow: bool = False) -> Iterator[dict[str, Any]]:
        """Yield the job's event records (``follow`` streams until done)."""
        path = f"/jobs/{job_id}/events" + ("?follow=1" if follow else "")
        request = urllib.request.Request(f"{self.base_url}{path}")
        try:
            with urllib.request.urlopen(
                request, timeout=None if follow else self.timeout_s
            ) as response:
                for line in response:
                    text = line.decode("utf-8").strip()
                    if not text:
                        continue
                    record = json.loads(text)
                    if isinstance(record, dict):
                        yield record
        except urllib.error.HTTPError as exc:
            raise ServiceError(
                f"HTTP {exc.code}: "
                f"{self._error_message(exc.read(), 'events unavailable')}"
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            ) from exc
