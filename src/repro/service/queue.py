"""Threaded job queue with content-addressed request dedup.

The queue sits between the HTTP layer and the simulation engines: a
client POSTs a normalized request, the queue addresses it by the same
SHA-256 canonical-JSON digest :class:`~repro.runtime.cache.ResultCache`
uses for result entries, and identical requests collapse onto one
:class:`Job` -- in flight *or* already finished:

* a duplicate of a QUEUED/RUNNING job is **coalesced**: the caller gets
  the existing job and waits on the same future, so N identical
  submissions execute exactly once;
* a duplicate of a DONE job is **completed**: the stored result is
  served straight back (byte-identical -- there is only one result
  object, serialized once per read);
* a duplicate of a FAILED/CANCELLED job is **retried**: failures are
  not content-addressed facts, so the dead job is replaced by a fresh
  one under the same digest.

Execution is a pool of daemon worker threads draining a deque under a
condition variable.  A worker that crashes inside the runner marks the
job FAILED and keeps draining -- one poisoned request never wedges the
queue.  When ``max_pending`` queued jobs exist, further *new* requests
are rejected with :class:`~repro.errors.QueueFullError` (backpressure;
duplicates still coalesce, they cost nothing).

Every transition is accounted in the process-wide instrument registry
(``repro.service.*`` counters, the ``queue_depth`` gauge and the
``job_seconds`` histogram) so ``GET /statsz`` can prove dedup worked,
and every job carries an :class:`~repro.observability.live.EventBuffer`
that its :class:`~repro.observability.live.EventStream` writes into,
which is what ``GET /jobs/<id>/events`` tails.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Mapping

from repro.errors import QueueFullError, ServiceError
from repro.observability.instruments import get_registry
from repro.observability.live import EventBuffer, EventStream
from repro.runtime.cache import ResultCache

__all__ = ["Job", "JobQueue", "JobRequest", "JobState", "TERMINAL_STATES"]

#: Latency buckets (seconds) for the job-duration histogram: service
#: jobs span sub-second cached replays to multi-minute 64K sweeps.
_JOB_BUCKETS: tuple[float, ...] = (
    0.01,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
)


class JobState(str, Enum):
    """Lifecycle of a job (see ``docs/SERVICE.md`` for the diagram)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job never leaves; a duplicate submission of a terminal
#: failure is a retry, of a terminal success a completed-result hit.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)


@dataclass(frozen=True)
class JobRequest:
    """A normalized, JSON-ready simulation request.

    ``params`` must already be canonical (aliases resolved, defaults
    filled, numbers coerced): the digest is computed over exactly these
    fields, and two requests dedup iff their normalized forms match.
    """

    kind: str
    params: Mapping[str, Any]

    def digest(self) -> str:
        """Return the content address of this request.

        Reuses :meth:`ResultCache.key_digest`, so the job id inherits
        the cache's schema/version stamping: a package upgrade
        invalidates service-level dedup exactly when it invalidates
        cached results.
        """
        return ResultCache.key_digest(
            {"kind": self.kind, "params": dict(self.params)}
        )


class Job:
    """One unit of queued work plus its observable state.

    Attributes
    ----------
    id:
        The request digest -- content address and HTTP identifier.
    events:
        The tailable line buffer the job's event stream writes into.
    stream:
        The job's :class:`EventStream`; runners hang a telemetry
        session on it so span events appear live under ``/events``.
    """

    def __init__(self, request: JobRequest) -> None:
        self.request = request
        self.id = request.digest()
        self.state = JobState.QUEUED
        self.result: dict[str, Any] | None = None
        self.error: str | None = None
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.events = EventBuffer()
        self.stream = EventStream([self.events], source=self.id[:12])
        self._done = threading.Event()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state.

        Returns True when terminal, False on timeout.
        """
        return self._done.wait(timeout)

    def descriptor(self) -> dict[str, Any]:
        """Return the job's JSON-ready status descriptor."""
        out: dict[str, Any] = {
            "id": self.id,
            "kind": self.request.kind,
            "state": self.state.value,
            "params": dict(self.request.params),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "n_events": len(self.events),
        }
        if self.error is not None:
            out["error"] = self.error
        return out

    def _finish(
        self,
        state: JobState,
        result: dict[str, Any] | None = None,
        error: str | None = None,
    ) -> None:
        """Transition to a terminal state and wake every waiter."""
        self.state = state
        self.result = result
        self.error = error
        self.finished_at = time.time()
        try:
            self.stream.finish()
        except Exception:  # noqa: BLE001 - closing is best-effort
            pass
        self.events.close()
        self._done.set()


class JobQueue:
    """Dedup-aware FIFO queue executed by daemon worker threads.

    Parameters
    ----------
    runner:
        Callable executing one job and returning its JSON-ready result
        dict.  Exceptions it raises mark the job FAILED (the worker
        thread survives).
    workers:
        Worker-thread count.  The default of 1 serializes simulations,
        which keeps the process-wide instrument registry's per-run
        deltas coherent; the HTTP layer stays concurrent regardless.
    max_pending:
        Backpressure limit on *queued* (not running) jobs; new requests
        past it raise :class:`QueueFullError`.
    """

    def __init__(
        self,
        runner: Callable[[Job], dict[str, Any]],
        *,
        workers: int = 1,
        max_pending: int = 64,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers!r}")
        if max_pending < 1:
            raise ServiceError(
                f"max_pending must be >= 1, got {max_pending!r}"
            )
        self._runner = runner
        self.max_pending = max_pending
        self._jobs: dict[str, Job] = {}
        self._pending: deque[Job] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-job-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ----------------------------------------------------

    def submit(self, request: JobRequest) -> tuple[Job, str]:
        """Enqueue ``request``; return ``(job, disposition)``.

        Dispositions: ``"new"`` (fresh job queued), ``"coalesced"``
        (identical job already queued/running), ``"completed"``
        (identical job already DONE -- stored result reused),
        ``"retried"`` (identical job FAILED/CANCELLED -- replaced).

        Raises
        ------
        QueueFullError
            When a new job would exceed ``max_pending`` queued jobs.
        """
        registry = get_registry()
        with self._cond:
            if self._closed:
                raise ServiceError("job queue is closed")
            digest = request.digest()
            existing = self._jobs.get(digest)
            if existing is not None:
                if existing.state in (JobState.QUEUED, JobState.RUNNING):
                    registry.counter(
                        "repro.service.dedup_hits",
                        help="submissions folded onto an existing job",
                    ).inc(mode="coalesced")
                    return existing, "coalesced"
                if existing.state is JobState.DONE:
                    registry.counter(
                        "repro.service.dedup_hits",
                        help="submissions folded onto an existing job",
                    ).inc(mode="completed")
                    return existing, "completed"
                disposition = "retried"
            else:
                disposition = "new"
            if len(self._pending) >= self.max_pending:
                registry.counter(
                    "repro.service.rejected",
                    help="submissions refused by queue backpressure",
                ).inc(kind=request.kind)
                raise QueueFullError(
                    f"job queue full ({self.max_pending} pending); retry later"
                )
            job = Job(request)
            self._jobs[digest] = job
            self._pending.append(job)
            registry.counter(
                "repro.service.submitted",
                help="jobs accepted into the queue",
            ).inc(kind=request.kind)
            self._set_depth_locked()
            self._cond.notify()
            return job, disposition

    def cancel(self, job_id: str) -> bool:
        """Cancel a QUEUED job; return whether it was cancelled.

        Running jobs are not interruptible (the simulation owns the
        worker thread until it returns), so cancelling one returns
        False and leaves it to finish.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.QUEUED:
                return False
            try:
                self._pending.remove(job)
            except ValueError:
                # Already claimed by a worker between states.
                return False
            self._set_depth_locked()
        job._finish(JobState.CANCELLED, error="cancelled before execution")
        get_registry().counter(
            "repro.service.cancelled", help="jobs cancelled while queued"
        ).inc(kind=job.request.kind)
        return True

    # -- inspection ----------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        """Return the job addressed by ``job_id``, if known."""
        with self._cond:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Return every known job, oldest submission first."""
        with self._cond:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_at)

    def depth(self) -> int:
        """Return the number of queued (not yet running) jobs."""
        with self._cond:
            return len(self._pending)

    # -- lifecycle -----------------------------------------------------

    def close(self, timeout: float | None = 5.0) -> None:
        """Stop accepting work and join the worker threads.

        Queued jobs that never ran are marked CANCELLED so waiters
        unblock; the running job (if any) finishes normally.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            abandoned = list(self._pending)
            self._pending.clear()
            self._set_depth_locked()
            self._cond.notify_all()
        for job in abandoned:
            job._finish(JobState.CANCELLED, error="queue shut down")
        for thread in self._threads:
            thread.join(timeout=timeout)

    def _set_depth_locked(self) -> None:
        get_registry().gauge(
            "repro.service.queue_depth",
            help="jobs queued and not yet running",
        ).set(float(len(self._pending)))

    def _worker(self) -> None:
        """Worker loop: drain jobs until the queue closes.

        The runner call is outside the lock (simulations are long);
        exceptions mark the job FAILED and the loop continues -- a
        poisoned request must never take the queue down with it.
        """
        registry = get_registry()
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending:
                    return
                job = self._pending.popleft()
                job.state = JobState.RUNNING
                job.started_at = time.time()
                self._set_depth_locked()
            registry.counter(
                "repro.service.executed",
                help="jobs that actually ran a simulation",
            ).inc(kind=job.request.kind)
            job.stream.emit("job_start", job.request.kind, job=job.id)
            started = time.perf_counter()
            try:
                result = self._runner(job)
            except Exception as exc:  # noqa: BLE001 - keep the worker alive
                registry.counter(
                    "repro.service.failed",
                    help="jobs whose runner raised",
                ).inc(kind=job.request.kind)
                try:
                    job.stream.emit(
                        "job_finish",
                        job.request.kind,
                        job=job.id,
                        state=JobState.FAILED.value,
                        error=str(exc),
                    )
                except Exception:  # noqa: BLE001
                    pass
                job._finish(
                    JobState.FAILED, error=f"{type(exc).__name__}: {exc}"
                )
            else:
                job.stream.emit(
                    "job_finish",
                    job.request.kind,
                    job=job.id,
                    state=JobState.DONE.value,
                )
                job._finish(JobState.DONE, result=result)
            registry.histogram(
                "repro.service.job_seconds",
                buckets=_JOB_BUCKETS,
                help="wall-clock runner duration per executed job",
            ).observe(time.perf_counter() - started, kind=job.request.kind)
