"""The simulation service: request normalization, runners, server.

``repro serve`` turns the repo's batch engines into a long-lived
HTTP service.  This module is its core, in three layers:

* :func:`normalize_request` -- the canonicalizer.  A raw JSON request
  becomes a :class:`~repro.service.queue.JobRequest` whose params are
  fully resolved (design aliases expanded, defaults filled, numbers
  coerced), so every spelling of the same simulation digests to the
  same job id and dedups server-side.
* :class:`SimulationService` -- owns the shared artifact store (one
  byte-budgeted :class:`~repro.runtime.cache.ResultCache` for every
  job), the :class:`~repro.service.queue.JobQueue`, and the runners
  that execute ``report`` and ``sweep`` jobs through the exact same
  code paths as the CLI -- manifests served over HTTP are
  bit-identical to ``repro report`` output.  Every executed run is
  appended to the observability ledger (``--no-ledger`` opts out), so
  ``repro history`` and ``repro trend`` cover served traffic too.
* :func:`build_server` / :func:`serve` -- a stdlib
  :class:`~http.server.ThreadingHTTPServer` wiring the service to
  :class:`~repro.service.handlers.ServiceHandler`.

See ``docs/SERVICE.md`` for the endpoint reference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from http.server import ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.session import TelemetrySession

from repro.errors import ConfigurationError, ServiceError
from repro.runtime.cache import ResultCache
from repro.service.queue import Job, JobQueue, JobRequest

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ServiceConfig",
    "SimulationService",
    "build_server",
    "normalize_request",
    "serve",
]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765

#: Service-side default FFT length for ``report`` jobs: a quarter of
#: the paper's 64K keeps interactive latency in seconds while staying
#: above the sweep engine's 8K lane floor.
DEFAULT_REPORT_SAMPLES = 1 << 14

_REQUEST_KINDS = ("report", "sweep")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` can configure.

    Attributes
    ----------
    jobs:
        Worker-process count handed to each simulation's
        :class:`~repro.runtime.executor.SweepExecutor` (bit-identical
        at any value).
    workers:
        Queue worker threads; 1 (the default) serializes simulations so
        each manifest's instrument delta stays coherent.
    max_pending:
        Queue backpressure limit (HTTP 429 past it).
    max_bytes:
        Byte budget of the shared result cache; ``None`` never evicts.
    ledger:
        Append every executed run to the observability run ledger
        (``repro serve --no-ledger`` disables).
    """

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    jobs: int = 1
    workers: int = 1
    max_pending: int = 64
    cache_dir: str | None = None
    max_bytes: int | None = None
    ledger: bool = True
    ledger_dir: str | None = None


def _coerce_float(raw: Mapping[str, Any], key: str, default: float) -> float:
    value = raw.get(key, default)
    try:
        return float(value)
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"{key} must be a number, got {value!r}") from exc


def normalize_request(raw: Mapping[str, Any]) -> JobRequest:
    """Canonicalize a raw JSON request into a :class:`JobRequest`.

    Two requests that mean the same simulation must normalize to the
    same params -- the request digest (and therefore dedup) is computed
    over the *normalized* form.  Aliases are resolved (``mod2`` and
    ``modulator2`` dedup together), defaults are materialized, and all
    numeric fields are coerced to their canonical types.

    Raises
    ------
    ServiceError
        On an unknown kind, unknown design, malformed sweep spec or
        non-numeric field.
    """
    if not isinstance(raw, Mapping):
        raise ServiceError(
            f"request must be a JSON object, got {type(raw).__name__}"
        )
    kind = str(raw.get("kind", "report"))
    if kind not in _REQUEST_KINDS:
        raise ServiceError(
            f"unknown request kind {kind!r}; expected one of {_REQUEST_KINDS}"
        )
    if kind == "sweep":
        from repro.runtime.sweeps import sweep_spec_from_mapping

        spec_raw = raw.get("spec")
        if not isinstance(spec_raw, Mapping):
            raise ServiceError("sweep request needs a 'spec' object")
        try:
            spec = sweep_spec_from_mapping(spec_raw)
        except ConfigurationError as exc:
            raise ServiceError(str(exc)) from exc
        # The spec's own cache key is the canonical form: dedup at the
        # service level matches dedup at the result-cache level.
        return JobRequest(kind="sweep", params=spec.cache_key())

    from repro.telemetry.designs import build_trace_setup

    design = raw.get("design")
    if not isinstance(design, str) or not design:
        raise ServiceError("report request needs a 'design' name")
    try:
        resolved = build_trace_setup(design).name
    except ConfigurationError as exc:
        raise ServiceError(str(exc)) from exc
    n_samples = raw.get("n_samples", DEFAULT_REPORT_SAMPLES)
    if not isinstance(n_samples, int) or isinstance(n_samples, bool):
        raise ServiceError(
            f"n_samples must be an integer, got {n_samples!r}"
        )
    if n_samples < 1 << 13:
        # Below 8K the 2 kHz tone collides with the Blackman window's
        # DC lobe and the analysis refuses the measurement.
        raise ServiceError(
            f"n_samples must be >= {1 << 13}, got {n_samples}"
        )
    params: dict[str, Any] = {
        "design": resolved,
        "n_samples": n_samples,
        "sweep": bool(raw.get("sweep", True)),
        "noise_scale": _coerce_float(raw, "noise_scale", 1.0),
        "mismatch": _coerce_float(raw, "mismatch", 0.0),
    }
    return JobRequest(kind="report", params=params)


class SimulationService:
    """The queue, the shared cache and the runners behind the HTTP API."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.cache = ResultCache(
            self.config.cache_dir, max_bytes=self.config.max_bytes
        )
        self.queue = JobQueue(
            self._run_job,
            workers=self.config.workers,
            max_pending=self.config.max_pending,
        )
        self.started_at = time.time()

    def submit(self, raw: Mapping[str, Any]) -> tuple[Job, str]:
        """Normalize and enqueue a raw request; see :meth:`JobQueue.submit`."""
        return self.queue.submit(normalize_request(raw))

    def close(self) -> None:
        """Shut the job queue down (pending jobs are cancelled)."""
        self.queue.close()

    # -- runners -------------------------------------------------------

    def _run_job(self, job: Job) -> dict[str, Any]:
        """Execute one job; called on a queue worker thread.

        The job's event stream is wired into the telemetry session, so
        every simulation span lands in the ``/events`` tail live.
        """
        from repro.telemetry.session import TelemetrySession

        session = TelemetrySession(
            f"service:{job.request.kind}", stream=job.stream
        )
        if job.request.kind == "sweep":
            result = self._run_sweep(job, session)
        else:
            result = self._run_report(job, session)
        self._ledger_append(job, result)
        return result

    def _run_report(
        self, job: Job, session: "TelemetrySession"
    ) -> dict[str, Any]:
        from repro.metrics.provenance import collect_provenance
        from repro.metrics.report import build_report

        params = job.request.params
        manifest = build_report(
            str(params["design"]),
            n_samples=int(params["n_samples"]),
            sweep=bool(params["sweep"]),
            noise_scale=float(params["noise_scale"]),
            mismatch=float(params["mismatch"]),
            provenance=collect_provenance(
                argv=["repro", "serve", "--job", job.id[:12]]
            ),
            jobs=self.config.jobs,
            cache=self.cache,
            session=session,
        )
        return manifest.as_dict()

    def _run_sweep(
        self, job: Job, session: "TelemetrySession"
    ) -> dict[str, Any]:
        from repro.runtime.executor import SweepExecutor
        from repro.runtime.sweeps import run_sweep, sweep_spec_from_mapping

        fields = {
            key: value
            for key, value in job.request.params.items()
            if key != "kind"
        }
        spec = sweep_spec_from_mapping(fields)
        result = run_sweep(
            spec,
            executor=SweepExecutor(jobs=self.config.jobs),
            cache=self.cache,
            telemetry=session,
        )
        # Mirrors the ``repro sweep`` ledger payload so ``repro
        # history``/``trend`` treat served sweeps like CLI sweeps.
        return {
            "design": spec.design,
            "levels_db": list(spec.levels_db),
            "n_samples": spec.n_samples,
            "snr_db": [m.snr_db for m in result.metrics],
            "thd_db": [m.thd_db for m in result.metrics],
            "sndr_db": [m.sndr_db for m in result.metrics],
            "peak_sndr_db": result.peak_sndr_db,
        }

    def _ledger_append(self, job: Job, result: dict[str, Any]) -> None:
        """Record an executed run in the observability ledger.

        Best-effort by design: a read-only ledger directory must not
        fail a simulation that already succeeded.  Report entries strip
        the provenance block into the entry's own provenance slot,
        matching ``repro report`` so identical runs content-address to
        the same ledger entry.
        """
        if not self.config.ledger:
            return
        from repro.errors import ObservabilityError
        from repro.observability.ledger import RunLedger

        payload = dict(result)
        provenance = payload.pop("provenance", None)
        design = payload.get("design")
        try:
            RunLedger(self.config.ledger_dir).append(
                job.request.kind,
                payload,
                design=design if isinstance(design, str) else None,
                provenance=provenance if isinstance(provenance, dict) else None,
            )
        except (ObservabilityError, OSError) as exc:
            try:
                job.stream.emit(
                    "ledger_skipped", job.request.kind, error=str(exc)
                )
            except Exception:  # noqa: BLE001 - bookkeeping only
                pass


class ServiceServer(ThreadingHTTPServer):
    """HTTP server carrying its :class:`SimulationService` instance."""

    daemon_threads = True

    def __init__(
        self, address: tuple[str, int], service: SimulationService
    ) -> None:
        from repro.service.handlers import ServiceHandler

        self.service = service
        super().__init__(address, ServiceHandler)


def build_server(
    service: SimulationService,
    host: str | None = None,
    port: int | None = None,
) -> ServiceServer:
    """Bind the HTTP server for ``service`` (port 0 picks a free one)."""
    config = service.config
    return ServiceServer(
        (host if host is not None else config.host,
         port if port is not None else config.port),
        service,
    )


def serve(config: ServiceConfig | None = None) -> int:
    """Run the service until interrupted; returns an exit code.

    Prints the bound address on stdout before blocking so scripts (and
    the CI smoke job) can wait on readiness by reading one line.
    """
    service = SimulationService(config)
    server = build_server(service)
    host, port = server.server_address[0], server.server_address[1]
    print(f"repro service listening on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    return 0
