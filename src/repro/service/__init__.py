"""Simulation-as-a-service: a job queue and HTTP API over the engines.

``repro serve`` boots a long-lived, stdlib-only HTTP service whose job
queue fronts the same :class:`~repro.runtime.executor.SweepExecutor` /
:func:`~repro.metrics.report.build_report` machinery the CLI drives
directly.  Requests are content-addressed with the result cache's
canonical digests, so identical submissions -- concurrent or repeated
-- execute exactly once and return byte-identical run manifests.  See
``docs/SERVICE.md``.
"""

from repro.service.app import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ServiceConfig,
    SimulationService,
    build_server,
    normalize_request,
    serve,
)
from repro.service.client import ServiceClient
from repro.service.queue import Job, JobQueue, JobRequest, JobState

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "Job",
    "JobQueue",
    "JobRequest",
    "JobState",
    "ServiceClient",
    "ServiceConfig",
    "SimulationService",
    "build_server",
    "normalize_request",
    "serve",
]
