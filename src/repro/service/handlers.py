"""HTTP routes of the simulation service.

One :class:`~http.server.BaseHTTPRequestHandler` subclass, running on
the threading server of :mod:`repro.service.app`, implements the whole
API (reference: ``docs/SERVICE.md``):

==========  =========================  =====================================
method      path                       purpose
==========  =========================  =====================================
``GET``     ``/healthz``               liveness + uptime
``GET``     ``/statsz``                instrument snapshot (Prometheus
                                       exposition; ``?format=json`` for raw)
``POST``    ``/jobs``                  submit a request (201 new/retried,
                                       200 deduplicated, 400 invalid,
                                       429 queue full)
``GET``     ``/jobs``                  list job descriptors
``GET``     ``/jobs/<id>``             one job descriptor
``GET``     ``/jobs/<id>/result``      the result document;
                                       ``?wait=SECONDS`` long-polls
``GET``     ``/jobs/<id>/events``      NDJSON event tail;
                                       ``?follow=1`` streams until done
``DELETE``  ``/jobs/<id>``             cancel a queued job
==========  =========================  =====================================

Result bytes are canonical: ``json.dumps(result, indent=2,
sort_keys=True) + "\\n"``, computed from the single stored result
object -- every client of a deduplicated job receives byte-identical
manifests.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler
from typing import TYPE_CHECKING, Any
from urllib.parse import parse_qs, urlparse

from repro.errors import QueueFullError, ServiceError
from repro.observability.instruments import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.app import SimulationService
    from repro.service.queue import Job

__all__ = ["ServiceHandler", "result_bytes"]

#: Cap on ``?wait=`` long-polls (seconds); clients re-poll past it.
MAX_WAIT_S = 60.0

#: Per-read block on a followed event tail (seconds); bounds how long a
#: dead connection can hold its handler thread.
FOLLOW_POLL_S = 1.0


def result_bytes(result: dict[str, Any]) -> bytes:
    """Serialize a job result to its canonical byte form."""
    return (json.dumps(result, indent=2, sort_keys=True) + "\n").encode(
        "utf-8"
    )


class ServiceHandler(BaseHTTPRequestHandler):
    """Route HTTP requests to the owning :class:`SimulationService`."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> "SimulationService":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging (instruments cover it)."""

    # -- plumbing ------------------------------------------------------

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        self._send(
            status,
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
        )

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _query(self) -> dict[str, list[str]]:
        return parse_qs(urlparse(self.path).query)

    def _route(self) -> list[str]:
        return [part for part in urlparse(self.path).path.split("/") if part]

    def _job_or_404(self, job_id: str) -> "Job | None":
        job = self.service.queue.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
        return job

    # -- verbs ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        parts = self._route()
        if parts == ["healthz"]:
            self._handle_health()
        elif parts == ["statsz"]:
            self._handle_stats()
        elif parts == ["jobs"]:
            self._send_json(
                200,
                {
                    "jobs": [
                        job.descriptor() for job in self.service.queue.jobs()
                    ]
                },
            )
        elif len(parts) == 2 and parts[0] == "jobs":
            job = self._job_or_404(parts[1])
            if job is not None:
                self._send_json(200, job.descriptor())
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            job = self._job_or_404(parts[1])
            if job is not None:
                self._handle_result(job)
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
            job = self._job_or_404(parts[1])
            if job is not None:
                self._handle_events(job)
        else:
            self._error(404, f"no route for GET {urlparse(self.path).path}")

    def do_POST(self) -> None:  # noqa: N802
        if self._route() != ["jobs"]:
            self._error(404, f"no route for POST {urlparse(self.path).path}")
            return
        length = int(self.headers.get("Content-Length") or 0)
        try:
            raw = json.loads(self.rfile.read(length) or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._error(400, f"request body is not valid JSON: {exc}")
            return
        try:
            job, disposition = self.service.submit(raw)
        except QueueFullError as exc:
            self._error(429, str(exc))
            return
        except ServiceError as exc:
            self._error(400, str(exc))
            return
        descriptor = job.descriptor()
        descriptor["disposition"] = disposition
        self._send_json(
            201 if disposition in ("new", "retried") else 200, descriptor
        )

    def do_DELETE(self) -> None:  # noqa: N802
        parts = self._route()
        if len(parts) != 2 or parts[0] != "jobs":
            self._error(404, f"no route for DELETE {urlparse(self.path).path}")
            return
        job = self._job_or_404(parts[1])
        if job is None:
            return
        if self.service.queue.cancel(job.id):
            self._send_json(200, job.descriptor())
        else:
            self._error(
                409,
                f"job {job.id[:12]} is {job.state.value}; "
                "only queued jobs can be cancelled",
            )

    # -- route bodies --------------------------------------------------

    def _handle_health(self) -> None:
        import time

        self._send_json(
            200,
            {
                "status": "ok",
                "uptime_s": round(time.time() - self.service.started_at, 3),
                "jobs": len(self.service.queue.jobs()),
                "queue_depth": self.service.queue.depth(),
            },
        )

    def _handle_stats(self) -> None:
        registry = get_registry()
        if self._query().get("format", [""])[0] == "json":
            self._send_json(200, dict(registry.snapshot()))
            return
        self._send(
            200,
            registry.to_prometheus_text().encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def _handle_result(self, job: "Job") -> None:
        from repro.service.queue import JobState

        query = self._query()
        wait_raw = query.get("wait", ["0"])[0]
        try:
            wait_s = min(max(float(wait_raw), 0.0), MAX_WAIT_S)
        except ValueError:
            self._error(400, f"wait must be a number, got {wait_raw!r}")
            return
        if wait_s > 0.0:
            job.wait(wait_s)
        if job.state is JobState.DONE and job.result is not None:
            self._send(200, result_bytes(job.result))
        elif job.state is JobState.FAILED:
            self._send_json(
                500, {"error": job.error or "job failed", "id": job.id}
            )
        elif job.state is JobState.CANCELLED:
            self._send_json(
                410, {"error": job.error or "job cancelled", "id": job.id}
            )
        else:
            # Still queued/running: 202 tells the client to poll again.
            self._send_json(202, job.descriptor())

    def _handle_events(self, job: "Job") -> None:
        """Serve the job's event log as NDJSON, optionally following.

        A follow reads the job's :class:`EventBuffer` in bounded waits
        until the buffer closes (the job reached a terminal state), so
        ``curl .../events?follow=1`` behaves like ``tail -f`` that
        exits when the run completes.
        """
        follow = self._query().get("follow", ["0"])[0] in ("1", "true")
        if not follow:
            body = "".join(
                line + "\n" for line in job.events.lines()
            ).encode("utf-8")
            self._send(200, body, content_type="application/x-ndjson")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        # Chunked framing: the total length is unknown while following.
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        cursor = 0
        try:
            while True:
                lines = job.events.wait(cursor, timeout=FOLLOW_POLL_S)
                for line in lines:
                    self._write_chunk(line + "\n")
                cursor += len(lines)
                if job.events.closed and not job.events.lines(cursor):
                    break
            self._write_chunk("")
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _write_chunk(self, text: str) -> None:
        data = text.encode("utf-8")
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        self.wfile.write(data + b"\r\n")
        self.wfile.flush()
