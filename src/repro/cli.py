"""Command-line interface: regenerate the paper's results from a shell.

Usage::

    python -m repro table1       # delay-line row of Table 1
    python -m repro fig5         # modulator spectrum measurement
    python -m repro fig6         # chopper spectra before/after
    python -m repro fig7         # SNDR sweep + dynamic range
    python -m repro headroom     # Eqs. (1)-(2) supply sweep
    python -m repro tradeoff     # SI vs SC comparison table
    python -m repro erc mod2     # static rule check of a named design
    python -m repro lint src     # determinism/lowerability lint of the source
    python -m repro trace mod2   # traced run: spans, probes, dynamic rules
    python -m repro report mod2 --json out.json   # paper-metrics manifest
    python -m repro compare out.json --strict     # diff vs golden baseline
    python -m repro sweep mod2 --jobs 4           # parallel batched DR sweep
    python -m repro stats mod2 --json s.json      # instrument counters
    python -m repro stats --diff a.json b.json    # gate on counter changes
    python -m repro profile mod2 --fast           # self/total-time profile
    python -m repro bench-gate                    # benchmark regression gate
    python -m repro history mod2                  # run-ledger trajectory
    python -m repro trend --strict                # cross-run drift gate
    python -m repro serve --port 8765             # simulation service (HTTP)
    python -m repro submit mod2 --wait            # submit a job, get manifest
    python -m repro --list       # list the commands

Each measurement command prints the paper-style table.  Full FFT
lengths are used by default; pass ``--fast`` for a quicker,
lower-resolution run.  ``repro erc <design>`` runs the static
electrical-rule checker (:mod:`repro.erc`) and exits non-zero when the
design has ERROR-severity violations; ``repro trace <design>`` runs a
telemetry-instrumented simulation (:mod:`repro.telemetry`) and exits
non-zero when a dynamic rule raises an ERROR event -- e.g. driven with
``--overdrive 5`` the observed modulation index leaves the modeled
class-AB range even though the declared design passes static ERC.

``repro report <design>`` measures a design at its paper operating
point and emits a run manifest (:mod:`repro.metrics`): every headline
number of the paper as a typed, provenance-stamped record.  ``repro
compare <manifest>`` diffs such a manifest against a committed golden
baseline in ``baselines/`` and the paper's published values, exiting
non-zero when a gated metric regressed past its tolerance.

``repro stats <design>`` runs the sweep under a fresh instrument
registry (:mod:`repro.observability`) and prints what the runtime
layer did -- cache hits/misses, engine fallbacks, shard timings --
with worker-process counts merged in; ``repro stats --diff`` gates two
such snapshots with the manifest compare's verdict ladder.  ``repro
profile <design|spec.json>`` collapses the traced span tree into a
self/total-time table (and, with ``--json``, collapsed flamegraph
stacks).  See ``docs/OBSERVABILITY.md``.

Every ``report``, ``sweep`` and ``bench-gate`` run additionally appends
one content-addressed entry to the run ledger
(``.repro/ledger/ledger.jsonl`` or ``$REPRO_LEDGER_DIR``; disable with
``--no-ledger``).  ``repro history <design>`` renders a design's
ledger trajectory as sparkline tables; ``repro trend`` judges every
recorded series for sustained drift against its own rolling
median/MAD history, exiting non-zero on drift sustained over the last
runs -- single noisy runs only warn.  ``report`` and ``sweep`` also
take ``--events PATH`` / ``--follow`` to tail span-level progress as
JSONL while the run executes (workers' events are merged into one
monotonically-ordered timeline).

``repro serve`` boots the simulation service (:mod:`repro.service`):
an HTTP job queue over the same engines, deduplicating identical
requests onto one execution and one byte-identical manifest.
``repro submit <design|spec.json> --wait`` is its client.  See
``docs/SERVICE.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # imported lazily at runtime to keep startup light
    from repro.runtime.sweeps import SweepSpec

import numpy as np

from repro.analysis.fitting import dynamic_range_from_sweep
from repro.errors import AnalysisError
from repro.analysis.sweeps import run_amplitude_sweep
from repro.config import (
    DELAY_LINE_BANDWIDTH,
    DELAY_LINE_CLOCK,
    MODULATOR_CLOCK,
    MODULATOR_FULL_SCALE,
    SIGNAL_BANDWIDTH,
    delay_line_cell_config,
    paper_cell_config,
)
from repro.deltasigma import ChopperStabilizedSIModulator, SIModulator2
from repro.erc import Severity, build_design, run_erc
from repro.erc.designs import DESIGNS
from repro.metrics.spectral import db_to_bits
from repro.reporting.tables import Table
from repro.sc.tradeoff import ScSiTradeoff
from repro.si import DelayLine, HeadroomAnalysis
from repro.systems import TestBench
from repro.systems.stimulus import coherent_frequency

__all__ = ["main"]


def _fft_length(fast: bool) -> int:
    return 1 << 14 if fast else 1 << 16


def _ledger_append(
    kind: str,
    payload: dict[str, object],
    design: str | None = None,
    provenance: dict[str, object] | None = None,
    ledger_dir: str | None = None,
) -> None:
    """Append one run-ledger entry; never fail the run over bookkeeping."""
    from repro.errors import ObservabilityError
    from repro.observability.ledger import RunLedger

    ledger = RunLedger(ledger_dir)
    try:
        entry = ledger.append(
            kind, payload, design=design, provenance=provenance
        )
    except (ObservabilityError, OSError) as exc:
        print(f"ledger: not recorded ({exc})", file=sys.stderr)
        return
    if entry is None:
        print(f"ledger: identical entry already in {ledger.path}")
    else:
        print(f"ledger: {entry.entry_id[:19]} appended to {ledger.path}")


def cmd_table1(fast: bool) -> None:
    """Print the Table 1 delay-line measurements."""
    config = delay_line_cell_config(sample_rate=DELAY_LINE_CLOCK)
    bench = TestBench(
        sample_rate=DELAY_LINE_CLOCK,
        n_samples=_fft_length(fast),
        bandwidth=DELAY_LINE_BANDWIDTH,
    )
    line = DelayLine(config, n_cells=2)

    def device(x: np.ndarray) -> np.ndarray:
        line.reset()
        return line.run(x)

    result = bench.measure(device, amplitude=8e-6, frequency=5e3)
    table = Table("Table 1: delay line at 5 MHz, 8 uA / 5 kHz", ("quantity", "paper", "measured"))
    table.add_row("THD", "-50 dB", f"{result.thd_db:.1f} dB")
    table.add_row("SNR (rms conv.)", "50 dB (p-p conv.)", f"{result.snr_db:.1f} dB")
    print(table.render())


def cmd_fig5(fast: bool) -> None:
    """Print the Fig. 5 modulator measurement."""
    modulator = SIModulator2(cell_config=paper_cell_config(sample_rate=MODULATOR_CLOCK))
    bench = TestBench(
        sample_rate=MODULATOR_CLOCK,
        n_samples=_fft_length(fast),
        bandwidth=SIGNAL_BANDWIDTH,
    )
    result = bench.measure(modulator, amplitude=3e-6, frequency=2e3)
    table = Table("Fig. 5: SI modulator, 2 kHz 3 uA (-6 dB)", ("quantity", "paper", "measured"))
    table.add_row("THD", "-61 dB", f"{result.thd_db:.1f} dB")
    table.add_row("SNR (10 kHz)", "58 dB", f"{result.snr_db:.1f} dB")
    table.add_row("SNDR", "-", f"{result.sndr_db:.1f} dB")
    print(table.render())


def cmd_fig6(fast: bool) -> None:
    """Print the Fig. 6 chopper-modulator measurement."""
    modulator = ChopperStabilizedSIModulator(
        cell_config=paper_cell_config(sample_rate=MODULATOR_CLOCK)
    )
    bench = TestBench(
        sample_rate=MODULATOR_CLOCK,
        n_samples=_fft_length(fast),
        bandwidth=SIGNAL_BANDWIDTH,
    )
    result = bench.measure(modulator, amplitude=3e-6, frequency=2e3)
    table = Table(
        "Fig. 6(b): chopper-stabilised SI modulator (post-chopper)",
        ("quantity", "paper", "measured"),
    )
    table.add_row("THD", "-62 dB", f"{result.thd_db:.1f} dB")
    table.add_row("SNR (10 kHz)", "58 dB", f"{result.snr_db:.1f} dB")
    print(table.render())


def cmd_fig7(fast: bool) -> None:
    """Print the Fig. 7 sweep and the extracted dynamic range."""
    config = paper_cell_config(sample_rate=MODULATOR_CLOCK)
    n_samples = 1 << 13 if fast else 1 << 15
    frequency = coherent_frequency(2e3, MODULATOR_CLOCK, n_samples)
    levels = [-50.0, -40.0, -30.0, -20.0, -10.0, -6.0, 0.0]
    table = Table(
        "Fig. 7: Signal/(Noise+THD) vs input level (0 dB = 6 uA)",
        ("level", "non-chopper", "chopper"),
    )
    drs = {}
    sweeps = {}
    for name, modulator in (
        ("non-chopper", SIModulator2(cell_config=config)),
        ("chopper", ChopperStabilizedSIModulator(cell_config=config)),
    ):
        sweeps[name] = run_amplitude_sweep(
            modulator,
            levels_db=levels,
            full_scale=MODULATOR_FULL_SCALE,
            signal_frequency=frequency,
            sample_rate=MODULATOR_CLOCK,
            n_samples=n_samples,
            bandwidth=SIGNAL_BANDWIDTH,
            settle_samples=256,
        )
        drs[name] = dynamic_range_from_sweep(sweeps[name], max_level_db=-10.0)
    for index, level in enumerate(levels):
        table.add_row(
            f"{level:.0f} dB",
            f"{sweeps['non-chopper'].sndr_db[index]:.1f} dB",
            f"{sweeps['chopper'].sndr_db[index]:.1f} dB",
        )
    print(table.render())
    for name, dr in drs.items():
        print(f"dynamic range ({name}): {dr:.1f} dB = {db_to_bits(dr):.1f} bits "
              "(paper: ~63 dB / 10.5 bits)")


def cmd_headroom(fast: bool) -> None:
    """Print the Eqs. (1)-(2) supply sweep."""
    analysis = HeadroomAnalysis()
    table = Table(
        "Eqs. (1)-(2): minimum supply vs modulation index",
        ("m_i", "V_dd,min", "feasible at 3.3 V"),
    )
    for m_i in (0.0, 1.0, 2.0, 4.0, 8.0):
        budget = analysis.evaluate(m_i)
        table.add_row(
            f"{m_i:.0f}",
            f"{budget.vdd_min:.2f} V",
            "yes" if budget.feasible_at(3.3) else "NO",
        )
    print(table.render())


def cmd_tradeoff(fast: bool) -> None:
    """Print the SI-vs-SC dynamic-range trade-off table."""
    tradeoff = ScSiTradeoff()
    table = Table(
        "SI vs SC at the paper's operating point (6 uA FS, OSR 128)",
        ("technology", "storage C", "noise rms", "DR", "double-poly?"),
    )
    for point in tradeoff.sweep([0.25e-12, 1e-12, 2.5e-12, 10e-12]):
        table.add_row(
            point.label,
            f"{point.storage_capacitance * 1e15:.0f} fF",
            f"{point.noise_rms * 1e9:.1f} nA",
            f"{point.dynamic_range_db:.1f} dB ({point.dynamic_range_bits:.1f} b)",
            "yes" if point.needs_double_poly else "no",
        )
    print(table.render())
    print('"The SI technique is an inexpensive alternative to the SC '
          'technique for medium accuracy applications."')


def cmd_erc(design: str, min_severity: str, strict: bool) -> int:
    """Statically check a named design against the ERC rule set."""
    names = sorted(DESIGNS) if design == "all" else [design]
    exit_code = 0
    for name in names:
        report = run_erc(
            build_design(name), min_severity=Severity.from_name(min_severity)
        )
        print(report.render_table())
        print(report.summary())
        if not report.ok or (strict and report.warnings):
            exit_code = 1
    return exit_code


def cmd_lint(
    paths: list[str],
    min_severity: str = "info",
    strict: bool = False,
    select: str | None = None,
    ignore: str | None = None,
    baseline: str | None = "baselines/staticcheck.json",
    json_path: str | None = None,
) -> int:
    """Statically check source files for determinism/lowerability contracts."""
    from repro.errors import ConfigurationError
    from repro.staticcheck import run_lint

    def split_codes(raw: str | None) -> list[str] | None:
        if raw is None:
            return None
        return [code.strip() for code in raw.split(",") if code.strip()]

    try:
        report = run_lint(
            paths,
            select=split_codes(select),
            ignore=split_codes(ignore),
            baseline=baseline,
            min_severity=Severity.from_name(min_severity),
        )
    except ConfigurationError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    print(report.render_table())
    if report.suppressed:
        print(
            f"{len(report.suppressed)} finding(s) suppressed by "
            f"{baseline} (see reasons there)"
        )
    print(report.summary())
    if json_path is not None:
        target = report.write_json(json_path)
        print(f"lint report written to {target}")
    return report.exit_code(strict)


def cmd_trace(
    design: str,
    fast: bool = False,
    samples: int | None = None,
    overdrive: float = 1.0,
    supply: float | None = None,
    json_path: str | None = None,
    strict: bool = False,
) -> int:
    """Run a traced simulation; print span, probe and event tables."""
    from repro.telemetry import TelemetrySession, build_trace_setup, export_jsonl

    setup = build_trace_setup(design)
    n_samples = samples if samples is not None else (1 << 14 if fast else 1 << 16)
    session = TelemetrySession(setup.name)
    device = setup.build()
    # Attach before the bench does so --supply reaches the probe
    # metadata; the bench's auto-attach then finds the probes existing.
    device.attach_telemetry(session, supply_voltage=supply)
    bench = TestBench(
        sample_rate=setup.sample_rate,
        n_samples=n_samples,
        bandwidth=setup.bandwidth,
        telemetry=session,
    )
    result = bench.measure(
        device,
        amplitude=overdrive * setup.amplitude,
        frequency=setup.frequency,
    )
    print(f"{setup.name}: {setup.description}")
    print(
        f"drive: {overdrive * setup.amplitude * 1e6:.2f} uA peak at "
        f"{result.stimulus.frequency / 1e3:.3f} kHz, "
        f"{n_samples} analysed samples"
    )
    print(session.render_span_tree())
    print(session.render_probe_table())
    print(session.render_event_table())
    print(session.summary())
    if json_path is not None:
        target = export_jsonl(session, json_path)
        print(f"trace written to {target}")
    if not session.ok or (strict and session.warning_events):
        return 1
    return 0


def cmd_sweep(
    design: str,
    fast: bool = False,
    samples: int | None = None,
    levels: list[float] | None = None,
    jobs: int = 1,
    cache: bool = True,
    cache_dir: str | None = None,
    json_path: str | None = None,
    profile: bool = False,
    events: str | None = None,
    follow: bool = False,
    ledger: bool = True,
    ledger_dir: str | None = None,
) -> int:
    """Run a dynamic-range sweep through the parallel batch engine."""
    import json

    from repro.observability.instruments import InstrumentRegistry, use_registry
    from repro.observability.live import open_event_stream
    from repro.runtime import ResultCache, SweepExecutor
    from repro.runtime.sweeps import (
        DEFAULT_LEVELS_DB,
        run_sweep,
        sweep_spec_for_design,
    )

    n_samples = samples if samples is not None else (1 << 13 if fast else 1 << 15)
    spec = sweep_spec_for_design(
        design,
        n_samples=2 * n_samples,  # spec halves the main FFT length
        levels_db=tuple(levels) if levels else DEFAULT_LEVELS_DB,
    )
    result_cache = ResultCache(cache_dir) if cache else None
    stream = open_event_stream(events, follow=follow, source=spec.design)
    session = None
    if profile or stream is not None:
        from repro.telemetry.session import TelemetrySession

        session = TelemetrySession(spec.design, stream=stream)
    # A fresh registry isolates this sweep's instruments from whatever
    # the process accumulated before; worker snapshots merge into it.
    registry = InstrumentRegistry()
    try:
        with use_registry(registry):
            result = run_sweep(
                spec,
                executor=SweepExecutor(jobs=jobs),
                cache=result_cache,
                telemetry=session,
            )
    finally:
        if stream is not None:
            stream.close()
    table = Table(
        f"{spec.design}: SNDR vs input level "
        f"({spec.n_samples} samples/lane, {jobs} job(s))",
        ("level", "SNR", "THD", "SNDR"),
    )
    for index, level in enumerate(spec.levels_db):
        metrics = result.metrics[index]
        table.add_row(
            f"{level:.0f} dB",
            f"{metrics.snr_db:.1f} dB",
            f"{metrics.thd_db:.1f} dB",
            f"{metrics.sndr_db:.1f} dB",
        )
    print(table.render())
    try:
        dr: float | None = dynamic_range_from_sweep(result, max_level_db=-10.0)
    except AnalysisError:
        # Spot-checking a couple of levels leaves too few points in the
        # linear region to fit; the per-level table above still stands.
        dr = None
        print("dynamic range: n/a (too few levels to fit the linear region)")
    else:
        print(
            f"dynamic range: {dr:.1f} dB = {db_to_bits(dr):.1f} bits "
            "(paper: ~63 dB / 10.5 bits)"
        )
    if result_cache is not None:
        print(
            f"cache: {result_cache.hits} hit(s), "
            f"{result_cache.misses} miss(es) in {result_cache.directory}"
        )
    if profile and session is not None:
        # One merged tree: the parent sweep span with each worker's
        # shard:<index> subtree grafted under it.
        print(session.render_span_tree())
        print(registry.render_table(title=f"instruments: {spec.design}"))
    payload: dict[str, object] = {
        "design": spec.design,
        "levels_db": list(spec.levels_db),
        "n_samples": spec.n_samples,
        "snr_db": [m.snr_db for m in result.metrics],
        "thd_db": [m.thd_db for m in result.metrics],
        "sndr_db": [m.sndr_db for m in result.metrics],
        "dynamic_range_db": dr,
    }
    if json_path is not None:
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"sweep written to {json_path}")
    if ledger:
        _ledger_append(
            "sweep", payload, design=spec.design, ledger_dir=ledger_dir
        )
    return 0


def cmd_stats(
    design: str | None = None,
    fast: bool = False,
    samples: int | None = None,
    levels: list[float] | None = None,
    jobs: int = 1,
    cache: bool = True,
    cache_dir: str | None = None,
    json_path: str | None = None,
    diff: list[str] | None = None,
    strict: bool = False,
    prometheus: bool = False,
) -> int:
    """Run a sweep and print its instrument counters, or diff two snapshots."""
    from repro.errors import ConfigurationError, ObservabilityError
    from repro.observability.instruments import InstrumentRegistry, use_registry
    from repro.observability.stats import (
        diff_snapshots,
        load_stats_json,
        write_stats_json,
    )

    if diff is not None:
        try:
            current = load_stats_json(diff[0])
            baseline = load_stats_json(diff[1])
            report = diff_snapshots(current, baseline)
        except ObservabilityError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(report.render_table())
        print(report.summary())
        return report.exit_code(strict=strict)

    if design is None:
        print(
            "error: a design is required unless --diff is given",
            file=sys.stderr,
        )
        return 2

    from repro.runtime import ResultCache, SweepExecutor
    from repro.runtime.sweeps import (
        DEFAULT_LEVELS_DB,
        run_sweep,
        sweep_spec_for_design,
    )

    n_samples = samples if samples is not None else (1 << 13 if fast else 1 << 15)
    try:
        spec = sweep_spec_for_design(
            design,
            n_samples=2 * n_samples,  # spec halves the main FFT length
            levels_db=tuple(levels) if levels else DEFAULT_LEVELS_DB,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # A fresh registry means the printed counts describe exactly this
    # run -- worker snapshots merge into it across the process boundary.
    registry = InstrumentRegistry()
    with use_registry(registry):
        run_sweep(
            spec,
            executor=SweepExecutor(jobs=jobs),
            cache=ResultCache(cache_dir) if cache else None,
        )
    print(registry.render_table(title=f"instruments: {spec.design}"))
    if prometheus:
        print(registry.to_prometheus_text(), end="")
    if json_path is not None:
        config: dict[str, object] = {
            "design": spec.design,
            "n_samples": spec.n_samples,
            "levels_db": list(spec.levels_db),
            "jobs": jobs,
            "cache": cache,
        }
        target = write_stats_json(
            json_path, registry.snapshot(), design=spec.design, config=config
        )
        print(f"stats written to {target}")
    return 0


def _sweep_spec_from_json(path: str) -> "SweepSpec":
    """Load a SweepSpec from a JSON file of its constructor fields."""
    import json
    from pathlib import Path

    from repro.errors import ConfigurationError
    from repro.runtime.sweeps import sweep_spec_from_mapping

    try:
        raw = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise ConfigurationError(f"sweep spec not found: {path}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read sweep spec {path}: {exc}") from exc
    if not isinstance(raw, dict):
        raise ConfigurationError(f"sweep spec {path} is not a JSON object")
    try:
        return sweep_spec_from_mapping(raw)
    except ConfigurationError as exc:
        raise ConfigurationError(f"{path}: {exc}") from exc


def cmd_profile(
    target: str,
    fast: bool = False,
    samples: int | None = None,
    sweep: bool = True,
    jobs: int = 1,
    cache: bool = True,
    cache_dir: str | None = None,
    json_path: str | None = None,
) -> int:
    """Profile a design report (or a sweep-spec JSON): where time went."""
    import json
    from pathlib import Path

    from repro.errors import ConfigurationError, MetricsError
    from repro.observability.profile import (
        aggregate_profile,
        collapsed_stacks,
        render_profile_table,
    )
    from repro.observability.spanio import span_to_dict
    from repro.observability.stats import PROFILE_SCHEMA
    from repro.telemetry.session import TelemetrySession

    if target.endswith(".json"):
        from repro.runtime import ResultCache, SweepExecutor
        from repro.runtime.sweeps import run_sweep

        try:
            spec = _sweep_spec_from_json(target)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        session = TelemetrySession(spec.design)
        run_sweep(
            spec,
            executor=SweepExecutor(jobs=jobs),
            cache=ResultCache(cache_dir) if cache else None,
            telemetry=session,
        )
    else:
        from repro.metrics import build_report

        n_samples = (
            samples if samples is not None else (1 << 14 if fast else 1 << 16)
        )
        session = TelemetrySession(target)
        try:
            build_report(
                target,
                n_samples=n_samples,
                sweep=sweep,
                jobs=jobs,
                use_cache=cache,
                cache_dir=cache_dir,
                session=session,
            )
        except (ConfigurationError, MetricsError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    rows = aggregate_profile(session.roots)
    print(session.render_span_tree())
    print(render_profile_table(rows))
    if json_path is not None:
        document: dict[str, object] = {
            "schema": PROFILE_SCHEMA,
            "target": target,
            "rows": [row.as_dict() for row in rows],
            "collapsed_stacks": collapsed_stacks(session.roots),
            "spans": [span_to_dict(root) for root in session.roots],
        }
        Path(json_path).write_text(json.dumps(document, indent=2) + "\n")
        print(f"profile written to {json_path}")
    return 0


def cmd_bench_gate(
    telemetry_path: str = "BENCH_telemetry.json",
    baseline_path: str = "baselines/bench.json",
    tolerance: float | None = None,
    ledger: bool = True,
    ledger_dir: str | None = None,
) -> int:
    """Check benchmark telemetry against the committed wall-time baseline."""
    from repro.errors import MetricsError
    from repro.metrics import run_bench_gate

    try:
        report = run_bench_gate(
            telemetry_path, baseline_path, tolerance=tolerance
        )
    except MetricsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render_table())
    print(report.summary())
    if report.extra_benchmarks:
        print(
            f"(not gated: {len(report.extra_benchmarks)} benchmark(s) "
            "without a baseline entry)"
        )
    if ledger:
        payload: dict[str, object] = {
            "tolerance": report.tolerance,
            "ok": report.ok,
            "failures": list(report.failures),
            "rows": [
                {
                    "benchmark": row.benchmark,
                    "wall_s": row.wall_s,
                    "limit_s": row.limit_s,
                    "speedup": row.speedup,
                    "min_speedup": row.min_speedup,
                    "ok": row.ok,
                }
                for row in report.rows
            ],
        }
        _ledger_append("bench-gate", payload, ledger_dir=ledger_dir)
    return report.exit_code()


def cmd_history(
    design: str,
    limit: int = 10,
    ledger_dir: str | None = None,
) -> int:
    """Show a design's run-ledger trajectory (metrics and entries)."""
    from repro.observability.ledger import RunLedger
    from repro.observability.trend import render_history

    ledger = RunLedger(ledger_dir)
    print(render_history(ledger, design, limit=limit))
    known = ledger.designs()
    if design not in known and known:
        print(f"(designs with history: {', '.join(known)})")
    return 0


def cmd_trend(
    design: str | None = None,
    window: int | None = None,
    sustain: int | None = None,
    threshold: float | None = None,
    strict: bool = False,
    json_path: str | None = None,
    ledger_dir: str | None = None,
) -> int:
    """Gate on sustained cross-run drift in the run ledger."""
    from repro.observability.ledger import RunLedger
    from repro.observability.trend import (
        DEFAULT_SUSTAIN,
        DEFAULT_THRESHOLD,
        DEFAULT_WINDOW,
        analyze_ledger,
    )

    report = analyze_ledger(
        RunLedger(ledger_dir),
        design=design,
        window=window if window is not None else DEFAULT_WINDOW,
        sustain=sustain if sustain is not None else DEFAULT_SUSTAIN,
        threshold=threshold if threshold is not None else DEFAULT_THRESHOLD,
    )
    print(report.render_table())
    print(report.summary())
    if json_path is not None:
        target = report.write_json(json_path)
        print(f"trend report written to {target}")
    return report.exit_code(strict=strict)


def cmd_report(
    design: str,
    fast: bool = False,
    samples: int | None = None,
    sweep: bool = True,
    noise_scale: float = 1.0,
    mismatch: float = 0.0,
    jobs: int = 1,
    cache: bool = True,
    cache_dir: str | None = None,
    json_path: str | None = None,
    markdown_path: str | None = None,
    profile: bool = False,
    events: str | None = None,
    follow: bool = False,
    ledger: bool = True,
    ledger_dir: str | None = None,
    engine: str = "auto",
    argv: list[str] | None = None,
) -> int:
    """Measure a design and emit its paper-metrics run manifest."""
    from repro.metrics import build_report, collect_provenance
    from repro.observability.live import open_event_stream

    n_samples = samples if samples is not None else (1 << 14 if fast else 1 << 16)
    stream = open_event_stream(events, follow=follow, source=design)
    session = None
    if profile or stream is not None:
        from repro.telemetry.session import TelemetrySession

        session = TelemetrySession(design, stream=stream)
    try:
        manifest = build_report(
            design,
            n_samples=n_samples,
            sweep=sweep,
            noise_scale=noise_scale,
            mismatch=mismatch,
            jobs=jobs,
            use_cache=cache,
            cache_dir=cache_dir,
            provenance=collect_provenance(argv=argv),
            session=session,
            engine=engine,
        )
    finally:
        if stream is not None:
            stream.close()
    print(manifest.render_table())
    if profile and session is not None:
        print(session.render_span_tree())
    if json_path is not None:
        target = manifest.write_json(json_path)
        print(f"manifest written to {target}")
    if markdown_path is not None:
        from pathlib import Path

        Path(markdown_path).write_text(manifest.render_markdown())
        print(f"markdown report written to {markdown_path}")
    if ledger:
        # The manifest's own provenance block becomes the entry's
        # provenance; keeping it out of the payload lets an identical
        # re-measurement content-address to the same entry.
        payload = manifest.as_dict()
        provenance = payload.pop("provenance", None)
        _ledger_append(
            "report",
            payload,
            design=manifest.design,
            provenance=provenance if isinstance(provenance, dict) else None,
            ledger_dir=ledger_dir,
        )
    return 0


def cmd_compare(
    manifest_path: str,
    baseline_path: str | None = None,
    strict: bool = False,
) -> int:
    """Diff a run manifest against a golden baseline; exit 1 on regression."""
    from repro.errors import MetricsError
    from repro.metrics import compare_manifests, load_manifest

    try:
        current = load_manifest(manifest_path)
        baseline = load_manifest(
            baseline_path
            if baseline_path is not None
            else f"baselines/{current.design}.json"
        )
    except MetricsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = compare_manifests(current, baseline)
    print(report.render_table())
    print(report.summary())
    return report.exit_code(strict=strict)


def cmd_serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    jobs: int = 1,
    workers: int = 1,
    max_pending: int = 64,
    cache_dir: str | None = None,
    max_bytes: int | None = None,
    ledger: bool = True,
    ledger_dir: str | None = None,
) -> int:
    """Run the simulation service over HTTP until interrupted."""
    from repro.errors import ConfigurationError, ServiceError
    from repro.service import ServiceConfig, serve

    try:
        return serve(
            ServiceConfig(
                host=host,
                port=port,
                jobs=jobs,
                workers=workers,
                max_pending=max_pending,
                cache_dir=cache_dir,
                max_bytes=max_bytes,
                ledger=ledger,
                ledger_dir=ledger_dir,
            )
        )
    except (ConfigurationError, ServiceError, OSError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 1


def cmd_submit(
    target: str,
    url: str = "http://127.0.0.1:8765",
    samples: int | None = None,
    sweep: bool = True,
    noise_scale: float = 1.0,
    mismatch: float = 0.0,
    wait: bool = False,
    timeout: float = 300.0,
    output: str | None = None,
) -> int:
    """Submit a design (or sweep-spec JSON) to a running service."""
    import json
    from pathlib import Path

    from repro.errors import QueueFullError, ServiceError
    from repro.service import ServiceClient

    # A target that exists on disk (or ends in .json) is a sweep spec;
    # anything else is a design name for a report job.
    request: dict[str, object]
    if target.endswith(".json") or Path(target).exists():
        try:
            spec = json.loads(Path(target).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"submit: cannot read sweep spec {target}: {exc}",
                  file=sys.stderr)
            return 2
        request = {"kind": "sweep", "spec": spec}
    else:
        request = {
            "kind": "report",
            "design": target,
            "sweep": sweep,
            "noise_scale": noise_scale,
            "mismatch": mismatch,
        }
        if samples is not None:
            request["n_samples"] = samples

    client = ServiceClient(url)
    try:
        descriptor = client.submit(request)
    except (QueueFullError, ServiceError) as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    job_id = str(descriptor["id"])
    # Status goes to stderr: stdout carries only the job id (no --wait)
    # or the result document, so scripts can consume it directly.
    print(
        f"job {job_id[:12]} {descriptor['state']}"
        f" ({descriptor['disposition']})",
        file=sys.stderr,
    )
    if not wait:
        print(job_id)
        return 0
    try:
        payload = client.result_bytes(job_id, timeout_s=timeout)
    except ServiceError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    if output is not None:
        Path(output).write_bytes(payload)
        print(f"result written to {output}", file=sys.stderr)
    else:
        sys.stdout.write(payload.decode("utf-8"))
    return 0


#: Measurement commands: name -> callable taking the --fast flag.
COMMANDS: dict[str, Callable[[bool], None]] = {
    "table1": cmd_table1,
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "headroom": cmd_headroom,
    "tradeoff": cmd_tradeoff,
}


def _first_doc_line(func: Callable[..., object]) -> str:
    """Return the first docstring line, for --list and --help output."""
    doc = func.__doc__ or ""
    return doc.strip().splitlines()[0] if doc.strip() else ""


def _add_ledger_options(sub: argparse.ArgumentParser) -> None:
    """Add the run-ledger options shared by the recording commands."""
    sub.add_argument(
        "--no-ledger",
        dest="ledger",
        action="store_false",
        help="do not append this run to the run ledger",
    )
    sub.add_argument(
        "--ledger-dir",
        default=None,
        metavar="DIR",
        help="ledger directory (default: $REPRO_LEDGER_DIR or .repro/ledger)",
    )


def _add_live_ledger_options(sub: argparse.ArgumentParser) -> None:
    """Add the live-event-stream plus ledger options (report/sweep)."""
    sub.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="stream span/instrument events as JSONL to PATH ('-' = stdout)",
    )
    sub.add_argument(
        "--follow",
        action="store_true",
        help="mirror the live event stream to stderr while running",
    )
    _add_ledger_options(sub)


def build_parser() -> argparse.ArgumentParser:
    """Return the argument parser with one sub-command per command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate results from the DATE 1995 switched-current paper.",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available commands"
    )
    subparsers = parser.add_subparsers(dest="command", metavar="command")
    for name in sorted(COMMANDS):
        sub = subparsers.add_parser(
            name,
            help=_first_doc_line(COMMANDS[name]),
            description=_first_doc_line(COMMANDS[name]),
        )
        sub.add_argument(
            "--fast",
            action="store_true",
            help="use shorter FFTs for a quick look",
        )
    erc = subparsers.add_parser(
        "erc",
        help=_first_doc_line(cmd_erc),
        description=_first_doc_line(cmd_erc),
    )
    erc.add_argument(
        "design",
        choices=sorted(DESIGNS) + ["all"],
        help="design to check, or 'all'",
    )
    erc.add_argument(
        "--min-severity",
        choices=["info", "warning", "error"],
        default="info",
        help="hide violations below this severity (default: info)",
    )
    erc.add_argument(
        "--strict",
        action="store_true",
        help="also exit non-zero on warnings",
    )
    lint = subparsers.add_parser(
        "lint",
        help=_first_doc_line(cmd_lint),
        description=_first_doc_line(cmd_lint),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--min-severity",
        choices=["info", "warning", "error"],
        default="info",
        help="hide findings below this severity (default: info)",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="also exit non-zero on warnings",
    )
    lint.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run exclusively (e.g. SC001,SC010)",
    )
    lint.add_argument(
        "--ignore",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    lint.add_argument(
        "--baseline",
        default="baselines/staticcheck.json",
        metavar="PATH",
        help="suppression baseline (default: baselines/staticcheck.json)",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the suppression baseline entirely",
    )
    lint.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="also write the findings as a JSON document",
    )
    trace = subparsers.add_parser(
        "trace",
        help=_first_doc_line(cmd_trace),
        description=_first_doc_line(cmd_trace),
    )
    from repro.telemetry.designs import TRACE_ALIASES, TRACE_DESIGNS

    trace.add_argument(
        "design",
        choices=sorted(TRACE_DESIGNS) + sorted(TRACE_ALIASES),
        help="design to trace",
    )
    trace.add_argument(
        "--fast",
        action="store_true",
        help="use a shorter run (16K samples instead of 64K)",
    )
    trace.add_argument(
        "--samples",
        type=int,
        default=None,
        metavar="N",
        help="analysed sample count (overrides --fast)",
    )
    trace.add_argument(
        "--overdrive",
        type=float,
        default=1.0,
        metavar="X",
        help="scale the nominal stimulus amplitude by X (default: 1.0)",
    )
    trace.add_argument(
        "--supply",
        type=float,
        default=None,
        metavar="V",
        help="supply voltage for the dynamic headroom rule (default: 3.3)",
    )
    trace.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="also export the trace as JSONL to PATH",
    )
    trace.add_argument(
        "--strict",
        action="store_true",
        help="also exit non-zero on WARNING events",
    )
    from repro.metrics.report import REPORT_DESIGNS

    report = subparsers.add_parser(
        "report",
        help=_first_doc_line(cmd_report),
        description=_first_doc_line(cmd_report),
    )
    report.add_argument(
        "design",
        choices=list(REPORT_DESIGNS),
        help="design to measure and report",
    )
    report.add_argument(
        "--fast",
        action="store_true",
        help="use a shorter run (16K samples instead of 64K)",
    )
    report.add_argument(
        "--samples",
        type=int,
        default=None,
        metavar="N",
        help="analysed sample count (overrides --fast)",
    )
    report.add_argument(
        "--no-sweep",
        dest="sweep",
        action="store_false",
        help="skip the dynamic-range sweep (modulator designs)",
    )
    report.add_argument(
        "--noise-scale",
        type=float,
        default=1.0,
        metavar="X",
        help="scale the cells' thermal noise by X (degradation knob)",
    )
    report.add_argument(
        "--mismatch",
        type=float,
        default=0.0,
        metavar="M",
        help="inject a half-circuit gain mismatch of M (degradation knob)",
    )
    report.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the dynamic-range sweep "
        "(bit-identical manifests at any value; default: 1)",
    )
    report.add_argument(
        "--engine",
        choices=["auto", "scalar", "batch", "kernel"],
        default="auto",
        help="execution engine for the measurement and sweep "
        "(bit-identical values on every rung; stamped into the "
        "manifest's provenance so timings stay attributable; "
        "default: auto)",
    )
    report.add_argument(
        "--profile",
        action="store_true",
        help="print the traced span tree (wall time per stage) after "
        "the manifest",
    )
    report.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="skip the on-disk sweep result cache",
    )
    report.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="sweep cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    report.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="also write the run manifest as JSON to PATH",
    )
    report.add_argument(
        "--markdown",
        dest="markdown_path",
        default=None,
        metavar="PATH",
        help="also write a Markdown report to PATH",
    )
    _add_live_ledger_options(report)
    sweep = subparsers.add_parser(
        "sweep",
        help=_first_doc_line(cmd_sweep),
        description=_first_doc_line(cmd_sweep),
    )
    sweep.add_argument(
        "design",
        choices=list(REPORT_DESIGNS),
        help="design to sweep",
    )
    sweep.add_argument(
        "--fast",
        action="store_true",
        help="use shorter lanes (8K samples instead of 32K)",
    )
    sweep.add_argument(
        "--samples",
        type=int,
        default=None,
        metavar="N",
        help="samples per lane (overrides --fast)",
    )
    sweep.add_argument(
        "--levels",
        type=float,
        nargs="+",
        default=None,
        metavar="DB",
        help="input levels in dB re full scale (default: the report sweep)",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes sharding the lanes (default: 1)",
    )
    sweep.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="skip the on-disk result cache",
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    sweep.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="also write the sweep table as JSON to PATH",
    )
    sweep.add_argument(
        "--profile",
        action="store_true",
        help="print the merged span tree (parent + grafted worker "
        "shards) and the run's instrument counters",
    )
    _add_live_ledger_options(sweep)
    stats = subparsers.add_parser(
        "stats",
        help=_first_doc_line(cmd_stats),
        description=_first_doc_line(cmd_stats),
    )
    stats.add_argument(
        "design",
        nargs="?",
        default=None,
        help="design to sweep and account (omit with --diff)",
    )
    stats.add_argument(
        "--fast",
        action="store_true",
        help="use shorter lanes (8K samples instead of 32K)",
    )
    stats.add_argument(
        "--samples",
        type=int,
        default=None,
        metavar="N",
        help="samples per lane (overrides --fast)",
    )
    stats.add_argument(
        "--levels",
        type=float,
        nargs="+",
        default=None,
        metavar="DB",
        help="input levels in dB re full scale (default: the report sweep)",
    )
    stats.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes sharding the lanes (default: 1)",
    )
    stats.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="skip the on-disk result cache",
    )
    stats.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    stats.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="write the instrument snapshot as a stats document to PATH",
    )
    stats.add_argument(
        "--prom",
        dest="prometheus",
        action="store_true",
        help="also print the Prometheus text exposition",
    )
    stats.add_argument(
        "--diff",
        nargs=2,
        default=None,
        metavar=("CURRENT", "BASELINE"),
        help="diff two stats documents instead of running a sweep "
        "(exit 1 when a gated counter increased)",
    )
    stats.add_argument(
        "--strict",
        action="store_true",
        help="with --diff, also exit non-zero on warnings",
    )
    profile = subparsers.add_parser(
        "profile",
        help=_first_doc_line(cmd_profile),
        description=_first_doc_line(cmd_profile),
    )
    profile.add_argument(
        "target",
        help="design to profile, or a sweep-spec JSON file "
        "(a file of SweepSpec fields; detected by the .json suffix)",
    )
    profile.add_argument(
        "--fast",
        action="store_true",
        help="use a shorter run (16K samples instead of 64K)",
    )
    profile.add_argument(
        "--samples",
        type=int,
        default=None,
        metavar="N",
        help="analysed sample count (overrides --fast)",
    )
    profile.add_argument(
        "--no-sweep",
        dest="sweep",
        action="store_false",
        help="skip the dynamic-range sweep (design targets)",
    )
    profile.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the sweep (default: 1)",
    )
    profile.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="skip the on-disk sweep result cache",
    )
    profile.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    profile.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="also write the profile document (rows, collapsed stacks, "
        "span tree) as JSON to PATH",
    )
    bench_gate = subparsers.add_parser(
        "bench-gate",
        help=_first_doc_line(cmd_bench_gate),
        description=_first_doc_line(cmd_bench_gate),
    )
    bench_gate.add_argument(
        "--telemetry",
        dest="telemetry_path",
        default="BENCH_telemetry.json",
        metavar="PATH",
        help="benchmark telemetry document (default: BENCH_telemetry.json)",
    )
    bench_gate.add_argument(
        "--baseline",
        dest="baseline_path",
        default="baselines/bench.json",
        metavar="PATH",
        help="committed wall-time baseline (default: baselines/bench.json)",
    )
    bench_gate.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="FRAC",
        help="fractional wall-time headroom (default: the baseline's, 0.25)",
    )
    _add_ledger_options(bench_gate)
    history = subparsers.add_parser(
        "history",
        help=_first_doc_line(cmd_history),
        description=_first_doc_line(cmd_history),
    )
    history.add_argument(
        "design",
        help="design whose ledger trajectory to show",
    )
    history.add_argument(
        "--limit",
        type=int,
        default=10,
        metavar="N",
        help="show the last N entries (default: 10)",
    )
    history.add_argument(
        "--ledger-dir",
        default=None,
        metavar="DIR",
        help="ledger directory (default: $REPRO_LEDGER_DIR or .repro/ledger)",
    )
    trend = subparsers.add_parser(
        "trend",
        help=_first_doc_line(cmd_trend),
        description=_first_doc_line(cmd_trend),
    )
    trend.add_argument(
        "design",
        nargs="?",
        default=None,
        help="restrict the gate to one design's series (default: all)",
    )
    trend.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="N",
        help="rolling history window per series (default: 10)",
    )
    trend.add_argument(
        "--sustain",
        type=int,
        default=None,
        metavar="N",
        help="runs that must all drift before REGRESS (default: 3)",
    )
    trend.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="X",
        help="drift threshold in robust scale units (default: 4.0)",
    )
    trend.add_argument(
        "--strict",
        action="store_true",
        help="also exit non-zero on single-run warnings",
    )
    trend.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="also write the trend report as JSON to PATH",
    )
    trend.add_argument(
        "--ledger-dir",
        default=None,
        metavar="DIR",
        help="ledger directory (default: $REPRO_LEDGER_DIR or .repro/ledger)",
    )
    compare = subparsers.add_parser(
        "compare",
        help=_first_doc_line(cmd_compare),
        description=_first_doc_line(cmd_compare),
    )
    compare.add_argument(
        "manifest",
        help="run manifest JSON to check (from `repro report --json`)",
    )
    compare.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="golden manifest to diff against "
        "(default: baselines/<design>.json)",
    )
    compare.add_argument(
        "--strict",
        action="store_true",
        help="also exit non-zero on warnings and config mismatches",
    )
    serve = subparsers.add_parser(
        "serve",
        help=_first_doc_line(cmd_serve),
        description=_first_doc_line(cmd_serve),
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port; 0 picks a free one (default 8765)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per simulation sweep (bit-identical)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="queue worker threads (default 1: serialized simulations)",
    )
    serve.add_argument(
        "--max-pending",
        dest="max_pending",
        type=int,
        default=64,
        metavar="N",
        help="queued-job backpressure limit (HTTP 429 past it)",
    )
    serve.add_argument(
        "--cache-dir",
        dest="cache_dir",
        default=None,
        metavar="DIR",
        help="shared artifact store (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    serve.add_argument(
        "--max-bytes",
        dest="max_bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="LRU byte budget of the artifact store (default: unbounded)",
    )
    _add_ledger_options(serve)
    submit = subparsers.add_parser(
        "submit",
        help=_first_doc_line(cmd_submit),
        description=_first_doc_line(cmd_submit),
    )
    submit.add_argument(
        "target", help="design name, or a sweep-spec JSON path"
    )
    submit.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="service base URL (default http://127.0.0.1:8765)",
    )
    submit.add_argument(
        "--samples",
        type=int,
        default=None,
        metavar="N",
        help="FFT length for a report job (server default 16K)",
    )
    submit.add_argument(
        "--no-sweep",
        dest="sweep",
        action="store_false",
        help="skip the dynamic-range sweep in a report job",
    )
    submit.add_argument(
        "--noise-scale",
        dest="noise_scale",
        type=float,
        default=1.0,
        metavar="X",
        help="thermal-noise degradation multiplier",
    )
    submit.add_argument(
        "--mismatch",
        type=float,
        default=0.0,
        metavar="X",
        help="half-circuit gain mismatch to inject",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="block until the job finishes and emit its result",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="S",
        help="--wait deadline in seconds (default 300)",
    )
    submit.add_argument(
        "--output",
        "-o",
        default=None,
        metavar="PATH",
        help="write the result bytes to PATH instead of stdout",
    )
    return parser


def list_commands() -> str:
    """Return the --list text: every command with a one-line description."""
    lines = []
    for name in sorted(COMMANDS):
        lines.append(f"  {name:10s} {_first_doc_line(COMMANDS[name])}")
    lines.append(f"  {'erc':10s} {_first_doc_line(cmd_erc)}")
    lines.append(f"  {'lint':10s} {_first_doc_line(cmd_lint)}")
    lines.append(f"  {'trace':10s} {_first_doc_line(cmd_trace)}")
    lines.append(f"  {'report':10s} {_first_doc_line(cmd_report)}")
    lines.append(f"  {'compare':10s} {_first_doc_line(cmd_compare)}")
    lines.append(f"  {'sweep':10s} {_first_doc_line(cmd_sweep)}")
    lines.append(f"  {'stats':10s} {_first_doc_line(cmd_stats)}")
    lines.append(f"  {'profile':10s} {_first_doc_line(cmd_profile)}")
    lines.append(f"  {'bench-gate':10s} {_first_doc_line(cmd_bench_gate)}")
    lines.append(f"  {'history':10s} {_first_doc_line(cmd_history)}")
    lines.append(f"  {'trend':10s} {_first_doc_line(cmd_trend)}")
    lines.append(f"  {'serve':10s} {_first_doc_line(cmd_serve)}")
    lines.append(f"  {'submit':10s} {_first_doc_line(cmd_submit)}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list or args.command is None:
        print(list_commands())
        return 0

    if args.command == "erc":
        return cmd_erc(args.design, args.min_severity, args.strict)

    if args.command == "lint":
        return cmd_lint(
            args.paths,
            min_severity=args.min_severity,
            strict=args.strict,
            select=args.select,
            ignore=args.ignore,
            baseline=None if args.no_baseline else args.baseline,
            json_path=args.json_path,
        )

    if args.command == "trace":
        return cmd_trace(
            args.design,
            fast=args.fast,
            samples=args.samples,
            overdrive=args.overdrive,
            supply=args.supply,
            json_path=args.json_path,
            strict=args.strict,
        )

    if args.command == "report":
        return cmd_report(
            args.design,
            fast=args.fast,
            samples=args.samples,
            sweep=args.sweep,
            noise_scale=args.noise_scale,
            mismatch=args.mismatch,
            jobs=args.jobs,
            cache=args.cache,
            cache_dir=args.cache_dir,
            json_path=args.json_path,
            markdown_path=args.markdown_path,
            profile=args.profile,
            events=args.events,
            follow=args.follow,
            ledger=args.ledger,
            ledger_dir=args.ledger_dir,
            engine=args.engine,
            argv=["repro", *argv] if argv is not None else None,
        )

    if args.command == "sweep":
        return cmd_sweep(
            args.design,
            fast=args.fast,
            samples=args.samples,
            levels=args.levels,
            jobs=args.jobs,
            cache=args.cache,
            cache_dir=args.cache_dir,
            json_path=args.json_path,
            profile=args.profile,
            events=args.events,
            follow=args.follow,
            ledger=args.ledger,
            ledger_dir=args.ledger_dir,
        )

    if args.command == "stats":
        return cmd_stats(
            args.design,
            fast=args.fast,
            samples=args.samples,
            levels=args.levels,
            jobs=args.jobs,
            cache=args.cache,
            cache_dir=args.cache_dir,
            json_path=args.json_path,
            diff=args.diff,
            strict=args.strict,
            prometheus=args.prometheus,
        )

    if args.command == "profile":
        return cmd_profile(
            args.target,
            fast=args.fast,
            samples=args.samples,
            sweep=args.sweep,
            jobs=args.jobs,
            cache=args.cache,
            cache_dir=args.cache_dir,
            json_path=args.json_path,
        )

    if args.command == "bench-gate":
        return cmd_bench_gate(
            telemetry_path=args.telemetry_path,
            baseline_path=args.baseline_path,
            tolerance=args.tolerance,
            ledger=args.ledger,
            ledger_dir=args.ledger_dir,
        )

    if args.command == "history":
        return cmd_history(
            args.design, limit=args.limit, ledger_dir=args.ledger_dir
        )

    if args.command == "trend":
        return cmd_trend(
            design=args.design,
            window=args.window,
            sustain=args.sustain,
            threshold=args.threshold,
            strict=args.strict,
            json_path=args.json_path,
            ledger_dir=args.ledger_dir,
        )

    if args.command == "compare":
        return cmd_compare(
            args.manifest, baseline_path=args.baseline, strict=args.strict
        )

    if args.command == "serve":
        return cmd_serve(
            host=args.host,
            port=args.port,
            jobs=args.jobs,
            workers=args.workers,
            max_pending=args.max_pending,
            cache_dir=args.cache_dir,
            max_bytes=args.max_bytes,
            ledger=args.ledger,
            ledger_dir=args.ledger_dir,
        )

    if args.command == "submit":
        return cmd_submit(
            args.target,
            url=args.url,
            samples=args.samples,
            sweep=args.sweep,
            noise_scale=args.noise_scale,
            mismatch=args.mismatch,
            wait=args.wait,
            timeout=args.timeout,
            output=args.output,
        )

    COMMANDS[args.command](args.fast)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
