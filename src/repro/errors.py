"""Exception hierarchy for the ``repro`` switched-current library.

Every exception raised deliberately by this package derives from
:class:`ReproError` so applications can catch library failures with a
single ``except`` clause while letting programming errors (``TypeError``
and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class DeviceError(ReproError):
    """A device model was driven outside its valid operating region."""


class SaturationError(DeviceError):
    """A transistor that must stay in saturation left the saturation region.

    The headroom analysis of the paper (Eqs. 1-2) exists precisely to
    guarantee this never happens at the chosen supply voltage; the
    simulator raises this error when the guarantee is violated.
    """


class ClockingError(ReproError):
    """A sampled-data block was evaluated on the wrong clock phase."""


class ERCError(ReproError):
    """A static electrical-rule check found blocking violations.

    Raised by :func:`repro.erc.checker.check_design` (and therefore by
    :class:`~repro.systems.testbench.TestBench` pre-flight checking)
    when a design graph violates an ERROR-severity rule.  The full
    :class:`~repro.erc.checker.ErcReport` is available on
    :attr:`report` so callers can render the violation table.
    """

    def __init__(self, message: str, report: object | None = None) -> None:
        super().__init__(message)
        self.report = report


class TelemetryError(ReproError):
    """The telemetry API was misused.

    Raised on span lifecycle violations (finishing a span that never
    started, starting one twice, recording outside any open span) and
    on invalid probe parameters (non-positive full scale or clip
    limit).  Dynamic *rule* findings are never exceptions -- they are
    :class:`~repro.telemetry.events.TelemetryEvent` records on the
    session.
    """


class ObservabilityError(ReproError):
    """The observability API was misused or fed malformed data.

    Raised on invalid instrument names or kinds (re-registering a
    counter as a gauge), negative counter increments, malformed
    snapshot documents handed to merge/diff, and unparsable serialized
    span records.  Instrument *values* are never exceptions -- drift
    between two snapshots is an
    :class:`~repro.observability.stats.InstrumentDiff`, surfaced as a
    process exit code by ``repro stats --diff``.
    """


class MetricsError(ReproError):
    """The paper-metrics layer was misused or fed malformed data.

    Raised on unknown metric names, non-finite metric values, malformed
    run manifests and baseline files, and invalid comparison requests.
    A metric *regression* is never an exception -- it is a
    :class:`~repro.metrics.compare.MetricDiff` in the comparison
    report, surfaced as a process exit code by ``repro compare``.
    """


class ServiceError(ReproError):
    """The simulation service was misused or fed a malformed request.

    Raised on invalid job requests (unknown kind, bad design name,
    malformed spec fields), lookups of unknown job ids, and client-side
    protocol failures.  A job that *fails while executing* is never an
    exception at the API boundary -- it is a ``failed`` job state with
    the error message recorded on the job descriptor.
    """


class QueueFullError(ServiceError):
    """The service job queue rejected a submission (backpressure).

    Raised by :meth:`repro.service.queue.JobQueue.submit` when the
    pending backlog is at capacity; the HTTP layer maps it to a 429
    response so clients retry instead of piling work up unboundedly.
    """


class AnalysisError(ReproError):
    """A measurement or spectral analysis could not be performed."""


class StimulusError(ReproError):
    """A stimulus generator was asked for an unrealisable waveform."""
