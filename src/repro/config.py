"""Top-level named configurations: the paper's operating points.

Collects the calibrated default configurations in one place so
examples, tests and benches all simulate the same chip.  The
calibration pins the behavioural parameters to the paper's own
measured/stated anchors:

* 33 nA wideband rms thermal noise per cell (Section V);
* a GGA that does not slew at the modulator operating point but begins
  to slew when the delay-line input is pushed well past 8 uA;
* a transmission error small enough for -50 dB-class THD at the
  Table 1 operating point.
"""

from __future__ import annotations

from repro.si.errors_model import ChargeInjectionResidue, TransmissionError
from repro.si.gga import GroundedGateAmplifier
from repro.si.memory_cell import MemoryCellConfig

__all__ = [
    "paper_cell_config",
    "ideal_cell_config",
    "DELAY_LINE_CLOCK",
    "MODULATOR_CLOCK",
    "MODULATOR_FULL_SCALE",
    "OVERSAMPLING_RATIO",
    "SIGNAL_BANDWIDTH",
    "DELAY_LINE_BANDWIDTH",
    "SUPPLY_VOLTAGE",
    "THERMAL_NOISE_RMS",
    "CELL_THERMAL_NOISE_RMS",
]

#: Delay-line sampling frequency (Table 1).
DELAY_LINE_CLOCK: float = 5e6

#: Modulator clock frequency (Table 2).
MODULATOR_CLOCK: float = 2.45e6

#: Modulator 0 dB input level (Table 2).
MODULATOR_FULL_SCALE: float = 6e-6

#: Oversampling ratio (Table 2).
OVERSAMPLING_RATIO: int = 128

#: Modulator analysis bandwidth used in the paper's SNR numbers.
SIGNAL_BANDWIDTH: float = 10e3

#: Delay-line analysis bandwidth (Table 1).
DELAY_LINE_BANDWIDTH: float = 2.5e6

#: Test-chip supply voltage.
SUPPLY_VOLTAGE: float = 3.3

#: The paper's calculated wideband thermal-noise floor -- "the
#: calculated rms noise current in this design was about 33 nA".  We
#: read "this design" as the two-cell delay line, so the per-cell floor
#: is 33 nA / sqrt(2).
THERMAL_NOISE_RMS: float = 33e-9

#: Per-memory-cell thermal noise floor so that two cascaded cells (the
#: delay line) produce the paper's 33 nA total.
CELL_THERMAL_NOISE_RMS: float = THERMAL_NOISE_RMS / 1.4142135623730951


def paper_cell_config(
    seed: int | None = 7,
    sample_rate: float = DELAY_LINE_CLOCK,
    flicker_corner_hz: float = 0.0,
    cds_enabled: bool = True,
) -> MemoryCellConfig:
    """Return the calibrated memory-cell configuration of the test chip.

    Parameters
    ----------
    seed:
        Noise seed; fixed by default so tests and benches are
        reproducible.
    sample_rate:
        Clock frequency the cell runs at.
    flicker_corner_hz:
        1/f corner; the chip's second-generation cells keep it
        negligible (CDS), so the default is 0.  The chopper ablation
        raises it.
    cds_enabled:
        Correlated-double-sampling shaping of the flicker component.
    """
    return MemoryCellConfig(
        quiescent_current=2e-6,
        gga=GroundedGateAmplifier(
            voltage_gain=50.0,
            bias_current=20e-6,
            settling_tau_fraction=0.05,
            transconductance=100e-6,
        ),
        transmission=TransmissionError(
            base_ratio=0.01,
            gga_gain=50.0,
            quiescent_current=2e-6,
        ),
        injection=ChargeInjectionResidue(
            full_injection_current=50e-9,
            complementary_cancellation=0.9,
            quiescent_current=2e-6,
        ),
        thermal_noise_rms=CELL_THERMAL_NOISE_RMS,
        flicker_corner_hz=flicker_corner_hz,
        sample_rate=sample_rate,
        cds_enabled=cds_enabled,
        half_gain_mismatch=0.0,
        inverting=True,
        seed=seed,
    )


def delay_line_cell_config(
    seed: int | None = 7,
    sample_rate: float = DELAY_LINE_CLOCK,
    gga_bias_current: float = 5.0e-6,
) -> MemoryCellConfig:
    """Return the delay-line test structure's cell configuration.

    The delay line on the die is a test structure whose GGAs run at a
    much smaller bias than the modulator cells -- that is why the paper
    measured -50 dB THD at 8 uA and saw it degrade at larger inputs
    ("the THD increased due to the slewing in the GGAs that can be
    improved by using larger bias current in the GGAs").  The default
    bias is calibrated so the Table 1 operating point lands at the
    paper's THD.
    """
    from dataclasses import replace

    base = paper_cell_config(seed=seed, sample_rate=sample_rate)
    return replace(base, gga=base.gga.with_bias(gga_bias_current))


def ideal_cell_config(sample_rate: float = DELAY_LINE_CLOCK) -> MemoryCellConfig:
    """Return a cell configuration with every nonideality disabled."""
    return paper_cell_config(sample_rate=sample_rate).ideal()
