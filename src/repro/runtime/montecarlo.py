"""Vectorized CMFF Monte-Carlo trial evaluation.

:class:`repro.systems.montecarlo.CmffMonteCarlo` draws four mirror
imbalances per trial and evaluates the CMFF rejection / leakage ratios
one trial at a time.  The helpers here evaluate a whole trial block at
once while consuming the *same* random stream in the *same* order, so
a vectorized study is bit-identical to the scalar loop:

* ``Generator.normal(loc, scale)`` draws one ziggurat variate and
  computes ``loc + scale * z``; :func:`cmff_imbalance_draws` therefore
  pulls the variates with ``standard_normal`` (same stream position)
  and replays the exact ``0.0 + sigma * z`` arithmetic;
* the rejection / leakage formulas replicate every operation of
  :meth:`CurrentMirror.copy` and :meth:`CommonModeFeedforward.apply`
  elementwise, including the ``+ conductance * 0.0`` terms the scalar
  expression carries.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cmff_imbalance_draws",
    "cmff_leakage_samples",
    "cmff_rejection_samples",
]

#: Representative overdrive used by ``sample_pair_imbalance``.
_PAIR_OVERDRIVE = 0.2


def cmff_imbalance_draws(
    sigma_vth: float,
    sigma_beta_rel: float,
    n_trials: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``(n_trials, 4)`` mirror gain errors, scalar-stream exact.

    Each trial consumes eight variates in the scalar order
    ``(vth, beta) x 4 mirrors``; the returned imbalance matches
    :meth:`PelgromMismatch.sample_pair_imbalance` draw for draw.
    """
    z = rng.standard_normal(size=(n_trials, 4, 2))
    delta_vth = 0.0 + sigma_vth * z[:, :, 0]
    delta_beta = 0.0 + sigma_beta_rel * z[:, :, 1]
    result: np.ndarray = delta_beta - 2.0 * delta_vth / _PAIR_OVERDRIVE
    return result


def _cmff_outputs(
    errors: np.ndarray, test_cm: float
) -> tuple[np.ndarray, np.ndarray]:
    """Return (pos, neg) CMFF outputs for a pure common-mode probe.

    ``errors`` columns are the gain errors of (sense_pos, sense_neg,
    subtract_pos, subtract_neg), exactly the draw order of
    ``CmffMonteCarlo._draw_cmff``.  Every expression mirrors the scalar
    ``CurrentMirror.copy`` / ``CommonModeFeedforward.apply`` chain,
    including the zero output-conductance terms.
    """
    gain_sense_pos = 0.5 * (1.0 + errors[:, 0])
    gain_sense_neg = 0.5 * (1.0 + errors[:, 1])
    gain_sub_pos = 1.0 * (1.0 + errors[:, 2])
    gain_sub_neg = 1.0 * (1.0 + errors[:, 3])
    i_cm = (gain_sense_pos * test_cm + 0.0 * 0.0) + (
        gain_sense_neg * test_cm + 0.0 * 0.0
    )
    pos = test_cm - (gain_sub_pos * i_cm + 0.0 * 0.0)
    neg = test_cm - (gain_sub_neg * i_cm + 0.0 * 0.0)
    return pos, neg


def cmff_rejection_samples(
    errors: np.ndarray, test_cm: float = 1e-6
) -> np.ndarray:
    """Return per-trial residual common-mode gains for an error block."""
    pos, neg = _cmff_outputs(np.asarray(errors, dtype=float), test_cm)
    result: np.ndarray = 0.5 * (pos + neg) / test_cm
    return result


def cmff_leakage_samples(
    errors: np.ndarray, test_cm: float = 1e-6
) -> np.ndarray:
    """Return per-trial CM-to-differential leakage for an error block."""
    pos, neg = _cmff_outputs(np.asarray(errors, dtype=float), test_cm)
    result: np.ndarray = (pos - neg) / test_cm
    return result
