"""Batched amplitude sweeps: lanes, shards and the result cache.

This is the engine behind ``repro sweep`` and
``repro report --jobs``: it runs the same experiment as
:func:`repro.analysis.sweeps.run_amplitude_sweep` -- one lane per
input level -- but executes all lanes of a shard through the batch
runners of :mod:`repro.runtime.batch` and shards lanes across a
:class:`~repro.runtime.executor.SweepExecutor`.

Determinism contract (``docs/RUNTIME.md``):

* the scalar sweep runs its levels against *one* device instance, so
  lane ``k`` consumes the ``k``-th slice of every cell's noise stream;
  a shard starting at ``lane_offset`` fast-forwards each stream by
  exactly ``lane_offset * total_samples`` draws before running, which
  makes the result independent of the shard layout -- and bit-identical
  to the scalar loop;
* seeded quantizer metastability, seeded DAC reference noise and
  attached probes all lower through the batch engine (streams sliced
  per lane, probes fed lane-major); only configurations with no
  replayable randomness (unseeded streams, exotic device subclasses)
  fall back to the scalar device per lane, with every stream -- cell
  noise, metastability, reference noise -- fast-forwarded identically;
* a cache entry stores the five :class:`ToneMetrics` fields per lane as
  float64 arrays, so a hit reconstructs the sweep result bit for bit.
"""

from __future__ import annotations

import functools
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.analysis.metrics import ToneMetrics, measure_tone
from repro.analysis.spectrum import compute_spectrum
from repro.analysis.sweeps import AmplitudeSweepResult
from repro.analysis.windows import WindowKind
from repro.config import MODULATOR_FULL_SCALE
from repro.errors import AnalysisError
from repro.runtime.batch import (
    BatchUnsupported,
    batch_runner_for,
    fast_forward_streams,
)
from repro.observability.instruments import get_registry
from repro.observability.spanio import WorkerTelemetry, graft_spans
from repro.runtime.cache import ResultCache
from repro.runtime.executor import ShardContext, SweepExecutor
from repro.telemetry.spans import Span
from repro.si.memory_cell import MemoryCellConfig
from repro.systems.stimulus import coherent_frequency
from repro.telemetry.designs import build_trace_setup

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.live import EventSink
    from repro.telemetry.session import TelemetrySession

__all__ = [
    "SweepSpec",
    "run_sweep",
    "sweep_spec_for_design",
    "sweep_spec_from_mapping",
]

#: Default input levels (dB re full scale) -- the compact Table 2
#: dynamic-range sweep of ``repro report``.
DEFAULT_LEVELS_DB: tuple[float, ...] = (-50.0, -40.0, -30.0, -20.0, -10.0)

#: The five ToneMetrics fields, in constructor order; the cache stores
#: one float64 array per field.
_METRIC_FIELDS: tuple[str, ...] = (
    "fundamental_frequency",
    "signal_power",
    "harmonic_power",
    "noise_power",
    "bandwidth",
)


@dataclass(frozen=True)
class SweepSpec:
    """Complete, picklable description of one amplitude sweep.

    The spec is both the worker payload (it travels to sharded
    processes) and the cache key (every field that can change the
    result is here, nothing else).
    """

    design: str
    levels_db: tuple[float, ...]
    full_scale: float
    signal_frequency: float
    sample_rate: float
    n_samples: int
    bandwidth: float
    window: str = WindowKind.BLACKMAN.value
    settle_samples: int = 256
    noise_scale: float = 1.0
    mismatch: float = 0.0

    def cache_key(self) -> dict[str, Any]:
        """Return the cache-key dict addressing this sweep's result."""
        return {
            "kind": "amplitude-sweep",
            "design": self.design,
            "levels_db": list(self.levels_db),
            "full_scale": self.full_scale,
            "signal_frequency": self.signal_frequency,
            "sample_rate": self.sample_rate,
            "n_samples": self.n_samples,
            "bandwidth": self.bandwidth,
            "window": self.window,
            "settle_samples": self.settle_samples,
            "noise_scale": self.noise_scale,
            "mismatch": self.mismatch,
        }


def sweep_spec_for_design(
    design: str,
    n_samples: int = 1 << 16,
    levels_db: Sequence[float] = DEFAULT_LEVELS_DB,
    noise_scale: float = 1.0,
    mismatch: float = 0.0,
) -> SweepSpec:
    """Return the report-equivalent sweep spec for a named design.

    Mirrors the sweep section of :func:`repro.metrics.report.build_report`:
    half the main FFT length (8K floor), a bin-centred tone, 256 settle
    samples.
    """
    setup = build_trace_setup(design)
    sweep_n = max(1 << 13, n_samples // 2)
    return SweepSpec(
        design=setup.name,
        levels_db=tuple(float(level) for level in levels_db),
        full_scale=MODULATOR_FULL_SCALE,
        signal_frequency=coherent_frequency(
            setup.frequency, setup.sample_rate, sweep_n
        ),
        sample_rate=setup.sample_rate,
        n_samples=sweep_n,
        bandwidth=setup.bandwidth,
        settle_samples=256,
        noise_scale=noise_scale,
        mismatch=mismatch,
    )


def sweep_spec_from_mapping(raw: Mapping[str, Any]) -> SweepSpec:
    """Build a :class:`SweepSpec` from a JSON-ready field mapping.

    This is the deserialization side of the spec-as-cache-key contract,
    shared by ``repro profile <spec.json>`` and the simulation
    service's ``sweep`` job kind: the same mapping always normalizes to
    the same spec, so its canonical digest dedups identical requests.

    Raises
    ------
    ConfigurationError
        If the mapping is not a valid set of ``SweepSpec`` fields.
    """
    from repro.errors import ConfigurationError

    if not isinstance(raw, Mapping):
        raise ConfigurationError(
            f"sweep spec must be a mapping of SweepSpec fields, got {type(raw).__name__}"
        )
    data = dict(raw)
    levels = data.get("levels_db")
    if isinstance(levels, (list, tuple)):
        data["levels_db"] = tuple(float(level) for level in levels)
    try:
        return SweepSpec(**data)
    except TypeError as exc:
        raise ConfigurationError(f"invalid sweep spec: {exc}") from exc


def _build_device(spec: SweepSpec) -> Any:
    """Build a fresh device for the spec, with degradations applied.

    Replays the transform of ``repro.metrics.report._degrade_transform``
    so a sharded worker reconstructs the identical device.
    """
    setup = build_trace_setup(spec.design)
    if spec.noise_scale == 1.0 and spec.mismatch == 0.0:
        return setup.build(None)

    def transform(config: MemoryCellConfig) -> MemoryCellConfig:
        return replace(
            config,
            thermal_noise_rms=config.thermal_noise_rms * spec.noise_scale,
            half_gain_mismatch=spec.mismatch,
        )

    return setup.build(transform)


@dataclass(frozen=True)
class _ShardResult:
    """One worker's contribution: per-lane metrics plus bookkeeping."""

    metrics: tuple[ToneMetrics, ...]
    wall_s: float
    engine: str


#: Measured crossover between the compiled kernel run lane-by-lane and
#: the NumPy batch engine running all lanes at once: below this many
#: lanes the kernel's per-sample fusion beats the batch's lane
#: vectorisation, above it the lanes amortise the Python dispatch.
_KERNEL_CROSSOVER_LANES = 16


def _sequential_lanes(
    device: Any, stimuli: np.ndarray, engine: str
) -> np.ndarray:
    """Run lanes one by one against a single device on a pinned engine.

    Lane ``k`` consumes the ``k``-th slice of every random stream,
    exactly like the scalar reference sweep; the pinned engine only
    changes *how* each lane executes, never what it computes.
    """
    from repro.runtime.engine import use_engine

    outputs = np.empty(stimuli.shape)
    with use_engine(engine):
        for lane in range(stimuli.shape[0]):
            outputs[lane] = np.asarray(device(stimuli[lane]), dtype=float)
    return outputs


def _run_lane_chunk(
    spec: SweepSpec,
    levels: Sequence[float],
    context: ShardContext,
    engine: str = "auto",
) -> _ShardResult:
    """Run one contiguous block of sweep lanes; module-level for pickling.

    ``engine`` selects the rung: ``auto`` uses the compiled kernel for
    narrow shards (``<= _KERNEL_CROSSOVER_LANES`` lanes) when the
    design lowers, the batch engine otherwise, and the scalar device
    as the last resort; ``kernel``/``batch``/``scalar`` pin one rung
    (a pinned rung that refuses falls down the remaining ladder).
    All rungs are bit-identical, so ``engine`` is deliberately not
    part of the cache key.
    """
    started = time.perf_counter()
    total = spec.n_samples + spec.settle_samples
    t = np.arange(total) / spec.sample_rate
    carrier = np.sin(2.0 * np.pi * spec.signal_frequency * t)
    amplitudes = [
        spec.full_scale * 10.0 ** (level_db / 20.0) for level_db in levels
    ]
    stimuli = np.empty((len(levels), total))
    for lane, amplitude in enumerate(amplitudes):
        stimuli[lane] = amplitude * carrier

    device = _build_device(spec)
    outputs: np.ndarray | None = None
    if engine == "scalar":
        fast_forward_streams(device, context.lane_offset * total)
        outputs = _sequential_lanes(device, stimuli, "scalar")
        engine_used = "scalar"
    else:
        want_kernel = engine == "kernel" or (
            engine == "auto" and len(levels) <= _KERNEL_CROSSOVER_LANES
        )
        if want_kernel:
            from repro.runtime.kernels import kernel_refusal

            if kernel_refusal(device) is None:
                fast_forward_streams(device, context.lane_offset * total)
                outputs = _sequential_lanes(device, stimuli, "kernel")
                engine_used = "kernel"
    if outputs is None:
        try:
            runner = batch_runner_for(
                device,
                n_lanes=len(levels),
                n_steps=total,
                lane_offset=context.lane_offset,
            )
            outputs = runner.run(stimuli)
            engine_used = "batch"
            from repro.runtime.engine import record_engine_run

            record_engine_run("batch", device, count=len(levels))
        except BatchUnsupported:
            fast_forward_streams(device, context.lane_offset * total)
            outputs = _sequential_lanes(device, stimuli, "auto")
            engine_used = "scalar"

    window = WindowKind(spec.window)
    metrics = []
    for lane in range(outputs.shape[0]):
        spectrum = compute_spectrum(
            outputs[lane, spec.settle_samples :],
            spec.sample_rate,
            window_kind=window,
        )
        metrics.append(
            measure_tone(
                spectrum,
                fundamental_frequency=spec.signal_frequency,
                bandwidth=spec.bandwidth,
            )
        )
    return _ShardResult(
        metrics=tuple(metrics),
        wall_s=time.perf_counter() - started,
        engine=engine_used,
    )


def _result_from_metrics(
    spec: SweepSpec, metrics: Sequence[ToneMetrics]
) -> AmplitudeSweepResult:
    """Assemble the scalar-compatible sweep result object."""
    levels = np.asarray(list(spec.levels_db), dtype=float)
    return AmplitudeSweepResult(
        levels_db=levels,
        sndr_db=np.array([m.sndr_db for m in metrics]),
        snr_db=np.array([m.snr_db for m in metrics]),
        thd_db=np.array([m.thd_db for m in metrics]),
        metrics=tuple(metrics),
    )


def _metrics_to_arrays(
    metrics: Sequence[ToneMetrics],
) -> dict[str, np.ndarray]:
    return {
        field: np.array([getattr(m, field) for m in metrics], dtype=float)
        for field in _METRIC_FIELDS
    }


def _metrics_from_arrays(
    arrays: dict[str, np.ndarray], n_lanes: int
) -> tuple[ToneMetrics, ...] | None:
    if set(_METRIC_FIELDS) - set(arrays):
        return None
    columns = [np.asarray(arrays[field], dtype=float) for field in _METRIC_FIELDS]
    if any(column.shape != (n_lanes,) for column in columns):
        return None
    return tuple(
        ToneMetrics(*(float(column[lane]) for column in columns))
        for lane in range(n_lanes)
    )


def _absorb_worker_telemetry(
    spec: SweepSpec,
    shards: Sequence[_ShardResult],
    telemetries: Sequence[WorkerTelemetry],
    span: Span | None,
    stream: "EventSink | None" = None,
) -> None:
    """Merge worker snapshots into this process; graft worker spans.

    Snapshots always merge into the current process-wide registry --
    that is the path that keeps cache/engine counters from dying with
    the worker processes.  Span grafting needs a parent, so it only
    happens when the sweep runs under a session; each grafted
    ``shard:<index>`` root is stamped with the shard's engine and
    sample count so the merged tree reads like the old flat records
    but with real worker-side wall time and queue wait.  When the
    session carries a live event stream, the workers' buffered events
    are replayed into it in one wall-clock-sorted pass, so a
    ``--jobs N`` sweep tails a single coherent timeline.
    """
    registry = get_registry()
    worker_events: list[Mapping[str, object]] = []
    for shard, telemetry in zip(shards, telemetries):
        registry.merge(telemetry.instruments)
        worker_events.extend(telemetry.events)
        if span is None:
            continue
        for root in graft_spans(span, telemetry.spans):
            root.attrs["engine"] = shard.engine
            if root.samples is None:
                root.samples = len(shard.metrics) * spec.n_samples
    if stream is not None and worker_events:
        stream.emit_merged(worker_events)


def run_sweep(
    spec: SweepSpec,
    executor: SweepExecutor | None = None,
    cache: ResultCache | None = None,
    telemetry: "TelemetrySession | None" = None,
    engine: str = "auto",
) -> AmplitudeSweepResult:
    """Run an amplitude sweep through the lowered engines.

    Parameters
    ----------
    spec:
        The sweep description (see :func:`sweep_spec_for_design`).
    executor:
        Shard executor; ``None`` runs a single inline shard.
    cache:
        Result cache; a hit skips computation entirely and reconstructs
        the result bit for bit from the stored metric arrays.
    engine:
        Execution rung per shard: ``auto`` (default) picks the compiled
        kernel for narrow shards and the batch engine otherwise;
        ``kernel``/``batch``/``scalar`` pin one rung.  All rungs are
        bit-identical, so the choice does not enter the cache key and a
        cache hit is valid for every engine.
    telemetry:
        Optional session; the sweep is wrapped in a ``sweep`` span with
        the workers' ``shard:<index>`` subtrees grafted under it, which
        existing manifest extractors ignore (they read only
        ``measure``/``device`` spans).  Executor timeout/retry events
        additionally appear as ``event:EXECxxx`` structural spans.

    Whether or not a session is passed, each shard's instrument
    snapshot (cache counters, engine choices, shard timings) is merged
    into the process-wide registry of
    :func:`repro.observability.instruments.get_registry`.

    Raises
    ------
    AnalysisError
        If the spec has no levels.
    """
    if len(spec.levels_db) == 0:
        raise AnalysisError("spec.levels_db must contain at least one level")
    if engine not in ("auto", "scalar", "batch", "kernel"):
        raise AnalysisError(
            f"unknown engine {engine!r}; expected auto, scalar, batch or kernel"
        )
    if executor is None:
        executor = SweepExecutor(jobs=1)

    if cache is not None:
        arrays = cache.load(spec.cache_key())
        if arrays is not None:
            metrics = _metrics_from_arrays(arrays, len(spec.levels_db))
            if metrics is not None:
                if telemetry is not None:
                    with telemetry.span(
                        "sweep",
                        samples=len(spec.levels_db) * spec.n_samples,
                        design=spec.design,
                        cache="hit",
                    ):
                        pass
                return _result_from_metrics(spec, metrics)

    worker = functools.partial(_run_lane_chunk, spec, engine=engine)
    levels = list(spec.levels_db)
    if telemetry is not None:
        with telemetry.span(
            "sweep",
            samples=len(levels) * spec.n_samples,
            design=spec.design,
            cache="miss" if cache is not None else "off",
            jobs=executor.jobs,
        ) as span:
            shards, worker_telemetry = executor.map_instrumented(worker, levels)
            _absorb_worker_telemetry(
                spec, shards, worker_telemetry, span, stream=telemetry.stream
            )
            for event in executor.events:
                span.record(
                    f"event:{event.rule}",
                    severity=event.severity.name,
                    source=event.source,
                    message=event.message,
                )
    else:
        shards, worker_telemetry = executor.map_instrumented(worker, levels)
        _absorb_worker_telemetry(spec, shards, worker_telemetry, None)

    metrics = tuple(m for shard in shards for m in shard.metrics)
    if cache is not None:
        cache.store(spec.cache_key(), _metrics_to_arrays(metrics))
    return _result_from_metrics(spec, metrics)
