"""Parallel shard executor for lane-parallel sweeps.

:class:`SweepExecutor` splits a list of work items (sweep lanes,
Monte-Carlo trials) into contiguous chunks and runs one worker call per
chunk, either inline or on a ``ProcessPoolExecutor``.  Three properties
matter more than raw speed:

* **Determinism** -- chunk boundaries depend only on the item count and
  the configured job/chunk settings, never on scheduling; each chunk
  receives a :class:`ShardContext` carrying its lane offset and a
  ``SeedSequence`` spawned from ``(seed, call_index, chunk_index)``, so
  any randomness a worker draws is a pure function of the executor
  configuration.  Results are reassembled in submission order.
* **Honesty about cores** -- the effective process count is clamped to
  ``min(jobs, os.cpu_count(), n_chunks)``.  On a single-core host a
  ``--jobs 4`` request runs inline (one fully vectorized pass) instead
  of paying fork-and-pickle overhead for no parallelism.
* **Bounded failure** -- a per-chunk timeout turns a hung worker into a
  :class:`SweepTimeoutError` instead of a silent stall, optionally
  after ``retries`` resubmissions of the timed-out chunk.

:meth:`SweepExecutor.map_instrumented` additionally runs every chunk --
inline or forked -- under a fresh instrument registry inside a
``shard:<index>`` span, and ships the finished span subtree plus the
registry snapshot back as a :class:`~repro.observability.spanio.WorkerTelemetry`
payload.  The caller merges the snapshots and grafts the spans, so
cache counters survive the process boundary and ``render_span_tree``
shows real worker-side wall time, queue wait and chunk sizes.  Timeouts
and retries also surface as :class:`~repro.telemetry.events.TelemetryEvent`
records (``EXEC001`` / ``EXEC002``) on :attr:`SweepExecutor.events`.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Any, TypeVar

import numpy as np

from repro.errors import ConfigurationError
from repro.observability.instruments import (
    Counter,
    InstrumentRegistry,
    get_registry,
    use_registry,
)
from repro.observability.live import EventRecorder
from repro.observability.spanio import WorkerTelemetry, span_to_dict
from repro.telemetry.events import Severity, TelemetryEvent
from repro.telemetry.spans import Span

__all__ = ["ShardContext", "SweepExecutor", "SweepTimeoutError"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")

#: Queue-wait buckets (seconds): submission-to-start latency is
#: microseconds inline and up to pool spin-up time under load.
_WAIT_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)

#: Shard wall-time buckets (seconds).
_SHARD_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    30.0,
    120.0,
)


class SweepTimeoutError(RuntimeError):
    """A sharded worker exceeded the executor's per-chunk timeout."""


@dataclass(frozen=True)
class ShardContext:
    """Deterministic execution context handed to each worker chunk.

    Attributes
    ----------
    shard_index:
        Position of this chunk in the submission order.
    n_shards:
        Total number of chunks for this ``map`` call.
    lane_offset:
        Index of the chunk's first item within the full item list;
        lane-sliced noise streams fast-forward by this many lanes.
    n_lanes:
        Number of items in this chunk.
    seed_entropy:
        Entropy tuple for ``np.random.SeedSequence``; spawned from the
        executor seed, the ``map`` call index and the shard index, so a
        worker can build a private, reproducible ``Generator``.
    """

    shard_index: int
    n_shards: int
    lane_offset: int
    n_lanes: int
    seed_entropy: tuple[int, ...]

    def seed_sequence(self) -> np.random.SeedSequence:
        """Return the shard's private ``SeedSequence``."""
        return np.random.SeedSequence(self.seed_entropy)


def _instrumented_call(
    worker: Callable[[Sequence[Any], ShardContext], Any],
    payload: Sequence[Any],
    context: ShardContext,
    submitted_unix: float,
) -> tuple[Any, WorkerTelemetry]:
    """Run one chunk under a fresh registry inside a ``shard:`` span.

    This is the wrapper that actually crosses the process boundary for
    instrumented maps.  It runs inline chunks too, so the telemetry a
    caller receives has identical shape whether or not processes were
    forked -- and because the registry is *fresh*, counts inherited
    through ``fork`` are never double-merged into the parent.

    Queue wait is ``time.time()`` based: ``perf_counter`` is not
    comparable across processes, while same-host wall clocks are.
    """
    registry = InstrumentRegistry()
    recorder = EventRecorder()
    with use_registry(registry):
        queue_wait_s = max(0.0, time.time() - submitted_unix)
        span = Span(
            f"shard:{context.shard_index}",
            pid=os.getpid(),
            lane_offset=context.lane_offset,
            n_lanes=context.n_lanes,
            queue_wait_ms=round(queue_wait_s * 1e3, 3),
        )
        recorder.emit(
            "span_start",
            span.name,
            pid=os.getpid(),
            lane_offset=context.lane_offset,
            n_lanes=context.n_lanes,
        )
        span.start()
        try:
            result = worker(payload, context)
        finally:
            span.finish()
            recorder.emit(
                "span_finish",
                span.name,
                pid=os.getpid(),
                duration_s=span.duration_s,
            )
        registry.counter(
            "repro.executor.shards", help="worker chunk calls completed"
        ).inc()
        registry.histogram(
            "repro.executor.queue_wait_seconds",
            buckets=_WAIT_BUCKETS,
            help="submission-to-start latency per chunk",
        ).observe(queue_wait_s)
        registry.histogram(
            "repro.executor.shard_seconds",
            buckets=_SHARD_BUCKETS,
            help="worker-side wall time per chunk",
        ).observe(span.duration_s or 0.0)
        snapshot = registry.snapshot()
        recorder.emit(
            "instruments",
            span.name,
            pid=os.getpid(),
            **_counter_deltas(registry),
        )
    telemetry = WorkerTelemetry(
        spans=(span_to_dict(span),),
        instruments=snapshot,
        events=tuple(recorder.events),
    )
    return result, telemetry


def _counter_deltas(registry: InstrumentRegistry) -> dict[str, float]:
    """Flatten a fresh worker registry's counters for the delta event.

    The registry was created for this one chunk, so every counter
    total *is* the chunk's delta; dots become underscores so the
    fields stay valid as flat JSON keys next to ``event``/``name``.
    """
    out: dict[str, float] = {}
    for instrument in registry.instruments():
        if isinstance(instrument, Counter):
            out[instrument.name.replace(".", "_")] = instrument.total()
    return out


class SweepExecutor:
    """Shard work items across processes with deterministic chunking.

    Parameters
    ----------
    jobs:
        Requested worker-process count.  ``1`` always runs inline; the
        effective count is additionally clamped to the host's CPU count
        and the chunk count.
    chunk_size:
        Items per worker call.  ``None`` derives
        ``ceil(n_items / effective_jobs)`` so one chunk lands on each
        worker.
    timeout_s:
        Per-chunk wall-clock timeout in seconds (``None`` disables).
    retries:
        How many times a timed-out chunk is resubmitted before the
        call fails with :class:`SweepTimeoutError`.  Each retry is
        counted (``repro.executor.retries``) and recorded as an
        ``EXEC002`` event; the final timeout as ``EXEC001``.
    seed:
        Root seed for the per-shard ``SeedSequence`` spawning.

    Attributes
    ----------
    events:
        :class:`~repro.telemetry.events.TelemetryEvent` records from
        the most recent ``map`` / ``map_instrumented`` call (timeouts
        and retries); reset at the start of each call.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        chunk_size: int | None = None,
        timeout_s: float | None = None,
        retries: int = 0,
        seed: int = 0,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs!r}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size!r}"
            )
        if timeout_s is not None and timeout_s <= 0.0:
            raise ConfigurationError(
                f"timeout_s must be positive, got {timeout_s!r}"
            )
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries!r}")
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.timeout_s = timeout_s
        self.retries = retries
        self.seed = seed
        self.events: list[TelemetryEvent] = []
        self._call_index = 0

    def plan(self, n_items: int) -> list[tuple[int, int]]:
        """Return the ``(offset, length)`` chunk plan for ``n_items``.

        The plan depends only on ``n_items``, the executor
        configuration and the host's CPU count -- never on scheduling.
        The default chunk size divides the items over the *effective*
        process count, so a ``--jobs 4`` request on a single-core host
        yields one chunk (one fully vectorized pass) instead of four
        undersized ones; any layout produces bit-identical results, the
        chunking only sets the vectorization width per worker call.
        """
        if n_items <= 0:
            return []
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            workers = max(1, min(self.jobs, os.cpu_count() or 1))
            size = -(-n_items // workers)
        chunks: list[tuple[int, int]] = []
        offset = 0
        while offset < n_items:
            length = min(size, n_items - offset)
            chunks.append((offset, length))
            offset += length
        return chunks

    def effective_jobs(self, n_chunks: int) -> int:
        """Return the process count actually used for ``n_chunks``."""
        return max(1, min(self.jobs, os.cpu_count() or 1, n_chunks))

    def map(
        self,
        worker: Callable[[Sequence[_ItemT], ShardContext], _ResultT],
        items: Sequence[_ItemT],
    ) -> list[_ResultT]:
        """Run ``worker`` over chunked ``items``; return per-chunk results.

        ``worker`` must be picklable (a module-level function) when more
        than one process is used.  Results are returned in chunk order
        regardless of completion order.
        """
        results, _ = self._execute(worker, items, instrument=False)
        return results

    def map_instrumented(
        self,
        worker: Callable[[Sequence[_ItemT], ShardContext], _ResultT],
        items: Sequence[_ItemT],
    ) -> tuple[list[_ResultT], list[WorkerTelemetry]]:
        """Like :meth:`map`, returning per-chunk telemetry as well.

        Each chunk runs under a fresh instrument registry inside a
        ``shard:<index>`` span; the returned
        :class:`~repro.observability.spanio.WorkerTelemetry` payloads
        (in chunk order) carry the serialized span subtree and the
        registry snapshot for the caller to graft and merge.
        """
        return self._execute(worker, items, instrument=True)

    def _execute(
        self,
        worker: Callable[[Sequence[_ItemT], ShardContext], _ResultT],
        items: Sequence[_ItemT],
        *,
        instrument: bool,
    ) -> tuple[list[_ResultT], list[WorkerTelemetry]]:
        chunks = self.plan(len(items))
        call_index = self._call_index
        self._call_index += 1
        self.events = []
        contexts = [
            ShardContext(
                shard_index=index,
                n_shards=len(chunks),
                lane_offset=offset,
                n_lanes=length,
                seed_entropy=(self.seed, call_index, index),
            )
            for index, (offset, length) in enumerate(chunks)
        ]
        payloads = [
            items[offset : offset + length] for offset, length in chunks
        ]
        n_processes = self.effective_jobs(len(chunks))
        if instrument:
            # A last-value gauge, not a counter: dashboards tailing
            # /statsz want "what parallelism is this host actually
            # getting" -- the clamped count, which can silently differ
            # from the requested ``jobs`` on small hosts or short item
            # lists.  Plain map() stays instrument-free by contract.
            get_registry().gauge(
                "repro.executor.effective_jobs",
                help="process count actually used by the latest map call",
            ).set(float(n_processes), requested=str(self.jobs))
        results: list[_ResultT] = []
        telemetries: list[WorkerTelemetry] = []
        if n_processes <= 1:
            for payload, context in zip(payloads, contexts):
                if instrument:
                    result, telemetry = _instrumented_call(
                        worker, payload, context, time.time()
                    )
                    telemetries.append(telemetry)
                else:
                    result = worker(payload, context)
                results.append(result)
            return results, telemetries
        with ProcessPoolExecutor(max_workers=n_processes) as pool:
            futures: list[Any]
            if instrument:
                futures = [
                    pool.submit(
                        _instrumented_call, worker, payload, context, time.time()
                    )
                    for payload, context in zip(payloads, contexts)
                ]
            else:
                futures = [
                    pool.submit(worker, payload, context)
                    for payload, context in zip(payloads, contexts)
                ]
            for index, future in enumerate(futures):
                attempts_left = self.retries
                while True:
                    try:
                        outcome = future.result(timeout=self.timeout_s)
                        break
                    except FuturesTimeoutError as exc:
                        future.cancel()
                        if attempts_left > 0:
                            attempts_left -= 1
                            self._note_retry(index, len(futures))
                            if instrument:
                                future = pool.submit(
                                    _instrumented_call,
                                    worker,
                                    payloads[index],
                                    contexts[index],
                                    time.time(),
                                )
                            else:
                                future = pool.submit(
                                    worker, payloads[index], contexts[index]
                                )
                            continue
                        for pending in futures:
                            pending.cancel()
                        self._note_timeout(index, len(futures))
                        raise SweepTimeoutError(
                            f"shard {index}/{len(futures)} exceeded "
                            f"{self.timeout_s!r} s"
                        ) from exc
                if instrument:
                    result, telemetry = outcome
                    telemetries.append(telemetry)
                    results.append(result)
                else:
                    results.append(outcome)
            return results, telemetries

    def _note_timeout(self, index: int, n_shards: int) -> None:
        """Account a terminal shard timeout (counter + EXEC001 event)."""
        get_registry().counter(
            "repro.executor.timeouts",
            help="chunks that exceeded the per-chunk timeout terminally",
        ).inc(shard=str(index))
        self.events.append(
            TelemetryEvent(
                rule="EXEC001",
                severity=Severity.ERROR,
                source=f"shard:{index}",
                message=(
                    f"shard {index}/{n_shards} exceeded the per-chunk "
                    f"timeout of {self.timeout_s!r} s"
                ),
            )
        )

    def _note_retry(self, index: int, n_shards: int) -> None:
        """Account a timed-out chunk's resubmission (counter + EXEC002)."""
        get_registry().counter(
            "repro.executor.retries",
            help="timed-out chunks resubmitted to the pool",
        ).inc(shard=str(index))
        self.events.append(
            TelemetryEvent(
                rule="EXEC002",
                severity=Severity.WARNING,
                source=f"shard:{index}",
                message=(
                    f"shard {index}/{n_shards} timed out after "
                    f"{self.timeout_s!r} s; resubmitting"
                ),
            )
        )
