"""Parallel shard executor for lane-parallel sweeps.

:class:`SweepExecutor` splits a list of work items (sweep lanes,
Monte-Carlo trials) into contiguous chunks and runs one worker call per
chunk, either inline or on a ``ProcessPoolExecutor``.  Three properties
matter more than raw speed:

* **Determinism** -- chunk boundaries depend only on the item count and
  the configured job/chunk settings, never on scheduling; each chunk
  receives a :class:`ShardContext` carrying its lane offset and a
  ``SeedSequence`` spawned from ``(seed, call_index, chunk_index)``, so
  any randomness a worker draws is a pure function of the executor
  configuration.  Results are reassembled in submission order.
* **Honesty about cores** -- the effective process count is clamped to
  ``min(jobs, os.cpu_count(), n_chunks)``.  On a single-core host a
  ``--jobs 4`` request runs inline (one fully vectorized pass) instead
  of paying fork-and-pickle overhead for no parallelism.
* **Bounded failure** -- a per-chunk timeout turns a hung worker into a
  :class:`SweepTimeoutError` instead of a silent stall.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import TypeVar

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ShardContext", "SweepExecutor", "SweepTimeoutError"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


class SweepTimeoutError(RuntimeError):
    """A sharded worker exceeded the executor's per-chunk timeout."""


@dataclass(frozen=True)
class ShardContext:
    """Deterministic execution context handed to each worker chunk.

    Attributes
    ----------
    shard_index:
        Position of this chunk in the submission order.
    n_shards:
        Total number of chunks for this ``map`` call.
    lane_offset:
        Index of the chunk's first item within the full item list;
        lane-sliced noise streams fast-forward by this many lanes.
    n_lanes:
        Number of items in this chunk.
    seed_entropy:
        Entropy tuple for ``np.random.SeedSequence``; spawned from the
        executor seed, the ``map`` call index and the shard index, so a
        worker can build a private, reproducible ``Generator``.
    """

    shard_index: int
    n_shards: int
    lane_offset: int
    n_lanes: int
    seed_entropy: tuple[int, ...]

    def seed_sequence(self) -> np.random.SeedSequence:
        """Return the shard's private ``SeedSequence``."""
        return np.random.SeedSequence(self.seed_entropy)


class SweepExecutor:
    """Shard work items across processes with deterministic chunking.

    Parameters
    ----------
    jobs:
        Requested worker-process count.  ``1`` always runs inline; the
        effective count is additionally clamped to the host's CPU count
        and the chunk count.
    chunk_size:
        Items per worker call.  ``None`` derives
        ``ceil(n_items / effective_jobs)`` so one chunk lands on each
        worker.
    timeout_s:
        Per-chunk wall-clock timeout in seconds (``None`` disables).
    seed:
        Root seed for the per-shard ``SeedSequence`` spawning.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        chunk_size: int | None = None,
        timeout_s: float | None = None,
        seed: int = 0,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs!r}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size!r}"
            )
        if timeout_s is not None and timeout_s <= 0.0:
            raise ConfigurationError(
                f"timeout_s must be positive, got {timeout_s!r}"
            )
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.timeout_s = timeout_s
        self.seed = seed
        self._call_index = 0

    def plan(self, n_items: int) -> list[tuple[int, int]]:
        """Return the ``(offset, length)`` chunk plan for ``n_items``.

        The plan depends only on ``n_items``, the executor
        configuration and the host's CPU count -- never on scheduling.
        The default chunk size divides the items over the *effective*
        process count, so a ``--jobs 4`` request on a single-core host
        yields one chunk (one fully vectorized pass) instead of four
        undersized ones; any layout produces bit-identical results, the
        chunking only sets the vectorization width per worker call.
        """
        if n_items <= 0:
            return []
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            workers = max(1, min(self.jobs, os.cpu_count() or 1))
            size = -(-n_items // workers)
        chunks: list[tuple[int, int]] = []
        offset = 0
        while offset < n_items:
            length = min(size, n_items - offset)
            chunks.append((offset, length))
            offset += length
        return chunks

    def effective_jobs(self, n_chunks: int) -> int:
        """Return the process count actually used for ``n_chunks``."""
        return max(1, min(self.jobs, os.cpu_count() or 1, n_chunks))

    def map(
        self,
        worker: Callable[[Sequence[_ItemT], ShardContext], _ResultT],
        items: Sequence[_ItemT],
    ) -> list[_ResultT]:
        """Run ``worker`` over chunked ``items``; return per-chunk results.

        ``worker`` must be picklable (a module-level function) when more
        than one process is used.  Results are returned in chunk order
        regardless of completion order.
        """
        chunks = self.plan(len(items))
        call_index = self._call_index
        self._call_index += 1
        contexts = [
            ShardContext(
                shard_index=index,
                n_shards=len(chunks),
                lane_offset=offset,
                n_lanes=length,
                seed_entropy=(self.seed, call_index, index),
            )
            for index, (offset, length) in enumerate(chunks)
        ]
        payloads = [
            items[offset : offset + length] for offset, length in chunks
        ]
        n_processes = self.effective_jobs(len(chunks))
        if n_processes <= 1:
            return [
                worker(payload, context)
                for payload, context in zip(payloads, contexts)
            ]
        with ProcessPoolExecutor(max_workers=n_processes) as pool:
            futures = [
                pool.submit(worker, payload, context)
                for payload, context in zip(payloads, contexts)
            ]
            results: list[_ResultT] = []
            for index, future in enumerate(futures):
                try:
                    results.append(future.result(timeout=self.timeout_s))
                except FuturesTimeoutError as exc:
                    for pending in futures:
                        pending.cancel()
                    raise SweepTimeoutError(
                        f"shard {index}/{len(futures)} exceeded "
                        f"{self.timeout_s!r} s"
                    ) from exc
            return results
