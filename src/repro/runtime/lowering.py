"""The declared lowering protocol: which subclasses still batch.

The batch engine (:mod:`repro.runtime.batch`) and the single-run fast
path (:mod:`repro.runtime.single`) do not *execute* a device's Python
methods -- they transliterate its configuration into fused kernels.
That is what makes them bit-exact, and it is also why subclassing is
dangerous: a subclass that overrides a behavioural hook (``run``,
``step``, ``decide``, ``_store_half``, ...) changes the scalar
reference while the lowered path keeps simulating the base class.
Before this module the engine handled that with blanket exact-type
checks; now the contract is *declared*, per base class, as an explicit
allowlist of hooks a subclass may override while keeping its lowering:

* ``__init__`` -- the lowering reads the constructed instance's
  configuration, never the constructor, so pinning defaults or adding
  metadata in ``__init__`` is always safe;
* ``attach_telemetry`` / ``describe_graph`` -- reporting-only hooks the
  lowering never consults;
* everything else the base class defines is part of the simulated
  behaviour: overriding it refuses lowering with a named reason.

Quantiser and DAC bases stay **exact-type-only** -- their behaviour is
sampled so tightly that arbitrary overrides cannot be proven safe --
but subclasses that draw their extra randomness from the replayable
streams in :mod:`repro.noise.streams` join the protocol as lowered
bases of their own:
:class:`~repro.deltasigma.dither.DitheredQuantizer` consumes one
:class:`~repro.noise.streams.GaussianStream` draw per decision, so
the lowered engines slice or drain its dither stream exactly like the
metastability stream.  Telemetry probes have a paired-hook rule: the
scalar loops feed :meth:`SignalProbe.observe` per sample while the
lowered paths feed :meth:`SignalProbe.observe_array` once, so a
subclass must override both or neither.

The refusal messages are exported as helpers so the static analyzer
(:mod:`repro.staticcheck`, rules SC010-SC012) can *predict* at
class-definition time exactly what :class:`BatchUnsupported` the
runtime would raise -- the cross-validation suite asserts the two
never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.deltasigma.chopper_modulator import ChopperStabilizedSIModulator
from repro.deltasigma.dac import FeedbackDac
from repro.deltasigma.dither import DitheredQuantizer
from repro.deltasigma.modulator1 import SIModulator1
from repro.deltasigma.modulator2 import SIModulator2
from repro.deltasigma.quantizer import CurrentQuantizer
from repro.devices.current_mirror import CurrentMirror
from repro.si.cascade import BiquadCascade
from repro.si.cmff import CommonModeFeedforward
from repro.si.delay_line import DelayLine
from repro.si.differentiator import SIDifferentiator
from repro.si.integrator import SIIntegrator
from repro.si.memory_cell import ClassABMemoryCell
from repro.telemetry.probes import SignalProbe

__all__ = [
    "LoweredBase",
    "LOWERING_PROTOCOL",
    "PROTOCOL_BY_QUALNAME",
    "UNSEEDED_NOISE_REFUSAL",
    "UNSEEDED_METASTABILITY_REFUSAL",
    "UNSEEDED_REFERENCE_REFUSAL",
    "UNSEEDED_DITHER_REFUSAL",
    "protocol_for",
    "overridden_hooks",
    "hooks_outside_protocol",
    "subclass_refusal",
    "hook_refusal",
    "probe_pair_refusal",
    "lowering_refusal",
    "probe_refusal",
]

#: Refusal raised when a memory cell draws noise from an unseeded
#: generator (no replayable stream).
UNSEEDED_NOISE_REFUSAL = (
    "unseeded noise generator; a fresh batch feed cannot replay the "
    "device's stream"
)

#: Refusal raised for an unseeded quantiser metastability band.
UNSEEDED_METASTABILITY_REFUSAL = (
    "unseeded metastability randomness; a fresh batch stream cannot "
    "replay the device's draws"
)

#: Refusal raised for unseeded DAC reference noise.
UNSEEDED_REFERENCE_REFUSAL = (
    "unseeded reference noise; a fresh batch stream cannot replay the "
    "device's draws"
)

#: Refusal raised for unseeded quantiser dither.
UNSEEDED_DITHER_REFUSAL = (
    "unseeded dither randomness; a fresh batch stream cannot replay "
    "the device's draws"
)

#: Hook names never counted as behavioural overrides (interpreter and
#: dataclass bookkeeping, plus display-only dunders).
_IGNORED_NAMES: frozenset[str] = frozenset(
    {
        "__dict__",
        "__weakref__",
        "__module__",
        "__qualname__",
        "__doc__",
        "__annotations__",
        "__slots__",
        "__firstlineno__",
        "__static_attributes__",
        "__parameters__",
        "__abstractmethods__",
        "__init_subclass__",
        "__subclasshook__",
        "__match_args__",
        "__dataclass_fields__",
        "__dataclass_params__",
        "__repr__",
        "__str__",
        "__eq__",
        "__hash__",
    }
)

#: Hooks that are always reporting-only: safe for any subclass.
_COMMON_OVERRIDABLE: frozenset[str] = frozenset(
    {"__init__", "attach_telemetry", "describe_graph"}
)


@dataclass(frozen=True)
class LoweredBase:
    """One base class the runtime knows how to lower.

    Attributes
    ----------
    base:
        The lowered class object.
    kind:
        Human label used in refusal messages (``"quantizer"``, ...).
    exact:
        When True, *any* subclass refuses lowering (the base's
        behaviour is sampled so tightly that no override is safe).
    overridable:
        Hook names a subclass may override while keeping the lowering;
        ignored when :attr:`exact` is set.
    """

    base: type
    kind: str
    exact: bool = False
    overridable: frozenset[str] = field(default_factory=frozenset)

    @property
    def qualname(self) -> str:
        """Return the fully qualified name of the lowered base."""
        return f"{self.base.__module__}.{self.base.__qualname__}"


#: The declared protocol: every base class with a bit-exact lowering.
LOWERING_PROTOCOL: tuple[LoweredBase, ...] = (
    LoweredBase(
        ClassABMemoryCell, "memory cell", overridable=_COMMON_OVERRIDABLE
    ),
    LoweredBase(DelayLine, "delay line", overridable=_COMMON_OVERRIDABLE),
    LoweredBase(
        BiquadCascade, "biquad cascade", overridable=_COMMON_OVERRIDABLE
    ),
    LoweredBase(SIModulator1, "modulator", overridable=_COMMON_OVERRIDABLE),
    LoweredBase(SIModulator2, "modulator", overridable=_COMMON_OVERRIDABLE),
    LoweredBase(
        ChopperStabilizedSIModulator, "modulator", overridable=_COMMON_OVERRIDABLE
    ),
    LoweredBase(SIIntegrator, "integrator", overridable=_COMMON_OVERRIDABLE),
    LoweredBase(
        SIDifferentiator, "differentiator", overridable=_COMMON_OVERRIDABLE
    ),
    LoweredBase(
        CommonModeFeedforward, "CMFF stage", overridable=_COMMON_OVERRIDABLE
    ),
    LoweredBase(CurrentMirror, "current mirror", overridable=_COMMON_OVERRIDABLE),
    LoweredBase(CurrentQuantizer, "quantizer", exact=True),
    # DitheredQuantizer precedes its exact-only base in every MRO walk:
    # its extra randomness comes from a replayable GaussianStream, so it
    # lowers as a protocol base of its own.
    LoweredBase(
        DitheredQuantizer, "quantizer", overridable=_COMMON_OVERRIDABLE
    ),
    LoweredBase(FeedbackDac, "DAC", exact=True),
)

#: The protocol indexed by fully qualified base-class name -- the view
#: the static analyzer (which works on import graphs, not objects)
#: resolves subclass bases against.
PROTOCOL_BY_QUALNAME: dict[str, LoweredBase] = {
    entry.qualname: entry for entry in LOWERING_PROTOCOL
}

_PROTOCOL_BY_BASE: dict[type, LoweredBase] = {
    entry.base: entry for entry in LOWERING_PROTOCOL
}


def protocol_for(cls: type) -> LoweredBase | None:
    """Return the protocol entry governing ``cls``, walking its MRO."""
    for klass in cls.__mro__:
        entry = _PROTOCOL_BY_BASE.get(klass)
        if entry is not None:
            return entry
    return None


def hooks_outside_protocol(
    entry: LoweredBase, names: Iterable[str]
) -> list[str]:
    """Filter redefined ``names`` down to the protocol-relevant hooks.

    A hook is protocol-relevant when the base class itself provides the
    name and the protocol does not allowlist it.  Newly added names are
    not hooks: the lowering never calls them.  Shared by the runtime
    MRO walk below and the static analyzer's class-body scan
    (:mod:`repro.staticcheck.lowerability`), so both always agree.
    """
    return sorted(
        name
        for name in set(names)
        if name not in _IGNORED_NAMES
        and name not in entry.overridable
        and hasattr(entry.base, name)
    )


def overridden_hooks(cls: type, entry: LoweredBase) -> list[str]:
    """Return the protocol-relevant hooks ``cls`` overrides.

    Collects every name redefined between ``cls`` and the lowered base
    along the MRO, then filters through :func:`hooks_outside_protocol`.
    """
    names: set[str] = set()
    for klass in cls.__mro__:
        if klass is entry.base:
            break
        names.update(vars(klass))
    return hooks_outside_protocol(entry, names)


def subclass_refusal(kind: str, name: str) -> str:
    """Return the refusal for a subclass of an exact-type-only base."""
    return f"no bit-exact lowering for {kind} subclass {name}"


def hook_refusal(kind: str, name: str, hook: str, base: str) -> str:
    """Return the refusal for an override outside the protocol."""
    return (
        f"no bit-exact lowering for {kind} subclass {name}: {hook}() is "
        f"outside the declared lowering protocol of {base}"
    )


def probe_pair_refusal(name: str) -> str:
    """Return the refusal for an unpaired probe hook override."""
    return (
        f"no bit-exact lowering for probe subclass {name}: observe() and "
        "observe_array() must be overridden together (the scalar loop "
        "feeds one, the lowered replay the other)"
    )


def lowering_refusal(component: object) -> str | None:
    """Return why ``component`` refuses lowering, or None when it lowers.

    The runtime enforcement entry point: batch runner constructors call
    this on every device, cell, stage, CMFF and mirror they are about
    to transliterate.  Objects whose type is not governed by the
    protocol return None here -- the caller's own dispatch decides
    whether an unknown type is an error.
    """
    cls = type(component)
    entry = protocol_for(cls)
    if entry is None or cls is entry.base:
        return None
    if entry.exact:
        return subclass_refusal(entry.kind, cls.__name__)
    hooks = overridden_hooks(cls, entry)
    if hooks:
        return hook_refusal(
            entry.kind, cls.__name__, hooks[0], entry.base.__name__
        )
    return None


def probe_refusal(probe: object) -> str | None:
    """Return why a telemetry probe refuses lowering, or None.

    A :class:`SignalProbe` subclass must override ``observe`` and
    ``observe_array`` *together*: the scalar loops feed samples through
    the former, the lowered paths through the latter, and an unpaired
    override makes the two runs observe different statistics.
    """
    cls = type(probe)
    if cls is SignalProbe or not issubclass(cls, SignalProbe):
        return None
    overrides_observe = cls.observe is not SignalProbe.observe
    overrides_array = cls.observe_array is not SignalProbe.observe_array
    if overrides_observe != overrides_array:
        return probe_pair_refusal(cls.__name__)
    return None
