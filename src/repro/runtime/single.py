"""Lane-of-1 single-run fast path for the scalar device loops.

The batch engine (:mod:`repro.runtime.batch`) wins by running many
lanes side by side, but at ``n_lanes == 1`` the per-step numpy
dispatch overhead makes it *slower* than the plain Python loop.  This
module closes the single-run gap differently: each supported device is
lowered onto a fused pure-Python loop with every per-step abstraction
removed -- no :class:`~repro.si.differential.DifferentialSample`
allocations, no method dispatch, no per-sample RNG calls -- while
reproducing the scalar pipeline operation for operation.

The contract is the same as the batch engine's: **bit-exactness**.
Every arithmetic expression below mirrors the scalar source (same
association, same branch structure, ``exp`` through numpy's scalar
kernel), and all randomness is consumed from the devices' own live
streams (the memory cell's noise feed, the quantiser's metastability
stream, the DAC's reference-noise stream) via their chunked ``take``
methods, which advance the streams exactly as the scalar loop would.
Device state (stored samples, step/slew counters, quantiser
hysteresis) is written back after the run, so fast-path and scalar
runs can be interleaved freely.

Attached telemetry probes are lowered too: per-step observations are
buffered and folded in with
:meth:`~repro.telemetry.probes.SignalProbe.observe_array` after the
loop (identical count/min/max/clip statistics; mean and RMS agree to
summation-order rounding).

The scalar loop remains the *parity oracle*: wrap a run in
:func:`force_scalar` to execute the original per-sample path, and use
:func:`consume_fallbacks` to check which runs (if any) refused the
fast path and why.  See ``docs/RUNTIME.md`` ("Single-run fast path").
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.deltasigma.dac import FeedbackDac
from repro.deltasigma.dither import DitheredQuantizer
from repro.deltasigma.quantizer import CurrentQuantizer
from repro.devices.current_mirror import CurrentMirror
from repro.runtime.engine import current_engine, record_engine_run
from repro.runtime.lowering import probe_refusal
from repro.si.cmff import CommonModeFeedforward
from repro.si.differential import DifferentialSample
from repro.si.memory_cell import ClassABMemoryCell, MemoryCellConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.deltasigma.chopper_modulator import ChopperStabilizedSIModulator
    from repro.deltasigma.modulator1 import SIModulator1
    from repro.deltasigma.modulator2 import SIModulator2
    from repro.si.cascade import BiquadCascade
    from repro.si.delay_line import DelayLine
    from repro.si.differentiator import SIDifferentiator
    from repro.si.integrator import SIIntegrator

__all__ = ["run_single", "force_scalar", "consume_fallbacks"]

#: Upper bound on retained fallback messages; keeps a long-running
#: session from accumulating unbounded diagnostics.
_MAX_FALLBACKS = 1024

_fallbacks: list[str] = []
_force_depth = 0


@contextmanager
def force_scalar() -> Iterator[None]:
    """Disable the fast path inside the block (the parity oracle).

    Runs executed under ``force_scalar`` take the original per-sample
    scalar loop and do **not** count as fallbacks.
    """
    global _force_depth
    _force_depth += 1
    try:
        yield
    finally:
        _force_depth -= 1


def consume_fallbacks() -> list[str]:
    """Return and clear the recorded fast-path refusal reasons.

    Each entry is ``"<DeviceType>: <reason>"`` for one ``run_single``
    call that could not take the fast path (forced-scalar runs are not
    recorded).  An empty list means every routed run stayed on the
    fast path.
    """
    global _fallbacks
    out = _fallbacks
    _fallbacks = []
    return out


def _note(device: object, reason: str) -> None:
    if len(_fallbacks) < _MAX_FALLBACKS:
        _fallbacks.append(f"{type(device).__name__}: {reason}")
    # Imported lazily to keep the fast path's module-import footprint
    # (and the hot accept path) free of registry machinery.
    from repro.observability.instruments import get_registry

    get_registry().counter(
        "repro.single.fallbacks",
        help="single runs that refused the fast path",
    ).inc(device=type(device).__name__)
    return None


# ---------------------------------------------------------------------------
# Fused primitives


def _store_half_fn(config: MemoryCellConfig) -> Callable[[float, float], tuple[float, bool]]:
    """Return a fused ``(previous, target) -> (settled, slewed)`` closure.

    Transliteration of ``ClassABMemoryCell._store_half`` (translinear
    split, transmission error, charge-injection residue, two-regime GGA
    settling) with every constant hoisted.  ``exp`` goes through
    ``np.exp`` exactly as :func:`repro.si.gga._exp` does, so the result
    is bit-identical to the scalar pipeline.
    """
    iq = config.quiescent_current
    iq_sq = iq * iq
    trans = config.transmission
    t_eff = trans.effective_ratio
    t_iq = trans.quiescent_current
    t_floor = 1e-3 * t_iq
    inj = config.injection
    j_res = inj.residual_at_quiescent
    j_iq = inj.quiescent_current
    j_floor = 1e-3 * j_iq
    gga = config.gga
    kick = gga.phase_kick_fraction
    bias = gga.bias_current
    tau_fraction = gga.settling_tau_fraction
    m_floor = gga.drive_margin_floor
    sqrt = math.sqrt
    exp = np.exp

    def store_half(previous: float, target: float) -> tuple[float, bool]:
        half = 0.5 * target
        root = sqrt(half * half + iq_sq)
        if half >= 0.0:
            device_n = half + root
        else:
            device_n = iq_sq / (root - half)
        current = device_n if device_n >= t_floor else t_floor
        value = target * (1.0 - t_eff * sqrt(t_iq / current))
        current = device_n if device_n >= j_floor else j_floor
        value += j_res * sqrt(current / j_iq)
        delta = value - previous + kick * value
        if delta == 0.0:
            return value, False
        margin = 1.0 - abs(value) / bias
        if margin < m_floor:
            margin = m_floor
        n_tau = margin / tau_fraction
        magnitude = abs(delta)
        if magnitude <= bias:
            return value - delta * float(exp(-n_tau)), False
        sign = 1.0 if delta > 0.0 else -1.0
        slew_tau = (magnitude - bias) / bias
        if slew_tau >= n_tau:
            residual = sign * (magnitude - bias * n_tau)
        else:
            residual = sign * bias * float(exp(-(n_tau - slew_tau)))
        return value - residual, True

    return store_half


def _cmff_fn(cmff: CommonModeFeedforward) -> Callable[[float, float], tuple[float, float]]:
    """Return a fused ``(pos, neg) -> (pos, neg)`` CMFF closure.

    Mirrors ``CommonModeFeedforward.apply`` with the mirror gains
    precomputed; the ``output_conductance * 0.0`` bias terms are kept
    because adding ``+0.0`` normalises a ``-0.0`` product exactly as
    the scalar mirrors do.
    """
    sp_g = cmff.sense_pos.gain
    sp_b = cmff.sense_pos.output_conductance * 0.0
    sn_g = cmff.sense_neg.gain
    sn_b = cmff.sense_neg.output_conductance * 0.0
    up_g = cmff.subtract_pos.gain
    up_b = cmff.subtract_pos.output_conductance * 0.0
    un_g = cmff.subtract_neg.gain
    un_b = cmff.subtract_neg.output_conductance * 0.0

    def apply(pos: float, neg: float) -> tuple[float, float]:
        i_cm = (sp_g * pos + sp_b) + (sn_g * neg + sn_b)
        return pos - (up_g * i_cm + up_b), neg - (un_g * i_cm + un_b)

    return apply


# ---------------------------------------------------------------------------
# Eligibility checks (run before any stream is consumed)


def _cell_reason(cell: object) -> str | None:
    if type(cell) is not ClassABMemoryCell:
        return f"unsupported memory cell type {type(cell).__name__}"
    if cell._probe is not None:
        reason = probe_refusal(cell._probe)
        if reason is not None:
            return reason
    return None


def _stage_reason(stage: "SIIntegrator | SIDifferentiator") -> str | None:
    reason = _cell_reason(stage._cell)
    if reason is not None:
        return reason
    cmff = stage.cmff
    if cmff is None:
        return None
    if type(cmff) is not CommonModeFeedforward:
        return f"unsupported CMFF type {type(cmff).__name__}"
    for mirror in (cmff.sense_pos, cmff.sense_neg, cmff.subtract_pos, cmff.subtract_neg):
        if type(mirror) is not CurrentMirror:
            return f"unsupported mirror type {type(mirror).__name__}"
    if cmff._probe is not None:
        reason = probe_refusal(cmff._probe)
        if reason is not None:
            return reason
    return None


def _loop_reason(quantizer: object, dac: object) -> str | None:
    qtype = type(quantizer)
    if qtype is not CurrentQuantizer and qtype is not DitheredQuantizer:
        return f"unsupported quantizer type {qtype.__name__}"
    if type(dac) is not FeedbackDac:
        return f"unsupported DAC type {type(dac).__name__}"
    return None


def _dither_draws(quantizer: object, n: int) -> tuple[float, list[float]]:
    """Return ``(dither_rms, n pre-drawn dither values)`` for a loop run.

    Zero RMS (including the plain :class:`CurrentQuantizer`) draws
    nothing, exactly like the scalar ``decide``.
    """
    if type(quantizer) is DitheredQuantizer and quantizer.dither_rms > 0.0:
        return quantizer.dither_rms, quantizer._dither.take(n).tolist()
    return 0.0, []


# ---------------------------------------------------------------------------
# Fused integrator/differentiator stage (cascade path; the modulator
# runners inline the same arithmetic with plain locals for speed)


class _FusedStage:
    """One integrator or differentiator stage lowered to plain floats."""

    __slots__ = (
        "pos",
        "neg",
        "_stage",
        "_store",
        "_gain",
        "_crossed",
        "_mm",
        "_fp",
        "_fn",
        "_noise",
        "_idx",
        "_slews",
        "_apply_cmff",
        "_cell_buf",
        "_cmff_buf",
    )

    def __init__(
        self, stage: "SIIntegrator | SIDifferentiator", n_steps: int, crossed: bool
    ) -> None:
        cell = stage._cell
        config = cell.config
        self._stage = stage
        self._store = _store_half_fn(config)
        self._gain = stage.gain
        self._crossed = crossed
        self._mm = config.half_gain_mismatch
        self._fp = 1.0 + 0.5 * self._mm
        self._fn = 1.0 - 0.5 * self._mm
        self._noise: list[float] = cell._noise.take(n_steps).tolist()
        self._idx = 0
        self._slews = 0
        cmff = stage.cmff
        self._apply_cmff = _cmff_fn(cmff) if cmff is not None else None
        self._cell_buf: list[float] | None = [] if cell._probe is not None else None
        self._cmff_buf: list[float] | None = (
            [] if cmff is not None and cmff._probe is not None else None
        )
        self.pos = cell._stored.pos
        self.neg = cell._stored.neg

    def step(self, u_pos: float, u_neg: float) -> None:
        pos = self.pos
        neg = self.neg
        gain = self._gain
        if self._crossed:
            t_pos = neg + u_pos * gain
            t_neg = pos + u_neg * gain
        else:
            t_pos = pos + u_pos * gain
            t_neg = neg + u_neg * gain
        apply_cmff = self._apply_cmff
        if apply_cmff is not None:
            t_pos, t_neg = apply_cmff(t_pos, t_neg)
            if self._cmff_buf is not None:
                self._cmff_buf.append(0.5 * (t_pos + t_neg))
        if self._cell_buf is not None:
            self._cell_buf.append(t_pos - t_neg)
        store = self._store
        new_pos, slew_p = store(pos, t_pos)
        new_neg, slew_n = store(neg, t_neg)
        if self._mm != 0.0:
            new_pos *= self._fp
            new_neg *= self._fn
        nz = self._noise[self._idx]
        self._idx += 1
        self.pos = new_pos + 0.5 * nz
        self.neg = new_neg - 0.5 * nz
        if slew_p or slew_n:
            self._slews += 1

    def finalize(self) -> None:
        cell = self._stage._cell
        cell._stored = DifferentialSample(self.pos, self.neg)
        cell._steps += self._idx
        cell._slew_events += self._slews
        if self._cell_buf is not None and self._cell_buf and cell._probe is not None:
            cell._probe.observe_array(np.array(self._cell_buf))
        cmff = self._stage.cmff
        if (
            self._cmff_buf is not None
            and self._cmff_buf
            and cmff is not None
            and cmff._probe is not None
        ):
            cmff._probe.observe_array(np.array(self._cmff_buf))


# ---------------------------------------------------------------------------
# Device runners


def _run_memory_cell(device: ClassABMemoryCell, data: np.ndarray) -> np.ndarray | None:
    if data.ndim != 1:
        return _note(device, "input is not 1-D")
    reason = _cell_reason(device)
    if reason is not None:
        return _note(device, reason)
    n = data.shape[0]
    config = device.config
    store = _store_half_fn(config)
    mm = config.half_gain_mismatch
    fp = 1.0 + 0.5 * mm
    fn = 1.0 - 0.5 * mm
    inverting = config.inverting
    noise: list[float] = device._noise.take(n).tolist()
    probe = device._probe
    probe_buf: list[float] | None = [] if probe is not None else None
    xs: list[float] = data.tolist()
    pos = device._stored.pos
    neg = device._stored.neg
    slews = 0
    out: list[float] = []
    append = out.append
    for i in range(n):
        half = 0.5 * xs[i]
        s_pos = 0.0 + half
        s_neg = 0.0 - half
        if probe_buf is not None:
            probe_buf.append(s_pos - s_neg)
        new_pos, slew_p = store(pos, s_pos)
        new_neg, slew_n = store(neg, s_neg)
        if mm != 0.0:
            new_pos *= fp
            new_neg *= fn
        nz = noise[i]
        if inverting:
            append((-pos) - (-neg))
        else:
            append(pos - neg)
        pos = new_pos + 0.5 * nz
        neg = new_neg - 0.5 * nz
        if slew_p or slew_n:
            slews += 1
    device._stored = DifferentialSample(pos, neg)
    device._steps += n
    device._slew_events += slews
    if probe is not None and probe_buf:
        probe.observe_array(np.array(probe_buf))
    return np.array(out)


def _run_delay_line(device: "DelayLine", data: np.ndarray) -> np.ndarray | None:
    if data.ndim != 1:
        return _note(device, "input is not 1-D")
    for cell in device.cells:
        reason = _cell_reason(cell)
        if reason is not None:
            return _note(device, reason)
    n = data.shape[0]
    cells = device.cells
    k = len(cells)
    stores = [_store_half_fn(c.config) for c in cells]
    mms = [c.config.half_gain_mismatch for c in cells]
    fps = [1.0 + 0.5 * m for m in mms]
    fns = [1.0 - 0.5 * m for m in mms]
    invs = [c.config.inverting for c in cells]
    noises: list[list[float]] = [c._noise.take(n).tolist() for c in cells]
    bufs: list[list[float] | None] = [
        [] if c._probe is not None else None for c in cells
    ]
    ps = [c._stored.pos for c in cells]
    ns = [c._stored.neg for c in cells]
    slews = [0] * k
    xs: list[float] = data.tolist()
    out: list[float] = []
    append = out.append
    indices = range(k)
    for i in range(n):
        half = 0.5 * xs[i]
        v_pos = 0.0 + half
        v_neg = 0.0 - half
        for j in indices:
            buf = bufs[j]
            if buf is not None:
                buf.append(v_pos - v_neg)
            held_p = ps[j]
            held_n = ns[j]
            store = stores[j]
            new_pos, slew_p = store(held_p, v_pos)
            new_neg, slew_n = store(held_n, v_neg)
            if mms[j] != 0.0:
                new_pos *= fps[j]
                new_neg *= fns[j]
            nz = noises[j][i]
            ps[j] = new_pos + 0.5 * nz
            ns[j] = new_neg - 0.5 * nz
            if slew_p or slew_n:
                slews[j] += 1
            if invs[j]:
                v_pos = -held_p
                v_neg = -held_n
            else:
                v_pos = held_p
                v_neg = held_n
        append(v_pos - v_neg)
    for j in indices:
        cell = cells[j]
        cell._stored = DifferentialSample(ps[j], ns[j])
        cell._steps += n
        cell._slew_events += slews[j]
        buf = bufs[j]
        if buf is not None and buf and cell._probe is not None:
            cell._probe.observe_array(np.array(buf))
    return np.array(out)


def _run_cascade(device: "BiquadCascade", data: np.ndarray) -> np.ndarray | None:
    if data.ndim != 1:
        return _note(device, "input is not 1-D")
    for section in device.sections:
        for stage in (section._int1, section._int2):
            reason = _stage_reason(stage)
            if reason is not None:
                return _note(device, reason)
    n = data.shape[0]
    sections = device.sections
    k1s = [s.k1 for s in sections]
    k2s = [s.k2 for s in sections]
    qs = [s.q for s in sections]
    firsts = [_FusedStage(s._int1, n, crossed=False) for s in sections]
    seconds = [_FusedStage(s._int2, n, crossed=False) for s in sections]
    xs: list[float] = data.tolist()
    out: list[float] = []
    append = out.append
    indices = range(len(sections))
    for i in range(n):
        signal = xs[i]
        for s in indices:
            first = firsts[s]
            second = seconds[s]
            w1 = first.pos - first.neg
            w2 = second.pos - second.neg
            u1 = k1s[s] * (signal - qs[s] * w1 - w2)
            u2 = k2s[s] * w1
            u1_half = 0.5 * u1
            first.step(0.0 + u1_half, 0.0 - u1_half)
            u2_half = 0.5 * u2
            second.step(0.0 + u2_half, 0.0 - u2_half)
            signal = w1
        append(signal)
    for s in indices:
        firsts[s].finalize()
        seconds[s].finalize()
    return np.array(out)


def _run_modulator1(device: "SIModulator1", data: np.ndarray) -> np.ndarray | None:
    integrator = device._integrator
    reason = _stage_reason(integrator) or _loop_reason(device.quantizer, device.dac)
    if reason is not None:
        return _note(device, reason)
    n = data.shape[0]
    a = device.a
    full_scale = device.full_scale
    quantizer = device.quantizer
    offset = quantizer.offset
    hyst = quantizer.hysteresis
    band = quantizer.metastability_band
    last = quantizer._last_decision
    meta: list[float] = quantizer._stream.take(n).tolist() if band > 0.0 else []
    drms, dith = _dither_draws(quantizer, n)
    dac = device.dac
    level_pos = dac._level_pos
    level_neg = dac._level_neg
    rms = dac.reference_noise_rms
    dac_noise: list[float] = dac._stream.take(n).tolist() if rms > 0.0 else []

    cell = integrator._cell
    store = _store_half_fn(cell.config)
    gain = integrator.gain
    mm = cell.config.half_gain_mismatch
    fp = 1.0 + 0.5 * mm
    fn = 1.0 - 0.5 * mm
    noise: list[float] = cell._noise.take(n).tolist()
    cmff = integrator.cmff
    apply_cmff = _cmff_fn(cmff) if cmff is not None else None
    cell_buf: list[float] | None = [] if cell._probe is not None else None
    cmff_buf: list[float] | None = (
        [] if cmff is not None and cmff._probe is not None else None
    )
    pos = cell._stored.pos
    neg = cell._stored.neg
    slews = 0
    xs: list[float] = data.tolist()
    out: list[float] = []
    append = out.append
    for i in range(n):
        base = pos - neg
        if drms > 0.0:
            base = base + dith[i]
        effective = base - (offset - hyst * last)
        if band > 0.0:
            draw = meta[i]
            if abs(effective) < band:
                decision = 1 if draw < 0.5 else -1
            else:
                decision = 1 if effective >= 0.0 else -1
        else:
            decision = 1 if effective >= 0.0 else -1
        last = decision
        feedback = level_pos if decision == 1 else level_neg
        if rms > 0.0:
            feedback += dac_noise[i]
        u_half = 0.5 * (a * (xs[i] - feedback))
        u_pos = 0.0 + u_half
        u_neg = 0.0 - u_half
        t_pos = pos + u_pos * gain
        t_neg = neg + u_neg * gain
        if apply_cmff is not None:
            t_pos, t_neg = apply_cmff(t_pos, t_neg)
            if cmff_buf is not None:
                cmff_buf.append(0.5 * (t_pos + t_neg))
        if cell_buf is not None:
            cell_buf.append(t_pos - t_neg)
        new_pos, slew_p = store(pos, t_pos)
        new_neg, slew_n = store(neg, t_neg)
        if mm != 0.0:
            new_pos *= fp
            new_neg *= fn
        nz = noise[i]
        pos = new_pos + 0.5 * nz
        neg = new_neg - 0.5 * nz
        if slew_p or slew_n:
            slews += 1
        append(decision * full_scale)
    cell._stored = DifferentialSample(pos, neg)
    cell._steps += n
    cell._slew_events += slews
    quantizer._last_decision = last
    if cell_buf is not None and cell_buf and cell._probe is not None:
        cell._probe.observe_array(np.array(cell_buf))
    if cmff_buf is not None and cmff_buf and cmff is not None and cmff._probe is not None:
        cmff._probe.observe_array(np.array(cmff_buf))
    return np.array(out)


def _run_modulator2(device: "SIModulator2", data: np.ndarray) -> np.ndarray | None:
    int1 = device._int1
    int2 = device._int2
    reason = (
        _stage_reason(int1)
        or _stage_reason(int2)
        or _loop_reason(device.quantizer, device.dac)
    )
    if reason is not None:
        return _note(device, reason)
    n = data.shape[0]
    a1 = device.a1
    a2 = device.a2
    b2 = device.b2
    full_scale = device.full_scale
    quantizer = device.quantizer
    offset = quantizer.offset
    hyst = quantizer.hysteresis
    band = quantizer.metastability_band
    last = quantizer._last_decision
    meta: list[float] = quantizer._stream.take(n).tolist() if band > 0.0 else []
    drms, dith = _dither_draws(quantizer, n)
    dac = device.dac
    level_pos = dac._level_pos
    level_neg = dac._level_neg
    rms = dac.reference_noise_rms
    dac_noise: list[float] = dac._stream.take(n).tolist() if rms > 0.0 else []

    cell1 = int1._cell
    cell2 = int2._cell
    store1 = _store_half_fn(cell1.config)
    store2 = _store_half_fn(cell2.config)
    g1 = int1.gain
    g2 = int2.gain
    mm1 = cell1.config.half_gain_mismatch
    f1p = 1.0 + 0.5 * mm1
    f1n = 1.0 - 0.5 * mm1
    mm2 = cell2.config.half_gain_mismatch
    f2p = 1.0 + 0.5 * mm2
    f2n = 1.0 - 0.5 * mm2
    noise1: list[float] = cell1._noise.take(n).tolist()
    noise2: list[float] = cell2._noise.take(n).tolist()
    cmff1 = int1.cmff
    cmff2 = int2.cmff
    apply1 = _cmff_fn(cmff1) if cmff1 is not None else None
    apply2 = _cmff_fn(cmff2) if cmff2 is not None else None
    cell1_buf: list[float] | None = [] if cell1._probe is not None else None
    cell2_buf: list[float] | None = [] if cell2._probe is not None else None
    cmff1_buf: list[float] | None = (
        [] if cmff1 is not None and cmff1._probe is not None else None
    )
    cmff2_buf: list[float] | None = (
        [] if cmff2 is not None and cmff2._probe is not None else None
    )
    p1 = cell1._stored.pos
    n1 = cell1._stored.neg
    p2 = cell2._stored.pos
    n2 = cell2._stored.neg
    slews1 = 0
    slews2 = 0
    xs: list[float] = data.tolist()
    out: list[float] = []
    append = out.append
    for i in range(n):
        base = p2 - n2
        if drms > 0.0:
            base = base + dith[i]
        effective = base - (offset - hyst * last)
        if band > 0.0:
            draw = meta[i]
            if abs(effective) < band:
                decision = 1 if draw < 0.5 else -1
            else:
                decision = 1 if effective >= 0.0 else -1
        else:
            decision = 1 if effective >= 0.0 else -1
        last = decision
        feedback = level_pos if decision == 1 else level_neg
        if rms > 0.0:
            feedback += dac_noise[i]
        fb_half = 0.5 * feedback
        fb_pos = 0.0 + fb_half
        fb_neg = 0.0 - fb_half
        x_half = 0.5 * xs[i]
        x_pos = 0.0 + x_half
        x_neg = 0.0 - x_half
        u1_pos = (x_pos - fb_pos) * a1
        u1_neg = (x_neg - fb_neg) * a1
        u2_pos = p1 * a2 - fb_pos * b2
        u2_neg = n1 * a2 - fb_neg * b2

        t_pos = p1 + u1_pos * g1
        t_neg = n1 + u1_neg * g1
        if apply1 is not None:
            t_pos, t_neg = apply1(t_pos, t_neg)
            if cmff1_buf is not None:
                cmff1_buf.append(0.5 * (t_pos + t_neg))
        if cell1_buf is not None:
            cell1_buf.append(t_pos - t_neg)
        new_pos, slew_p = store1(p1, t_pos)
        new_neg, slew_n = store1(n1, t_neg)
        if mm1 != 0.0:
            new_pos *= f1p
            new_neg *= f1n
        nz = noise1[i]
        p1 = new_pos + 0.5 * nz
        n1 = new_neg - 0.5 * nz
        if slew_p or slew_n:
            slews1 += 1

        t_pos = p2 + u2_pos * g2
        t_neg = n2 + u2_neg * g2
        if apply2 is not None:
            t_pos, t_neg = apply2(t_pos, t_neg)
            if cmff2_buf is not None:
                cmff2_buf.append(0.5 * (t_pos + t_neg))
        if cell2_buf is not None:
            cell2_buf.append(t_pos - t_neg)
        new_pos, slew_p = store2(p2, t_pos)
        new_neg, slew_n = store2(n2, t_neg)
        if mm2 != 0.0:
            new_pos *= f2p
            new_neg *= f2n
        nz = noise2[i]
        p2 = new_pos + 0.5 * nz
        n2 = new_neg - 0.5 * nz
        if slew_p or slew_n:
            slews2 += 1

        append(decision * full_scale)
    cell1._stored = DifferentialSample(p1, n1)
    cell1._steps += n
    cell1._slew_events += slews1
    cell2._stored = DifferentialSample(p2, n2)
    cell2._steps += n
    cell2._slew_events += slews2
    quantizer._last_decision = last
    for buf, probe_owner in (
        (cell1_buf, cell1._probe),
        (cell2_buf, cell2._probe),
        (cmff1_buf, cmff1._probe if cmff1 is not None else None),
        (cmff2_buf, cmff2._probe if cmff2 is not None else None),
    ):
        if buf is not None and buf and probe_owner is not None:
            probe_owner.observe_array(np.array(buf))
    return np.array(out)


def _run_chopper(
    device: "ChopperStabilizedSIModulator", data: np.ndarray
) -> np.ndarray | None:
    diff1 = device._diff1
    diff2 = device._diff2
    reason = (
        _stage_reason(diff1)
        or _stage_reason(diff2)
        or _loop_reason(device.quantizer, device.dac)
    )
    if reason is not None:
        return _note(device, reason)
    n = data.shape[0]
    a1 = device.a1
    a2 = device.a2
    b2 = device.b2
    neg_a1 = -a1
    full_scale = device.full_scale
    quantizer = device.quantizer
    offset = quantizer.offset
    hyst = quantizer.hysteresis
    band = quantizer.metastability_band
    last = quantizer._last_decision
    meta: list[float] = quantizer._stream.take(n).tolist() if band > 0.0 else []
    drms, dith = _dither_draws(quantizer, n)
    dac = device.dac
    level_pos = dac._level_pos
    level_neg = dac._level_neg
    rms = dac.reference_noise_rms
    dac_noise: list[float] = dac._stream.take(n).tolist() if rms > 0.0 else []

    cell1 = diff1._cell
    cell2 = diff2._cell
    store1 = _store_half_fn(cell1.config)
    store2 = _store_half_fn(cell2.config)
    g1 = diff1.gain
    g2 = diff2.gain
    mm1 = cell1.config.half_gain_mismatch
    f1p = 1.0 + 0.5 * mm1
    f1n = 1.0 - 0.5 * mm1
    mm2 = cell2.config.half_gain_mismatch
    f2p = 1.0 + 0.5 * mm2
    f2n = 1.0 - 0.5 * mm2
    noise1: list[float] = cell1._noise.take(n).tolist()
    noise2: list[float] = cell2._noise.take(n).tolist()
    cmff1 = diff1.cmff
    cmff2 = diff2.cmff
    apply1 = _cmff_fn(cmff1) if cmff1 is not None else None
    apply2 = _cmff_fn(cmff2) if cmff2 is not None else None
    cell1_buf: list[float] | None = [] if cell1._probe is not None else None
    cell2_buf: list[float] | None = [] if cell2._probe is not None else None
    cmff1_buf: list[float] | None = (
        [] if cmff1 is not None and cmff1._probe is not None else None
    )
    cmff2_buf: list[float] | None = (
        [] if cmff2 is not None and cmff2._probe is not None else None
    )
    p1 = cell1._stored.pos
    n1 = cell1._stored.neg
    p2 = cell2._stored.pos
    n2 = cell2._stored.neg
    slews1 = 0
    slews2 = 0
    xs: list[float] = data.tolist()
    out: list[float] = []
    append = out.append
    chop = 1.0
    for i in range(n):
        u = chop * xs[i]
        base = p2 - n2
        if drms > 0.0:
            base = base + dith[i]
        effective = base - (offset - hyst * last)
        if band > 0.0:
            draw = meta[i]
            if abs(effective) < band:
                decision = 1 if draw < 0.5 else -1
            else:
                decision = 1 if effective >= 0.0 else -1
        else:
            decision = 1 if effective >= 0.0 else -1
        last = decision
        feedback = level_pos if decision == 1 else level_neg
        if rms > 0.0:
            feedback += dac_noise[i]
        fb_half = 0.5 * feedback
        fb_pos = 0.0 + fb_half
        fb_neg = 0.0 - fb_half
        u_half = 0.5 * u
        u_pos = 0.0 + u_half
        u_neg = 0.0 - u_half
        s1_pos = (u_pos - fb_pos) * neg_a1
        s1_neg = (u_neg - fb_neg) * neg_a1
        s2_pos = fb_pos * b2 - p1 * a2
        s2_neg = fb_neg * b2 - n1 * a2

        # Differentiator stages feed the *crossed* state back.
        t_pos = n1 + s1_pos * g1
        t_neg = p1 + s1_neg * g1
        if apply1 is not None:
            t_pos, t_neg = apply1(t_pos, t_neg)
            if cmff1_buf is not None:
                cmff1_buf.append(0.5 * (t_pos + t_neg))
        if cell1_buf is not None:
            cell1_buf.append(t_pos - t_neg)
        new_pos, slew_p = store1(p1, t_pos)
        new_neg, slew_n = store1(n1, t_neg)
        if mm1 != 0.0:
            new_pos *= f1p
            new_neg *= f1n
        nz = noise1[i]
        p1 = new_pos + 0.5 * nz
        n1 = new_neg - 0.5 * nz
        if slew_p or slew_n:
            slews1 += 1

        t_pos = n2 + s2_pos * g2
        t_neg = p2 + s2_neg * g2
        if apply2 is not None:
            t_pos, t_neg = apply2(t_pos, t_neg)
            if cmff2_buf is not None:
                cmff2_buf.append(0.5 * (t_pos + t_neg))
        if cell2_buf is not None:
            cell2_buf.append(t_pos - t_neg)
        new_pos, slew_p = store2(p2, t_pos)
        new_neg, slew_n = store2(n2, t_neg)
        if mm2 != 0.0:
            new_pos *= f2p
            new_neg *= f2n
        nz = noise2[i]
        p2 = new_pos + 0.5 * nz
        n2 = new_neg - 0.5 * nz
        if slew_p or slew_n:
            slews2 += 1

        append(chop * (decision * full_scale))
        chop = -chop
    cell1._stored = DifferentialSample(p1, n1)
    cell1._steps += n
    cell1._slew_events += slews1
    cell2._stored = DifferentialSample(p2, n2)
    cell2._steps += n
    cell2._slew_events += slews2
    quantizer._last_decision = last
    for buf, probe_owner in (
        (cell1_buf, cell1._probe),
        (cell2_buf, cell2._probe),
        (cmff1_buf, cmff1._probe if cmff1 is not None else None),
        (cmff2_buf, cmff2._probe if cmff2 is not None else None),
    ):
        if buf is not None and buf and probe_owner is not None:
            probe_owner.observe_array(np.array(buf))
    return np.array(out)


# ---------------------------------------------------------------------------
# Dispatch


def _runners() -> dict[type, Callable[[Any, np.ndarray], "np.ndarray | None"]]:
    from repro.deltasigma.chopper_modulator import ChopperStabilizedSIModulator
    from repro.deltasigma.modulator1 import SIModulator1
    from repro.deltasigma.modulator2 import SIModulator2
    from repro.si.cascade import BiquadCascade
    from repro.si.delay_line import DelayLine

    return {
        ClassABMemoryCell: _run_memory_cell,
        DelayLine: _run_delay_line,
        BiquadCascade: _run_cascade,
        SIModulator1: _run_modulator1,
        SIModulator2: _run_modulator2,
        ChopperStabilizedSIModulator: _run_chopper,
    }


_RUNNER_TABLE: dict[type, Callable[[Any, np.ndarray], "np.ndarray | None"]] | None = None


def _fast_path(device: object, data: np.ndarray) -> np.ndarray | None:
    """Run the fused pure-Python fast path, or None with a noted refusal."""
    global _RUNNER_TABLE
    if _RUNNER_TABLE is None:
        _RUNNER_TABLE = _runners()
    runner = _RUNNER_TABLE.get(type(device))
    if runner is None:
        return _note(device, "no single-run fast path for this device type")
    return runner(device, data)


def _run_kernel_single(
    device: object, data: np.ndarray, noted: bool
) -> np.ndarray | None:
    from repro.runtime.kernels import KernelUnsupported, run_kernel

    try:
        return run_kernel(device, data)
    except KernelUnsupported as error:
        if noted:
            _note(device, str(error))
        return None


def _run_batch_single(device: object, data: np.ndarray) -> np.ndarray | None:
    """Run one device through the batch engine at ``n_lanes == 1``.

    The batch engine replays every random stream from its origin with a
    fresh :class:`~repro.noise.streams` instance, so this rung only
    applies to devices whose streams are still at the origin (no prior
    steps).  After the run the device's own streams are fast-forwarded
    and its cell/quantiser state written back, leaving the device in
    exactly the state the scalar loop would have produced.
    """
    from repro.runtime.batch import (
        BatchUnsupported,
        batch_runner_for,
        fast_forward_streams,
        iter_cells,
    )

    if data.ndim != 1:
        return _note(device, "input is not 1-D")
    n = int(data.shape[0])
    if n == 0:
        return _note(device, "batch single-run needs at least one sample")
    try:
        cells = list(iter_cells(device))
    except BatchUnsupported as error:
        return _note(device, str(error))
    if any(cell._steps != 0 for cell in cells):
        return _note(
            device,
            "batch single-run replays streams from origin and needs a "
            "fresh device",
        )
    # The device's own run() feeds its loop probes after we return, so
    # detach telemetry for the replay to avoid feeding them twice.
    session = getattr(device, "_telemetry", None)
    if session is not None:
        device._telemetry = None
    try:
        runner = batch_runner_for(device, 1, n)
        output = runner.run(data[np.newaxis, :])
    except BatchUnsupported as error:
        return _note(device, str(error))
    finally:
        if session is not None:
            device._telemetry = session
    bank = runner._bank
    for index, cell in enumerate(cells):
        cell._stored = DifferentialSample(
            float(bank.state[2 * index, 0]), float(bank.state[2 * index + 1, 0])
        )
        cell._steps += n
        cell._slew_events += int(bank.slew_counts[index, 0])
    fast_forward_streams(device, n)
    out = np.ascontiguousarray(output[0])
    quantizer = getattr(device, "quantizer", None)
    if isinstance(quantizer, CurrentQuantizer):
        # The bitstream is decision * full_scale (chopped back to the
        # input frame for the chopper), so the final decision is
        # recoverable from the last output sample's sign.
        from repro.deltasigma.chopper_modulator import (
            ChopperStabilizedSIModulator,
        )

        last_value = float(out[-1])
        if (
            isinstance(device, ChopperStabilizedSIModulator)
            and (n - 1) % 2 == 1
        ):
            last_value = -last_value
        quantizer._last_decision = 1 if last_value > 0.0 else -1
    return out


def run_single(device: object, data: np.ndarray) -> np.ndarray | None:
    """Run ``device`` over 1-D ``data`` on the selected engine.

    The engine comes from :func:`repro.runtime.engine.use_engine`:
    ``auto`` (the default) climbs the refusal ladder compiled kernel ->
    fused fast path -> scalar, while ``kernel``/``batch`` pin one
    lowered rung and ``scalar`` always declines.  Whatever rung runs is
    bit-identical to the device's scalar loop, with device state and
    random streams advanced identically.

    Returns the output array, or ``None`` when no lowered rung applies
    -- an exotic subclass, a non-1-D input, a pinned ``scalar`` engine,
    or an active :func:`force_scalar` block.  On ``None`` the caller
    must fall through to its scalar loop; the refusal reason (if not
    forced) is retrievable via :func:`consume_fallbacks`.  Each
    executed run is counted in the ``repro.engine.runs`` instrument
    under the rung that actually ran (forced-scalar parity runs are
    not recorded).
    """
    if _force_depth > 0:
        return None
    engine = current_engine()
    if engine == "scalar":
        record_engine_run("scalar", device)
        return None
    if engine == "kernel":
        result = _run_kernel_single(device, data, noted=True)
        record_engine_run("kernel" if result is not None else "scalar", device)
        return result
    if engine == "batch":
        result = _run_batch_single(device, data)
        record_engine_run("batch" if result is not None else "scalar", device)
        return result
    # The auto ladder: try the compiled kernel silently (its refusals
    # are expected for unsupported shapes), then the fused fast path
    # (whose refusal is the one worth surfacing), then scalar.
    result = _run_kernel_single(device, data, noted=False)
    if result is not None:
        record_engine_run("kernel", device)
        return result
    result = _fast_path(device, data)
    record_engine_run("single" if result is not None else "scalar", device)
    return result
