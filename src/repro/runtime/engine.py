"""Engine selection for single-device runs.

Every supported device executes bit-identically on four rungs:

* ``scalar`` -- the original per-sample Python loop (the parity
  oracle; what :func:`repro.runtime.single.force_scalar` runs);
* ``single`` -- the fused pure-Python fast path (an ``auto``-ladder
  rung, not directly selectable);
* ``batch`` -- the NumPy lane engine at ``n_lanes == 1``;
* ``kernel`` -- the compiled state-space kernel tier
  (:mod:`repro.runtime.kernels`), optionally numba-JIT.

:func:`use_engine` pins the rung for runs inside the block; the
default ``auto`` climbs the refusal ladder kernel -> fused fast path
-> scalar, falling down one rung per named refusal.  The selection is
process-local (sweep worker processes inherit it via the spec, not
this stack) and every executed run is counted in the
``repro.engine.runs`` instrument, labelled by engine and device type,
so manifests and bench telemetry can attribute timings to the rung
that actually ran.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager

__all__ = ["ENGINES", "current_engine", "use_engine", "record_engine_run"]

#: Selectable engines, in refusal-ladder order for ``auto``.
ENGINES: tuple[str, ...] = ("auto", "scalar", "batch", "kernel")

_stack: list[str] = ["auto"]


def current_engine() -> str:
    """Return the engine pinned by the innermost :func:`use_engine`."""
    return _stack[-1]


@contextmanager
def use_engine(engine: str) -> Iterator[None]:
    """Pin the execution engine for runs inside the block.

    ``scalar`` forces the per-sample oracle, ``batch``/``kernel`` pin
    one lowered rung (falling back to scalar with a recorded refusal
    when the device cannot lower), and ``auto`` restores the default
    ladder.  Nestable; the innermost selection wins.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        )
    _stack.append(engine)
    try:
        yield
    finally:
        _stack.pop()


def record_engine_run(engine: str, device: object, count: int = 1) -> None:
    """Count ``count`` executed runs on ``engine`` for telemetry attribution.

    A batch shard passes its lane count: each lane is one run of the
    scalar reference sweep, so the counter stays comparable across
    rungs.
    """
    # Imported lazily to keep the hot run path free of registry
    # machinery until a run actually completes.
    from repro.observability.instruments import get_registry

    get_registry().counter(
        "repro.engine.runs",
        help="single-device runs by executing engine tier",
    ).inc(float(count), engine=engine, device=type(device).__name__)
