"""Batch runners: scalar devices lowered onto the fused lane kernel.

A *batch runner* takes a freshly built scalar device (memory cell,
delay line, biquad cascade, or one of the three modulators), reads its
configuration, and simulates ``n_lanes`` independent runs side by
side: one :func:`repro.runtime.kernels.store_batch` call per clock
period stores every fused half-circuit of every lane at once, instead
of two Python calls per cell per lane.

Lane semantics reproduce the amplitude-sweep convention of
:func:`repro.analysis.sweeps.run_amplitude_sweep`: one device object
processes the lanes *sequentially*, with :meth:`reset` between lanes.
``reset`` zeroes the loop state but keeps the noise generators
running, so lane ``k`` consumes the noise-stream slice
``[k * total, (k + 1) * total)`` of each cell -- the batch runners
replicate exactly that slicing (``lane_offset`` shifts it for sharded
execution), which is what makes the batch output bit-identical to the
scalar loop.

Randomised loop elements (quantiser metastability, quantiser dither,
DAC reference noise) lower through the same pre-drawn stream slicing
as the cell noise, and attached :class:`~repro.telemetry.probes.SignalProbe`\\ s
are fed lane-major through ``observe_array`` after the run.  Only
configurations the kernel genuinely cannot reproduce -- unseeded
randomness, which a fresh batch stream cannot replay -- raise
:class:`BatchUnsupported` at lowering time; callers fall back to the
scalar loop (see :mod:`repro.runtime.sweeps`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.deltasigma.chopper_modulator import ChopperStabilizedSIModulator
from repro.deltasigma.dac import FeedbackDac
from repro.deltasigma.dither import DitheredQuantizer
from repro.deltasigma.modulator1 import SIModulator1
from repro.deltasigma.modulator2 import SIModulator2
from repro.deltasigma.quantizer import CurrentQuantizer
from repro.noise.streams import GaussianStream, UniformStream
from repro.runtime.kernels import CellKernel, store_batch
from repro.runtime.lowering import (
    UNSEEDED_DITHER_REFUSAL,
    UNSEEDED_METASTABILITY_REFUSAL,
    UNSEEDED_NOISE_REFUSAL,
    UNSEEDED_REFERENCE_REFUSAL,
    lowering_refusal,
    probe_refusal,
    subclass_refusal,
)
from repro.si.cascade import BiquadCascade
from repro.si.cmff import CommonModeFeedforward
from repro.si.delay_line import DelayLine
from repro.si.memory_cell import ClassABMemoryCell, MemoryCellConfig, _NoiseFeed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.probes import SignalProbe

__all__ = [
    "BatchUnsupported",
    "BatchClassABCell",
    "BatchDelayLine",
    "BatchBiquadCascade",
    "BatchModulator1",
    "BatchModulator2",
    "BatchChopper",
    "batch_runner_for",
    "fast_forward_streams",
    "iter_cells",
]


class BatchUnsupported(Exception):
    """The device configuration has no bit-exact batch lowering."""


def _check_lowerable(*components: object) -> None:
    """Refuse any component outside the declared lowering protocol.

    ``None`` entries (absent CMFF stages, detached probes) are
    skipped.  See :mod:`repro.runtime.lowering` for the protocol.
    """
    for component in components:
        if component is None:
            continue
        reason = lowering_refusal(component)
        if reason is not None:
            raise BatchUnsupported(reason)


def _check_stage(stage: object) -> None:
    """Refuse an integrator/differentiator wired outside the protocol."""
    cmff = stage.cmff  # type: ignore[attr-defined]
    mirrors: tuple[object, ...] = ()
    if cmff is not None:
        mirrors = (
            cmff.sense_pos,
            cmff.sense_neg,
            cmff.subtract_pos,
            cmff.subtract_neg,
        )
    _check_lowerable(stage, stage._cell, cmff, *mirrors)  # type: ignore[attr-defined]


def _check_loop_probes(modulator: object) -> None:
    """Refuse pre-registered loop probes the replay cannot feed."""
    session = getattr(modulator, "_telemetry", None)
    if session is None:
        return
    name = modulator._telemetry_name  # type: ignore[attr-defined]
    for suffix in ("input", "bitstream"):
        probe = session.probes.get(f"{name}.{suffix}")
        if probe is None:
            continue
        reason = probe_refusal(probe)
        if reason is not None:
            raise BatchUnsupported(reason)


def _halves(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split differential values into (pos, neg) half-circuit currents.

    Elementwise transliteration of
    :meth:`repro.si.differential.DifferentialSample.from_components`
    at zero common mode: ``pos = 0.0 + half``, ``neg = 0.0 - half``.
    """
    half = 0.5 * values
    return 0.0 + half, 0.0 - half


class _FusedCellBank:
    """State, noise and slew tallies of fused cells across lanes.

    The bank holds one ``(2 * n_cells, n_lanes)`` state array (rows
    alternate pos/neg per cell) and pre-draws each cell's noise stream
    for every lane, preserving the scalar chunk order through
    :meth:`_NoiseFeed.take`.
    """

    def __init__(
        self,
        configs: Sequence[MemoryCellConfig],
        n_lanes: int,
        n_steps: int,
        lane_offset: int = 0,
        probes: "Sequence[tuple[SignalProbe | None, SignalProbe | None]] | None" = None,
    ) -> None:
        if not configs:
            raise BatchUnsupported("no cells to fuse")
        for config in configs:
            if config.seed is None and config.thermal_noise_rms > 0.0:
                raise BatchUnsupported(UNSEEDED_NOISE_REFUSAL)
        kernels = [CellKernel.from_config(config) for config in configs]
        if any(kernel != kernels[0] for kernel in kernels[1:]):
            raise BatchUnsupported(
                "fused cells must share one electrical configuration"
            )
        self.kernel = kernels[0]
        self.n_cells = len(configs)
        self.n_lanes = n_lanes
        self.n_steps = n_steps
        self.state = np.zeros((2 * self.n_cells, n_lanes))
        self.slew_counts = np.zeros((self.n_cells, n_lanes), dtype=np.int64)
        self._step_index = 0

        # Per-cell noise, sliced lane-major exactly as a sequentially
        # reused scalar device would consume it; `lane_offset` skips
        # the lanes a preceding shard owns.
        noise = np.empty((self.n_cells, n_lanes, n_steps))
        for index, config in enumerate(configs):
            feed = _NoiseFeed(config)
            if lane_offset:
                feed.take(lane_offset * n_steps)
            noise[index] = feed.take(n_lanes * n_steps).reshape(n_lanes, n_steps)
        # Pre-assemble the per-step additive rows: +0.5*n on pos rows,
        # -(0.5*n) on neg rows (a - b == a + (-b) bitwise).
        half = 0.5 * noise
        self._noise_add = np.empty((n_steps, 2 * self.n_cells, n_lanes))
        self._noise_add[:, 0::2, :] = half.transpose(2, 0, 1)
        self._noise_add[:, 1::2, :] = -half.transpose(2, 0, 1)

        mismatch = self.kernel.mismatch
        self._mismatch_factors: np.ndarray | None = None
        if mismatch != 0.0:
            factors = np.empty((2 * self.n_cells, 1))
            factors[0::2] = 1.0 + 0.5 * mismatch
            factors[1::2] = 1.0 - 0.5 * mismatch
            self._mismatch_factors = factors

        # Lowered telemetry probes: the targets passed to store() are
        # exactly what the scalar loop observes (the cell probe sees the
        # post-CMFF target differential, the CMFF probe its common
        # mode), so buffer those per step and feed them lane-major into
        # observe_array at flush time.
        self._probe_specs: list[tuple[int, "SignalProbe", bool]] = []
        if probes is not None:
            for index, (cell_probe, cmff_probe) in enumerate(probes):
                if cell_probe is not None:
                    self._probe_specs.append((2 * index, cell_probe, False))
                if cmff_probe is not None:
                    self._probe_specs.append((2 * index, cmff_probe, True))
        for _row, spec_probe, _is_cm in self._probe_specs:
            reason = probe_refusal(spec_probe)
            if reason is not None:
                raise BatchUnsupported(reason)
        self._probe_bufs = [
            np.empty((n_steps, n_lanes)) for _ in self._probe_specs
        ]

    def store(self, targets: np.ndarray) -> None:
        """Store one period's targets for every fused half and lane."""
        for spec_index, (row, _probe, is_common_mode) in enumerate(
            self._probe_specs
        ):
            if is_common_mode:
                self._probe_bufs[spec_index][self._step_index] = 0.5 * (
                    targets[row] + targets[row + 1]
                )
            else:
                self._probe_bufs[spec_index][self._step_index] = (
                    targets[row] - targets[row + 1]
                )
        settled, slewed = store_batch(self.state, targets, self.kernel)
        if self._mismatch_factors is not None:
            settled = settled * self._mismatch_factors
        settled += self._noise_add[self._step_index]
        self.state = settled
        self.slew_counts += slewed[0::2] | slewed[1::2]
        self._step_index += 1

    def flush_probes(self) -> None:
        """Feed the buffered observations into the attached probes.

        Lane-major order -- lane 0's steps, then lane 1's -- matching a
        scalar device reused sequentially across lanes.  Counts,
        extrema and clip statistics are exact; mean and RMS agree with
        the elementwise path to summation-order rounding.
        """
        for (_row, probe, _is_cm), buffer in zip(
            self._probe_specs, self._probe_bufs
        ):
            probe.observe_array(np.ascontiguousarray(buffer.T).reshape(-1))


def _check_quantizer(quantizer: CurrentQuantizer) -> CurrentQuantizer:
    """Reject quantiser configs with no bit-exact lowering, eagerly.

    Called from runner constructors so an unsupported configuration
    refuses before any lane work starts, not mid-run.  A seeded
    metastability band lowers exactly (the scalar quantiser consumes
    one uniform draw per decision unconditionally, so the stream slices
    per lane), and so does seeded :class:`DitheredQuantizer` dither
    (one Gaussian draw per decision); only *unseeded* randomness has no
    replayable stream.
    """
    qtype = type(quantizer)
    if qtype is not CurrentQuantizer and qtype is not DitheredQuantizer:
        raise BatchUnsupported(
            lowering_refusal(quantizer)
            or subclass_refusal("quantizer", qtype.__name__)
        )
    if quantizer.metastability_band > 0.0 and quantizer.seed is None:
        raise BatchUnsupported(UNSEEDED_METASTABILITY_REFUSAL)
    if (
        qtype is DitheredQuantizer
        and quantizer.dither_rms > 0.0
        and quantizer.seed is None
    ):
        raise BatchUnsupported(UNSEEDED_DITHER_REFUSAL)
    return quantizer


class _BatchQuantizer:
    """Per-lane sign quantiser with offset, hysteresis and metastability."""

    def __init__(
        self,
        quantizer: CurrentQuantizer,
        n_lanes: int,
        n_steps: int,
        lane_offset: int = 0,
    ) -> None:
        _check_quantizer(quantizer)
        self.offset = quantizer.offset
        self.hysteresis = quantizer.hysteresis
        self.band = quantizer.metastability_band
        # The scalar quantiser resets _last_decision to integer 1; the
        # float lane vector produces identical arithmetic.
        self.last = np.ones(n_lanes)
        self._step = 0
        # One uniform draw per decision, sliced lane-major exactly like
        # the cell noise feeds (the scalar decide() draws even outside
        # the band, making the stream position a pure step count).
        self._draws: np.ndarray | None = None
        if self.band > 0.0:
            stream = UniformStream(quantizer.seed)
            if lane_offset:
                stream.skip(lane_offset * n_steps)
            self._draws = stream.take(n_lanes * n_steps).reshape(
                n_lanes, n_steps
            )
        # Dither replays through a fresh GaussianStream with the same
        # seed derivation as the scalar quantiser's constructor, sliced
        # lane-major like every other per-decision stream.
        self._dither_draws: np.ndarray | None = None
        if (
            type(quantizer) is DitheredQuantizer
            and quantizer.dither_rms > 0.0
        ):
            dither = GaussianStream(
                quantizer.dither_rms,
                None if quantizer.seed is None else quantizer.seed + 1,
            )
            if lane_offset:
                dither.skip(lane_offset * n_steps)
            self._dither_draws = dither.take(n_lanes * n_steps).reshape(
                n_lanes, n_steps
            )

    def decide(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return (decision array of +/-1.0, boolean positive mask)."""
        threshold = self.offset - self.hysteresis * self.last
        if self._dither_draws is not None:
            # Scalar association: (value + draw) - threshold.
            effective = (values + self._dither_draws[:, self._step]) - threshold
        else:
            effective = values - threshold
        mask = effective >= 0.0
        decisions = np.where(mask, 1.0, -1.0)
        if self._draws is not None:
            random_decisions = np.where(
                self._draws[:, self._step] < 0.5, 1.0, -1.0
            )
            decisions = np.where(
                np.abs(effective) < self.band, random_decisions, decisions
            )
            mask = decisions > 0.0
        self._step += 1
        self.last = decisions
        return decisions, mask


class _BatchDac:
    """Per-lane 1-bit DAC with optional sliced reference-noise stream."""

    def __init__(
        self,
        dac: FeedbackDac,
        n_lanes: int,
        n_steps: int,
        lane_offset: int = 0,
    ) -> None:
        _check_dac(dac)
        self.level_pos = dac._level_pos
        self.level_neg = dac._level_neg
        self._step = 0
        self._noise: np.ndarray | None = None
        if dac.reference_noise_rms > 0.0:
            stream = GaussianStream(dac.reference_noise_rms, dac.seed)
            if lane_offset:
                stream.skip(lane_offset * n_steps)
            self._noise = stream.take(n_lanes * n_steps).reshape(
                n_lanes, n_steps
            )

    def convert(self, mask: np.ndarray) -> np.ndarray:
        """Return per-lane feedback currents for a decision mask."""
        feedback = np.where(mask, self.level_pos, self.level_neg)
        if self._noise is not None:
            feedback = feedback + self._noise[:, self._step]
        self._step += 1
        return feedback


def _check_dac(dac: FeedbackDac) -> FeedbackDac:
    """Reject DAC configs with no bit-exact lowering, eagerly.

    Seeded reference noise lowers exactly (one Gaussian draw per
    conversion, sliced per lane); only unseeded noise refuses.
    """
    if type(dac) is not FeedbackDac:
        raise BatchUnsupported(
            lowering_refusal(dac)
            or subclass_refusal("DAC", type(dac).__name__)
        )
    if dac.reference_noise_rms > 0.0 and dac.seed is None:
        raise BatchUnsupported(UNSEEDED_REFERENCE_REFUSAL)
    return dac


class _CmffStage:
    """Precomputed common-mode feedforward wiring for one integrator."""

    def __init__(self, cmff: CommonModeFeedforward) -> None:
        # Mirror copies evaluate gain*i + g_out*dv with dv = 0.0; the
        # conductance terms are kept (they are +/-0.0) so the batch
        # addition sequence matches the scalar one bitwise.
        self.sense_pos_gain = cmff.sense_pos.gain
        self.sense_neg_gain = cmff.sense_neg.gain
        self.subtract_pos_gain = cmff.subtract_pos.gain
        self.subtract_neg_gain = cmff.subtract_neg.gain
        self.sense_pos_bias = cmff.sense_pos.output_conductance * 0.0
        self.sense_neg_bias = cmff.sense_neg.output_conductance * 0.0
        self.subtract_pos_bias = cmff.subtract_pos.output_conductance * 0.0
        self.subtract_neg_bias = cmff.subtract_neg.output_conductance * 0.0

    def apply(
        self, pos: np.ndarray, neg: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Subtract the sensed common mode from both halves."""
        i_cm = (self.sense_pos_gain * pos + self.sense_pos_bias) + (
            self.sense_neg_gain * neg + self.sense_neg_bias
        )
        out_pos = pos - (self.subtract_pos_gain * i_cm + self.subtract_pos_bias)
        out_neg = neg - (self.subtract_neg_gain * i_cm + self.subtract_neg_bias)
        return out_pos, out_neg


class _IntegratorStage:
    """Wiring of one SI integrator/differentiator around a bank row pair."""

    def __init__(
        self,
        bank: _FusedCellBank,
        row: int,
        gain: float,
        cmff: CommonModeFeedforward | None,
        crossed: bool,
    ) -> None:
        self.bank = bank
        self.row = row
        self.gain = gain
        self.cmff = _CmffStage(cmff) if cmff is not None else None
        self.crossed = crossed

    def state(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the (pos, neg) state rows as of the start of the period."""
        return self.bank.state[self.row], self.bank.state[self.row + 1]

    def targets(
        self, sample_pos: np.ndarray, sample_neg: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return the cell store targets for one input sample."""
        state_pos, state_neg = self.state()
        if self.crossed:
            state_pos, state_neg = state_neg, state_pos
        if self.gain != 1.0:
            # Scaling by exactly 1.0 is the identity in IEEE-754, so
            # the common unit-gain case skips the multiplies.
            sample_pos = sample_pos * self.gain
            sample_neg = sample_neg * self.gain
        target_pos = state_pos + sample_pos
        target_neg = state_neg + sample_neg
        if self.cmff is not None:
            target_pos, target_neg = self.cmff.apply(target_pos, target_neg)
        return target_pos, target_neg


def _feed_loop_probes(
    modulator: object, stimuli: np.ndarray, output: np.ndarray
) -> None:
    """Feed a modulator's top-level ``input``/``bitstream`` probes.

    The scalar ``run()`` telemetry block observes the stimulus and the
    reconstructed bit stream once per run; lane ``k`` of a batch is run
    ``k`` of the scalar sweep, so feeding whole lanes in lane order
    reproduces the scalar probe state exactly.
    """
    session = getattr(modulator, "_telemetry", None)
    if session is None:
        return
    name = modulator._telemetry_name  # type: ignore[attr-defined]
    full_scale = modulator.full_scale  # type: ignore[attr-defined]
    input_probe = session.probe(f"{name}.input", full_scale=full_scale)
    bitstream_probe = session.probe(f"{name}.bitstream", full_scale=full_scale)
    for lane in range(stimuli.shape[0]):
        input_probe.observe_array(stimuli[lane])
        bitstream_probe.observe_array(output[lane])


def _stage_probes(stage: object) -> "tuple[SignalProbe | None, SignalProbe | None]":
    """Return one integrator/differentiator's (cell, CMFF) probe pair."""
    cmff = stage.cmff  # type: ignore[attr-defined]
    return (
        stage._cell._probe,  # type: ignore[attr-defined]
        cmff._probe if cmff is not None else None,
    )


def _check_shape(stimuli: np.ndarray, n_lanes: int, n_steps: int) -> np.ndarray:
    data = np.asarray(stimuli, dtype=float)
    if data.shape != (n_lanes, n_steps):
        raise ValueError(
            f"stimuli must have shape ({n_lanes}, {n_steps}), got {data.shape}"
        )
    return data


def _transposed_halves(data: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return step-major contiguous (pos, neg) stimulus half matrices."""
    pos, neg = _halves(data)
    return np.ascontiguousarray(pos.T), np.ascontiguousarray(neg.T)


class BatchClassABCell:
    """Vectorized :meth:`ClassABMemoryCell.run` over a lane axis."""

    def __init__(
        self,
        cell: ClassABMemoryCell,
        n_lanes: int,
        n_steps: int,
        lane_offset: int = 0,
    ) -> None:
        _check_lowerable(cell)
        self.n_lanes = n_lanes
        self.n_steps = n_steps
        self.inverting = cell.config.inverting
        self._bank = _FusedCellBank(
            [cell.config],
            n_lanes,
            n_steps,
            lane_offset,
            probes=[(cell._probe, None)],
        )

    @property
    def slew_counts(self) -> np.ndarray:
        """Per-lane slew event counts (shape ``(n_lanes,)``)."""
        return self._bank.slew_counts[0]

    def run(self, stimuli: np.ndarray) -> np.ndarray:
        """Run every lane; returns the differential outputs (lanes, steps)."""
        data = _check_shape(stimuli, self.n_lanes, self.n_steps)
        pos_t, neg_t = _transposed_halves(data)
        output = np.empty((self.n_steps, self.n_lanes))
        bank = self._bank
        targets = np.empty((2, self.n_lanes))
        with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
            for n in range(self.n_steps):
                held_pos = bank.state[0]
                held_neg = bank.state[1]
                if self.inverting:
                    output[n] = np.negative(held_pos) - np.negative(held_neg)
                else:
                    output[n] = held_pos - held_neg
                targets[0] = pos_t[n]
                targets[1] = neg_t[n]
                bank.store(targets)
        bank.flush_probes()
        return np.ascontiguousarray(output.T)


class BatchDelayLine:
    """Vectorized :class:`DelayLine` run over a lane axis.

    Every cell's store target depends only on the *previous* period's
    states (each ``step`` returns the held sample from before the
    store), so the whole cascade fuses into a single kernel call per
    period.
    """

    def __init__(
        self,
        line: DelayLine,
        n_lanes: int,
        n_steps: int,
        lane_offset: int = 0,
    ) -> None:
        _check_lowerable(line, *line.cells)
        self.n_lanes = n_lanes
        self.n_steps = n_steps
        configs = [cell.config for cell in line.cells]
        self._inverting = [config.inverting for config in configs]
        self._bank = _FusedCellBank(
            configs,
            n_lanes,
            n_steps,
            lane_offset,
            probes=[(cell._probe, None) for cell in line.cells],
        )

    def run(self, stimuli: np.ndarray) -> np.ndarray:
        """Run every lane; returns the differential outputs (lanes, steps)."""
        data = _check_shape(stimuli, self.n_lanes, self.n_steps)
        pos_t, neg_t = _transposed_halves(data)
        output = np.empty((self.n_steps, self.n_lanes))
        bank = self._bank
        n_cells = bank.n_cells
        targets = np.empty((2 * n_cells, self.n_lanes))
        with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
            for n in range(self.n_steps):
                value_pos: np.ndarray = pos_t[n]
                value_neg: np.ndarray = neg_t[n]
                for cell in range(n_cells):
                    targets[2 * cell] = value_pos
                    targets[2 * cell + 1] = value_neg
                    held_pos = bank.state[2 * cell]
                    held_neg = bank.state[2 * cell + 1]
                    if self._inverting[cell]:
                        value_pos = np.negative(held_pos)
                        value_neg = np.negative(held_neg)
                    else:
                        value_pos = held_pos
                        value_neg = held_neg
                output[n] = value_pos - value_neg
                bank.store(targets)
        bank.flush_probes()
        return np.ascontiguousarray(output.T)


class BatchBiquadCascade:
    """Vectorized :class:`BiquadCascade` band-pass run over a lane axis."""

    def __init__(
        self,
        cascade: BiquadCascade,
        n_lanes: int,
        n_steps: int,
        lane_offset: int = 0,
    ) -> None:
        _check_lowerable(cascade)
        self.n_lanes = n_lanes
        self.n_steps = n_steps
        configs: list[MemoryCellConfig] = []
        self._coefficients: list[tuple[float, float, float]] = []
        stages: list[tuple[CommonModeFeedforward | None, float]] = []
        probes: list[tuple["SignalProbe | None", "SignalProbe | None"]] = []
        for section in cascade.sections:
            self._coefficients.append((section.k1, section.k2, section.q))
            for integrator in (section._int1, section._int2):
                _check_stage(integrator)
                configs.append(integrator._cell.config)
                stages.append((integrator.cmff, integrator.gain))
                probes.append(_stage_probes(integrator))
        self._bank = _FusedCellBank(
            configs, n_lanes, n_steps, lane_offset, probes=probes
        )
        self._stages = [
            _IntegratorStage(self._bank, 2 * index, gain, cmff, crossed=False)
            for index, (cmff, gain) in enumerate(stages)
        ]

    def run(self, stimuli: np.ndarray) -> np.ndarray:
        """Run every lane; returns the band-pass outputs (lanes, steps)."""
        data = _check_shape(stimuli, self.n_lanes, self.n_steps)
        stim_t = np.ascontiguousarray(data.T)
        output = np.empty((self.n_steps, self.n_lanes))
        bank = self._bank
        targets = np.empty((2 * bank.n_cells, self.n_lanes))
        with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
            for n in range(self.n_steps):
                signal: np.ndarray = stim_t[n]
                for index, (k1, k2, q) in enumerate(self._coefficients):
                    stage1 = self._stages[2 * index]
                    stage2 = self._stages[2 * index + 1]
                    w1_pos, w1_neg = stage1.state()
                    w2_pos, w2_neg = stage2.state()
                    w1 = w1_pos - w1_neg
                    w2 = w2_pos - w2_neg
                    u1 = k1 * (signal - q * w1 - w2)
                    u2 = k2 * w1
                    u1_pos, u1_neg = _halves(u1)
                    u2_pos, u2_neg = _halves(u2)
                    row = 4 * index
                    targets[row], targets[row + 1] = stage1.targets(u1_pos, u1_neg)
                    targets[row + 2], targets[row + 3] = stage2.targets(
                        u2_pos, u2_neg
                    )
                    signal = w1
                output[n] = signal
                bank.store(targets)
        bank.flush_probes()
        return np.ascontiguousarray(output.T)


class BatchModulator1:
    """Vectorized first-order loop (:class:`SIModulator1`) over lanes."""

    def __init__(
        self,
        modulator: SIModulator1,
        n_lanes: int,
        n_steps: int,
        lane_offset: int = 0,
    ) -> None:
        self.n_lanes = n_lanes
        self.n_steps = n_steps
        self.full_scale = modulator.full_scale
        self.a = modulator.a
        self._lane_offset = lane_offset
        self._modulator = modulator
        integrator = modulator._integrator
        _check_lowerable(modulator)
        _check_stage(integrator)
        _check_loop_probes(modulator)
        self._bank = _FusedCellBank(
            [integrator._cell.config],
            n_lanes,
            n_steps,
            lane_offset,
            probes=[_stage_probes(integrator)],
        )
        self._stage = _IntegratorStage(
            self._bank, 0, integrator.gain, integrator.cmff, crossed=False
        )
        self._quantizer_source = _check_quantizer(modulator.quantizer)
        self._dac_source = _check_dac(modulator.dac)

    def run(self, stimuli: np.ndarray) -> np.ndarray:
        """Run every lane; returns the bit-stream outputs (lanes, steps)."""
        data = _check_shape(stimuli, self.n_lanes, self.n_steps)
        stim_t = np.ascontiguousarray(data.T)
        quantizer = _BatchQuantizer(
            self._quantizer_source, self.n_lanes, self.n_steps, self._lane_offset
        )
        dac = _BatchDac(
            self._dac_source, self.n_lanes, self.n_steps, self._lane_offset
        )
        output = np.empty((self.n_steps, self.n_lanes))
        bank = self._bank
        targets = np.empty((2, self.n_lanes))
        a = self.a
        full_scale = self.full_scale
        with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
            for n in range(self.n_steps):
                w_pos, w_neg = self._stage.state()
                decisions, mask = quantizer.decide(w_pos - w_neg)
                feedback = dac.convert(mask)
                u_pos, u_neg = _halves(a * (stim_t[n] - feedback))
                targets[0], targets[1] = self._stage.targets(u_pos, u_neg)
                output[n] = decisions * full_scale
                bank.store(targets)
        bank.flush_probes()
        result = np.ascontiguousarray(output.T)
        _feed_loop_probes(self._modulator, data, result)
        return result


class BatchModulator2:
    """Vectorized second-order loop (:class:`SIModulator2`) over lanes.

    Both integrators step from pre-period states, so their four
    half-circuits fuse into one kernel call per period.
    """

    def __init__(
        self,
        modulator: SIModulator2,
        n_lanes: int,
        n_steps: int,
        lane_offset: int = 0,
    ) -> None:
        self.n_lanes = n_lanes
        self.n_steps = n_steps
        self.full_scale = modulator.full_scale
        self.a1 = modulator.a1
        self.a2 = modulator.a2
        self.b2 = modulator.b2
        self._lane_offset = lane_offset
        self._modulator = modulator
        int1 = modulator._int1
        int2 = modulator._int2
        _check_lowerable(modulator)
        _check_stage(int1)
        _check_stage(int2)
        _check_loop_probes(modulator)
        self._bank = _FusedCellBank(
            [int1._cell.config, int2._cell.config],
            n_lanes,
            n_steps,
            lane_offset,
            probes=[_stage_probes(int1), _stage_probes(int2)],
        )
        self._stage1 = _IntegratorStage(
            self._bank, 0, int1.gain, int1.cmff, crossed=False
        )
        self._stage2 = _IntegratorStage(
            self._bank, 2, int2.gain, int2.cmff, crossed=False
        )
        self._quantizer_source = _check_quantizer(modulator.quantizer)
        self._dac_source = _check_dac(modulator.dac)

    def run(self, stimuli: np.ndarray) -> np.ndarray:
        """Run every lane; returns the bit-stream outputs (lanes, steps)."""
        data = _check_shape(stimuli, self.n_lanes, self.n_steps)
        pos_t, neg_t = _transposed_halves(data)
        quantizer = _BatchQuantizer(
            self._quantizer_source, self.n_lanes, self.n_steps, self._lane_offset
        )
        dac = _BatchDac(
            self._dac_source, self.n_lanes, self.n_steps, self._lane_offset
        )
        output = np.empty((self.n_steps, self.n_lanes))
        bank = self._bank
        targets = np.empty((4, self.n_lanes))
        a1, a2, b2 = self.a1, self.a2, self.b2
        full_scale = self.full_scale
        with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
            for n in range(self.n_steps):
                w1_pos, w1_neg = self._stage1.state()
                w2_pos, w2_neg = self._stage2.state()
                decisions, mask = quantizer.decide(w2_pos - w2_neg)
                feedback = dac.convert(mask)
                fb_pos, fb_neg = _halves(feedback)
                u1_pos = (pos_t[n] - fb_pos) * a1
                u1_neg = (neg_t[n] - fb_neg) * a1
                u2_pos = w1_pos * a2 - fb_pos * b2
                u2_neg = w1_neg * a2 - fb_neg * b2
                targets[0], targets[1] = self._stage1.targets(u1_pos, u1_neg)
                targets[2], targets[3] = self._stage2.targets(u2_pos, u2_neg)
                output[n] = decisions * full_scale
                bank.store(targets)
        bank.flush_probes()
        result = np.ascontiguousarray(output.T)
        _feed_loop_probes(self._modulator, data, result)
        return result


class BatchChopper:
    """Vectorized chopper-stabilised loop over lanes."""

    def __init__(
        self,
        modulator: ChopperStabilizedSIModulator,
        n_lanes: int,
        n_steps: int,
        lane_offset: int = 0,
    ) -> None:
        self.n_lanes = n_lanes
        self.n_steps = n_steps
        self.full_scale = modulator.full_scale
        self.a1 = modulator.a1
        self.a2 = modulator.a2
        self.b2 = modulator.b2
        self._lane_offset = lane_offset
        self._modulator = modulator
        diff1 = modulator._diff1
        diff2 = modulator._diff2
        _check_lowerable(modulator)
        _check_stage(diff1)
        _check_stage(diff2)
        _check_loop_probes(modulator)
        self._bank = _FusedCellBank(
            [diff1._cell.config, diff2._cell.config],
            n_lanes,
            n_steps,
            lane_offset,
            probes=[_stage_probes(diff1), _stage_probes(diff2)],
        )
        self._stage1 = _IntegratorStage(
            self._bank, 0, diff1.gain, diff1.cmff, crossed=True
        )
        self._stage2 = _IntegratorStage(
            self._bank, 2, diff2.gain, diff2.cmff, crossed=True
        )
        self._quantizer_source = _check_quantizer(modulator.quantizer)
        self._dac_source = _check_dac(modulator.dac)

    def run(self, stimuli: np.ndarray) -> np.ndarray:
        """Run every lane; returns the post-chopper outputs (lanes, steps)."""
        data = _check_shape(stimuli, self.n_lanes, self.n_steps)
        # The input chopper multiplies sample n by (-1)^n; multiplying
        # by +/-1.0 is exact, so pre-chopping the whole matrix equals
        # the scalar per-sample product.
        signs = np.where(np.arange(self.n_steps) % 2 == 0, 1.0, -1.0)
        chopped = signs[np.newaxis, :] * data
        stim_t = np.ascontiguousarray(chopped.T)
        quantizer = _BatchQuantizer(
            self._quantizer_source, self.n_lanes, self.n_steps, self._lane_offset
        )
        dac = _BatchDac(
            self._dac_source, self.n_lanes, self.n_steps, self._lane_offset
        )
        raw = np.empty((self.n_steps, self.n_lanes))
        bank = self._bank
        targets = np.empty((4, self.n_lanes))
        a1, a2, b2 = self.a1, self.a2, self.b2
        neg_a1 = -a1
        full_scale = self.full_scale
        with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
            for n in range(self.n_steps):
                w1_pos, w1_neg = self._stage1.state()
                w2_pos, w2_neg = self._stage2.state()
                decisions, mask = quantizer.decide(w2_pos - w2_neg)
                feedback = dac.convert(mask)
                fb_pos, fb_neg = _halves(feedback)
                u_pos, u_neg = _halves(stim_t[n])
                s1_pos = (u_pos - fb_pos) * neg_a1
                s1_neg = (u_neg - fb_neg) * neg_a1
                s2_pos = fb_pos * b2 - w1_pos * a2
                s2_neg = fb_neg * b2 - w1_neg * a2
                targets[0], targets[1] = self._stage1.targets(s1_pos, s1_neg)
                targets[2], targets[3] = self._stage2.targets(s2_pos, s2_neg)
                raw[n] = decisions * full_scale
                bank.store(targets)
        bank.flush_probes()
        # Output chopper: again an exact +/-1.0 product per sample.
        output = signs[:, np.newaxis] * raw
        result = np.ascontiguousarray(output.T)
        _feed_loop_probes(self._modulator, data, result)
        return result


def iter_cells(device: object) -> list[ClassABMemoryCell]:
    """Return the memory cells of a supported device, in noise order.

    Used by the scalar fallback path to fast-forward noise streams for
    sharded lanes; the order matches each device's construction order.

    Raises
    ------
    BatchUnsupported
        If the device type is not recognised.
    """
    if isinstance(device, ClassABMemoryCell):
        return [device]
    if isinstance(device, DelayLine):
        return list(device.cells)
    if isinstance(device, BiquadCascade):
        return [
            integrator._cell
            for section in device.sections
            for integrator in (section._int1, section._int2)
        ]
    if isinstance(device, SIModulator1):
        return [device._integrator._cell]
    if isinstance(device, SIModulator2):
        return [device._int1._cell, device._int2._cell]
    if isinstance(device, ChopperStabilizedSIModulator):
        return [device._diff1._cell, device._diff2._cell]
    raise BatchUnsupported(f"no batch lowering for {type(device).__name__}")


def _device_streams(device: object) -> list[object]:
    """Return every live random stream a device run consumes, in order.

    Cell noise feeds first (construction order), then the quantiser
    metastability stream and the DAC reference-noise stream when those
    draws are active.
    """
    streams: list[object] = [cell._noise for cell in iter_cells(device)]
    quantizer = getattr(device, "quantizer", None)
    if (
        isinstance(quantizer, CurrentQuantizer)
        and quantizer.metastability_band > 0.0
    ):
        streams.append(quantizer._stream)
    if (
        isinstance(quantizer, DitheredQuantizer)
        and quantizer.dither_rms > 0.0
    ):
        streams.append(quantizer._dither)
    dac = getattr(device, "dac", None)
    if isinstance(dac, FeedbackDac) and dac.reference_noise_rms > 0.0:
        streams.append(dac._stream)
    return streams


def fast_forward_streams(device: object, count: int) -> None:
    """Advance every random stream of ``device`` by ``count`` draws.

    Used by the scalar fallback of sharded sweeps: a shard at
    ``lane_offset`` skips ``lane_offset * total_samples`` draws of each
    stream (cell noise, quantiser metastability, DAC reference noise)
    so its lanes consume the same slices a single sequential device
    would.
    """
    if count <= 0:
        return
    for stream in _device_streams(device):
        stream.take(count)  # type: ignore[attr-defined]


def batch_runner_for(
    device: object, n_lanes: int, n_steps: int, lane_offset: int = 0
) -> (
    "BatchClassABCell | BatchDelayLine | BatchBiquadCascade"
    " | BatchModulator1 | BatchModulator2 | BatchChopper"
):
    """Lower a freshly built scalar device onto its batch runner.

    Raises
    ------
    BatchUnsupported
        If the device type or configuration has no bit-exact lowering.
    """
    if n_lanes < 1 or n_steps < 1:
        raise ValueError(
            f"n_lanes and n_steps must be >= 1, got {n_lanes!r}, {n_steps!r}"
        )
    try:
        reason = lowering_refusal(device)
        if reason is not None:
            raise BatchUnsupported(reason)
        if isinstance(device, ClassABMemoryCell):
            return BatchClassABCell(device, n_lanes, n_steps, lane_offset)
        if isinstance(device, DelayLine):
            return BatchDelayLine(device, n_lanes, n_steps, lane_offset)
        if isinstance(device, BiquadCascade):
            return BatchBiquadCascade(device, n_lanes, n_steps, lane_offset)
        if isinstance(device, SIModulator1):
            return BatchModulator1(device, n_lanes, n_steps, lane_offset)
        if isinstance(device, SIModulator2):
            return BatchModulator2(device, n_lanes, n_steps, lane_offset)
        if isinstance(device, ChopperStabilizedSIModulator):
            return BatchChopper(device, n_lanes, n_steps, lane_offset)
        raise BatchUnsupported(f"no batch lowering for {type(device).__name__}")
    except BatchUnsupported:
        # Imported lazily: this module sits below the observability
        # layer in the import graph and only pays for it on refusal.
        from repro.observability.instruments import get_registry

        get_registry().counter(
            "repro.batch.refusals",
            help="batch lowerings refused (scalar fallback taken)",
        ).inc(device=type(device).__name__)
        raise
