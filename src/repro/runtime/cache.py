"""Keyed on-disk result cache for sweep and report runs.

A cache entry is addressed by the SHA-256 of a canonical-JSON key
describing everything that determines the result (design name, sample
counts, degradation knobs, engine version).  Payloads are float64
arrays stored with ``np.savez`` next to a small JSON meta file; reads
reconstruct them bit for bit, which is what lets ``repro report`` and
``repro compare`` skip recomputation without perturbing manifests.

Entries are written atomically (per-process-unique temp file +
``os.replace``) so an interrupted run never leaves a half-written
entry and two concurrent writers of the same entry never interleave
into each other's temp files, and any unreadable or mismatched entry
is treated as a miss and overwritten on the next store.

Every lookup and store is accounted in the process-wide instrument
registry (:mod:`repro.observability.instruments`): ``repro.cache.hits``
/ ``misses`` / ``corruption`` / ``evictions`` counters (labeled by the
key's ``kind``), a ``repro.cache.bytes_stored`` byte counter and a
``repro.cache.lookup_seconds`` latency histogram.  Worker processes
route these through the executor's snapshot/merge path, so a sharded
sweep's counts sum correctly in the parent -- see
``docs/OBSERVABILITY.md``.  The per-instance ``hits`` / ``misses`` /
``evictions`` attributes remain for single-process callers.

An optional ``max_bytes`` budget turns the cache into a bounded LRU:
after each store, the oldest entries (by payload mtime) are evicted
until the directory fits the budget.  Hits re-touch the payload's
mtime, so eviction order is least recently *used*, not least recently
written -- the behaviour the simulation service relies on when the
cache serves as its shared artifact store (``repro serve
--max-bytes``): a figure every client keeps requesting stays resident
while one-off runs age out.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import uuid
from pathlib import Path
from typing import Any

import numpy as np

from repro import __version__
from repro.errors import ConfigurationError
from repro.observability.instruments import get_registry

__all__ = ["ResultCache"]

#: Bump when the cached payload layout or the batch engine's numeric
#: contract changes; stale-version entries then miss instead of lying.
CACHE_SCHEMA_VERSION = 1

_ENV_DIR = "REPRO_CACHE_DIR"
_DEFAULT_DIRNAME = ".repro-cache"

#: Lookup-latency buckets (seconds): a hit is a JSON read plus an npz
#: load, so the interesting range is tens of microseconds to ~1 s.
_LOOKUP_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    1.0,
)


def _canonical_key(key: dict[str, Any]) -> str:
    """Return the canonical JSON encoding used for hashing."""
    return json.dumps(key, sort_keys=True, separators=(",", ":"))


def _key_kind(key: dict[str, Any]) -> str:
    """Return the key's ``kind`` field, the cache counters' label."""
    return str(key.get("kind", "unknown"))


class ResultCache:
    """Content-addressed store of named float64 arrays.

    Parameters
    ----------
    directory:
        Cache root.  Defaults to ``$REPRO_CACHE_DIR`` when set, else
        ``.repro-cache`` under the current working directory.
    max_bytes:
        Optional size budget.  After each store the oldest entries (by
        payload mtime, which hits re-touch -- true least-recently-used
        order) are evicted until the cache fits, each eviction
        incrementing the ``repro.cache.evictions`` counter.  ``None``
        (the default) never evicts.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str] | None = None,
        *,
        max_bytes: int | None = None,
    ) -> None:
        if directory is None:
            directory = os.environ.get(_ENV_DIR) or _DEFAULT_DIRNAME
        if max_bytes is not None and max_bytes < 1:
            raise ConfigurationError(
                f"max_bytes must be >= 1 when set, got {max_bytes!r}"
            )
        self.directory = Path(directory)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key_digest(key: dict[str, Any]) -> str:
        """Return the hex digest addressing ``key``.

        The package version is part of the digest: any release may
        change numeric behaviour, and a stale entry that silently
        outlives an upgrade would defeat the bit-exact contract.
        """
        payload = _canonical_key(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "version": __version__,
                "key": key,
            }
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _paths(self, digest: str) -> tuple[Path, Path]:
        return (
            self.directory / f"{digest}.npz",
            self.directory / f"{digest}.json",
        )

    def load(self, key: dict[str, Any]) -> dict[str, np.ndarray] | None:
        """Return the cached arrays for ``key``, or ``None`` on a miss.

        Corrupt, partial or stale entries are misses, never errors;
        they additionally increment ``repro.cache.corruption`` so a
        deployment can tell cold lookups from damaged entries.
        """
        started = time.perf_counter()
        digest = self.key_digest(key)
        data_path, meta_path = self._paths(digest)
        kind = _key_kind(key)
        registry = get_registry()
        arrays: dict[str, np.ndarray] | None = None
        corrupt = False
        try:
            meta_text = meta_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            meta_text = None
        except OSError:
            meta_text = None
            corrupt = True
        if meta_text is not None:
            # The meta file exists: from here on, any failure means a
            # damaged or stale entry, not a cold lookup.
            try:
                meta = json.loads(meta_text)
                if meta.get("schema") != CACHE_SCHEMA_VERSION:
                    raise ValueError("schema mismatch")
                if meta.get("key") != _canonical_key(key):
                    raise ValueError("key collision")
                with np.load(data_path) as archive:
                    arrays = {
                        name: archive[name].copy() for name in archive.files
                    }
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                arrays = None
                corrupt = True
        registry.histogram(
            "repro.cache.lookup_seconds",
            buckets=_LOOKUP_BUCKETS,
            help="cache lookup latency (hit or miss)",
        ).observe(time.perf_counter() - started, kind=kind)
        if arrays is not None:
            self.hits += 1
            registry.counter(
                "repro.cache.hits", help="cache lookups served from disk"
            ).inc(kind=kind)
            # Touch the payload so the max_bytes eviction order is true
            # LRU (least recently *used*): a hot entry served to many
            # service requests must outlive a cold one stored later.
            try:
                os.utime(data_path)
            except OSError:
                pass
            return arrays
        self.misses += 1
        registry.counter(
            "repro.cache.misses", help="cache lookups that missed"
        ).inc(kind=kind)
        if corrupt:
            registry.counter(
                "repro.cache.corruption",
                help="damaged or stale entries treated as misses",
            ).inc(kind=kind)
        return None

    def store(self, key: dict[str, Any], arrays: dict[str, np.ndarray]) -> None:
        """Persist ``arrays`` under ``key`` atomically.

        Accounts the written bytes in ``repro.cache.bytes_stored`` and
        applies the ``max_bytes`` eviction budget afterwards.
        """
        digest = self.key_digest(key)
        data_path, meta_path = self._paths(digest)
        self.directory.mkdir(parents=True, exist_ok=True)
        # Temp names carry the pid and a uuid: concurrent writers of
        # the same entry (sharded sweeps, parallel CI jobs) each write
        # their own file, and whoever replaces last wins whole.
        unique = f"{os.getpid()}-{uuid.uuid4().hex}"
        tmp_data = data_path.with_suffix(f".{unique}.npz.tmp")
        try:
            with open(tmp_data, "wb") as handle:
                np.savez(
                    handle, **{k: np.asarray(v) for k, v in arrays.items()}
                )
            os.replace(tmp_data, data_path)
        finally:
            tmp_data.unlink(missing_ok=True)
        meta = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": _canonical_key(key),
        }
        tmp_meta = meta_path.with_suffix(f".{unique}.json.tmp")
        try:
            tmp_meta.write_text(
                json.dumps(meta, sort_keys=True, indent=2) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp_meta, meta_path)
        finally:
            tmp_meta.unlink(missing_ok=True)
        stored = 0
        for path in (data_path, meta_path):
            try:
                stored += path.stat().st_size
            except OSError:
                continue
        get_registry().counter(
            "repro.cache.bytes_stored", help="payload bytes written to the cache"
        ).inc(stored, kind=_key_kind(key))
        self._evict_to_limit()

    def size_bytes(self) -> int:
        """Return the total size of every entry file in the cache."""
        total = 0
        if not self.directory.is_dir():
            return total
        for path in self.directory.iterdir():
            if path.suffix in {".npz", ".json"}:
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
        return total

    def _evict_to_limit(self) -> None:
        """Evict oldest entries (by payload mtime) past ``max_bytes``."""
        if self.max_bytes is None:
            return
        entries: list[tuple[float, int, Path, Path]] = []
        total = 0
        if not self.directory.is_dir():
            return
        for data_path in self.directory.glob("*.npz"):
            meta_path = data_path.with_suffix(".json")
            try:
                stat = data_path.stat()
            except OSError:
                continue
            size = stat.st_size
            try:
                size += meta_path.stat().st_size
            except OSError:
                pass
            entries.append((stat.st_mtime, size, data_path, meta_path))
            total += size
        if total <= self.max_bytes:
            return
        registry = get_registry()
        for _, size, data_path, meta_path in sorted(entries):
            if total <= self.max_bytes:
                break
            for path in (data_path, meta_path):
                try:
                    path.unlink()
                except OSError:
                    continue
            total -= size
            self.evictions += 1
            registry.counter(
                "repro.cache.evictions",
                help="entries removed by the max-bytes LRU budget",
            ).inc()

    def clear(self) -> int:
        """Delete every cache entry; return the number of files removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.iterdir():
            if path.suffix in {".npz", ".json"} or path.name.endswith(".tmp"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        return removed
