"""Keyed on-disk result cache for sweep and report runs.

A cache entry is addressed by the SHA-256 of a canonical-JSON key
describing everything that determines the result (design name, sample
counts, degradation knobs, engine version).  Payloads are float64
arrays stored with ``np.savez`` next to a small JSON meta file; reads
reconstruct them bit for bit, which is what lets ``repro report`` and
``repro compare`` skip recomputation without perturbing manifests.

Entries are written atomically (per-process-unique temp file +
``os.replace``) so an interrupted run never leaves a half-written
entry and two concurrent writers of the same entry never interleave
into each other's temp files, and any unreadable or mismatched entry
is treated as a miss and overwritten on the next store.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from pathlib import Path
from typing import Any

import numpy as np

from repro import __version__

__all__ = ["ResultCache"]

#: Bump when the cached payload layout or the batch engine's numeric
#: contract changes; stale-version entries then miss instead of lying.
CACHE_SCHEMA_VERSION = 1

_ENV_DIR = "REPRO_CACHE_DIR"
_DEFAULT_DIRNAME = ".repro-cache"


def _canonical_key(key: dict[str, Any]) -> str:
    """Return the canonical JSON encoding used for hashing."""
    return json.dumps(key, sort_keys=True, separators=(",", ":"))


class ResultCache:
    """Content-addressed store of named float64 arrays.

    Parameters
    ----------
    directory:
        Cache root.  Defaults to ``$REPRO_CACHE_DIR`` when set, else
        ``.repro-cache`` under the current working directory.
    """

    def __init__(self, directory: str | os.PathLike[str] | None = None) -> None:
        if directory is None:
            directory = os.environ.get(_ENV_DIR) or _DEFAULT_DIRNAME
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_digest(key: dict[str, Any]) -> str:
        """Return the hex digest addressing ``key``.

        The package version is part of the digest: any release may
        change numeric behaviour, and a stale entry that silently
        outlives an upgrade would defeat the bit-exact contract.
        """
        payload = _canonical_key(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "version": __version__,
                "key": key,
            }
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _paths(self, digest: str) -> tuple[Path, Path]:
        return (
            self.directory / f"{digest}.npz",
            self.directory / f"{digest}.json",
        )

    def load(self, key: dict[str, Any]) -> dict[str, np.ndarray] | None:
        """Return the cached arrays for ``key``, or ``None`` on a miss.

        Corrupt, partial or stale entries are misses, never errors.
        """
        digest = self.key_digest(key)
        data_path, meta_path = self._paths(digest)
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            if meta.get("schema") != CACHE_SCHEMA_VERSION:
                raise ValueError("schema mismatch")
            if meta.get("key") != _canonical_key(key):
                raise ValueError("key collision")
            with np.load(data_path) as archive:
                arrays = {name: archive[name].copy() for name in archive.files}
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return arrays

    def store(self, key: dict[str, Any], arrays: dict[str, np.ndarray]) -> None:
        """Persist ``arrays`` under ``key`` atomically."""
        digest = self.key_digest(key)
        data_path, meta_path = self._paths(digest)
        self.directory.mkdir(parents=True, exist_ok=True)
        # Temp names carry the pid and a uuid: concurrent writers of
        # the same entry (sharded sweeps, parallel CI jobs) each write
        # their own file, and whoever replaces last wins whole.
        unique = f"{os.getpid()}-{uuid.uuid4().hex}"
        tmp_data = data_path.with_suffix(f".{unique}.npz.tmp")
        try:
            with open(tmp_data, "wb") as handle:
                np.savez(
                    handle, **{k: np.asarray(v) for k, v in arrays.items()}
                )
            os.replace(tmp_data, data_path)
        finally:
            tmp_data.unlink(missing_ok=True)
        meta = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": _canonical_key(key),
        }
        tmp_meta = meta_path.with_suffix(f".{unique}.json.tmp")
        try:
            tmp_meta.write_text(
                json.dumps(meta, sort_keys=True, indent=2) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp_meta, meta_path)
        finally:
            tmp_meta.unlink(missing_ok=True)

    def clear(self) -> int:
        """Delete every cache entry; return the number of files removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.iterdir():
            if path.suffix in {".npz", ".json"} or path.name.endswith(".tmp"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        return removed
