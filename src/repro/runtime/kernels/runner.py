"""Execute device runs through the compiled kernel tier.

The runner is the glue between a *live* device instance and its
compiled :class:`~repro.runtime.kernels.codegen.KernelProgram`:

1. lower the device to a :class:`KernelSpec` (cached compile),
2. drain every random stream the scalar loop would touch -- the cell
   noise feeds, the quantiser metastability/dither streams, the DAC
   reference-noise stream -- by exactly ``n`` draws from the device's
   **own** stream objects (chunked ``take`` is bit-identical to ``n``
   scalar ``next()`` calls, and independent streams make draw order
   across streams irrelevant),
3. prescale the inputs exactly as the scalar loop's prologue does
   (``0.0 + 0.5 * x`` half-splitting, chopper ``+/-1`` sign products --
   both elementwise-identical in NumPy and scalar code),
4. run the fused loop (numba-JIT when the bitwise probe passed, plain
   Python otherwise),
5. write state back (stored samples, step/slew counters, quantiser
   hysteresis) and flush probe buffers through ``observe_array``,

so a kernel run is indistinguishable -- output bytes, device state,
stream positions, probe statistics -- from the same run under
:func:`repro.runtime.single.force_scalar`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.deltasigma.chopper_modulator import ChopperStabilizedSIModulator
from repro.deltasigma.modulator1 import SIModulator1
from repro.deltasigma.modulator2 import SIModulator2
from repro.runtime.kernels.codegen import KernelProgram, compile_spec
from repro.runtime.kernels.jit import jit_compile, jit_status
from repro.runtime.kernels.spec import KernelUnsupported, build_spec
from repro.si.cascade import BiquadCascade
from repro.si.delay_line import DelayLine
from repro.si.differential import DifferentialSample
from repro.si.memory_cell import ClassABMemoryCell

__all__ = ["kernel_refusal", "run_kernel"]


def _device_parts(
    device: object,
) -> tuple[list[tuple[Any, Any]], Any, Any]:
    """Return ``(stages, quantizer, dac)`` in kernel emission order.

    ``stages`` is a list of ``(cell, cmff-or-None)`` pairs mirroring
    :func:`build_spec`'s stage order exactly, so probe slots and state
    writeback line up with the generated argument layout.
    """
    if isinstance(device, ClassABMemoryCell):
        return [(device, None)], None, None
    if isinstance(device, DelayLine):
        return [(cell, None) for cell in device.cells], None, None
    if isinstance(device, BiquadCascade):
        stages = []
        for section in device.sections:
            for stage in (section._int1, section._int2):
                stages.append((stage._cell, stage.cmff))
        return stages, None, None
    if isinstance(device, SIModulator1):
        integ = device._integrator
        return [(integ._cell, integ.cmff)], device.quantizer, device.dac
    if isinstance(device, SIModulator2):
        return (
            [
                (device._int1._cell, device._int1.cmff),
                (device._int2._cell, device._int2.cmff),
            ],
            device.quantizer,
            device.dac,
        )
    if isinstance(device, ChopperStabilizedSIModulator):
        return (
            [
                (device._diff1._cell, device._diff1.cmff),
                (device._diff2._cell, device._diff2.cmff),
            ],
            device.quantizer,
            device.dac,
        )
    raise KernelUnsupported(
        f"no kernel lowering for {type(device).__name__}"
    )


def kernel_refusal(device: object) -> str | None:
    """Predict why ``device`` would refuse the kernel tier (None = runs)."""
    try:
        build_spec(device)
    except KernelUnsupported as error:
        return str(error)
    return None


def _half_split(data: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Elementwise twin of the scalar ``0.0 +/- 0.5 * x`` prologue."""
    half = 0.5 * data
    return 0.0 + half, 0.0 - half


def _chopper_signs(n: int) -> np.ndarray:
    signs = np.ones(n)
    signs[1::2] = -1.0
    return signs


def _ensure_jit(program: KernelProgram) -> None:
    if program.jit_state != "untried":
        return
    compiled = jit_compile(program.fn)
    if compiled is None:
        program.jit_fn = None
        program.jit_state = jit_status()
        if program.jit_state == "active":  # factory ok, this fn refused
            program.jit_state = "jit compile refused for this kernel"
    else:
        program.jit_fn = compiled
        program.jit_state = "active"


def run_kernel(device: object, data: np.ndarray) -> np.ndarray:
    """Run ``device`` over 1-D ``data`` on its compiled kernel.

    Byte-identical to the same run under ``force_scalar()`` on the same
    device instance: outputs, device state, stream positions, and probe
    statistics all match.  Raises :class:`KernelUnsupported` when the
    device has no kernel lowering or ``data`` is not 1-D.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 1:
        raise KernelUnsupported("input is not 1-D")
    spec = build_spec(device)
    program = compile_spec(spec)
    stages, quantizer, dac = _device_parts(device)
    n = data.shape[0]
    loop = spec.loop

    arrays: dict[str, np.ndarray] = {}
    scalars: dict[str, Any] = {"n_steps": n}

    signs: np.ndarray | None = None
    if spec.kind in ("cell", "delay", "mod2"):
        arrays["xa"], arrays["xb"] = _half_split(data)
    elif spec.kind == "chopper":
        signs = _chopper_signs(n)
        arrays["xa"], arrays["xb"] = _half_split(signs * data)
    else:
        arrays["xs"] = data

    out = np.zeros(n)
    arrays["out"] = out

    for j, (cell, _) in enumerate(stages):
        arrays[f"hn{j}"] = 0.5 * cell._noise.take(n)
    if loop is not None:
        assert quantizer is not None and dac is not None
        if loop.band > 0.0:
            arrays["meta"] = np.asarray(quantizer._stream.take(n))
        if loop.dither_rms > 0.0:
            arrays["dith"] = np.asarray(quantizer._dither.take(n))
        if loop.dac_rms > 0.0:
            arrays["dacn"] = np.asarray(dac._stream.take(n))

    probe_owners: list[Any] = []
    for slot, (stage_index, tag) in enumerate(program.probe_slots):
        cell, cmff = stages[stage_index]
        owner = cmff._probe if tag == "cmff" else cell._probe
        probe_owners.append(owner)
        arrays[f"pb{slot}"] = np.zeros(n)

    for j, (cell, _) in enumerate(stages):
        scalars[f"p{j}"] = cell._stored.pos
        scalars[f"m{j}"] = cell._stored.neg
    if loop is not None:
        scalars["last"] = quantizer._last_decision

    _ensure_jit(program)
    results: tuple[Any, ...] | None = None
    if program.jit_fn is not None:
        args = [
            arrays[name] if name in arrays else scalars[name]
            for name in program.arg_names
        ]
        try:
            results = program.jit_fn(*args)
        except Exception as error:  # numba typing/lowering failure
            program.jit_fn = None
            program.jit_state = (
                f"jit execution failed: {type(error).__name__}"
            )
            results = None
    if results is None:
        lists = {name: value.tolist() for name, value in arrays.items()}
        py_out: list[float] = [0.0] * n
        lists["out"] = py_out
        py_probes: dict[str, list[float]] = {}
        for slot in range(len(program.probe_slots)):
            buf: list[float] = [0.0] * n
            lists[f"pb{slot}"] = buf
            py_probes[f"pb{slot}"] = buf
        args = [
            lists[name] if name in lists else scalars[name]
            for name in program.arg_names
        ]
        results = program.fn(*args)
        out = np.array(py_out)
        for slot_name, buf in py_probes.items():
            arrays[slot_name] = np.array(buf)

    values = dict(
        zip(program.state_names + program.slew_names, results, strict=True)
    )
    for j, (cell, _) in enumerate(stages):
        cell._stored = DifferentialSample(
            float(values[f"p{j}"]), float(values[f"m{j}"])
        )
        cell._steps += n
        cell._slew_events += int(values[f"slews{j}"])
    if loop is not None:
        quantizer._last_decision = int(values["last"])
    if n > 0:
        for slot, owner in enumerate(probe_owners):
            if owner is not None:
                owner.observe_array(arrays[f"pb{slot}"])
    if signs is not None:
        return signs * out
    return out
