"""Compiled kernel tier: per-design fused state-space loops.

Public surface:

* :class:`CellKernel` / :func:`store_batch` -- the vectorised memory-cell
  settling update used by the batch engine (moved here from the old
  flat ``repro.runtime.kernels`` module).
* :func:`build_spec` / :class:`KernelSpec` -- lower a device into a
  frozen constant-folded spec, or raise :class:`KernelUnsupported`
  with a named reason.
* :func:`compile_spec` / :class:`KernelProgram` -- generate and cache
  the fused scalar loop for a spec.
* :func:`run_kernel` / :func:`kernel_refusal` -- execute a device's
  run through the compiled tier (byte-identical to ``force_scalar()``),
  or predict why it would refuse.
* :func:`state_matrices` -- the A/B/C/D linearisation of a spec for
  docs and analysis.
"""

from repro.runtime.kernels.codegen import KernelProgram, compile_spec
from repro.runtime.kernels.jit import jit_status
from repro.runtime.kernels.runner import kernel_refusal, run_kernel
from repro.runtime.kernels.spec import (
    KernelSpec,
    KernelUnsupported,
    build_spec,
    state_matrices,
)
from repro.runtime.kernels.store import CellKernel, store_batch

__all__ = [
    "CellKernel",
    "KernelProgram",
    "KernelSpec",
    "KernelUnsupported",
    "build_spec",
    "compile_spec",
    "jit_status",
    "kernel_refusal",
    "run_kernel",
    "state_matrices",
    "store_batch",
]
